//! Evidence-aware querying end to end: NetAffx similarity links carry
//! confidences; thresholded views and thresholded composition must treat
//! them soundly (paper §4.2's future-work direction on reduced-evidence
//! mappings).

use genmapper::{GenMapper, QuerySpec, TargetQuery};
use sources::ecosystem::{Ecosystem, EcosystemParams};
use std::collections::BTreeSet;

fn system(seed: u64) -> (GenMapper, Ecosystem) {
    let eco = Ecosystem::generate(EcosystemParams::demo(seed));
    let mut gm = GenMapper::in_memory().unwrap();
    gm.import_dumps(&eco.dumps).unwrap();
    (gm, eco)
}

#[test]
fn thresholded_view_is_monotone_in_the_threshold() {
    let (mut gm, _) = system(201);
    // NetAffx -> Unigene links are scored in [0.5, 1.0]
    let rows_at = |gm: &mut GenMapper, threshold: Option<f64>| -> usize {
        let mut target = TargetQuery::new("Unigene");
        if let Some(t) = threshold {
            target = target.min_evidence(t);
        }
        gm.query(&QuerySpec::source("NetAffx").target_spec(target).and())
            .unwrap()
            .len()
    };
    let all = rows_at(&mut gm, None);
    let t00 = rows_at(&mut gm, Some(0.0));
    let t75 = rows_at(&mut gm, Some(0.75));
    let t99 = rows_at(&mut gm, Some(0.99));
    assert_eq!(all, t00, "zero threshold is a no-op");
    assert!(t75 < all, "0.75 must drop some scored links ({t75} vs {all})");
    assert!(t99 <= t75);
    assert!(t75 > 0, "strong links survive");
}

#[test]
fn threshold_affects_negation_consistently() {
    let (gm, _) = system(202);
    // probes WITH a confident Unigene link + probes WITHOUT one partition
    // the chip at every threshold
    let netaffx = gm.source_id("NetAffx").unwrap();
    let total = gm.store().object_count(netaffx).unwrap();
    for threshold in [0.6, 0.9] {
        let with: BTreeSet<String> = gm
            .query(
                &QuerySpec::source("NetAffx")
                    .target_spec(TargetQuery::new("Unigene").min_evidence(threshold))
                    .and(),
            )
            .unwrap()
            .rows
            .iter()
            .filter_map(|r| r.cell_text(0).map(str::to_owned))
            .collect();
        let without: BTreeSet<String> = gm
            .query(
                &QuerySpec::source("NetAffx")
                    .target_spec(TargetQuery::new("Unigene").min_evidence(threshold).negated())
                    .and(),
            )
            .unwrap()
            .rows
            .iter()
            .filter_map(|r| r.cell_text(0).map(str::to_owned))
            .collect();
        assert!(with.is_disjoint(&without), "threshold {threshold}");
        assert_eq!(with.len() + without.len(), total, "threshold {threshold}");
    }
}

#[test]
fn thresholded_composition_prunes_weak_probe_annotations() {
    let (gm, _) = system(203);
    let netaffx = gm.source_id("NetAffx").unwrap();
    let unigene = gm.source_id("Unigene").unwrap();
    let locuslink = gm.source_id("LocusLink").unwrap();
    let go = gm.source_id("GO").unwrap();
    let path = [netaffx, unigene, locuslink, go];
    let unfiltered = operators::compose_path(gm.store(), &path).unwrap();
    let strict = operators::compose_path_with_threshold(gm.store(), &path, 0.9).unwrap();
    let lax = operators::compose_path_with_threshold(gm.store(), &path, 0.0).unwrap();
    assert_eq!(lax.len(), unfiltered.len());
    assert!(strict.len() < unfiltered.len());
    // every surviving association really satisfies the floor
    for a in &strict.pairs {
        assert!(a.effective_evidence() >= 0.9 - 1e-12);
    }
    // surviving associations are a subset of the unfiltered result
    let all: BTreeSet<_> = unfiltered.pairs.iter().map(|a| (a.from, a.to)).collect();
    for a in &strict.pairs {
        assert!(all.contains(&(a.from, a.to)));
    }
}

#[test]
fn mapping_type_counts_match_cardinalities() {
    let (gm, _) = system(204);
    let counts = gm.store().mapping_type_counts().unwrap();
    let cards = gm.cardinalities().unwrap();
    let mappings: usize = counts.iter().map(|(_, m, _)| m).sum();
    let associations: usize = counts.iter().map(|(_, _, a)| a).sum();
    assert_eq!(mappings, cards.mappings);
    assert_eq!(associations, cards.associations);
    // the demo ecosystem exercises facts, similarities, structure
    let types: BTreeSet<String> = counts.iter().map(|(t, _, _)| t.to_string()).collect();
    assert!(types.contains("Fact"));
    assert!(types.contains("Similarity"));
    assert!(types.contains("IS_A"));
    assert!(types.contains("Contains"));
}
