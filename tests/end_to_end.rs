//! End-to-end integration: generate → parse → import → query, validated
//! against the generator's ground truth (the `Universe`).

use genmapper::{GenMapper, QuerySpec, TargetQuery};
use sources::ecosystem::{Ecosystem, EcosystemParams};
use sources::universe::Universe;
use std::collections::BTreeSet;

fn system(seed: u64) -> (GenMapper, Ecosystem) {
    let eco = Ecosystem::generate(EcosystemParams::demo(seed));
    let mut gm = GenMapper::in_memory().unwrap();
    let reports = gm.import_dumps(&eco.dumps).unwrap();
    assert!(reports.iter().all(|r| !r.skipped));
    (gm, eco)
}

#[test]
fn every_core_source_is_registered_with_metadata() {
    let (gm, _) = system(100);
    let sources = gm.sources().unwrap();
    let names: Vec<&str> = sources.iter().map(|s| s.name.as_str()).collect();
    for expected in [
        "LocusLink",
        "GO",
        "Unigene",
        "Enzyme",
        "Hugo",
        "OMIM",
        "NetAffx",
        "SwissProt",
        "InterPro",
        "GeneMap",
        // pseudo-targets from LocusLink records
        "Location",
        "Chr",
        // GO partitions via Contains
        "GO.BiologicalProcess",
        "GO.MolecularFunction",
        "GO.CellularComponent",
    ] {
        assert!(names.contains(&expected), "missing source {expected}");
    }
    // GO keeps its Network structure even though LocusLink stubbed it first
    let go = sources.iter().find(|s| s.name == "GO").unwrap();
    assert_eq!(go.structure, gam::model::SourceStructure::Network);
}

#[test]
fn view_matches_universe_ground_truth() {
    let (gm, eco) = system(101);
    let u: &Universe = &eco.universe;
    // check 10 loci: the GO column of the view equals the universe's
    // annotation set for that locus
    for locus in u.loci.iter().take(10) {
        let spec = QuerySpec::source("LocusLink")
            .accessions([locus.id.to_string()])
            .target("GO");
        let view = gm.query(&spec).unwrap();
        let got: BTreeSet<&str> = view.rows.iter().filter_map(|r| r.cell_text(1)).collect();
        let expected: BTreeSet<&str> = locus
            .go_terms
            .iter()
            .map(|&t| u.go_terms[t].acc.as_str())
            .collect();
        assert_eq!(got, expected, "GO annotations of locus {}", locus.id);
    }
}

#[test]
fn hugo_symbols_resolve_for_all_loci() {
    let (gm, eco) = system(102);
    let spec = QuerySpec::source("LocusLink").target("Hugo").or();
    let view = gm.query(&spec).unwrap();
    // exactly one Hugo symbol per locus, never NULL
    assert_eq!(view.len(), eco.universe.loci.len());
    for row in &view.rows {
        assert!(row.cell_text(1).is_some(), "every locus has a symbol");
    }
    let symbols: BTreeSet<&str> = view.rows.iter().filter_map(|r| r.cell_text(1)).collect();
    assert_eq!(symbols.len(), eco.universe.loci.len(), "symbols are unique");
}

#[test]
fn multi_hop_composition_equals_ground_truth() {
    let (gm, eco) = system(103);
    let u = &eco.universe;
    // Unigene -> GO via LocusLink: expected = union of member loci's terms
    let composed = gm.compose(&["Unigene", "LocusLink", "GO"]).unwrap();
    assert!(!composed.is_empty());
    // pick the cluster of locus 353
    let cluster = &u.unigene[u.locus_353().unigene];
    let ug = gm.source_id("Unigene").unwrap();
    let go = gm.source_id("GO").unwrap();
    let cluster_obj = gm.store().find_object(ug, &cluster.acc).unwrap().unwrap();
    let got: BTreeSet<String> = composed
        .pairs
        .iter()
        .filter(|p| p.from == cluster_obj.id)
        .map(|p| gm.store().get_object(p.to).unwrap().accession)
        .collect();
    let expected: BTreeSet<String> = cluster
        .loci
        .iter()
        .flat_map(|&l| u.loci[l].go_terms.iter().map(|&t| u.go_terms[t].acc.clone()))
        .collect();
    assert_eq!(got, expected);
    let _ = go;
}

#[test]
fn negation_complements_exactly() {
    let (gm, eco) = system(104);
    let with_omim = gm
        .query(&QuerySpec::source("LocusLink").target("OMIM").and())
        .unwrap();
    let without_omim = gm
        .query(
            &QuerySpec::source("LocusLink")
                .target_spec(TargetQuery::new("OMIM").negated())
                .and(),
        )
        .unwrap();
    let with_set: BTreeSet<&str> = with_omim.rows.iter().filter_map(|r| r.cell_text(0)).collect();
    let without_set: BTreeSet<&str> = without_omim
        .rows
        .iter()
        .filter_map(|r| r.cell_text(0))
        .collect();
    // ground truth from the universe
    let expected_with: BTreeSet<String> = eco
        .universe
        .loci
        .iter()
        .filter(|l| !l.omim.is_empty())
        .map(|l| l.id.to_string())
        .collect();
    let got_with: BTreeSet<String> = with_set.iter().map(|s| (*s).to_owned()).collect();
    assert_eq!(got_with, expected_with);
    assert_eq!(
        with_set.len() + without_set.len(),
        eco.universe.loci.len(),
        "negation partitions the source"
    );
}

#[test]
fn reimport_is_idempotent_and_new_release_is_incremental() {
    let (mut gm, eco) = system(105);
    let before = gm.cardinalities().unwrap();
    // same dumps again: all skipped
    let reports = gm.import_dumps(&eco.dumps).unwrap();
    assert!(reports.iter().all(|r| r.skipped));
    assert_eq!(gm.cardinalities().unwrap(), before);

    // a new LocusLink release with one extra locus
    let mut batch = eco.dumps[0].parse().unwrap();
    batch.meta.release = "2004-01".into();
    batch.push(eav::EavRecord::named_object("424242", "a new gene"));
    batch.push(eav::EavRecord::annotation("424242", "GO", "GO:0009116"));
    let report = gm.import_batch(&batch).unwrap();
    assert!(!report.skipped);
    assert_eq!(report.objects_created, 1);
    assert_eq!(report.associations_created, 1);
    let after = gm.cardinalities().unwrap();
    assert_eq!(after.objects, before.objects + 1);
    assert_eq!(after.associations, before.associations + 1);
    assert_eq!(after.mappings, before.mappings, "no new mappings needed");

    // and the new object is queryable
    let view = gm
        .query(&QuerySpec::source("LocusLink").accessions(["424242"]).target("GO"))
        .unwrap();
    assert_eq!(view.rows[0].cell_text(1), Some("GO:0009116"));
}

#[test]
fn satellite_sources_join_the_graph() {
    let (gm, eco) = system(106);
    // every satellite reaches GO through its hub
    for dump in &eco.dumps[10..] {
        let path = gm.find_path(&dump.name, "GO").unwrap();
        assert_eq!(path.first().map(String::as_str), Some(dump.name.as_str()));
        assert_eq!(path.last().map(String::as_str), Some("GO"));
        // and a view across the composed path works
        let spec = QuerySpec::source(dump.name.as_str()).target("GO").and();
        let view = gm.query(&spec).unwrap();
        assert!(
            !view.is_empty(),
            "satellite {} produced an empty GO view",
            dump.name
        );
    }
}

#[test]
fn cardinalities_are_consistent_with_reports() {
    let (gm, eco) = system(107);
    let cards = gm.cardinalities().unwrap();
    // objects reported by the store match the universe plus pseudo targets
    assert!(cards.objects > eco.universe.loci.len());
    // every association's mapping exists and endpoints belong to the
    // mapping's sources
    let rels = gm.store().source_rels().unwrap();
    for rel in &rels {
        let mapping = gm.store().load_mapping(rel.id).unwrap();
        for pair in mapping.pairs.iter().take(50) {
            let from = gm.store().get_object(pair.from).unwrap();
            let to = gm.store().get_object(pair.to).unwrap();
            assert_eq!(from.source, rel.source1, "mapping {} domain side", rel.id);
            assert_eq!(to.source, rel.source2, "mapping {} range side", rel.id);
        }
    }
    assert_eq!(cards.mappings, rels.len());
}
