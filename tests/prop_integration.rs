//! Property-based integration tests over randomly-shaped ecosystems.

use gam::model::RelType;
use genmapper::{GenMapper, QuerySpec, TargetQuery};
use proptest::prelude::*;
use sources::ecosystem::{Ecosystem, EcosystemParams};
use sources::universe::UniverseParams;
use std::collections::BTreeSet;

fn arb_params() -> impl Strategy<Value = EcosystemParams> {
    (1u64..1_000, 40usize..120, 20usize..60, 1usize..4).prop_map(
        |(seed, n_loci, n_go, n_sat)| EcosystemParams {
            universe: UniverseParams {
                seed,
                n_loci,
                n_go_terms: n_go,
                n_enzymes: 15,
                n_omim: 12,
                n_interpro: 15,
                probesets_per_locus: 1.2,
                protein_fraction: 0.6,
            },
            n_satellites: n_sat,
            satellite_objects: 15,
            satellite_links: 2,
            satellite_hubs: 2,
            satellite_scored_fraction: 0.3,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The whole pipeline holds its invariants on arbitrary ecosystem
    /// shapes: idempotent re-import, consistent mapping endpoints,
    /// AND ⊆ OR, negation partitions, inverse symmetry of Map.
    #[test]
    fn pipeline_invariants(params in arb_params()) {
        let eco = Ecosystem::generate(params);
        let mut gm = GenMapper::in_memory().unwrap();
        gm.import_dumps(&eco.dumps).unwrap();
        let cards = gm.cardinalities().unwrap();
        prop_assert!(cards.sources >= 10);
        prop_assert!(cards.objects > 0);

        // idempotence
        let again = gm.import_dumps(&eco.dumps).unwrap();
        prop_assert!(again.iter().all(|r| r.skipped));
        prop_assert_eq!(gm.cardinalities().unwrap(), cards);

        // Map is symmetric under inversion
        let fwd = gm.map("LocusLink", "GO").unwrap();
        let back = gm.map("GO", "LocusLink").unwrap();
        prop_assert_eq!(fwd.len(), back.len());
        let fwd_pairs: BTreeSet<_> = fwd.pairs.iter().map(|p| (p.from, p.to)).collect();
        let back_pairs: BTreeSet<_> = back.pairs.iter().map(|p| (p.to, p.from)).collect();
        prop_assert_eq!(fwd_pairs, back_pairs);

        // AND ⊆ OR on a two-target view
        let base = QuerySpec::source("LocusLink").target("GO").target("OMIM");
        let and_view = gm.query(&base.clone().and()).unwrap();
        let or_view = gm.query(&base.or()).unwrap();
        let and_objs: BTreeSet<String> = and_view.rows.iter().filter_map(|r| r.cell_text(0).map(str::to_owned)).collect();
        let or_objs: BTreeSet<String> = or_view.rows.iter().filter_map(|r| r.cell_text(0).map(str::to_owned)).collect();
        prop_assert!(and_objs.is_subset(&or_objs));
        prop_assert_eq!(or_objs.len(), eco.universe.loci.len(), "OR covers the whole source");

        // negation partitions
        let with = gm.query(&QuerySpec::source("LocusLink").target("OMIM").and()).unwrap();
        let without = gm.query(&QuerySpec::source("LocusLink")
            .target_spec(TargetQuery::new("OMIM").negated()).and()).unwrap();
        let with_set: BTreeSet<String> = with.rows.iter().filter_map(|r| r.cell_text(0).map(str::to_owned)).collect();
        let without_set: BTreeSet<String> = without.rows.iter().filter_map(|r| r.cell_text(0).map(str::to_owned)).collect();
        prop_assert!(with_set.is_disjoint(&without_set));
        prop_assert_eq!(with_set.len() + without_set.len(), eco.universe.loci.len());
    }

    /// Composition along the canonical path equals ground truth derived
    /// from the universe directly, for every cluster.
    #[test]
    fn compose_matches_ground_truth(params in arb_params()) {
        let eco = Ecosystem::generate(params);
        let mut gm = GenMapper::in_memory().unwrap();
        gm.import_dumps(&eco.dumps).unwrap();
        let composed = gm.compose(&["Unigene", "LocusLink", "GO"]).unwrap();
        let ug = gm.source_id("Unigene").unwrap();
        // build expected pairs from the universe
        let mut expected: BTreeSet<(String, String)> = BTreeSet::new();
        for cluster in &eco.universe.unigene {
            for &l in &cluster.loci {
                for &t in &eco.universe.loci[l].go_terms {
                    expected.insert((cluster.acc.clone(), eco.universe.go_terms[t].acc.clone()));
                }
            }
        }
        let mut got: BTreeSet<(String, String)> = BTreeSet::new();
        for p in &composed.pairs {
            let from = gm.store().get_object(p.from).unwrap();
            let to = gm.store().get_object(p.to).unwrap();
            prop_assert_eq!(from.source, ug);
            got.insert((from.accession, to.accession));
        }
        prop_assert_eq!(got, expected);
    }

    /// The Subsumed closure is a strict superset of IS_A, transitive, and
    /// acyclic for every generated GO taxonomy.
    #[test]
    fn subsume_properties(params in arb_params()) {
        let eco = Ecosystem::generate(params);
        let mut gm = GenMapper::in_memory().unwrap();
        gm.import_dumps(&eco.dumps).unwrap();
        let go = gm.source_id("GO").unwrap();
        let subsumed = operators::subsume(gm.store(), go).unwrap();
        let (isa_rel, _) = gm.store().find_source_rel(go, go, Some(RelType::IsA)).unwrap().unwrap();
        let isa = gm.store().load_mapping(isa_rel.id).unwrap();
        let closure: BTreeSet<_> = subsumed.pairs.iter().map(|p| (p.from, p.to)).collect();
        // every IS_A edge (child -> parent) appears inverted in the closure
        for edge in &isa.pairs {
            prop_assert!(closure.contains(&(edge.to, edge.from)));
        }
        // transitive
        for &(a, b) in closure.iter().take(200) {
            for &(c, d) in closure.iter().take(200) {
                if b == c {
                    prop_assert!(closure.contains(&(a, d)));
                }
            }
        }
        // irreflexive (acyclic taxonomy)
        prop_assert!(closure.iter().all(|(a, b)| a != b));
    }

    /// Views are deterministic: two independently-built systems from the
    /// same seed answer identically.
    #[test]
    fn determinism_across_rebuilds(seed in 1u64..500) {
        let params = EcosystemParams::demo(seed);
        let build = || {
            let eco = Ecosystem::generate(params.clone());
            let mut gm = GenMapper::in_memory().unwrap();
            gm.import_dumps(&eco.dumps).unwrap();
            gm.query(&QuerySpec::source("LocusLink")
                .target("GO").target("Hugo").or())
                .unwrap()
        };
        prop_assert_eq!(build(), build());
    }
}
