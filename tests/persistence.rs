//! Durability integration: checkpoint + WAL recovery at system level,
//! including failure injection (torn WAL, corrupt snapshot).

use genmapper::{GenMapper, QuerySpec};
use sources::ecosystem::{Ecosystem, EcosystemParams};
use std::fs;
use std::path::PathBuf;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("genmapper-persistence").join(name);
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn full_ecosystem_survives_reopen() {
    let dir = tmpdir("full");
    let eco = Ecosystem::generate(EcosystemParams::demo(55));
    let cards = {
        let mut gm = GenMapper::open(&dir).unwrap();
        gm.import_dumps(&eco.dumps).unwrap();
        gm.checkpoint().unwrap();
        gm.cardinalities().unwrap()
    };
    {
        let mut gm = GenMapper::open(&dir).unwrap();
        assert_eq!(gm.cardinalities().unwrap(), cards);
        // operators work on the recovered store
        let view = gm
            .query(&QuerySpec::source("LocusLink").accessions(["353"]).target("GO"))
            .unwrap();
        assert!(!view.is_empty());
        let composed = gm.compose(&["Unigene", "LocusLink", "GO"]).unwrap();
        assert!(!composed.is_empty());
        // re-import after reopen is still deduplicated
        let reports = gm.import_dumps(&eco.dumps).unwrap();
        assert!(reports.iter().all(|r| r.skipped));
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn work_after_checkpoint_is_replayed_from_wal() {
    let dir = tmpdir("wal-tail");
    let eco = Ecosystem::generate(EcosystemParams::demo(56));
    {
        let mut gm = GenMapper::open(&dir).unwrap();
        // import only the first three sources, checkpoint, then import the
        // GO-free remainder — the tail lives only in the WAL
        gm.import_dumps(&eco.dumps[..3]).unwrap();
        gm.checkpoint().unwrap();
        gm.import_dumps(&eco.dumps[3..6]).unwrap();
        // no checkpoint here
    }
    {
        let gm = GenMapper::open(&dir).unwrap();
        let sources = gm.sources().unwrap();
        let names: Vec<&str> = sources.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"Enzyme"), "WAL-only source recovered");
        assert!(names.contains(&"Hugo"));
        assert!(names.contains(&"OMIM"));
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn materializations_survive_reopen() {
    let dir = tmpdir("materialize");
    let eco = Ecosystem::generate(EcosystemParams::demo(57));
    let n = {
        let mut gm = GenMapper::open(&dir).unwrap();
        gm.import_dumps(&eco.dumps).unwrap();
        let (_, n) = gm
            .materialize_composed(&["Unigene", "LocusLink", "GO"])
            .unwrap();
        gm.checkpoint().unwrap();
        n
    };
    {
        let gm = GenMapper::open(&dir).unwrap();
        let direct = gm.map("Unigene", "GO").unwrap();
        assert_eq!(direct.len(), n, "materialized mapping recovered intact");
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn torn_wal_tail_recovers_to_last_commit() {
    let dir = tmpdir("torn");
    let eco = Ecosystem::generate(EcosystemParams::demo(58));
    let cards_before_tail;
    {
        let mut gm = GenMapper::open(&dir).unwrap();
        gm.import_dumps(&eco.dumps[..2]).unwrap();
        gm.checkpoint().unwrap();
        gm.import_dumps(&eco.dumps[2..3]).unwrap();
        cards_before_tail = gm.cardinalities().unwrap();
    }
    // tear off the last 5 bytes of the WAL: the final frame is torn, every
    // fully committed transaction before it must survive
    let wal = dir.join("wal.log");
    let data = fs::read(&wal).unwrap();
    assert!(data.len() > 16, "WAL holds the tail import");
    fs::write(&wal, &data[..data.len() - 5]).unwrap();
    {
        let gm = GenMapper::open(&dir).unwrap();
        let cards = gm.cardinalities().unwrap();
        // at most the torn transaction is missing; sources imported before
        // it are intact
        assert!(cards.sources >= 2);
        assert!(cards.objects <= cards_before_tail.objects);
        let ll = gm.source_id("LocusLink").unwrap();
        assert!(gm.store().object_count(ll).unwrap() > 0);
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_snapshot_degrades_and_is_reported() {
    let dir = tmpdir("corrupt-snapshot");
    {
        let mut gm = GenMapper::open(&dir).unwrap();
        let eco = Ecosystem::generate(EcosystemParams::demo(59));
        gm.import_dumps(&eco.dumps[..1]).unwrap();
        gm.checkpoint().unwrap();
    }
    let snapshot = dir.join("snapshot.bin");
    let mut data = fs::read(&snapshot).unwrap();
    let mid = data.len() / 2;
    data[mid] ^= 0xff;
    fs::write(&snapshot, &data).unwrap();
    // Corruption is detected (CRC) and the store degrades to the newest
    // valid state instead of refusing to open. Only one snapshot
    // generation exists here, so that state is empty — and the WAL, which
    // predates the corrupt snapshot's epoch, is discarded as stale. The
    // recovery report says exactly what happened.
    let gm = GenMapper::open(&dir).unwrap();
    let report = gm.store().recovery_report().unwrap();
    assert_eq!(report.snapshot, relstore::SnapshotSource::None);
    assert!(report.wal_stale, "pre-checkpoint WAL is stale after fallback");
    assert_eq!(gm.cardinalities().unwrap().sources, 0);
    // A corrupt primary with an intact previous generation instead
    // degrades to that generation (covered in relstore/tests/recovery.rs).
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_truncates_wal_and_resumes() {
    let dir = tmpdir("truncate");
    let eco = Ecosystem::generate(EcosystemParams::demo(60));
    {
        let mut gm = GenMapper::open(&dir).unwrap();
        gm.import_dumps(&eco.dumps[..2]).unwrap();
        gm.checkpoint().unwrap();
        // the reset WAL holds nothing but the new epoch stamp
        let stamp = fs::metadata(dir.join("wal.log")).unwrap().len();
        assert!(stamp > 0 && stamp <= 32, "epoch-only WAL, got {stamp} bytes");
        // continue appending after truncation
        gm.import_dumps(&eco.dumps[2..3]).unwrap();
        assert!(fs::metadata(dir.join("wal.log")).unwrap().len() > stamp);
    }
    {
        let gm = GenMapper::open(&dir).unwrap();
        assert!(gm.source_id("Unigene").is_ok());
    }
    let _ = fs::remove_dir_all(&dir);
}
