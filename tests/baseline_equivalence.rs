//! Cross-system equivalence: on questions all three systems can answer,
//! GenMapper (generic GAM), the SRS-style store (link navigation) and the
//! star-schema warehouse must return the same answers. On questions only
//! GenMapper can answer, the baselines fail in their characteristic ways.

use baselines::{SrsStore, StarWarehouse};
use genmapper::{GenMapper, QuerySpec, TargetQuery};
use sources::ecosystem::{Ecosystem, EcosystemParams};
use std::collections::BTreeSet;

struct Systems {
    gm: GenMapper,
    srs: SrsStore,
    star: StarWarehouse,
    eco: Ecosystem,
}

fn build(seed: u64) -> Systems {
    let eco = Ecosystem::generate(EcosystemParams::demo(seed));
    let mut gm = GenMapper::in_memory().unwrap();
    gm.import_dumps(&eco.dumps).unwrap();

    let mut srs = SrsStore::new();
    for dump in &eco.dumps {
        srs.load(&dump.parse().unwrap());
    }

    let mut star = StarWarehouse::new().unwrap();
    star.integrate(&eco.dumps[0].parse().unwrap()).unwrap(); // LocusLink only
    Systems { gm, srs, star, eco }
}

#[test]
fn single_source_lookup_agrees_everywhere() {
    let s = build(70);
    // gene 353's GO annotations
    let gm_terms: BTreeSet<String> = s
        .gm
        .query(&QuerySpec::source("LocusLink").accessions(["353"]).target("GO"))
        .unwrap()
        .rows
        .iter()
        .filter_map(|r| r.cell_text(1).map(str::to_owned))
        .collect();
    let srs_terms: BTreeSet<String> = s
        .srs
        .navigate("LocusLink", "353", "GO")
        .into_iter()
        .map(str::to_owned)
        .collect();
    let star_loci = |term: &str| s.star.loci_with_go(term).unwrap();
    assert_eq!(gm_terms, srs_terms);
    for term in &gm_terms {
        assert!(
            star_loci(term).contains(&"353".to_owned()),
            "star bridge misses {term}"
        );
    }
    assert!(gm_terms.contains("GO:0009116"));
}

#[test]
fn location_query_gam_vs_star() {
    let s = build(71);
    let location = s.eco.universe.locus_353().location.clone();
    let gm_loci: BTreeSet<String> = s
        .gm
        .query(
            &QuerySpec::source("LocusLink")
                .target_spec(TargetQuery::new("Location").accessions([location.as_str()]))
                .and(),
        )
        .unwrap()
        .rows
        .iter()
        .filter_map(|r| r.cell_text(0).map(str::to_owned))
        .collect();
    let star_loci: BTreeSet<String> = s.star.loci_at_location(&location).unwrap().into_iter().collect();
    assert_eq!(gm_loci, star_loci);
    assert!(gm_loci.contains("353"));
}

#[test]
fn join_query_gam_vs_srs_navigation() {
    let s = build(72);
    // which UniGene clusters are annotated (via LocusLink) with the
    // pinned GO term? GenMapper composes; SRS must navigate per entry.
    let term = "GO:0009116";
    let gm_clusters: BTreeSet<String> = s
        .gm
        .query(
            &QuerySpec::source("Unigene")
                .target_spec(TargetQuery::new("GO").accessions([term]))
                .and(),
        )
        .unwrap()
        .rows
        .iter()
        .filter_map(|r| r.cell_text(0).map(str::to_owned))
        .collect();
    let srs_clusters: BTreeSet<String> = s
        .srs
        .navigate_join("Unigene", &["LocusLink", "GO"], term)
        .into_iter()
        .collect();
    assert_eq!(gm_clusters, srs_clusters);
    assert!(!gm_clusters.is_empty());
}

#[test]
fn srs_cannot_answer_joins_without_navigation() {
    let s = build(73);
    // the SRS data model itself holds only per-source indexes and one-hop
    // links: there is no API surface that answers a multi-source
    // constraint in one call, and single entries know nothing about GO
    // unless the record carries a direct link
    let entry = s.srs.get("Unigene", &s.eco.universe.unigene[0].acc).unwrap();
    assert!(!entry.links.contains_key("GO"), "no direct Unigene->GO link exists");
    assert!(entry.links.contains_key("LocusLink"));
}

#[test]
fn star_schema_rejects_unanticipated_sources_gam_accepts_them() {
    let mut s = build(74);
    // a satellite source the star schema never anticipated
    let satellite = s.eco.dumps[10].parse().unwrap();
    let err = s.star.integrate(&satellite).unwrap_err();
    assert!(matches!(
        err,
        baselines::StarError::SchemaEvolutionRequired { .. }
    ));
    // GenMapper already integrated it: views work immediately
    let spec = QuerySpec::source(satellite.meta.name.as_str())
        .target("GO")
        .and();
    let view = s.gm.query(&spec).unwrap();
    assert!(!view.is_empty());
}

#[test]
fn star_loses_unmodeled_annotations_gam_keeps_them() {
    let s = build(75);
    // the Enzyme annotation of locus 353 is not in the star schema
    assert!(s.star.gene("353").unwrap().is_some());
    // (no bridge for Enzyme: loci_with_go is the only bridge query, and
    // row_count reflects the loss)
    let gm_enzyme = s
        .gm
        .query(&QuerySpec::source("LocusLink").accessions(["353"]).target("Enzyme"))
        .unwrap();
    assert!(gm_enzyme.rows.iter().any(|r| r.cell_text(1) == Some("2.4.2.7")));
}
