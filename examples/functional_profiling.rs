//! Large-scale automatic gene functional profiling (paper §5.2).
//!
//! Reproduces the human/chimpanzee comparative study pipeline: simulate
//! Affymetrix expression measurements at the paper's proportions (~40k
//! probes → ~20k detected → ~2.5k differentially expressed, scaled to the
//! chosen universe), map the proprietary probe identifiers through
//! GenMapper (NetAffx → UniGene → LocusLink → GO), aggregate over the GO
//! taxonomy with IS_A/Subsumed structure, and run hypergeometric
//! enrichment to find the functions that changed between the species.
//!
//! Run with: `cargo run --release --example functional_profiling`

use genmapper::GenMapper;
use profiling::{ExpressionParams, ExpressionStudy, FunctionalProfile};
use sources::ecosystem::{Ecosystem, EcosystemParams};

fn main() {
    // a mid-size ecosystem so the statistics are meaningful
    let eco = Ecosystem::generate(EcosystemParams::medium(2004));
    let mut gm = GenMapper::in_memory().expect("store opens");
    gm.import_dumps(&eco.dumps).expect("pipeline runs");
    println!("integrated: {}", gm.cardinalities().expect("stats"));

    // the comparative expression study (proprietary in the paper;
    // simulated here at the published proportions)
    let study = ExpressionStudy::simulate(&eco.universe, ExpressionParams::default());
    let (total, detected, differential) = study.counts();
    println!("\nexpression study (paper §5.2 shape):");
    println!("  probe sets on chip      {total:>8}  (paper: ~40,000 genes)");
    println!("  detected                {detected:>8}  (paper: ~20,000)");
    println!("  differentially expressed{differential:>8}  (paper: ~2,500)");

    // the profiling pipeline
    let report = FunctionalProfile::run(&mut gm, &study).expect("profiling runs");
    println!("\nmapping through GenMapper:");
    println!("  differential probes -> UniGene clusters  {}", report.study_clusters);
    println!("  clusters -> LocusLink genes              {}", report.study_loci);
    println!("  background (detected) genes              {}", report.population_loci);
    println!("  GO-annotated study genes                 {}", report.annotated_study);
    println!("  GO-annotated background genes            {}", report.annotated_population);

    println!("\ntop GO terms by enrichment (IS_A/Subsumed-aggregated):");
    println!(
        "  {:<14} {:>5} {:>5} {:>10} {:>10}  name",
        "term", "study", "pop", "p", "q"
    );
    for term in report.enrichment.iter().take(15) {
        println!(
            "  {:<14} {:>5} {:>5} {:>10.2e} {:>10.2e}  {}",
            term.accession,
            term.study_count,
            term.population_count,
            term.p_value,
            term.q_value,
            term.name.as_deref().unwrap_or("")
        );
    }
    println!("\nterms profiled per GO sub-taxonomy (Contains partitions):");
    for (acc, name, n) in &report.namespace_breakdown {
        println!("  {acc} {:<24} {n} terms", name.as_deref().unwrap_or(""));
    }
    let significant = report.significant(0.05).count();
    println!("\n{significant} term(s) significant at FDR 0.05");
    println!("(differential genes above are drawn independently of function, so a null result is the statistically correct outcome)");

    // ------------------------------------------------------------------
    // Validation: plant a functional signal and recover it. Genes under
    // GO:0009116 (nucleoside metabolism — the paper's running example)
    // are made preferentially differential; the enrichment must find it.
    // ------------------------------------------------------------------
    println!("\n=== planted-signal validation ===");
    let planted_params = ExpressionParams::with_planted_signal("GO:0009116", 0.9);
    let planted_study = ExpressionStudy::simulate(&eco.universe, planted_params);
    let planted_report =
        FunctionalProfile::run(&mut gm, &planted_study).expect("profiling runs");
    println!("top 5 GO terms with the planted signal:");
    for term in planted_report.enrichment.iter().take(5) {
        println!(
            "  {:<14} study {:>4} / pop {:>5}  p={:.3e}  q={:.3e}  {}",
            term.accession,
            term.study_count,
            term.population_count,
            term.p_value,
            term.q_value,
            term.name.as_deref().unwrap_or("")
        );
    }
    let rank = planted_report
        .enrichment
        .iter()
        .position(|t| t.accession == "GO:0009116");
    println!(
        "planted term GO:0009116 recovered at rank {:?} (FDR-significant: {})",
        rank.map(|r| r + 1),
        planted_report
            .significant(0.05)
            .any(|t| t.accession == "GO:0009116")
    );
    // ------------------------------------------------------------------
    // The same methodology over another taxonomy: Enzyme (EC classes).
    // ------------------------------------------------------------------
    println!("\n=== Enzyme-taxonomy profiling (paper: \"also applicable to other taxonomies\") ===");
    let ec_report =
        FunctionalProfile::run_taxonomy(&mut gm, &study, "Enzyme").expect("profiling runs");
    println!(
        "EC classes profiled: {} (study genes with EC annotation: {})",
        ec_report.enrichment.len(),
        ec_report.annotated_study
    );
    for term in ec_report.enrichment.iter().take(5) {
        println!(
            "  EC {:<12} study {:>3} / pop {:>4}  p={:.3e}  {}",
            term.accession,
            term.study_count,
            term.population_count,
            term.p_value,
            term.name.as_deref().unwrap_or("")
        );
    }
}
