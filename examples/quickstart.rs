//! Quickstart: generate a synthetic source ecosystem, integrate it with
//! the two-phase Parse/Import pipeline, and ask GenMapper about the
//! paper's running example — LocusLink locus 353 (APRT).
//!
//! Reproduces, on synthetic data:
//! * paper Figure 1 — the LocusLink record of locus 353,
//! * paper Table 1 — the parsed EAV quadruples for locus 353,
//! * paper Figure 2 — the import pipeline end to end,
//! * the §5 deployment statistics (at demo scale).
//!
//! Run with: `cargo run --example quickstart`

use eav::EavRecord;
use genmapper::{GenMapper, QuerySpec};
use sources::ecosystem::{Ecosystem, EcosystemParams};

fn main() {
    // ------------------------------------------------------------------
    // 1. Generate the source ecosystem (stand-in for downloading dumps).
    // ------------------------------------------------------------------
    let eco = Ecosystem::generate(EcosystemParams::demo(7));
    println!("generated {} source dumps ({} KiB of flat files)\n", eco.dumps.len(), eco.dump_bytes() / 1024);

    // Figure 1: the LocusLink record for locus 353 as it appears in the
    // source's own flat-file dialect.
    let locuslink = &eco.dumps[0];
    println!("--- LocusLink record for locus 353 (paper Figure 1) ---");
    let mut in_record = false;
    for line in locuslink.text.lines() {
        if line.starts_with(">>") {
            in_record = line == ">>353";
            if !in_record && line != ">>353" {
                continue;
            }
        }
        if in_record {
            println!("  {line}");
        }
    }

    // ------------------------------------------------------------------
    // 2. Parse: source-specific code producing the uniform EAV format.
    // ------------------------------------------------------------------
    let batch = locuslink.parse().expect("LocusLink parses");
    println!("\n--- Parsed EAV rows for locus 353 (paper Table 1) ---");
    println!("  {:<8} {:<10} {:<12} Text", "Locus", "Target", "Accession");
    for record in &batch.records {
        if let EavRecord::Annotation {
            entity,
            target,
            accession,
            text,
            ..
        } = record
        {
            if entity == "353" {
                println!(
                    "  {:<8} {:<10} {:<12} {}",
                    entity,
                    target,
                    accession,
                    text.as_deref().unwrap_or("")
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // 3. Import: the generic EAV→GAM transformation, for every source.
    // ------------------------------------------------------------------
    let mut gm = GenMapper::in_memory().expect("store opens");
    let reports = gm.import_dumps(&eco.dumps).expect("pipeline runs");
    println!("\n--- Import (paper Figure 2, data import phase) ---");
    for report in &reports {
        println!("  {report}");
    }
    let cards = gm.cardinalities().expect("stats");
    println!("\ndatabase now holds {cards} (the paper's deployment reports 60+ sources, ~2M objects, ~5M associations, 500+ mappings at full scale)");

    // ------------------------------------------------------------------
    // 4. View generation: annotations of locus 353 across sources.
    // ------------------------------------------------------------------
    let spec = QuerySpec::source("LocusLink")
        .accessions(["353"])
        .target("Hugo")
        .target("GO")
        .target("Location")
        .target("OMIM");
    let view = gm.query(&spec).expect("view generates");
    println!("\n--- Annotation view for locus 353 (paper Figure 3 shape) ---");
    print!("{}", view.to_tsv());

    // Object info, as the interactive interface's detail pane (Figure 6c).
    let info = gm.object_info("LocusLink", "353").expect("info resolves");
    println!("--- Object information (paper Figure 6c) ---");
    println!(
        "  {} = {} [{} associations]",
        info.accession,
        info.text.as_deref().unwrap_or("?"),
        info.associations.len()
    );
    for (source, accession, evidence) in info.associations.iter().take(8) {
        match evidence {
            Some(e) => println!("    -> {source}: {accession} (evidence {e:.2})"),
            None => println!("    -> {source}: {accession}"),
        }
    }
}
