//! Source evolution: incremental re-import of a new release and release
//! diffing of the affected mappings.
//!
//! The paper's central maintenance claim (§1): the generic model "is
//! robust against changes in the external sources thereby supporting easy
//! maintenance", and §4.1: "re-importing LocusLink only requires to relate
//! the new LocusLink objects with the existing GO terms". This example
//! simulates a LocusLink release upgrade: some loci gain GO annotations,
//! some are newly curated — then shows what the importer deduplicated and
//! what the mapping-level diff (set operations) reports as new.
//!
//! Run with: `cargo run --example release_update`

use eav::EavRecord;
use genmapper::{GenMapper, QuerySpec};
use sources::ecosystem::{Ecosystem, EcosystemParams};

fn main() {
    let eco = Ecosystem::generate(EcosystemParams::demo(99));
    let mut gm = GenMapper::in_memory().expect("store opens");
    gm.import_dumps(&eco.dumps).expect("pipeline runs");
    println!("initial state: {}", gm.cardinalities().expect("stats"));

    // the mapping as of release 1
    let old_locus_go = gm.map("LocusLink", "GO").expect("mapping exists");
    println!(
        "LocusLink->GO mapping at release 2003-10: {} associations",
        old_locus_go.len()
    );

    // ------------------------------------------------------------------
    // Release 2004-01 arrives: every existing record is still in the dump
    // (unchanged), two loci gain a new GO annotation, one locus is new.
    // ------------------------------------------------------------------
    let mut release2 = eco.dumps[0].parse().expect("parses");
    release2.meta.release = "2004-01".into();
    release2.push(EavRecord::annotation("353", "GO", "GO:0010001"));
    let second = eco.universe.loci[1].id.to_string();
    release2.push(EavRecord::annotation(&second, "GO", "GO:0009116"));
    release2.push(EavRecord::named_object("777001", "newly curated gene"));
    release2.push(EavRecord::annotation_with_text(
        "777001",
        "GO",
        "GO:0009116",
        "nucleoside metabolism",
    ));

    let report = gm.import_batch(&release2).expect("incremental import");
    println!("\nincremental re-import of release 2004-01:");
    println!("  {report}");
    println!(
        "  (the {} deduplicated objects and {} deduplicated associations are\n   the unchanged bulk of the dump — only the delta was inserted)",
        report.objects_deduped, report.associations_deduped
    );

    // ------------------------------------------------------------------
    // Release diff at the mapping level, via the set operations.
    // ------------------------------------------------------------------
    let new_locus_go = gm.map("LocusLink", "GO").expect("mapping exists");
    let added = operators::difference(&new_locus_go, &old_locus_go).expect("diff");
    let removed = operators::difference(&old_locus_go, &new_locus_go).expect("diff");
    println!("\nmapping diff LocusLink->GO (2004-01 vs 2003-10):");
    println!("  +{} associations, -{} associations", added.len(), removed.len());
    for assoc in &added.pairs {
        let locus = gm.store().get_object(assoc.from).expect("object");
        let term = gm.store().get_object(assoc.to).expect("object");
        println!("  + {} -> {}", locus.accession, term.accession);
    }

    // the new gene is immediately queryable across existing sources
    let view = gm
        .query(
            &QuerySpec::source("LocusLink")
                .accessions(["777001"])
                .target("GO")
                .or(),
        )
        .expect("view");
    println!("\nannotation view for the newly curated gene:");
    print!("{}", view.to_tsv());

    // and the unchanged release is skipped entirely on a repeat run
    let repeat = gm.import_batch(&release2).expect("repeat import");
    println!("\nrepeat import of 2004-01: skipped = {}", repeat.skipped);
}
