//! A scripted session of the interactive query interface (paper §5.1 and
//! Figure 6). The paper's web UI is a thin client over the operator API;
//! this example walks the same steps a user takes:
//!
//! 1. pick a source from the list of imported sources,
//! 2. paste the accessions of interest,
//! 3. pick targets; let GenMapper find mapping paths (or search for a
//!    path through a specific intermediate, or build and save one),
//! 4. choose AND/OR combination and negations,
//! 5. run GenerateView, inspect the annotation view,
//! 6. drill into object information, and export the result.
//!
//! Run with: `cargo run --example interactive_query`

use genmapper::{GenMapper, QuerySpec, TargetQuery};
use sources::ecosystem::{Ecosystem, EcosystemParams};

fn main() {
    let eco = Ecosystem::generate(EcosystemParams::demo(1));
    let mut gm = GenMapper::in_memory().expect("store opens");
    gm.import_dumps(&eco.dumps).expect("pipeline runs");

    // Step 1: "the relevant source can be selected from the list of
    // currently imported sources".
    println!("=== Step 1: available sources ===");
    for source in gm.sources().expect("sources list") {
        println!(
            "  {:<24} {:<8} {:<8} release={}",
            source.name,
            source.content.to_string(),
            source.structure.to_string(),
            source.release.as_deref().unwrap_or("-")
        );
    }

    // Step 2: accessions of interest (pasted by the user).
    let accessions: Vec<String> = eco
        .universe
        .unigene
        .iter()
        .take(6)
        .map(|c| c.acc.clone())
        .collect();
    println!("\n=== Step 2: querying {} Unigene objects ===", accessions.len());
    for a in &accessions {
        println!("  {a}");
    }

    // Step 3: path discovery. "GenMapper is able to automatically
    // determine a mapping path to traverse from the source to any
    // specified target."
    println!("\n=== Step 3: mapping paths from Unigene to GO ===");
    let auto = gm.find_path("Unigene", "GO").expect("path found");
    println!("  automatic shortest path : {}", auto.join(" -> "));
    let alternatives = gm.find_paths("Unigene", "GO", 4).expect("alternatives");
    println!("  {} alternative path(s) in the source graph:", alternatives.len());
    for p in &alternatives {
        println!("    {}", p.join(" -> "));
    }
    // "the user can also search in the graph for specific paths, for
    // example, with a particular intermediate source" — and save them.
    gm.save_path("unigene-go-via-locuslink", &["Unigene", "LocusLink", "GO"])
        .expect("path saves");
    println!("  saved custom path 'unigene-go-via-locuslink'");

    // Step 4 + 5: the query of Figure 6a — Unigene objects with their GO
    // annotations and Hugo symbols, negating OMIM.
    println!("\n=== Steps 4-5: GenerateView ===");
    let accs: Vec<&str> = accessions.iter().map(String::as_str).collect();
    let spec = QuerySpec::source("Unigene")
        .accessions(accs)
        .target_spec(TargetQuery::new("GO").via(["Unigene", "LocusLink", "GO"]))
        .target_spec(TargetQuery::new("Hugo"))
        .target_spec(TargetQuery::new("OMIM").negated())
        .or();
    let view = gm.query(&spec).expect("view generates");
    println!("annotation view (Figure 6b), {} rows:", view.len());
    print!("{}", view.to_tsv());

    // Step 6: object information (Figure 6c) for the first result, and
    // the accession can seed a follow-up query ("the interesting
    // accessions among the retrieved ones can be selected to start a new
    // query").
    if let Some(acc) = view.rows.first().and_then(|r| r.cell_text(0)) {
        println!("\n=== Step 6: object information for {acc} (Figure 6c) ===");
        let info = gm.object_info("Unigene", acc).expect("info resolves");
        println!(
            "  accession {} name {:?}",
            info.accession, info.text
        );
        for (source, partner, _) in &info.associations {
            println!("    linked to {source}: {partner}");
        }

        // follow-up query seeded from the result
        let follow = QuerySpec::source("Unigene")
            .accessions([acc])
            .target("LocusLink");
        let follow_view = gm.query(&follow).expect("follow-up");
        println!("\nfollow-up query — the loci behind {acc}:");
        print!("{}", follow_view.to_tsv());
    }

    println!("\n=== export: download the view for external tools ===");
    println!("{}", view.to_csv());
}
