//! Flexible annotation views (paper Figure 3 and §4.2).
//!
//! Demonstrates the full `GenerateView` query surface on a mid-size
//! ecosystem: OR views, AND views, negation (NOT), target-subset
//! restriction, composed mapping paths, derived-mapping materialization,
//! and the three export formats.
//!
//! Run with: `cargo run --example annotation_view`

use genmapper::{GenMapper, QuerySpec, TargetQuery};
use sources::ecosystem::{Ecosystem, EcosystemParams};

fn main() {
    let eco = Ecosystem::generate(EcosystemParams::demo(42));
    let mut gm = GenMapper::in_memory().expect("store opens");
    gm.import_dumps(&eco.dumps).expect("pipeline runs");

    // A handful of loci to annotate (first five of the generated chip).
    let loci: Vec<String> = eco.universe.loci.iter().take(5).map(|l| l.id.to_string()).collect();
    let accs: Vec<&str> = loci.iter().map(String::as_str).collect();

    // ------------------------------------------------------------------
    // Figure 3: an OR view over several annotation targets.
    // ------------------------------------------------------------------
    let spec = QuerySpec::source("LocusLink")
        .accessions(accs.clone())
        .target("Hugo")
        .target("GO")
        .target("Location")
        .target("OMIM")
        .or();
    let view = gm.query(&spec).expect("OR view");
    println!("--- OR view: all annotations, NULLs preserved (Figure 3) ---");
    print!("{}", view.to_tsv());

    // ------------------------------------------------------------------
    // §4.2's canonical query: genes at a given location, with a given GO
    // function, but NOT associated with any OMIM disease.
    // ------------------------------------------------------------------
    let location = eco.universe.locus_353().location.clone();
    let spec = QuerySpec::source("LocusLink")
        .target_spec(TargetQuery::new("Location").accessions([location.as_str()]))
        .target_spec(TargetQuery::new("GO"))
        .target_spec(TargetQuery::new("OMIM").negated())
        .and();
    let view = gm.query(&spec).expect("AND/NOT view");
    println!("\n--- AND view with negation: at {location}, GO-annotated, no OMIM disease ---");
    print!("{}", view.to_tsv());
    println!("({} rows)", view.len());

    // ------------------------------------------------------------------
    // Composed path: NetAffx probe sets annotated with GO functions.
    // There is no direct NetAffx-GO mapping; GenMapper discovers the
    // path and composes it (paper §5.1).
    // ------------------------------------------------------------------
    let path = gm.find_path("NetAffx", "GO").expect("path exists");
    println!("\n--- automatic mapping path: {} ---", path.join(" -> "));
    let probe = eco.universe.probesets[0].acc.clone();
    let spec = QuerySpec::source("NetAffx")
        .accessions([probe.as_str()])
        .target("GO")
        .and();
    let view = gm.query(&spec).expect("composed view");
    println!("GO annotations of probe set {probe} (via composition):");
    print!("{}", view.to_tsv());

    // ------------------------------------------------------------------
    // Materialize the composed mapping for repeated use (paper §2/§3:
    // derived relationships support frequent queries).
    // ------------------------------------------------------------------
    let path_refs: Vec<&str> = path.iter().map(String::as_str).collect();
    let (rel, n) = gm.materialize_composed(&path_refs).expect("materializes");
    println!("\nmaterialized composed mapping {rel} with {n} associations");
    let direct = gm.map("NetAffx", "GO").expect("now direct");
    println!("Map(NetAffx, GO) now answers directly with {} associations", direct.len());

    // ------------------------------------------------------------------
    // Exports (Figure 6: "saved and downloaded in different formats").
    // ------------------------------------------------------------------
    let spec = QuerySpec::source("LocusLink")
        .accessions(["353"])
        .target("Hugo")
        .target("GO");
    let view = gm.query(&spec).expect("export view");
    println!("\n--- the same view in three export formats ---");
    println!("TSV:\n{}", view.to_tsv());
    println!("CSV:\n{}", view.to_csv());
    println!("JSON:\n{}", view.to_json().expect("view serializes"));
}
