//! Standalone, dependency-free replica of the CSR `MappingIndex` pipeline
//! (`gam::index`, `compose::merge_join_idx` / the partitioned hash probe,
//! and `relstore`'s batched OBJECT_REL load), for environments where the
//! full workspace cannot be built (no crates.io access). It
//!
//! 1. verifies that the sorted merge join over CSR indexes (with galloping
//!    on size skew) is bit-identical to the hash join for several shapes,
//!    floors and worker counts — including fact vs `Some(1.0)` ties,
//! 2. verifies CSR restrict/domain/range against the Vec filters and that
//!    the canonical dedup is order-independent,
//! 3. verifies the prefix-indexed block load against the flat table scan,
//! 4. measures flat vs indexed load and hash- vs merge-join Compose at
//!    scale factors {1, 4, 16} and writes `BENCH_csr.json`.
//!
//! Build & run:  rustc -O scripts/csr_harness.rs -o /tmp/csr_harness && /tmp/csr_harness
//!
//! The logic below must stay in sync with `crates/gam/src/index.rs`,
//! `crates/operators/src/compose.rs` and `crates/gam/src/store.rs`; it is a
//! measurement stand-in, not the implementation of record. Prefer
//! `cargo run --release -p bench --bin experiments` whenever the workspace
//! builds.

use std::collections::HashMap;
use std::time::Instant;

#[derive(Debug, Clone, Copy, PartialEq)]
struct Association {
    from: u64,
    to: u64,
    evidence: Option<f64>,
}

impl Association {
    fn effective_evidence(&self) -> f64 {
        self.evidence.unwrap_or(1.0)
    }
}

/// `Mapping::dedup`: canonical unstable sort (pair key, descending
/// effective evidence, facts before explicit scores) + adjacent dedup.
fn dedup(pairs: &mut Vec<Association>) {
    pairs.sort_unstable_by(|a, b| {
        (a.from, a.to)
            .cmp(&(b.from, b.to))
            .then_with(|| b.effective_evidence().total_cmp(&a.effective_evidence()))
            .then_with(|| a.evidence.is_some().cmp(&b.evidence.is_some()))
    });
    pairs.dedup_by_key(|a| (a.from, a.to));
}

/// The old (pre-rewrite) dedup: stable sort, allocating a temp buffer.
fn dedup_stable_old(pairs: &mut Vec<Association>) {
    pairs.sort_by(|a, b| {
        (a.from, a.to)
            .cmp(&(b.from, b.to))
            .then_with(|| b.effective_evidence().total_cmp(&a.effective_evidence()))
    });
    pairs.dedup_by_key(|a| (a.from, a.to));
}

// ------------------------------------------------------------------ CSR

/// Replica of `gam::MappingIndex`: forward and inverse CSR over the
/// canonical pair order, evidence stored columnar with a fact bitmask.
struct MappingIndex {
    fwd_keys: Vec<u64>,
    fwd_offsets: Vec<u32>,
    fwd_to: Vec<u64>,
    inv_keys: Vec<u64>,
    inv_offsets: Vec<u32>,
    inv_from: Vec<u64>,
    inv_pos: Vec<u32>,
    evidence: Vec<f64>,
    fact_mask: Vec<u64>,
}

impl MappingIndex {
    fn build(mut pairs: Vec<Association>) -> Self {
        dedup(&mut pairs);
        Self::from_canonical(&pairs)
    }

    /// Build from pairs already in canonical order with unique (from, to).
    fn from_canonical(pairs: &[Association]) -> Self {
        let n = pairs.len();
        let mut fwd_keys = Vec::new();
        let mut fwd_offsets = vec![0u32];
        let mut fwd_to = Vec::with_capacity(n);
        let mut evidence = Vec::with_capacity(n);
        let mut fact_mask = vec![0u64; n.div_ceil(64)];
        for (i, a) in pairs.iter().enumerate() {
            if fwd_keys.last() != Some(&a.from) {
                if !fwd_keys.is_empty() {
                    fwd_offsets.push(fwd_to.len() as u32);
                }
                fwd_keys.push(a.from);
            }
            fwd_to.push(a.to);
            evidence.push(a.effective_evidence());
            if a.evidence.is_none() {
                fact_mask[i / 64] |= 1 << (i % 64);
            }
        }
        fwd_offsets.push(fwd_to.len() as u32);
        if fwd_keys.is_empty() {
            fwd_offsets = vec![0, 0];
            fwd_keys = Vec::new();
        }

        let mut by_to: Vec<(u64, u32)> = fwd_to
            .iter()
            .enumerate()
            .map(|(p, &t)| (t, p as u32))
            .collect();
        by_to.sort_unstable();
        let mut inv_keys = Vec::new();
        let mut inv_offsets = vec![0u32];
        let mut inv_from = Vec::with_capacity(n);
        let mut inv_pos = Vec::with_capacity(n);
        for &(t, p) in &by_to {
            if inv_keys.last() != Some(&t) {
                if !inv_keys.is_empty() {
                    inv_offsets.push(inv_from.len() as u32);
                }
                inv_keys.push(t);
            }
            inv_from.push(pairs[p as usize].from);
            inv_pos.push(p);
        }
        inv_offsets.push(inv_from.len() as u32);

        MappingIndex {
            fwd_keys,
            fwd_offsets,
            fwd_to,
            inv_keys,
            inv_offsets,
            inv_from,
            inv_pos,
            evidence,
            fact_mask,
        }
    }

    fn evidence_at(&self, p: usize) -> Option<f64> {
        if self.fact_mask[p / 64] & (1 << (p % 64)) != 0 {
            None
        } else {
            Some(self.evidence[p])
        }
    }

    fn fwd_range(&self, i: usize) -> std::ops::Range<usize> {
        self.fwd_offsets[i] as usize..self.fwd_offsets[i + 1] as usize
    }

    fn inv_range(&self, i: usize) -> std::ops::Range<usize> {
        self.inv_offsets[i] as usize..self.inv_offsets[i + 1] as usize
    }

    fn to_pairs(&self) -> Vec<Association> {
        let mut out = Vec::with_capacity(self.fwd_to.len());
        for i in 0..self.fwd_keys.len() {
            for p in self.fwd_range(i) {
                out.push(Association {
                    from: self.fwd_keys[i],
                    to: self.fwd_to[p],
                    evidence: self.evidence_at(p),
                });
            }
        }
        out
    }

    /// `restrict_domain` as binary searches over `fwd_keys`.
    fn restrict_domain(&self, objects: &[u64]) -> Vec<Association> {
        let mut out = Vec::new();
        for &obj in objects {
            if let Ok(i) = self.fwd_keys.binary_search(&obj) {
                for p in self.fwd_range(i) {
                    out.push(Association {
                        from: obj,
                        to: self.fwd_to[p],
                        evidence: self.evidence_at(p),
                    });
                }
            }
        }
        out.sort_unstable_by_key(|a| (a.from, a.to));
        out
    }

    /// `restrict_range` via the inverse offsets, mapped back to forward
    /// positions so output order matches the Vec filter.
    fn restrict_range(&self, objects: &[u64]) -> Vec<Association> {
        let mut keep: Vec<u32> = Vec::new();
        for &obj in objects {
            if let Ok(i) = self.inv_keys.binary_search(&obj) {
                keep.extend(self.inv_range(i).map(|p| self.inv_pos[p]));
            }
        }
        keep.sort_unstable();
        let mut key_of = vec![0u64; self.fwd_to.len()];
        for i in 0..self.fwd_keys.len() {
            for p in self.fwd_range(i) {
                key_of[p] = self.fwd_keys[i];
            }
        }
        keep.iter()
            .map(|&p| Association {
                from: key_of[p as usize],
                to: self.fwd_to[p as usize],
                evidence: self.evidence_at(p as usize),
            })
            .collect()
    }
}

// ------------------------------------------------------------- joins

const GALLOP_RATIO: usize = 16;

/// Exponential (galloping) lower-bound search, as in `compose::gallop`.
fn gallop(keys: &[u64], start: usize, target: u64) -> usize {
    let mut step = 1usize;
    while start + step < keys.len() && keys[start + step] < target {
        step <<= 1;
    }
    let lo = start + (step >> 1);
    let hi = (start + step).min(keys.len());
    lo + keys[lo..hi].partition_point(|&k| k < target)
}

fn emit_match(
    left: &MappingIndex,
    right: &MappingIndex,
    i: usize,
    j: usize,
    min_evidence: Option<f64>,
    out: &mut Vec<Association>,
) {
    for p in left.inv_range(i) {
        let lpos = left.inv_pos[p] as usize;
        let l_from = left.inv_from[p];
        let l_ev = left.evidence_at(lpos);
        for q in right.fwd_range(j) {
            let evidence = match (l_ev, right.evidence_at(q)) {
                (None, None) => None,
                _ => Some(left.evidence[lpos] * right.evidence[q]),
            };
            if let Some(floor) = min_evidence {
                if evidence.unwrap_or(1.0) < floor {
                    continue;
                }
            }
            out.push(Association {
                from: l_from,
                to: right.fwd_to[q],
                evidence,
            });
        }
    }
}

/// Sorted merge join over `left.inv_keys` × `right.fwd_keys`, galloping
/// when one side is much larger — replica of `compose::merge_join_idx`.
fn merge_join(
    left: &MappingIndex,
    right: &MappingIndex,
    min_evidence: Option<f64>,
) -> Vec<Association> {
    let lk = &left.inv_keys;
    let rk = &right.fwd_keys;
    let gallop_left = lk.len() > rk.len().saturating_mul(GALLOP_RATIO);
    let gallop_right = rk.len() > lk.len().saturating_mul(GALLOP_RATIO);
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < lk.len() && j < rk.len() {
        if lk[i] < rk[j] {
            i = if gallop_left { gallop(lk, i, rk[j]) } else { i + 1 };
        } else if lk[i] > rk[j] {
            j = if gallop_right { gallop(rk, j, lk[i]) } else { j + 1 };
        } else {
            emit_match(left, right, i, j, min_evidence, &mut out);
            i += 1;
            j += 1;
        }
    }
    dedup(&mut out);
    out
}

/// The Vec-based hash join (`compose::probe_chunk` over partitions).
fn hash_join(
    left: &[Association],
    right: &[Association],
    min_evidence: Option<f64>,
    jobs: usize,
) -> Vec<Association> {
    let mut by_mid: HashMap<u64, Vec<&Association>> = HashMap::with_capacity(right.len());
    for assoc in right {
        by_mid.entry(assoc.from).or_default().push(assoc);
    }
    let probe = |chunk: &[Association]| {
        let mut out = Vec::new();
        for l in chunk {
            if let Some(matches) = by_mid.get(&l.to) {
                for r in matches {
                    let evidence = match (l.evidence, r.evidence) {
                        (None, None) => None,
                        _ => Some(l.effective_evidence() * r.effective_evidence()),
                    };
                    if let Some(floor) = min_evidence {
                        if evidence.unwrap_or(1.0) < floor {
                            continue;
                        }
                    }
                    out.push(Association {
                        from: l.from,
                        to: r.to,
                        evidence,
                    });
                }
            }
        }
        out
    };
    let parts: Vec<Vec<Association>> = if jobs <= 1 || left.len() <= 1 {
        vec![probe(left)]
    } else {
        let chunk_size = left.len().div_ceil(jobs.min(left.len()));
        std::thread::scope(|scope| {
            let probe = &probe;
            let handles: Vec<_> = left
                .chunks(chunk_size)
                .map(|chunk| scope.spawn(move || probe(chunk)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    };
    let mut pairs: Vec<Association> = Vec::with_capacity(parts.iter().map(Vec::len).sum());
    for part in parts {
        pairs.extend(part);
    }
    dedup(&mut pairs);
    pairs
}

// ---------------------------------------------------- OBJECT_REL replica

/// One OBJECT_REL row: (source_rel_id, object1, object2, evidence).
#[derive(Clone, Copy)]
struct RelRow {
    rel: i64,
    o1: i64,
    o2: i64,
    evidence: Option<f64>,
}

/// The per-row `Value` a generic relational scan materializes.
#[allow(dead_code)]
enum Value {
    Int(i64),
    Float(Option<f64>),
}

/// Flat `load_mapping`: full-table scan, one `Row` (boxed value vector)
/// allocated per row as the generic scan API does, then filter + dedup.
fn flat_load(table: &[RelRow], rel: i64) -> Vec<Association> {
    let mut out = Vec::new();
    for r in table {
        let row: Vec<Value> = vec![
            Value::Int(r.rel),
            Value::Int(r.o1),
            Value::Int(r.o2),
            Value::Float(r.evidence),
        ];
        let row = std::hint::black_box(row);
        let keep = matches!(row[0], Value::Int(x) if x == rel);
        if keep {
            out.push(Association {
                from: r.o1 as u64,
                to: r.o2 as u64,
                evidence: r.evidence,
            });
        }
    }
    dedup(&mut out);
    out
}

/// Indexed `load_mapping_index`: binary-search the (rel, o1, o2) index for
/// the rel prefix, decode the range in 4096-row columnar blocks (no
/// per-row allocation), and build the CSR directly — the prefix order
/// already is the canonical pair order.
fn indexed_load(
    table: &[RelRow],
    index: &[(i64, i64, i64, u32)],
    rel: i64,
) -> MappingIndex {
    let lo = index.partition_point(|&(r, _, _, _)| r < rel);
    let hi = index.partition_point(|&(r, _, _, _)| r <= rel);
    let mut pairs = Vec::with_capacity(hi - lo);
    for block in index[lo..hi].chunks(4096) {
        let mut o1s = Vec::with_capacity(block.len());
        let mut o2s = Vec::with_capacity(block.len());
        let mut evs = Vec::with_capacity(block.len());
        for &(_, _, _, row_id) in block {
            let r = table[row_id as usize];
            o1s.push(r.o1);
            o2s.push(r.o2);
            evs.push(r.evidence);
        }
        for k in 0..block.len() {
            pairs.push(Association {
                from: o1s[k] as u64,
                to: o2s[k] as u64,
                evidence: evs[k],
            });
        }
    }
    MappingIndex::from_canonical(&pairs)
}

// -------------------------------------------------------------- helpers

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

fn arb_evidence(rng: &mut XorShift) -> Option<f64> {
    match rng.next() % 7 {
        0 | 1 => None,
        2 => Some(1.0), // collides with a fact's effective evidence
        _ => Some((rng.next() % 1000) as f64 / 1000.0),
    }
}

/// Random mapping with `n` raw pairs over the given domain/range widths.
fn gen_mapping(seed: u64, n: usize, dom: u64, rng_w: u64, base: u64) -> Vec<Association> {
    let mut rng = XorShift(seed);
    let mut pairs = Vec::with_capacity(n);
    for _ in 0..n {
        pairs.push(Association {
            from: rng.next() % dom.max(1),
            to: base + rng.next() % rng_w.max(1),
            evidence: arb_evidence(&mut rng),
        });
    }
    pairs
}

fn assert_bit_identical(a: &[Association], b: &[Association], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: length mismatch");
    for (x, y) in a.iter().zip(b) {
        assert_eq!((x.from, x.to), (y.from, y.to), "{label}: pair mismatch");
        assert_eq!(
            x.evidence.map(f64::to_bits),
            y.evidence.map(f64::to_bits),
            "{label}: evidence bits mismatch"
        );
    }
}

fn best_of(runs: usize, mut f: impl FnMut() -> usize) -> f64 {
    std::hint::black_box(f()); // warm-up
    (0..runs)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    // ------------------------------------------- merge ≡ hash equivalence
    // shapes: 1:1, dense N:M, skew left-heavy, skew right-heavy (gallops),
    // and empty-vs-nonempty
    let shapes: [(usize, u64, u64, usize, u64); 5] = [
        (1_000, 800, 500, 1_000, 900),
        (20_000, 400, 50, 20_000, 600),
        (30_000, 5_000, 3_000, 600, 40), // right tiny → gallop left
        (600, 50, 3_000, 30_000, 5_000), // left tiny → gallop right
        (0, 1, 1, 1_000, 100),
    ];
    for (k, &(nl, dom_l, mid, nr, rng_r)) in shapes.iter().enumerate() {
        let left = gen_mapping(0x9e37 + k as u64, nl, dom_l, mid, 1_000_000);
        let mut right = gen_mapping(0x79b9 + k as u64, nr, mid, rng_r, 2_000_000);
        for r in &mut right {
            r.from += 1_000_000; // share the middle id space with left.to
        }
        let li = MappingIndex::build(left.clone());
        let ri = MappingIndex::build(right.clone());
        let (lc, rc) = (li.to_pairs(), ri.to_pairs());
        for floor in [None, Some(0.25), Some(0.9)] {
            let merged = merge_join(&li, &ri, floor);
            for jobs in [1usize, 2, 4, 8] {
                let hashed = hash_join(&lc, &rc, floor, jobs);
                assert_bit_identical(
                    &merged,
                    &hashed,
                    &format!("shape={k} floor={floor:?} jobs={jobs}"),
                );
            }
        }
    }
    println!("compose: CSR merge join bit-identical to hash join across shapes/floors/jobs (OK)");

    // ----------------------------------- dedup canonicalization + restricts
    let raw = gen_mapping(0xfeed, 40_000, 300, 200, 0);
    let mut shuffled = raw.clone();
    let mut rng = XorShift(0xabcdef);
    for i in (1..shuffled.len()).rev() {
        shuffled.swap(i, (rng.next() % (i as u64 + 1)) as usize);
    }
    let (mut a, mut b) = (raw.clone(), shuffled);
    dedup(&mut a);
    dedup(&mut b);
    assert_bit_identical(&a, &b, "dedup order-independence");

    let idx = MappingIndex::build(raw.clone());
    assert_bit_identical(&idx.to_pairs(), &a, "CSR round trip");
    let subset: Vec<u64> = (0..300).filter(|k| k % 3 == 0).collect();
    let vec_rd: Vec<Association> = a
        .iter()
        .filter(|p| p.from % 3 == 0)
        .copied()
        .collect();
    assert_bit_identical(&idx.restrict_domain(&subset), &vec_rd, "restrict_domain");
    let rsubset: Vec<u64> = (0..200).filter(|k| k % 5 == 0).collect();
    let vec_rr: Vec<Association> = a
        .iter()
        .filter(|p| p.to % 5 == 0)
        .copied()
        .collect();
    assert_bit_identical(&idx.restrict_range(&rsubset), &vec_rr, "restrict_range");
    println!("dedup canonical + CSR restricts match Vec filters (OK)");

    // ---------------------------------------------- load path equivalence
    let build_table = |n_rows: usize, n_rels: i64, seed: u64| -> (Vec<RelRow>, Vec<(i64, i64, i64, u32)>) {
        let mut rng = XorShift(seed);
        let mut rows: Vec<RelRow> = Vec::with_capacity(n_rows);
        let mut seen: Vec<(i64, i64, i64)> = Vec::with_capacity(n_rows);
        for _ in 0..n_rows {
            let rel = (rng.next() % n_rels as u64) as i64;
            let o1 = (rng.next() % (n_rows as u64 / 8).max(1)) as i64;
            let o2 = 1_000_000 + (rng.next() % (n_rows as u64 / 8).max(1)) as i64;
            seen.push((rel, o1, o2));
            rows.push(RelRow {
                rel,
                o1,
                o2,
                evidence: arb_evidence(&mut rng),
            });
        }
        // enforce the by_pair unique constraint: first writer wins
        let mut order: Vec<u32> = (0..rows.len() as u32).collect();
        order.sort_unstable_by_key(|&i| (seen[i as usize], i));
        order.dedup_by_key(|i| seen[*i as usize]);
        let rows: Vec<RelRow> = {
            let mut keep: Vec<u32> = order.clone();
            keep.sort_unstable();
            keep.iter().map(|&i| rows[i as usize]).collect()
        };
        let mut index: Vec<(i64, i64, i64, u32)> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| (r.rel, r.o1, r.o2, i as u32))
            .collect();
        index.sort_unstable();
        (rows, index)
    };
    let (table, index) = build_table(60_000, 12, 0x5eed);
    for rel in [0i64, 5, 11] {
        let flat = flat_load(&table, rel);
        let idx = indexed_load(&table, &index, rel);
        assert_bit_identical(&idx.to_pairs(), &flat, &format!("load rel={rel}"));
    }
    println!("load: indexed prefix-block load bit-identical to flat scan (OK)");

    // -------------------------------------------------- dedup micro timing
    let raw = gen_mapping(0xd00d, 1_000_000, 60_000, 40_000, 0);
    let t_new = best_of(5, || {
        let mut p = raw.clone();
        dedup(&mut p);
        p.len()
    });
    let t_old = best_of(5, || {
        let mut p = raw.clone();
        dedup_stable_old(&mut p);
        p.len()
    });
    println!(
        "\ndedup, 1M raw pairs: unstable in-place {t_new:.6}s  vs  stable old {t_old:.6}s  ({:.2}x)",
        t_old / t_new
    );

    // --------------------------------------------------------- timings
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut load_rows: Vec<String> = Vec::new();
    let mut compose_rows: Vec<String> = Vec::new();
    println!("\n{:<7} {:>9} {:>11} {:>11} {:>8} {:>11} {:>11} {:>8}",
        "factor", "pairs", "flat load", "idx load", "speedup", "hash join", "merge join", "speedup");
    for factor in [1usize, 4, 16] {
        // load: one rel out of 30 in a table scaled like the ecosystem
        let n_rows = 150_000 * factor;
        let (table, index) = build_table(n_rows, 30, 0x5eed + factor as u64);
        let rel = 7i64;
        let pairs = index.partition_point(|&(r, _, _, _)| r <= rel)
            - index.partition_point(|&(r, _, _, _)| r < rel);
        let flat = best_of(5, || flat_load(&table, rel).len());
        let indexed = best_of(5, || indexed_load(&table, &index, rel).fwd_to.len());

        // compose: same scale, sequential merge join on prebuilt (cached)
        // CSR indexes vs the Vec hash join that rebuilds its probe map
        let n = 25_000 * factor;
        let left = gen_mapping(0x1111 + factor as u64, n, n as u64 / 2, n as u64 / 2, 1_000_000);
        let mut right = gen_mapping(0x2222 + factor as u64, n, n as u64 / 2, n as u64, 2_000_000);
        for r in &mut right {
            r.from += 1_000_000;
        }
        let li = MappingIndex::build(left.clone());
        let ri = MappingIndex::build(right.clone());
        let (lc, rc) = (li.to_pairs(), ri.to_pairs());
        let input_pairs = lc.len() + rc.len();
        let hash = best_of(5, || hash_join(&lc, &rc, None, 1).len());
        let merge = best_of(5, || merge_join(&li, &ri, None).len());

        println!(
            "{factor:<7} {pairs:>9} {flat:>11.6} {indexed:>11.6} {:>7.2}x {hash:>11.6} {merge:>11.6} {:>7.2}x",
            flat / indexed,
            hash / merge
        );
        load_rows.push(format!(
            "{{\"factor\": {factor}, \"pairs\": {pairs}, \"flat_seconds\": {flat:.6}, \"indexed_seconds\": {indexed:.6}, \"speedup\": {:.3}}}",
            flat / indexed
        ));
        compose_rows.push(format!(
            "{{\"factor\": {factor}, \"input_pairs\": {input_pairs}, \"hash_seconds\": {hash:.6}, \"merge_seconds\": {merge:.6}, \"speedup\": {:.3}}}",
            hash / merge
        ));
    }

    let json = format!(
        "{{\n  \"generator\": \"scripts/csr_harness.rs (standalone replica; regenerate with `cargo run --release -p bench --bin experiments` on a workspace-buildable host)\",\n  \"workers_available\": {workers},\n  \"load_mapping\": [\n    {}\n  ],\n  \"compose\": [\n    {}\n  ],\n  \"note\": \"merge join runs on prebuilt (cached) CSR indexes, matching the system's Arc<MappingIndex> cache; hash join rebuilds its probe map per call, matching the Vec path. Flat load materializes one Row per scanned table row, matching the generic scan API.\"\n}}\n",
        load_rows.join(",\n    "),
        compose_rows.join(",\n    ")
    );
    std::fs::write("BENCH_csr.json", &json).expect("write BENCH_csr.json");
    println!("\nwrote BENCH_csr.json");
}
