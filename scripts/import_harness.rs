//! Standalone, dependency-free replica of the bulk-import fast path
//! (`import::Importer` + `gam::store`'s batched accession resolution +
//! `relstore`'s WAL group commit), for environments where the full
//! workspace cannot be built (no crates.io access). It
//!
//! 1. verifies that the bulk path (sort-dedup merge resolution, batch
//!    inserts, one fsync per dump) is bit-identical to the per-row
//!    reference (per-key probes, one fsync per commit) for random dump
//!    shapes — same ids, rows, association pairs and report counters,
//! 2. verifies that re-importing an identical release dedups everything
//!    (zero creates, stable store) on both paths,
//! 3. measures per-row vs bulk end-to-end import at scale factors
//!    {1, 4, 16} with per-phase timings (parse / resolve / insert / wal)
//!    against a real WAL file with real `fdatasync`s, and writes
//!    `BENCH_import.json`.
//!
//! Build & run:  rustc -O scripts/import_harness.rs -o /tmp/import_harness && /tmp/import_harness
//!
//! The logic below must stay in sync with `crates/import/src/importer.rs`,
//! `crates/gam/src/store.rs` (resolve_accessions / add_objects_bulk_ref /
//! add_associations_bulk) and `crates/relstore/src/wal.rs`; it is a
//! measurement stand-in, not the implementation of record. Prefer
//! `cargo run --release -p bench --bin experiments` whenever the
//! workspace builds.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------- rng --

struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

// ------------------------------------------------------------- dumps --

/// One line-oriented dump, mirroring `sources::ecosystem::SourceDump`:
/// `O<TAB>acc<TAB>text`, `A<TAB>entity<TAB>target<TAB>acc<TAB>ev`,
/// `I<TAB>child<TAB>parent`.
struct Dump {
    name: String,
    text: String,
}

#[derive(Debug, Clone, PartialEq)]
enum Rec {
    Object { acc: String, text: String },
    Ann { entity: String, target: String, acc: String, ev: Option<f64> },
    IsA { child: String, parent: String },
}

fn make_dumps(sources: usize, records_per: usize, seed: u64) -> Vec<Dump> {
    let mut rng = XorShift::new(seed);
    let names: Vec<String> = (0..sources).map(|i| format!("Src{i}")).collect();
    let mut dumps = Vec::with_capacity(sources);
    for (s, name) in names.iter().enumerate() {
        let mut text = String::new();
        let pool = (records_per / 2).max(8) as u64; // dense: in-batch dups common
        for _ in 0..records_per {
            match rng.below(10) {
                0..=3 => {
                    let acc = rng.below(pool);
                    text.push_str(&format!("O\t{name}:{acc}\tdesc{}\n", rng.below(50)));
                }
                4..=8 => {
                    // annotations target another source (never self: a Fact
                    // self-mapping is rejected by the store on both paths)
                    let t = (s + 1 + rng.below((sources - 1) as u64) as usize) % sources;
                    let target = &names[t];
                    let ev = if rng.below(3) == 0 {
                        format!("{:.3}", (rng.below(1000) as f64) / 1000.0)
                    } else {
                        String::new()
                    };
                    text.push_str(&format!(
                        "A\t{name}:{}\t{target}\t{target}:{}\t{ev}\n",
                        rng.below(pool),
                        rng.below(pool)
                    ));
                }
                _ => {
                    text.push_str(&format!(
                        "I\t{name}:{}\t{name}:{}\n",
                        rng.below(pool),
                        rng.below(pool)
                    ));
                }
            }
        }
        dumps.push(Dump { name: name.clone(), text });
    }
    dumps
}

/// Parse one dump text into records — the pure, CPU-bound phase.
fn parse(text: &str) -> Vec<Rec> {
    let mut out = Vec::new();
    for line in text.lines() {
        let mut f = line.split('\t');
        match f.next() {
            Some("O") => out.push(Rec::Object {
                acc: f.next().unwrap_or("").trim().to_owned(),
                text: f.next().unwrap_or("").trim().to_owned(),
            }),
            Some("A") => out.push(Rec::Ann {
                entity: f.next().unwrap_or("").trim().to_owned(),
                target: f.next().unwrap_or("").trim().to_owned(),
                acc: f.next().unwrap_or("").trim().to_owned(),
                ev: f.next().and_then(|s| s.trim().parse::<f64>().ok()),
            }),
            Some("I") => out.push(Rec::IsA {
                child: f.next().unwrap_or("").trim().to_owned(),
                parent: f.next().unwrap_or("").trim().to_owned(),
            }),
            _ => {}
        }
    }
    out
}

// --------------------------------------------------------------- wal --

/// Replica of `relstore::Wal` commit behaviour: every commit appends one
/// length-prefixed frame; `sync_on_commit` decides whether it fdatasyncs
/// immediately (per-row path) or defers to one `sync()` per batch (group
/// commit).
struct Wal {
    file: File,
    sync_on_commit: bool,
}

impl Wal {
    fn create(path: &std::path::Path) -> Wal {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)
            .expect("open wal");
        Wal { file, sync_on_commit: true }
    }
    fn commit(&mut self, payload: &[u8]) {
        let len = (payload.len() as u32).to_le_bytes();
        self.file.write_all(&len).expect("wal write");
        self.file.write_all(payload).expect("wal write");
        if self.sync_on_commit {
            self.file.sync_data().expect("wal sync");
        }
    }
    fn sync(&mut self) {
        self.file.sync_data().expect("wal sync");
    }
}

// ------------------------------------------------------------- store --

/// Minimal GAM store replica: SOURCE, OBJECT (+ by_accession index),
/// SOURCE_REL, OBJECT_REL (+ by_pair index), all WAL-backed.
struct Store {
    wal: Wal,
    sources: Vec<String>,
    source_ids: BTreeMap<String, u32>,
    objects: Vec<(u32, String, String)>, // (source, accession, text)
    by_accession: BTreeMap<(u32, String), u64>,
    rels: Vec<(u32, u32)>,
    rel_ids: BTreeMap<(u32, u32), u32>,
    assocs: Vec<(u32, u64, u64, Option<u64>)>, // (rel, from, to, ev bits)
    by_pair: BTreeMap<(u32, u64, u64), ()>,
}

#[derive(Debug, Default, PartialEq, Eq)]
struct Report {
    objects_created: usize,
    objects_deduped: usize,
    assocs_created: usize,
    assocs_deduped: usize,
    stubs: usize,
}

impl Store {
    fn create(path: &std::path::Path) -> Store {
        Store {
            wal: Wal::create(path),
            sources: Vec::new(),
            source_ids: BTreeMap::new(),
            objects: Vec::new(),
            by_accession: BTreeMap::new(),
            rels: Vec::new(),
            rel_ids: BTreeMap::new(),
            assocs: Vec::new(),
            by_pair: BTreeMap::new(),
        }
    }

    fn ensure_source(&mut self, name: &str) -> (u32, bool) {
        if let Some(&id) = self.source_ids.get(name) {
            return (id, false);
        }
        let id = self.sources.len() as u32;
        self.sources.push(name.to_owned());
        self.source_ids.insert(name.to_owned(), id);
        self.wal.commit(format!("S {name}").as_bytes());
        (id, true)
    }

    fn ensure_rel(&mut self, a: u32, b: u32) -> u32 {
        if let Some(&id) = self.rel_ids.get(&(a, b)) {
            return id;
        }
        let id = self.rels.len() as u32;
        self.rels.push((a, b));
        self.rel_ids.insert((a, b), id);
        self.wal.commit(format!("R {a} {b}").as_bytes());
        id
    }

    /// Per-row `ensure_object`: one owned-key probe, one commit (and, with
    /// `sync_on_commit`, one fdatasync) per fresh row.
    fn ensure_object(&mut self, src: u32, acc: &str, text: &str) -> (u64, bool) {
        if let Some(&id) = self.by_accession.get(&(src, acc.to_owned())) {
            return (id, false);
        }
        let id = self.objects.len() as u64;
        self.objects.push((src, acc.to_owned(), text.to_owned()));
        self.by_accession.insert((src, acc.to_owned()), id);
        self.wal.commit(format!("O {src} {acc} {text}").as_bytes());
        (id, true)
    }

    /// Per-row `add_association`: one index probe, one commit per fresh pair.
    fn add_association(&mut self, rel: u32, from: u64, to: u64, ev: Option<f64>) -> bool {
        if self.by_pair.contains_key(&(rel, from, to)) {
            return false;
        }
        self.by_pair.insert((rel, from, to), ());
        self.assocs.push((rel, from, to, ev.map(f64::to_bits)));
        self.wal.commit(format!("A {rel} {from} {to}").as_bytes());
        true
    }

    /// `resolve_accessions`: sort-dedup the probe keys once and resolve
    /// them in a single merge pass against the `by_accession` range for
    /// `src`, exactly like `gam::store::GamStore::resolve_accessions`.
    fn resolve_accessions(&self, src: u32, accs: &[&str]) -> Vec<Option<u64>> {
        if accs.is_empty() {
            return Vec::new();
        }
        let mut sorted: Vec<&str> = accs.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let lo = (src, sorted[0].to_owned());
        let hi = (src, sorted[sorted.len() - 1].to_owned());
        let mut found: Vec<Option<u64>> = vec![None; sorted.len()];
        let mut p = 0usize;
        for ((_, acc), &id) in self.by_accession.range(lo..=hi) {
            while p < sorted.len() && sorted[p].as_bytes() < acc.as_bytes() {
                p += 1;
            }
            if p == sorted.len() {
                break;
            }
            if sorted[p] == acc.as_str() {
                found[p] = Some(id);
            }
        }
        accs.iter()
            .map(|a| found[sorted.binary_search(a).expect("probe key present")])
            .collect()
    }

    /// `add_objects_bulk_ref`: batched resolve + in-batch first-wins dedup
    /// + one contiguous batch insert + one WAL frame batch.
    fn add_objects_bulk(&mut self, src: u32, rows: &[(&str, &str)]) -> (Vec<u64>, usize) {
        let accs: Vec<&str> = rows.iter().map(|(a, _)| *a).collect();
        let existing = self.resolve_accessions(src, &accs);
        let mut ids = Vec::with_capacity(rows.len());
        let mut seen: BTreeMap<&str, u64> = BTreeMap::new();
        let mut frame = Vec::new();
        let mut created = 0usize;
        for ((acc, text), found) in rows.iter().zip(existing) {
            if let Some(id) = found {
                ids.push(id);
                continue;
            }
            if let Some(&id) = seen.get(acc) {
                ids.push(id);
                continue;
            }
            let id = self.objects.len() as u64;
            self.objects.push((src, (*acc).to_owned(), (*text).to_owned()));
            self.by_accession.insert((src, (*acc).to_owned()), id);
            seen.insert(acc, id);
            frame.extend_from_slice(format!("O {src} {acc} {text}\n").as_bytes());
            created += 1;
            ids.push(id);
        }
        if created > 0 {
            self.wal.commit(&frame);
        }
        (ids, created)
    }

    /// `add_associations_bulk`: one sorted `by_pair` range merge for the
    /// whole batch, in-batch first-wins dedup, one batch insert.
    fn add_associations_bulk(&mut self, rel: u32, items: &[(u64, u64, Option<f64>)]) -> usize {
        if items.is_empty() {
            return 0;
        }
        let mut pairs: Vec<(u64, u64)> = items.iter().map(|&(f, t, _)| (f, t)).collect();
        pairs.sort_unstable();
        pairs.dedup();
        let mut exists = vec![false; pairs.len()];
        let lo = (rel, pairs[0].0, pairs[0].1);
        let hi = (rel, pairs[pairs.len() - 1].0, pairs[pairs.len() - 1].1);
        let mut p = 0usize;
        for (&(_, f, t), _) in self.by_pair.range(lo..=hi) {
            while p < pairs.len() && pairs[p] < (f, t) {
                p += 1;
            }
            if p == pairs.len() {
                break;
            }
            if pairs[p] == (f, t) {
                exists[p] = true;
            }
        }
        let mut seen = vec![false; pairs.len()];
        let mut frame = Vec::new();
        let mut created = 0usize;
        for &(from, to, ev) in items {
            let slot = pairs.binary_search(&(from, to)).expect("pair present");
            if exists[slot] || seen[slot] {
                continue;
            }
            seen[slot] = true;
            self.by_pair.insert((rel, from, to), ());
            self.assocs.push((rel, from, to, ev.map(f64::to_bits)));
            frame.extend_from_slice(format!("A {rel} {from} {to}\n").as_bytes());
            created += 1;
        }
        if created > 0 {
            self.wal.commit(&frame);
        }
        created
    }
}

// ----------------------------------------------------------- imports --

/// The per-row reference path: clones the batch (the old `batch.clone()`
/// sanitize step), probes and commits row by row, fdatasyncs per commit.
fn import_per_row(store: &mut Store, name: &str, recs: &[Rec]) -> Report {
    let recs = recs.to_vec(); // models the pre-refactor whole-batch clone
    let mut report = Report::default();
    let (src, _) = store.ensure_source(name);
    // own objects first (Object rows, annotation entities, IsA endpoints)
    for rec in &recs {
        match rec {
            Rec::Object { acc, text } => {
                let (_, fresh) = store.ensure_object(src, acc, text);
                if fresh { report.objects_created += 1 } else { report.objects_deduped += 1 }
            }
            Rec::Ann { entity, .. } => {
                let (_, fresh) = store.ensure_object(src, entity, "");
                if fresh { report.objects_created += 1 } else { report.objects_deduped += 1 }
            }
            Rec::IsA { child, parent } => {
                for end in [child, parent] {
                    let (_, fresh) = store.ensure_object(src, end, "");
                    if fresh { report.objects_created += 1 } else { report.objects_deduped += 1 }
                }
            }
        }
    }
    // annotation groups in target order, per-row find_source + find_object
    let mut groups: BTreeMap<&str, Vec<(&str, &str, Option<f64>)>> = BTreeMap::new();
    for rec in &recs {
        if let Rec::Ann { entity, target, acc, ev } = rec {
            groups.entry(target).or_default().push((entity, acc, *ev));
        }
    }
    for (target, anns) in &groups {
        let (tgt, fresh) = store.ensure_source(target);
        if fresh {
            report.stubs += 1;
        }
        let rel = store.ensure_rel(src, tgt);
        for &(entity, acc, ev) in anns {
            let (to, fresh) = store.ensure_object(tgt, acc, "");
            if fresh { report.objects_created += 1 } else { report.objects_deduped += 1 }
            let from = store.by_accession[&(src, entity.to_owned())];
            if store.add_association(rel, from, to, ev) {
                report.assocs_created += 1;
            } else {
                report.assocs_deduped += 1;
            }
        }
    }
    // IsA structural rels within the source
    let isa_rel = store.ensure_rel(src, src);
    for rec in &recs {
        if let Rec::IsA { child, parent } = rec {
            let from = store.by_accession[&(src, child.to_owned())];
            let to = store.by_accession[&(src, parent.to_owned())];
            if store.add_association(isa_rel, from, to, None) {
                report.assocs_created += 1;
            } else {
                report.assocs_deduped += 1;
            }
        }
    }
    report
}

/// The bulk fast path: no clone, batched resolution, batch inserts, WAL
/// group commit (one fdatasync per dump). Returns the report plus the
/// resolve / insert / wal phase durations.
fn import_bulk(store: &mut Store, name: &str, recs: &[Rec]) -> (Report, [Duration; 3]) {
    let start = Instant::now();
    let mut report = Report::default();
    let mut insert = Duration::ZERO;
    store.wal.sync_on_commit = false; // begin_group_commit
    let (src, _) = store.ensure_source(name);
    // own objects, first occurrence wins, in input order
    let mut own_rows: Vec<(&str, &str)> = Vec::new();
    for rec in recs {
        match rec {
            Rec::Object { acc, text } => own_rows.push((acc, text)),
            Rec::Ann { entity, .. } => own_rows.push((entity, "")),
            Rec::IsA { child, parent } => {
                own_rows.push((child, ""));
                own_rows.push((parent, ""));
            }
        }
    }
    // first-wins on text: keep only the first row per accession, like the
    // importer's own_objects BTreeMap merge
    let mut first: BTreeMap<&str, usize> = BTreeMap::new();
    let mut merged: Vec<(&str, &str)> = Vec::new();
    let mut dedup_hits = 0usize;
    for (acc, text) in own_rows {
        if first.contains_key(acc) {
            dedup_hits += 1;
            continue;
        }
        first.insert(acc, merged.len());
        merged.push((acc, text));
    }
    let t = Instant::now();
    let (own_ids, created) = store.add_objects_bulk(src, &merged);
    insert += t.elapsed();
    report.objects_created += created;
    report.objects_deduped += merged.len() - created + dedup_hits;
    let own_id_of: BTreeMap<&str, u64> =
        merged.iter().map(|(a, _)| *a).zip(own_ids.iter().copied()).collect();
    // annotation groups: batched target-object insert + batched assocs
    let mut groups: BTreeMap<&str, Vec<(&str, &str, Option<f64>)>> = BTreeMap::new();
    for rec in recs {
        if let Rec::Ann { entity, target, acc, ev } = rec {
            groups.entry(target).or_default().push((entity, acc, *ev));
        }
    }
    for (target, anns) in &groups {
        let (tgt, fresh) = store.ensure_source(target);
        if fresh {
            report.stubs += 1;
        }
        let rel = store.ensure_rel(src, tgt);
        let mut tfirst: BTreeMap<&str, ()> = BTreeMap::new();
        let mut trows: Vec<(&str, &str)> = Vec::new();
        let mut tdups = 0usize;
        for &(_, acc, _) in anns.iter() {
            if tfirst.contains_key(acc) {
                tdups += 1;
                continue;
            }
            tfirst.insert(acc, ());
            trows.push((acc, ""));
        }
        let t = Instant::now();
        let (tids, created) = store.add_objects_bulk(tgt, &trows);
        insert += t.elapsed();
        report.objects_created += created;
        report.objects_deduped += trows.len() - created + tdups;
        let tid_of: BTreeMap<&str, u64> =
            trows.iter().map(|(a, _)| *a).zip(tids.iter().copied()).collect();
        let items: Vec<(u64, u64, Option<f64>)> = anns
            .iter()
            .map(|&(entity, acc, ev)| (own_id_of[entity], tid_of[acc], ev))
            .collect();
        let t = Instant::now();
        let created = store.add_associations_bulk(rel, &items);
        insert += t.elapsed();
        report.assocs_created += created;
        report.assocs_deduped += items.len() - created;
    }
    // IsA batch
    let isa_rel = store.ensure_rel(src, src);
    let items: Vec<(u64, u64, Option<f64>)> = recs
        .iter()
        .filter_map(|rec| match rec {
            Rec::IsA { child, parent } => {
                Some((own_id_of[child.as_str()], own_id_of[parent.as_str()], None))
            }
            _ => None,
        })
        .collect();
    let t = Instant::now();
    let created = store.add_associations_bulk(isa_rel, &items);
    insert += t.elapsed();
    report.assocs_created += created;
    report.assocs_deduped += items.len() - created;
    // end_group_commit: restore the flag, one fdatasync for the batch
    let wal_start = Instant::now();
    store.wal.sync_on_commit = true;
    store.wal.sync();
    let wal = wal_start.elapsed();
    let resolve = start.elapsed().saturating_sub(insert + wal);
    (report, [resolve, insert, wal])
}

// ------------------------------------------------------- equivalence --

fn assert_same_stores(a: &Store, b: &Store, label: &str) {
    assert_eq!(a.sources, b.sources, "{label}: sources diverge");
    assert_eq!(a.objects, b.objects, "{label}: objects diverge");
    assert_eq!(a.rels, b.rels, "{label}: source rels diverge");
    assert_eq!(a.assocs, b.assocs, "{label}: associations diverge");
}

fn check_equivalence(dir: &std::path::Path) {
    for seed in [7u64, 19, 101] {
        let dumps = make_dumps(4, 400, seed);
        let batches: Vec<(String, Vec<Rec>)> =
            dumps.iter().map(|d| (d.name.clone(), parse(&d.text))).collect();
        let mut per_row = Store::create(&dir.join("eq_per_row.wal"));
        let mut bulk = Store::create(&dir.join("eq_bulk.wal"));
        for (name, recs) in &batches {
            let ra = import_per_row(&mut per_row, name, recs);
            let (rb, _) = import_bulk(&mut bulk, name, recs);
            assert_eq!(ra, rb, "seed {seed}: reports diverge for {name}");
        }
        assert_same_stores(&per_row, &bulk, &format!("seed {seed}"));
        // re-import: everything dedups, stores stay bit-identical
        let objects = bulk.objects.len();
        let assocs = bulk.assocs.len();
        for (name, recs) in &batches {
            let (r, _) = import_bulk(&mut bulk, name, recs);
            assert_eq!(r.objects_created, 0, "seed {seed}: re-import created objects");
            assert_eq!(r.assocs_created, 0, "seed {seed}: re-import created assocs");
        }
        assert_eq!(bulk.objects.len(), objects);
        assert_eq!(bulk.assocs.len(), assocs);
    }
    println!("equivalence: bulk == per-row on 3 random ecosystems, re-import is a no-op (OK)");
}

// ----------------------------------------------------------- timings --

fn best_of(runs: usize, mut f: impl FnMut() -> usize) -> (f64, usize) {
    let mut sink = f(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let t = Instant::now();
        sink = sink.wrapping_add(f());
        let dt = t.elapsed().as_secs_f64();
        if dt < best {
            best = dt;
        }
    }
    std::hint::black_box(sink);
    (best, sink)
}

fn main() {
    let dir = std::path::PathBuf::from(".import_harness_tmp");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmp dir");

    check_equivalence(&dir);

    println!("\n{:>6} {:>9} {:>13} {:>11} {:>9}", "factor", "records", "per_row_s", "bulk_s", "speedup");
    let mut rows = Vec::new();
    for factor in [1usize, 4, 16] {
        let dumps = make_dumps(6, 450 * factor, 41);
        let records: usize = dumps.iter().map(|d| d.text.lines().count()).sum();
        let (per_row_s, _) = best_of(2, || {
            let mut store = Store::create(&dir.join("per_row.wal"));
            let batches: Vec<(String, Vec<Rec>)> =
                dumps.iter().map(|d| (d.name.clone(), parse(&d.text))).collect();
            for (name, recs) in &batches {
                import_per_row(&mut store, name, recs);
            }
            store.objects.len() + store.assocs.len()
        });
        let mut phases = [Duration::ZERO; 4]; // parse, resolve, insert, wal
        let (bulk_s, _) = best_of(2, || {
            let mut store = Store::create(&dir.join("bulk.wal"));
            let t = Instant::now();
            let batches: Vec<(String, Vec<Rec>)> =
                dumps.iter().map(|d| (d.name.clone(), parse(&d.text))).collect();
            let parse_d = t.elapsed();
            let mut p = [parse_d, Duration::ZERO, Duration::ZERO, Duration::ZERO];
            for (name, recs) in &batches {
                let (_, [r, i, w]) = import_bulk(&mut store, name, recs);
                p[1] += r;
                p[2] += i;
                p[3] += w;
            }
            phases = p;
            store.objects.len() + store.assocs.len()
        });
        let speedup = per_row_s / bulk_s;
        println!("{factor:>6} {records:>9} {per_row_s:>13.4} {bulk_s:>11.4} {speedup:>8.2}x");
        println!(
            "        phases: parse {:.4?}  resolve {:.4?}  insert {:.4?}  wal {:.4?}",
            phases[0], phases[1], phases[2], phases[3]
        );
        rows.push(format!(
            "{{\"factor\": {factor}, \"records\": {records}, \"per_row_seconds\": {per_row_s:.6}, \"bulk_seconds\": {bulk_s:.6}, \"speedup\": {speedup:.2}, \"phases\": {{\"parse\": {:.6}, \"resolve\": {:.6}, \"insert\": {:.6}, \"wal\": {:.6}}}}}",
            phases[0].as_secs_f64(),
            phases[1].as_secs_f64(),
            phases[2].as_secs_f64(),
            phases[3].as_secs_f64()
        ));
    }
    let _ = std::fs::remove_dir_all(&dir);

    let json = format!(
        "{{\n  \"generator\": \"scripts/import_harness.rs (standalone replica; regenerate with `cargo run --release -p bench --bin experiments` on a workspace-buildable host)\",\n  \"import\": [\n    {}\n  ],\n  \"note\": \"per_row is the per-key-probe reference: whole-batch clone, one owned-String index probe and one WAL commit (fdatasync) per fresh row. bulk is the fast path: no clone, sort-dedup merge resolution over the by_accession range, batch inserts, and WAL group commit with one fdatasync per dump. Measured against a real WAL file on disk; single-core host, so the parallel-parse fan-out contributes nothing here and the speedup is all resolution + insert batching + group commit.\"\n}}\n",
        rows.join(",\n    ")
    );
    std::fs::write("BENCH_import.json", &json).expect("write BENCH_import.json");
    println!("\nwrote BENCH_import.json");
}
