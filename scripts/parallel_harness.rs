//! Standalone, dependency-free replica of the partitioned parallel Compose
//! join (`operators::exec::partitioned` + `compose::probe_chunk` +
//! `Mapping::dedup`), for environments where the full workspace cannot be
//! built (no crates.io access). It
//!
//! 1. verifies that the parallel probe is bit-identical to the sequential
//!    one for several worker counts and evidence floors, and
//! 2. measures jobs ∈ {1, 2, 4, 8} timings and writes them to
//!    `BENCH_parallel.json` in the current directory.
//!
//! Build & run:  rustc -O scripts/parallel_harness.rs -o /tmp/parallel_harness && /tmp/parallel_harness
//!
//! The logic below must stay in sync with `crates/operators/src/exec.rs`,
//! `crates/operators/src/compose.rs` and `crates/gam/src/mapping.rs`; it is
//! a measurement stand-in, not the implementation of record. Prefer
//! `cargo run --release -p bench --bin experiments` whenever the workspace
//! builds.

use std::collections::HashMap;
use std::time::Instant;

#[derive(Debug, Clone, Copy, PartialEq)]
struct Association {
    from: u64,
    to: u64,
    evidence: Option<f64>,
}

impl Association {
    fn effective_evidence(&self) -> f64 {
        self.evidence.unwrap_or(1.0)
    }
}

/// `Mapping::dedup`: canonical unstable sort by (from, to), then descending
/// effective evidence, then facts before explicit scores; keep the first
/// (strongest) of each (from, to) group. Tied elements are bit-identical,
/// so the result is a pure function of the pair multiset.
fn dedup(pairs: &mut Vec<Association>) {
    pairs.sort_unstable_by(|a, b| {
        (a.from, a.to)
            .cmp(&(b.from, b.to))
            .then_with(|| b.effective_evidence().total_cmp(&a.effective_evidence()))
            .then_with(|| a.evidence.is_some().cmp(&b.evidence.is_some()))
    });
    pairs.dedup_by_key(|a| (a.from, a.to));
}

/// `exec::partitioned`: contiguous in-order chunks on scoped threads,
/// results merged in chunk order.
fn partitioned<R: Send>(
    items: &[Association],
    jobs: usize,
    f: impl Fn(&[Association]) -> R + Sync,
) -> Vec<R> {
    if jobs <= 1 || items.len() <= 1 {
        return vec![f(items)];
    }
    let jobs = jobs.min(items.len());
    let chunk_size = items.len().div_ceil(jobs);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_size)
            .map(|chunk| scope.spawn(move || f(chunk)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("partition worker panicked"))
            .collect()
    })
}

/// `compose::probe_chunk`: probe one chunk of the left mapping against the
/// shared build-side index, applying the evidence floor during the probe.
fn probe_chunk(
    chunk: &[Association],
    by_mid: &HashMap<u64, Vec<&Association>>,
    min_evidence: Option<f64>,
) -> Vec<Association> {
    let mut out = Vec::new();
    for l in chunk {
        if let Some(matches) = by_mid.get(&l.to) {
            for r in matches {
                let evidence = match (l.evidence, r.evidence) {
                    (None, None) => None,
                    _ => Some(l.effective_evidence() * r.effective_evidence()),
                };
                if let Some(floor) = min_evidence {
                    if evidence.unwrap_or(1.0) < floor {
                        continue;
                    }
                }
                out.push(Association {
                    from: l.from,
                    to: r.to,
                    evidence,
                });
            }
        }
    }
    out
}

fn compose(
    left: &[Association],
    right: &[Association],
    min_evidence: Option<f64>,
    jobs: usize,
) -> Vec<Association> {
    let mut by_mid: HashMap<u64, Vec<&Association>> = HashMap::with_capacity(right.len());
    for assoc in right {
        by_mid.entry(assoc.from).or_default().push(assoc);
    }
    let parts = partitioned(left, jobs, |chunk| probe_chunk(chunk, &by_mid, min_evidence));
    let mut pairs: Vec<Association> = Vec::with_capacity(parts.iter().map(Vec::len).sum());
    for part in parts {
        pairs.extend(part);
    }
    dedup(&mut pairs);
    pairs
}

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

fn generate(n: usize, seed: u64) -> (Vec<Association>, Vec<Association>) {
    let mut rng = XorShift(seed);
    let mid = (n / 2).max(1) as u64;
    let mut left = Vec::with_capacity(n);
    let mut right = Vec::with_capacity(n);
    for i in 0..n {
        let e = match rng.next() % 3 {
            0 => None,
            _ => Some((rng.next() % 1000) as f64 / 1000.0),
        };
        left.push(Association {
            from: i as u64,
            to: 1_000_000 + rng.next() % mid,
            evidence: e,
        });
        right.push(Association {
            from: 1_000_000 + rng.next() % mid,
            to: 2_000_000 + i as u64,
            evidence: e.map(|v| 1.0 - v),
        });
    }
    dedup(&mut left);
    dedup(&mut right);
    (left, right)
}

fn assert_bit_identical(a: &[Association], b: &[Association], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: length mismatch");
    for (x, y) in a.iter().zip(b) {
        assert_eq!((x.from, x.to), (y.from, y.to), "{label}: pair mismatch");
        assert_eq!(
            x.evidence.map(f64::to_bits),
            y.evidence.map(f64::to_bits),
            "{label}: evidence bits mismatch"
        );
    }
}

fn main() {
    // -------------------------------------------------- determinism check
    for &n in &[1_000usize, 50_000] {
        let (left, right) = generate(n, 0x9e3779b97f4a7c15);
        for floor in [None, Some(0.25), Some(0.9)] {
            let seq = compose(&left, &right, floor, 1);
            for jobs in [2usize, 3, 4, 8] {
                let par = compose(&left, &right, floor, jobs);
                assert_bit_identical(&seq, &par, &format!("n={n} floor={floor:?} jobs={jobs}"));
            }
            // probe-time floor == compose-then-retain
            if let Some(t) = floor {
                let mut reference = compose(&left, &right, None, 1);
                reference.retain(|a| a.effective_evidence() >= t);
                assert_bit_identical(&seq, &reference, &format!("n={n} floor-vs-retain"));
            }
        }
    }
    println!("determinism: parallel output bit-identical to sequential (OK)");

    // --------------------------------------------------------- timings
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let (left, right) = generate(200_000, 0x9e3779b97f4a7c15);
    let join_pairs = left.len() + right.len();
    let job_counts = [1usize, 2, 4, 8];
    let mut secs = Vec::new();
    for &jobs in &job_counts {
        let _ = compose(&left, &right, None, jobs); // warm-up
        let best = (0..5)
            .map(|_| {
                let t = Instant::now();
                let out = compose(&left, &right, None, jobs);
                let dt = t.elapsed().as_secs_f64();
                std::hint::black_box(out.len());
                dt
            })
            .fold(f64::INFINITY, f64::min);
        secs.push(best);
    }
    println!("\ncompose, {join_pairs} input pairs, {workers} worker(s) available:");
    println!("{:<6} {:>12} {:>10}", "jobs", "seconds", "speedup");
    for (&jobs, &s) in job_counts.iter().zip(&secs) {
        println!("{jobs:<6} {s:>12.6} {:>9.2}x", secs[0] / s);
    }

    let runs: Vec<String> = job_counts
        .iter()
        .zip(&secs)
        .map(|(&jobs, &s)| {
            format!(
                "{{\"jobs\": {jobs}, \"seconds\": {s:.6}, \"speedup\": {:.3}}}",
                secs[0] / s
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"generator\": \"scripts/parallel_harness.rs (standalone replica; regenerate with `cargo run --release -p bench --bin experiments` on a workspace-buildable host)\",\n  \"workers_available\": {workers},\n  \"compose\": {{\n    \"input_pairs\": {join_pairs},\n    \"runs\": [\n      {}\n    ]\n  }},\n  \"note\": \"speedup scales with physical cores; on a single-core host jobs>1 measures partitioning overhead only\"\n}}\n",
        runs.join(",\n      ")
    );
    std::fs::write("BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
    println!("\nwrote BENCH_parallel.json");
}
