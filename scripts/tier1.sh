#!/usr/bin/env bash
# Tier-1 verification: build, test, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
# bulk-import equivalence proptests (bit-identical fast path), explicitly:
cargo test -q -p import --test bulk_prop
cargo clippy --all-targets -- -D warnings
