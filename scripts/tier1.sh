#!/usr/bin/env bash
# Tier-1 verification: build, test, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
# bulk-import equivalence proptests (bit-identical fast path), explicitly:
cargo test -q -p import --test bulk_prop
# crash-safety sweeps (fault points are seeded deterministically from the
# crash index, so these runs are reproducible), explicitly:
cargo test -q -p relstore --test crash_sweep
cargo test -q -p relstore --test crash_prop
cargo test -q -p relstore --test recovery
cargo test -q -p import --test crash_import
# paged-storage equivalence (paged ≡ resident across random workloads,
# pool sizes down to one page, reopen, and compaction), explicitly:
cargo test -q -p relstore --test paged_prop
# MVCC snapshot reads: concurrent readers bit-identical to the
# single-threaded path, readers never blocking on the writer, and the
# service layer end-to-end over real TCP, explicitly:
cargo test -q -p genmapper --test snapshot_stress
cargo test -q -p serve
# cost-based planner equivalence: planned execution bit-identical to the
# naive fold across chain shapes, floors, negation, worker counts
cargo test -q -p operators --test plan_prop
# paged-storage measurement replica: checkpoint bytes vs dirty fraction,
# lookup latency/residency at dataset/pool ratios 1x/10x/100x
rustc -O scripts/page_harness.rs -o /tmp/page_harness && /tmp/page_harness
# concurrent-service measurement replica: mixed read/write load p50/p99,
# reader progress during a bulk import -> BENCH_serve.json
rustc -O scripts/serve_harness.rs -o /tmp/serve_harness && /tmp/serve_harness
# planner measurement replica: deep chains + wide views + strategy skew,
# planned vs naive with chosen-strategy counts -> BENCH_plan.json
rustc -O scripts/plan_harness.rs -o /tmp/plan_harness && /tmp/plan_harness
# hardened-service chaos replica: 104-point deterministic network-fault
# sweep (disconnect/torn/stall/delay) with bit-identical recovery probes,
# plus read p50/p99 under overload with shedding on vs off
# -> BENCH_chaos.json
rustc -O scripts/chaos_harness.rs -o /tmp/chaos_harness && /tmp/chaos_harness
cargo clippy --all-targets -- -D warnings
# architectural invariant gate (DESIGN.md §11, §16): any unbaselined
# finding fails the build; the same scan is exported as a SARIF artifact
# for code-scanning UIs (target/genlint.sarif)
cargo run -q -p genlint -- --deny
cargo run -q -p genlint -- --format sarif > target/genlint.sarif
# lint-engine measurement replica: serial vs parallel full-workspace
# scans and cache cold/warm latency -> BENCH_lint.json
rustc -O scripts/genlint_harness.rs -o /tmp/genlint_harness && /tmp/genlint_harness
