#!/usr/bin/env bash
# Tier-1 verification: build, test, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
# bulk-import equivalence proptests (bit-identical fast path), explicitly:
cargo test -q -p import --test bulk_prop
# crash-safety sweeps (fault points are seeded deterministically from the
# crash index, so these runs are reproducible), explicitly:
cargo test -q -p relstore --test crash_sweep
cargo test -q -p relstore --test crash_prop
cargo test -q -p relstore --test recovery
cargo test -q -p import --test crash_import
cargo clippy --all-targets -- -D warnings
# architectural invariant gate (DESIGN.md §11): any unbaselined finding
# fails the build
cargo run -q -p genlint -- --deny
