//! Standalone, dependency-free replica of the MVCC annotation service
//! (`crates/serve` over `genmapper::SharedGenMapper`), for environments
//! where the full workspace cannot be built (no crates.io access). It
//!
//! 1. runs a threaded TCP service whose read path answers from an
//!    immutable `Arc` snapshot (publication = one atomic swap under a
//!    briefly-held `RwLock`, exactly the `SharedGenMapper` discipline),
//! 2. drives thousands of concurrent mixed read/write client ops and
//!    records p50/p99 latency per class,
//! 3. measures reader progress during one bulk import (the writer holds
//!    its lock throughout; readers must keep completing),
//! 4. verifies every read against the snapshot's checksum (a torn or
//!    half-published state cannot pass) and that each connection observes
//!    monotonically non-decreasing versions,
//! 5. writes `BENCH_serve.json`.
//!
//! Build & run:  rustc -O scripts/serve_harness.rs -o /tmp/serve_harness && /tmp/serve_harness
//!
//! The logic below must stay in sync with `crates/genmapper/src/shared.rs`
//! (single writer mutex, published `RwLock<Arc<Snapshot>>`, swap-only
//! guard) and `crates/serve/src/server.rs` (worker accept loop, framed
//! `ok/err` responses, self-connect shutdown); it is a measurement
//! stand-in, not the implementation of record. Prefer
//! `cargo test -p serve` and `cargo test -p genmapper --test
//! snapshot_stress` whenever the workspace builds.
//!
//! On a single-core host the numbers pin correctness and non-blocking
//! progress, not speedup.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread;
use std::time::{Duration, Instant};

// ------------------------------------------------------------- hashing --

/// FNV-1a over one entry; the snapshot checksum folds these with xor, so
/// it is order-independent and incrementally maintainable by the writer.
fn entry_hash(k: u32, v: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in k.to_le_bytes().iter().chain(v.to_le_bytes().iter()) {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn snapshot_checksum(version: u64, entries: &BTreeMap<u32, u64>) -> u64 {
    entries
        .iter()
        .fold(entry_hash(0, version), |acc, (&k, &v)| acc ^ entry_hash(k, v))
}

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

// ------------------------------------------------ snapshot-swap store --

/// One immutable published state. Readers hold it by `Arc`; the stored
/// checksum lets every read prove it observed a fully-published state.
struct Snapshot {
    version: u64,
    entries: BTreeMap<u32, u64>,
    checksum: u64,
}

/// The `SharedGenMapper` discipline in miniature: one writer mutex, one
/// published snapshot, publication is an atomic `Arc` swap with the
/// `RwLock` held only for the swap itself.
struct Shared {
    writer: Mutex<BTreeMap<u32, u64>>,
    published: RwLock<Arc<Snapshot>>,
    version: AtomicU64,
    writing: AtomicBool,
    completed: AtomicU64,
}

impl Shared {
    fn new() -> Shared {
        Shared {
            writer: Mutex::new(BTreeMap::new()),
            published: RwLock::new(Arc::new(Snapshot {
                version: 0,
                entries: BTreeMap::new(),
                checksum: snapshot_checksum(0, &BTreeMap::new()),
            })),
            version: AtomicU64::new(0),
            writing: AtomicBool::new(false),
            completed: AtomicU64::new(0),
        }
    }

    fn snapshot(&self) -> Arc<Snapshot> {
        self.published.read().unwrap().clone()
    }

    /// One writer operation: insert `count` derived entries, then capture
    /// and publish. The writer lock is held for the whole operation —
    /// readers must keep answering from the previous snapshot throughout.
    fn write(&self, seed: u64, count: u32) -> u64 {
        let mut live = self.writer.lock().unwrap();
        self.writing.store(true, Ordering::SeqCst);
        let mut rng = XorShift(seed | 1);
        for _ in 0..count {
            let r = rng.next();
            live.insert((r % 60_000) as u32, r);
        }
        let version = self.version.fetch_add(1, Ordering::SeqCst) + 1;
        let snap = Snapshot {
            version,
            entries: live.clone(),
            checksum: snapshot_checksum(version, &live),
        };
        self.writing.store(false, Ordering::SeqCst);
        self.completed.fetch_add(1, Ordering::SeqCst);
        *self.published.write().unwrap() = Arc::new(snap);
        version
    }
}

// -------------------------------------------------------------- server --

fn respond(stream: &mut TcpStream, ok: bool, body: &str) {
    let head = if ok { "ok" } else { "err" };
    let _ = write!(stream, "{} {}\n{}", head, body.len(), body);
}

/// Handle one request line. Reads clone the published `Arc`, drop the
/// guard, then verify the snapshot's checksum before answering — a read
/// that ever saw a torn publication would fail here.
fn handle(shared: &Shared, line: &str, stream: &mut TcpStream) {
    let mut words = line.split_whitespace();
    match words.next() {
        Some("query") => {
            let key: u32 = words.next().and_then(|w| w.parse().ok()).unwrap_or(0);
            let snap = shared.snapshot();
            if snapshot_checksum(snap.version, &snap.entries) != snap.checksum {
                respond(stream, false, "torn snapshot observed");
                return;
            }
            let body = match snap.entries.get(&key) {
                Some(v) => format!("v={} hit=1 val={v}", snap.version),
                None => format!("v={} hit=0", snap.version),
            };
            respond(stream, true, &body);
        }
        Some("write") => {
            let count: u32 = words.next().and_then(|w| w.parse().ok()).unwrap_or(1);
            let seed: u64 = words.next().and_then(|w| w.parse().ok()).unwrap_or(7);
            let version = shared.write(seed, count);
            respond(stream, true, &format!("v={version}"));
        }
        Some("status") => {
            let body = format!(
                "writing={} completed={} v={}",
                shared.writing.load(Ordering::SeqCst),
                shared.completed.load(Ordering::SeqCst),
                shared.snapshot().version
            );
            respond(stream, true, &body);
        }
        _ => respond(stream, false, "unknown endpoint"),
    }
}

fn serve_connection(shared: &Shared, stream: TcpStream) {
    // Request/response ping-pong over tiny frames: without nodelay the
    // Nagle + delayed-ACK interaction turns every round trip into ~40ms.
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        let line = line.trim();
        if line == "quit" {
            break;
        }
        handle(shared, line, &mut writer);
    }
}

struct Server {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    workers: Vec<thread::JoinHandle<()>>,
}

fn start_server(shared: Arc<Shared>, threads: usize) -> Server {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");
    let stop = Arc::new(AtomicBool::new(false));
    let mut workers = Vec::new();
    for _ in 0..threads {
        let listener = listener.try_clone().expect("clone listener");
        let shared = shared.clone();
        let stop = stop.clone();
        workers.push(thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => serve_connection(&shared, stream),
                    Err(_) => break,
                }
            }
        }));
    }
    Server { addr, stop, workers }
}

fn shutdown(server: Server) {
    server.stop.store(true, Ordering::SeqCst);
    for _ in 0..server.workers.len() {
        let _ = TcpStream::connect(server.addr);
    }
    for w in server.workers {
        let _ = w.join();
    }
}

// -------------------------------------------------------------- client --

/// Connect attempts / retries across the whole run, surfaced in the
/// report: the real client (`serve::call_retry`) retries transient
/// connect failures with capped jittered backoff, and the harness
/// mirrors that policy so its numbers describe the same discipline.
static CONNECT_ATTEMPTS: AtomicU64 = AtomicU64::new(0);
static CONNECT_RETRIES: AtomicU64 = AtomicU64::new(0);

/// Mirror of `crates/serve/src/conn.rs::RetryPolicy`: up to 4 attempts,
/// exponential backoff from 10ms capped at 200ms, deterministic jitter
/// into [50%, 100%] of the step.
fn connect_retry(addr: std::net::SocketAddr) -> TcpStream {
    let mut backoff = Duration::from_millis(10);
    let mut rng = XorShift(0x5eed | (addr.port() as u64) << 16);
    for attempt in 1..=4u32 {
        CONNECT_ATTEMPTS.fetch_add(1, Ordering::SeqCst);
        match TcpStream::connect(addr) {
            Ok(stream) => return stream,
            Err(e) if attempt == 4 => {
                panic!("connect failed after {} attempts: {}", attempt, e)
            }
            Err(_) => {
                CONNECT_RETRIES.fetch_add(1, Ordering::SeqCst);
                let permille = 500 + rng.next() % 501;
                thread::sleep(backoff * permille as u32 / 1000);
                backoff = (backoff * 2).min(Duration::from_millis(200));
            }
        }
    }
    unreachable!("loop returns or panics")
}

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    /// Last snapshot version observed; responses must never regress.
    last_version: u64,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = connect_retry(addr);
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Client {
            stream,
            reader,
            last_version: 0,
        }
    }

    /// End the connection; `quit` gets no response frame.
    fn quit(mut self) {
        let _ = writeln!(self.stream, "quit");
    }

    fn call(&mut self, request: &str) -> String {
        writeln!(self.stream, "{request}").expect("send");
        let mut head = String::new();
        self.reader.read_line(&mut head).expect("head");
        let mut parts = head.trim().splitn(2, ' ');
        let status = parts.next().unwrap_or("");
        let len: usize = parts
            .next()
            .and_then(|l| l.parse().ok())
            .unwrap_or_else(|| panic!("bad response header {:?}", head));
        let mut body = vec![0u8; len];
        self.reader.read_exact(&mut body).expect("body");
        let body = String::from_utf8(body).expect("utf-8");
        assert_eq!(status, "ok", "request {request:?} failed: {body}");
        if let Some(v) = body
            .split_whitespace()
            .find_map(|w| w.strip_prefix("v=").and_then(|n| n.parse::<u64>().ok()))
        {
            assert!(
                v >= self.last_version,
                "snapshot version regressed on one connection: {} after {}",
                v,
                self.last_version
            );
            self.last_version = v;
        }
        body
    }
}

fn percentile(sorted_us: &[u64], p: usize) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    sorted_us[((sorted_us.len() - 1) * p) / 100]
}

// ---------------------------------------------------------- experiments --

const SERVER_THREADS: usize = 4;
const CLIENT_THREADS: usize = 4;
const OPS_PER_CLIENT: usize = 400;
const WRITE_BATCH: u32 = 50;
const IMPORT_ENTRIES: u32 = 200_000;

struct MixedResult {
    reads: usize,
    writes: usize,
    read_us: Vec<u64>,
    write_us: Vec<u64>,
}

/// Phase 1: concurrent clients, ~80/20 read/write mix over persistent
/// connections.
fn mixed_load(addr: std::net::SocketAddr) -> MixedResult {
    let handles: Vec<_> = (0..CLIENT_THREADS)
        .map(|c| {
            thread::spawn(move || {
                let mut client = Client::connect(addr);
                let mut rng = XorShift(0x9e37_79b9 + c as u64);
                let mut read_us = Vec::new();
                let mut write_us = Vec::new();
                for i in 0..OPS_PER_CLIENT {
                    let r = rng.next();
                    let start = Instant::now();
                    if r % 5 == 0 {
                        client.call(&format!("write {WRITE_BATCH} {}", r | 1));
                        write_us.push(start.elapsed().as_micros() as u64);
                    } else {
                        client.call(&format!("query {}", (r >> 8) % 60_000));
                        read_us.push(start.elapsed().as_micros() as u64);
                    }
                    if i % 97 == 0 {
                        client.call("status");
                    }
                }
                client.quit();
                (read_us, write_us)
            })
        })
        .collect();
    let mut out = MixedResult {
        reads: 0,
        writes: 0,
        read_us: Vec::new(),
        write_us: Vec::new(),
    };
    for h in handles {
        let (r, w) = match h.join() {
            Ok(v) => v,
            Err(e) => std::panic::resume_unwind(e),
        };
        out.reads += r.len();
        out.writes += w.len();
        out.read_us.extend(r);
        out.write_us.extend(w);
    }
    out.read_us.sort_unstable();
    out.write_us.sort_unstable();
    out
}

struct ImportResult {
    import_ms: f64,
    reads_during_import: u64,
    version_before: u64,
    version_after: u64,
}

/// Phase 2: one bulk import while reader connections hammer queries;
/// count reads that completed strictly inside the import window.
fn import_window(addr: std::net::SocketAddr) -> ImportResult {
    let in_flight = Arc::new(AtomicBool::new(true));
    let reads_during = Arc::new(AtomicU64::new(0));
    let mut readers = Vec::new();
    for c in 0..CLIENT_THREADS - 1 {
        let in_flight = in_flight.clone();
        let reads_during = reads_during.clone();
        readers.push(thread::spawn(move || {
            let mut client = Client::connect(addr);
            let mut rng = XorShift(0xdead_beef + c as u64);
            while in_flight.load(Ordering::SeqCst) {
                client.call(&format!("query {}", rng.next() % 60_000));
                if in_flight.load(Ordering::SeqCst) {
                    reads_during.fetch_add(1, Ordering::SeqCst);
                }
            }
            client.quit();
        }));
    }
    let mut importer = Client::connect(addr);
    let version_before = importer
        .call("status")
        .split_whitespace()
        .find_map(|w| w.strip_prefix("v=").and_then(|n| n.parse().ok()))
        .unwrap_or(0);
    // give the readers a moment to connect before the import starts
    thread::sleep(Duration::from_millis(20));
    let start = Instant::now();
    importer.call(&format!("write {IMPORT_ENTRIES} 12345"));
    let import_ms = start.elapsed().as_secs_f64() * 1e3;
    in_flight.store(false, Ordering::SeqCst);
    let version_after = importer.last_version;
    importer.quit();
    for r in readers {
        if let Err(e) = r.join() {
            std::panic::resume_unwind(e);
        }
    }
    ImportResult {
        import_ms,
        reads_during_import: reads_during.load(Ordering::SeqCst),
        version_before,
        version_after,
    }
}

fn main() {
    let shared = Arc::new(Shared::new());
    // pre-seed so phase-1 reads have something to hit
    shared.write(42, 5_000);
    let server = start_server(shared.clone(), SERVER_THREADS);
    let addr = server.addr;
    println!(
        "serve harness: {SERVER_THREADS} server threads, {CLIENT_THREADS} clients, \
         {} mixed ops",
        CLIENT_THREADS * OPS_PER_CLIENT
    );

    let mixed = mixed_load(addr);
    assert!(
        mixed.reads + mixed.writes >= 1000,
        "mixed phase must exercise at least 1000 ops"
    );
    println!(
        "  mixed: {} reads (p50 {}us, p99 {}us), {} writes (p50 {}us, p99 {}us)",
        mixed.reads,
        percentile(&mixed.read_us, 50),
        percentile(&mixed.read_us, 99),
        mixed.writes,
        percentile(&mixed.write_us, 50),
        percentile(&mixed.write_us, 99),
    );

    let import = import_window(addr);
    assert!(
        import.reads_during_import > 0,
        "readers must complete queries while the import holds the writer lock"
    );
    assert!(import.version_after > import.version_before);
    println!(
        "  import: {} entries in {:.1}ms; {} reads completed during the import \
         (v{} -> v{})",
        IMPORT_ENTRIES,
        import.import_ms,
        import.reads_during_import,
        import.version_before,
        import.version_after,
    );

    // final integrity: the published snapshot checks out end to end
    let snap = shared.snapshot();
    assert_eq!(snapshot_checksum(snap.version, &snap.entries), snap.checksum);
    assert_eq!(snap.version, import.version_after);
    shutdown(server);

    let connect_attempts = CONNECT_ATTEMPTS.load(Ordering::SeqCst);
    let connect_retries = CONNECT_RETRIES.load(Ordering::SeqCst);
    println!(
        "  client: {} connect attempts, {} retried (capped jittered backoff)",
        connect_attempts, connect_retries
    );

    let json = format!(
        "{{\n  \"generator\": \"scripts/serve_harness.rs (standalone snapshot-service replica; \
         the service of record is `cargo run -p serve --bin genmapper-cli -- serve`)\",\n\
         \x20 \"server_threads\": {SERVER_THREADS},\n\
         \x20 \"client_threads\": {CLIENT_THREADS},\n\
         \x20 \"mixed_load\": {{\n\
         \x20   \"ops\": {},\n\
         \x20   \"reads\": {},\n\
         \x20   \"writes\": {},\n\
         \x20   \"read_latency_us\": {{\"p50\": {}, \"p99\": {}}},\n\
         \x20   \"write_latency_us\": {{\"p50\": {}, \"p99\": {}}}\n\
         \x20 }},\n\
         \x20 \"import_window\": {{\n\
         \x20   \"entries\": {IMPORT_ENTRIES},\n\
         \x20   \"import_ms\": {:.1},\n\
         \x20   \"reads_completed_during_import\": {}\n\
         \x20 }},\n\
         \x20 \"client_retry\": {{\n\
         \x20   \"connect_attempts\": {connect_attempts},\n\
         \x20   \"connect_retries\": {connect_retries},\n\
         \x20   \"policy\": \"4 attempts, 10ms base backoff doubling to 200ms, jitter 50-100%\"\n\
         \x20 }},\n\
         \x20 \"note\": \"every read re-verifies the published snapshot checksum and every \
         connection asserts monotone versions; on a single-core host this pins correctness \
         and non-blocking reader progress, not speedup\"\n}}\n",
        mixed.reads + mixed.writes,
        mixed.reads,
        mixed.writes,
        percentile(&mixed.read_us, 50),
        percentile(&mixed.read_us, 99),
        percentile(&mixed.write_us, 50),
        percentile(&mixed.write_us, 99),
        import.import_ms,
        import.reads_during_import,
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("\nwrote BENCH_serve.json");
}
