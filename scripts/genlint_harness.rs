//! Standalone, dependency-free runner for the genlint architectural
//! invariant checker (DESIGN.md §11), for environments where the full
//! workspace cannot be built (no crates.io access). genlint itself is
//! std-only, so this harness compiles the *real* rule sources directly
//! — `crates/genlint/src/{config,report,rules,source}` are included via
//! `#[path]`, not copied — and only the thin scan driver below is a
//! replica of `crates/genlint/src/lib.rs` (kept in sync by hand; the
//! `ScanResult` shape and baseline semantics must match).
//!
//! It scans the workspace against `genlint.toml`, times the scan, and
//! writes `BENCH_lint.json` (per-rule counts, files scanned, scan
//! latency). Exit code 1 on any unbaselined finding, mirroring
//! `cargo run -p genlint -- --deny`.
//!
//! Build & run (from the repo root):
//!   rustc -O scripts/genlint_harness.rs -o /tmp/genlint_harness && /tmp/genlint_harness
#![allow(dead_code)]

#[path = "../crates/genlint/src/config.rs"]
mod config;
#[path = "../crates/genlint/src/report.rs"]
mod report;
#[path = "../crates/genlint/src/rules/mod.rs"]
mod rules;
#[path = "../crates/genlint/src/source.rs"]
mod source;

use config::Config;
use rules::Finding;
use source::SourceFile;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Outcome of scanning a workspace (replica of `genlint::ScanResult`;
/// `report.rs` refers to it as `crate::ScanResult`).
#[derive(Debug)]
pub struct ScanResult {
    pub findings: Vec<Finding>,
    pub suppressed: usize,
    pub files_scanned: usize,
}

const SKIP_DIRS: [&str; 4] = ["target", ".git", "scripts", "fixtures"];

fn collect_rs_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if name.starts_with('.') || SKIP_DIRS.contains(&name.as_ref()) {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let mut out = String::new();
    for comp in rel.components() {
        if !out.is_empty() {
            out.push('/');
        }
        out.push_str(&comp.as_os_str().to_string_lossy());
    }
    out
}

fn scan(root: &Path, cfg: &Config) -> std::io::Result<ScanResult> {
    let files = collect_rs_files(root)?;
    let mut findings = Vec::new();
    let mut files_scanned = 0usize;
    for path in &files {
        let raw = std::fs::read_to_string(path)?;
        let rel = rel_path(root, path);
        let file = SourceFile::parse(&rel, &raw);
        files_scanned += 1;
        for rule in rules::registry() {
            rule.check(&file, cfg, &mut findings);
        }
    }
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    let mut suppressed = 0usize;
    let mut used = vec![false; cfg.allow.len()];
    let mut kept = Vec::new();
    for f in findings {
        let hit = cfg.allow.iter().position(|a| {
            a.rule == f.rule
                && (f.path == a.path
                    || f.path
                        .strip_prefix(&a.path)
                        .map(|rest| rest.starts_with('/'))
                        .unwrap_or(false))
        });
        match hit {
            Some(i) => {
                used[i] = true;
                suppressed += 1;
            }
            None => kept.push(f),
        }
    }
    for (i, a) in cfg.allow.iter().enumerate() {
        if !used[i] {
            kept.push(Finding {
                rule: "stale-allow",
                path: a.path.clone(),
                line: 0,
                message: format!(
                    "[[allow]] entry (rule `{}`) suppresses nothing — remove it",
                    a.rule
                ),
            });
        }
    }
    Ok(ScanResult {
        findings: kept,
        suppressed,
        files_scanned,
    })
}

fn main() {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let toml = match std::fs::read_to_string(root.join("genlint.toml")) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("genlint_harness: {}/genlint.toml: {e}", root.display());
            std::process::exit(2);
        }
    };
    let cfg = match config::parse(&toml) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("genlint_harness: {e}");
            std::process::exit(2);
        }
    };

    // one warm-up (page cache), then timed runs
    let result = scan(&root, &cfg).expect("scan");
    const RUNS: usize = 5;
    let mut times_ms = Vec::with_capacity(RUNS);
    for _ in 0..RUNS {
        let t0 = Instant::now();
        let r = scan(&root, &cfg).expect("scan");
        times_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        assert_eq!(r.findings.len(), result.findings.len(), "scan not deterministic");
    }
    let min = times_ms.iter().cloned().fold(f64::INFINITY, f64::min);
    let mean = times_ms.iter().sum::<f64>() / RUNS as f64;

    print!("{}", report::human(&result));
    println!("scan latency over {RUNS} runs: min {min:.1} ms, mean {mean:.1} ms");

    let mut rules_json = String::new();
    for (i, (name, count)) in report::per_rule_counts(&result.findings).iter().enumerate() {
        if i > 0 {
            rules_json.push_str(", ");
        }
        rules_json.push_str(&format!("\"{}\": {}", report::json_escape(name), count));
    }
    let json = format!(
        "{{\n  \"harness\": \"genlint\",\n  \"files_scanned\": {},\n  \"findings\": {},\n  \
         \"suppressed\": {},\n  \"rules\": {{{}}},\n  \"runs\": {},\n  \
         \"scan_ms_min\": {:.3},\n  \"scan_ms_mean\": {:.3}\n}}\n",
        result.files_scanned,
        result.findings.len(),
        result.suppressed,
        rules_json,
        RUNS,
        min,
        mean
    );
    std::fs::write(root.join("BENCH_lint.json"), json).expect("write BENCH_lint.json");
    eprintln!("wrote {}", root.join("BENCH_lint.json").display());

    if !result.findings.is_empty() {
        std::process::exit(1);
    }
}
