//! Standalone, dependency-free runner for the genlint architectural
//! invariant checker (DESIGN.md §11 and §16), for environments where
//! the full workspace cannot be built (no crates.io access). genlint
//! itself is std-only, so this harness compiles the *real* sources
//! directly — every module under `crates/genlint/src/` is included via
//! `#[path]`, including the scan driver (`engine.rs`). Nothing here is
//! a replica: the harness and `cargo run -p genlint` execute the same
//! lexer, rules, graph pass, cache, and baseline logic.
//!
//! It scans the workspace against `genlint.toml` four ways — serial,
//! parallel, cache-cold, cache-warm — and writes `BENCH_lint.json`
//! (per-rule counts, files scanned, per-mode latency). Exit code 1 on
//! any unbaselined finding, mirroring `cargo run -p genlint -- --deny`.
//!
//! Build & run (from the repo root):
//!   rustc -O scripts/genlint_harness.rs -o /tmp/genlint_harness && /tmp/genlint_harness
#![allow(dead_code)]

#[path = "../crates/genlint/src/config.rs"]
mod config;
#[path = "../crates/genlint/src/engine.rs"]
mod engine;
#[path = "../crates/genlint/src/graph.rs"]
mod graph;
#[path = "../crates/genlint/src/items.rs"]
mod items;
#[path = "../crates/genlint/src/lexer.rs"]
mod lexer;
#[path = "../crates/genlint/src/report.rs"]
mod report;
#[path = "../crates/genlint/src/rules/mod.rs"]
mod rules;
#[path = "../crates/genlint/src/source.rs"]
mod source;

// `report.rs` renders `crate::ScanResult` — same re-export as lib.rs.
pub use engine::ScanResult;

use engine::ScanOptions;
use std::path::{Path, PathBuf};
use std::time::Instant;

const RUNS: usize = 5;

/// Min/mean latency of `RUNS` scans under one option set; asserts every
/// run reproduces the reference finding count (determinism check).
fn time_scans(
    root: &Path,
    cfg: &config::Config,
    opts: &ScanOptions,
    reference: usize,
) -> (f64, f64) {
    let mut times_ms = Vec::with_capacity(RUNS);
    for _ in 0..RUNS {
        let t0 = Instant::now();
        let r = engine::scan_with(root, cfg, opts).expect("scan");
        times_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        assert_eq!(r.findings.len(), reference, "scan not deterministic");
    }
    let min = times_ms.iter().cloned().fold(f64::INFINITY, f64::min);
    let mean = times_ms.iter().sum::<f64>() / RUNS as f64;
    (min, mean)
}

fn main() {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let toml = match std::fs::read_to_string(root.join("genlint.toml")) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("genlint_harness: {}/genlint.toml: {e}", root.display());
            std::process::exit(2);
        }
    };
    let cfg = match config::parse(&toml) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("genlint_harness: {e}");
            std::process::exit(2);
        }
    };
    let jobs = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // one warm-up (page cache), and the reference result for the report
    let result = engine::scan(&root, &cfg).expect("scan");
    let n = result.findings.len();

    let serial = ScanOptions { jobs: 1, cache_path: None };
    let parallel = ScanOptions { jobs: 0, cache_path: None };
    let (serial_min, serial_mean) = time_scans(&root, &cfg, &serial, n);
    let (par_min, par_mean) = time_scans(&root, &cfg, &parallel, n);

    // cache: one cold run (fresh file), then warm re-runs
    let cache_file = std::env::temp_dir().join(format!("genlint-harness-cache-{}.txt", std::process::id()));
    let _ = std::fs::remove_file(&cache_file);
    let cached = ScanOptions { jobs: 0, cache_path: Some(cache_file.clone()) };
    let t0 = Instant::now();
    let cold = engine::scan_with(&root, &cfg, &cached).expect("cold scan");
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(cold.cache_hits, 0, "cold run must not hit the cache");
    let (warm_min, warm_mean) = time_scans(&root, &cfg, &cached, n);
    let warm = engine::scan_with(&root, &cfg, &cached).expect("warm scan");
    assert_eq!(warm.cache_hits, warm.files_scanned, "warm run must be all hits");
    let _ = std::fs::remove_file(&cache_file);

    print!("{}", report::human(&result));
    println!(
        "serial (1 thread):   min {serial_min:.1} ms, mean {serial_mean:.1} ms over {RUNS} runs"
    );
    println!(
        "parallel ({jobs} thread{}): min {par_min:.1} ms, mean {par_mean:.1} ms (speedup {:.2}x)",
        if jobs == 1 { "" } else { "s" },
        serial_min / par_min.max(f64::EPSILON)
    );
    println!(
        "cache: cold {cold_ms:.1} ms, warm min {warm_min:.1} ms, mean {warm_mean:.1} ms \
         ({}/{} hits when warm)",
        warm.cache_hits, warm.files_scanned
    );

    let mut rules_json = String::new();
    for (i, (name, count)) in report::per_rule_counts(&result.findings).iter().enumerate() {
        if i > 0 {
            rules_json.push_str(", ");
        }
        rules_json.push_str(&format!("\"{}\": {}", report::json_escape(name), count));
    }
    let json = format!(
        "{{\n  \"harness\": \"genlint\",\n  \"files_scanned\": {},\n  \"findings\": {},\n  \
         \"suppressed\": {},\n  \"rules\": {{{}}},\n  \"runs\": {},\n  \"jobs\": {},\n  \
         \"serial_ms_min\": {:.3},\n  \"serial_ms_mean\": {:.3},\n  \
         \"parallel_ms_min\": {:.3},\n  \"parallel_ms_mean\": {:.3},\n  \
         \"parallel_speedup\": {:.3},\n  \
         \"cache_cold_ms\": {:.3},\n  \"cache_warm_ms_min\": {:.3},\n  \
         \"cache_warm_ms_mean\": {:.3},\n  \"cache_hits_warm\": {}\n}}\n",
        result.files_scanned,
        result.findings.len(),
        result.suppressed,
        rules_json,
        RUNS,
        jobs,
        serial_min,
        serial_mean,
        par_min,
        par_mean,
        serial_min / par_min.max(f64::EPSILON),
        cold_ms,
        warm_min,
        warm_mean,
        warm.cache_hits,
    );
    std::fs::write(root.join("BENCH_lint.json"), json).expect("write BENCH_lint.json");
    eprintln!("wrote {}", root.join("BENCH_lint.json").display());

    if !result.findings.is_empty() {
        std::process::exit(1);
    }
}
