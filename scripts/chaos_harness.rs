//! Standalone, dependency-free replica of the hardened annotation
//! service under deterministic network chaos (`crates/serve`'s
//! `ConnGuard` + admission control + `FaultNet`), for environments where
//! the full workspace cannot be built (no crates.io access). It
//!
//! 1. runs a snapshot-swap TCP service with the hardening discipline:
//!    per-connection read deadlines, a capped line reader, and a
//!    write-admission budget that sheds excess writes with retryable
//!    `err busy`,
//! 2. sweeps a seeded fault plan over an in-process chaos proxy — mid-
//!    stream disconnects, torn frames, stalls past the deadline, latency
//!    spikes — at 104 deterministic op indices, asserting after every
//!    point that a fresh direct connection gets a checksum-identical
//!    read at a monotone snapshot version,
//! 3. measures read p50/p99 under write-heavy overload with shedding on
//!    vs off (same load, budget 1 vs unbounded), counting shed writes
//!    and client busy-retries,
//! 4. writes `BENCH_chaos.json`.
//!
//! Build & run:  rustc -O scripts/chaos_harness.rs -o /tmp/chaos_harness && /tmp/chaos_harness
//!
//! The logic below must stay in sync with `crates/serve/src/conn.rs`
//! (deadline + cap seam), `crates/serve/src/handler.rs` (admission), and
//! `crates/serve/src/faultnet.rs` (op-indexed fault plan); it is a
//! measurement stand-in, not the implementation of record. Prefer
//! `cargo test -p serve --test chaos` whenever the workspace builds.

use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread;
use std::time::{Duration, Instant};

// ------------------------------------------------------------- hashing --

fn entry_hash(k: u32, v: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in k.to_le_bytes().iter().chain(v.to_le_bytes().iter()) {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Version-independent content checksum: idempotent writes leave it
/// bit-identical, so it is the sweep's fixed-point witness.
fn content_checksum(entries: &BTreeMap<u32, u64>) -> u64 {
    entries.iter().fold(0, |acc, (&k, &v)| acc ^ entry_hash(k, v))
}

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

// ------------------------------------------------ snapshot-swap store --

struct Snapshot {
    version: u64,
    entries: BTreeMap<u32, u64>,
    checksum: u64,
}

struct Shared {
    writer: Mutex<BTreeMap<u32, u64>>,
    published: RwLock<Arc<Snapshot>>,
    version: AtomicU64,
    /// Writes admitted (queued or executing); the admission budget bounds
    /// this, exactly `SharedGenMapper::try_admit_write`.
    in_flight: AtomicUsize,
}

impl Shared {
    fn new() -> Shared {
        Shared {
            writer: Mutex::new(BTreeMap::new()),
            published: RwLock::new(Arc::new(Snapshot {
                version: 0,
                entries: BTreeMap::new(),
                checksum: 0,
            })),
            version: AtomicU64::new(0),
            in_flight: AtomicUsize::new(0),
        }
    }

    fn snapshot(&self) -> Arc<Snapshot> {
        self.published.read().unwrap().clone()
    }

    /// Deterministic writer op: entries derived from the seed alone, so
    /// repeating a (seed, count) write is idempotent on content.
    fn write(&self, seed: u64, count: u32) -> u64 {
        let mut live = self.writer.lock().unwrap();
        let mut rng = XorShift(seed | 1);
        for _ in 0..count {
            let r = rng.next();
            live.insert((r % 60_000) as u32, r);
        }
        let version = self.version.fetch_add(1, Ordering::SeqCst) + 1;
        let snap = Snapshot {
            version,
            entries: live.clone(),
            checksum: content_checksum(&live),
        };
        *self.published.write().unwrap() = Arc::new(snap);
        version
    }
}

// ----------------------------------------------------- hardened server --

#[derive(Clone, Copy)]
struct ServerCfg {
    threads: usize,
    read_timeout: Duration,
    max_line: usize,
    write_budget: usize,
}

#[derive(Default)]
struct Stats {
    shed_writes: AtomicU64,
    timeouts: AtomicU64,
    oversized: AtomicU64,
    requests: AtomicU64,
}

fn respond(stream: &mut TcpStream, ok: bool, body: &str) {
    let head = if ok { "ok" } else { "err" };
    let _ = write!(stream, "{} {}\n{}", head, body.len(), body);
}

/// One request against the store: reads answer from the published
/// snapshot (checksum re-verified); writes pass the admission gate or
/// shed with retryable `busy ...`.
fn handle(shared: &Shared, cfg: &ServerCfg, stats: &Stats, line: &str, out: &mut TcpStream) {
    stats.requests.fetch_add(1, Ordering::SeqCst);
    let mut words = line.split_whitespace();
    match words.next() {
        Some("query") => {
            let key: u32 = words.next().and_then(|w| w.parse().ok()).unwrap_or(0);
            let snap = shared.snapshot();
            if content_checksum(&snap.entries) != snap.checksum {
                respond(out, false, "torn snapshot observed");
                return;
            }
            let body = match snap.entries.get(&key) {
                Some(v) => format!("v={} hit=1 val={v}", snap.version),
                None => format!("v={} hit=0", snap.version),
            };
            respond(out, true, &body);
        }
        Some("sum") => {
            // the version-independent content checksum: the sweep's
            // bit-identity witness across idempotent writes
            let snap = shared.snapshot();
            respond(out, true, &format!("sum={:016x}", snap.checksum));
        }
        Some("status") => {
            let body = format!(
                "v={} in_flight={}",
                shared.snapshot().version,
                shared.in_flight.load(Ordering::SeqCst)
            );
            respond(out, true, &body);
        }
        Some("write") => {
            let count: u32 = words.next().and_then(|w| w.parse().ok()).unwrap_or(1);
            let seed: u64 = words.next().and_then(|w| w.parse().ok()).unwrap_or(7);
            // CAS admission, exactly SharedGenMapper::try_admit_write
            let mut current = shared.in_flight.load(Ordering::SeqCst);
            let admitted = loop {
                if current >= cfg.write_budget {
                    break false;
                }
                match shared.in_flight.compare_exchange(
                    current,
                    current + 1,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                ) {
                    Ok(_) => break true,
                    Err(now) => current = now,
                }
            };
            if !admitted {
                stats.shed_writes.fetch_add(1, Ordering::SeqCst);
                respond(out, false, "busy write budget exhausted; retry after backoff");
                return;
            }
            let version = shared.write(seed, count);
            shared.in_flight.fetch_sub(1, Ordering::SeqCst);
            respond(out, true, &format!("v={version}"));
        }
        _ => respond(out, false, "unknown endpoint"),
    }
}

/// The ConnGuard discipline in miniature: deadline on every read, a
/// length-capped accumulating line reader, eviction (not hanging) on
/// timeout or an over-budget line.
fn serve_connection(shared: &Shared, cfg: &ServerCfg, stats: &Stats, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(cfg.read_timeout));
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut writer = stream;
    let mut pending: Vec<u8> = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        // drain one complete line from the pending buffer first
        if let Some(pos) = pending.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = pending.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&line[..pos]).trim().to_string();
            if line == "quit" {
                return;
            }
            if !line.is_empty() {
                handle(shared, cfg, stats, &line, &mut writer);
            }
            continue;
        }
        if pending.len() > cfg.max_line {
            stats.oversized.fetch_add(1, Ordering::SeqCst);
            respond(&mut writer, false, "too-large request line over budget");
            return;
        }
        match reader.read(&mut buf) {
            Ok(0) => return,
            Ok(n) => pending.extend_from_slice(&buf[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                stats.timeouts.fetch_add(1, Ordering::SeqCst);
                respond(&mut writer, false, "timeout no complete request before deadline");
                return;
            }
            Err(_) => return,
        }
    }
}

struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    workers: Vec<thread::JoinHandle<()>>,
    stats: Arc<Stats>,
}

fn start_server(shared: Arc<Shared>, cfg: ServerCfg) -> Server {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");
    let stop = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(Stats::default());
    let mut workers = Vec::new();
    for _ in 0..cfg.threads {
        let listener = listener.try_clone().expect("clone listener");
        let shared = shared.clone();
        let stop = stop.clone();
        let stats = stats.clone();
        workers.push(thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => serve_connection(&shared, &cfg, &stats, stream),
                    Err(_) => break,
                }
            }
        }));
    }
    Server { addr, stop, workers, stats }
}

fn shutdown(server: Server) -> Arc<Stats> {
    server.stop.store(true, Ordering::SeqCst);
    for _ in 0..server.workers.len() {
        let _ = TcpStream::connect(server.addr);
    }
    for w in server.workers {
        let _ = w.join();
    }
    server.stats
}

// ---------------------------------------------------- chaos proxy --

/// `FaultNet` in miniature: one fault kind at one global op index
/// (forwarded chunks, both directions), firing at most once per proxy.
#[derive(Clone, Copy)]
enum Fault {
    Disconnect,
    Torn,
    Stall,
    Delay,
}

struct Proxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    fired: Arc<AtomicU64>,
    acceptor: thread::JoinHandle<()>,
    pumps: Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
}

fn sever(a: &TcpStream, b: &TcpStream) {
    let _ = a.shutdown(Shutdown::Both);
    let _ = b.shutdown(Shutdown::Both);
}

fn pump(
    mut src: TcpStream,
    mut dst: TcpStream,
    fault: Fault,
    at: u64,
    seed: u64,
    ops: Arc<AtomicU64>,
    fired: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
) {
    let _ = src.set_read_timeout(Some(Duration::from_millis(10)));
    let mut buf = [0u8; 4096];
    loop {
        if stop.load(Ordering::SeqCst) {
            return sever(&src, &dst);
        }
        let n = match src.read(&mut buf) {
            Ok(0) => return sever(&src, &dst),
            Ok(n) => n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => continue,
            Err(_) => return sever(&src, &dst),
        };
        let op = ops.fetch_add(1, Ordering::SeqCst) + 1;
        if op == at {
            fired.fetch_add(1, Ordering::SeqCst);
            match fault {
                Fault::Disconnect => return sever(&src, &dst),
                Fault::Torn => {
                    let keep = (seed.wrapping_mul(op) % n as u64) as usize;
                    let _ = dst.write_all(&buf[..keep]);
                    return sever(&src, &dst);
                }
                Fault::Stall => {
                    while !stop.load(Ordering::SeqCst) {
                        thread::sleep(Duration::from_millis(10));
                    }
                    return sever(&src, &dst);
                }
                Fault::Delay => thread::sleep(Duration::from_millis(40)),
            }
        }
        if dst.write_all(&buf[..n]).is_err() {
            return sever(&src, &dst);
        }
    }
}

fn start_proxy(upstream: SocketAddr, fault: Fault, at: u64, seed: u64) -> Proxy {
    let listener = TcpListener::bind("127.0.0.1:0").expect("proxy bind");
    let addr = listener.local_addr().expect("proxy addr");
    let stop = Arc::new(AtomicBool::new(false));
    let fired = Arc::new(AtomicU64::new(0));
    let ops = Arc::new(AtomicU64::new(0));
    let pumps: Arc<Mutex<Vec<thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let acceptor = {
        let stop = stop.clone();
        let fired = fired.clone();
        let pumps = pumps.clone();
        thread::spawn(move || loop {
            let Ok((client, _)) = listener.accept() else { return };
            if stop.load(Ordering::SeqCst) {
                return;
            }
            let Ok(server) = TcpStream::connect(upstream) else { continue };
            let _ = client.set_nodelay(true);
            let _ = server.set_nodelay(true);
            let (Ok(client2), Ok(server2)) = (client.try_clone(), server.try_clone()) else {
                continue;
            };
            let mut guard = pumps.lock().unwrap();
            for (src, dst) in [(client, server2), (server, client2)] {
                let (ops, fired, stop) = (ops.clone(), fired.clone(), stop.clone());
                guard.push(thread::spawn(move || {
                    pump(src, dst, fault, at, seed, ops, fired, stop)
                }));
            }
        })
    };
    Proxy { addr, stop, fired, acceptor, pumps }
}

fn stop_proxy(proxy: Proxy) -> u64 {
    proxy.stop.store(true, Ordering::SeqCst);
    let _ = TcpStream::connect(proxy.addr);
    let _ = proxy.acceptor.join();
    let handles: Vec<_> = proxy.pumps.lock().unwrap().drain(..).collect();
    for h in handles {
        let _ = h.join();
    }
    proxy.fired.load(Ordering::SeqCst)
}

// -------------------------------------------------------------- client --

/// One-shot call with a client-side deadline; errors are expected under
/// chaos and reported as None.
fn call(addr: SocketAddr, request: &str, deadline: Duration) -> Option<(bool, String)> {
    let mut stream = TcpStream::connect(addr).ok()?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(deadline));
    stream.write_all(format!("{request}\n").as_bytes()).ok()?;
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while head.len() < 64 {
        stream.read_exact(&mut byte).ok()?;
        if byte[0] == b'\n' {
            break;
        }
        head.push(byte[0]);
    }
    let head = String::from_utf8_lossy(&head);
    let mut parts = head.trim().splitn(2, ' ');
    let ok = parts.next()? == "ok";
    let len: usize = parts.next()?.parse().ok()?;
    if len > 1 << 20 {
        return None; // response cap, as read_response_with enforces
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body).ok()?;
    Some((ok, String::from_utf8_lossy(&body).into_owned()))
}

fn percentile(sorted_us: &[u64], p: usize) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    sorted_us[((sorted_us.len() - 1) * p) / 100]
}

// ---------------------------------------------------------- experiments --

const SWEEP_INDICES: u64 = 26;
const IDEMPOTENT_WRITE: &str = "write 500 777";
const OVERLOAD_CLIENTS: usize = 4;
const OVERLOAD_OPS: usize = 250;

struct SweepResult {
    points: u64,
    injected: u64,
    per_kind: [u64; 4],
}

/// Phase 1: the fault sweep. Every point must leave the server handing a
/// fresh connection the bit-identical content checksum at a monotone
/// version.
fn fault_sweep(addr: SocketAddr, reference_sum: &str, last_version: &mut u64) -> SweepResult {
    let kinds = [
        (Fault::Disconnect, "disconnect"),
        (Fault::Torn, "torn"),
        (Fault::Stall, "stall"),
        (Fault::Delay, "delay"),
    ];
    let mut result = SweepResult { points: 0, injected: 0, per_kind: [0; 4] };
    for (k, &(fault, name)) in kinds.iter().enumerate() {
        for idx in 1..=SWEEP_INDICES {
            let proxy = start_proxy(addr, fault, idx, 0x9e37_79b9 ^ idx);
            // drive a mix through the proxy until the fault fires; every
            // request is at least two proxied chunks
            for i in 0..80u64 {
                if proxy.fired.load(Ordering::SeqCst) >= 1 {
                    break;
                }
                let request = match i % 7 {
                    5 => IDEMPOTENT_WRITE,
                    0 | 3 => "sum",
                    1 => "status",
                    _ => "query 17",
                };
                let _ = call(proxy.addr, request, Duration::from_millis(150));
            }
            let fired = stop_proxy(proxy);
            assert!(fired >= 1, "{}@{}: fault never fired", name, idx);
            result.points += 1;
            result.injected += fired;
            result.per_kind[k] += fired;
            // recovery probe on a fresh, direct connection
            let (ok, sum) = call(addr, "sum", Duration::from_secs(2))
                .unwrap_or_else(|| panic!("{}@{}: server not serving", name, idx));
            assert!(
                ok && sum == reference_sum,
                "{}@{}: content changed: {}",
                name,
                idx,
                sum
            );
            let (ok, status) = call(addr, "status", Duration::from_secs(2))
                .unwrap_or_else(|| panic!("{}@{}: status failed", name, idx));
            let version: u64 = status
                .split_whitespace()
                .find_map(|w| w.strip_prefix("v=").and_then(|n| n.parse().ok()))
                .expect("version in status");
            assert!(
                ok && version >= *last_version,
                "{}@{}: version regressed",
                name,
                idx
            );
            *last_version = version;
        }
    }
    result
}

struct OverloadResult {
    read_p50_us: u64,
    read_p99_us: u64,
    shed: u64,
    busy_retries: u64,
    writes_done: u64,
}

/// Phase 2: write-heavy load against a given admission budget. Busy
/// writes are retried with capped backoff (the `call_retry` policy);
/// reads must always succeed, and their latency is the headline number.
fn overload(shared: &Arc<Shared>, budget: usize) -> OverloadResult {
    let server = start_server(
        shared.clone(),
        ServerCfg {
            threads: 4,
            read_timeout: Duration::from_secs(5),
            max_line: 64 * 1024,
            write_budget: budget,
        },
    );
    let addr = server.addr;
    let retries = Arc::new(AtomicU64::new(0));
    let writes_done = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..OVERLOAD_CLIENTS)
        .map(|c| {
            let retries = retries.clone();
            let writes_done = writes_done.clone();
            thread::spawn(move || {
                let mut rng = XorShift(0xfeed_f00d + c as u64);
                let mut read_us = Vec::new();
                for _ in 0..OVERLOAD_OPS {
                    if rng.next() % 2 == 0 {
                        // heavy write; on busy, retry up to 3 times with
                        // doubling backoff
                        let mut backoff = Duration::from_millis(5);
                        for attempt in 0..3 {
                            let resp = call(
                                addr,
                                &format!("write 20000 {}", rng.next() | 1),
                                Duration::from_secs(5),
                            );
                            match resp {
                                Some((true, _)) => {
                                    writes_done.fetch_add(1, Ordering::SeqCst);
                                    break;
                                }
                                Some((false, body)) if body.starts_with("busy") && attempt < 2 => {
                                    retries.fetch_add(1, Ordering::SeqCst);
                                    thread::sleep(backoff);
                                    backoff = (backoff * 2).min(Duration::from_millis(40));
                                }
                                _ => break,
                            }
                        }
                    } else {
                        let start = Instant::now();
                        let (ok, _) = call(addr, "query 17", Duration::from_secs(5))
                            .expect("read under overload");
                        assert!(ok, "reads must always succeed");
                        read_us.push(start.elapsed().as_micros() as u64);
                    }
                }
                read_us
            })
        })
        .collect();
    let mut read_us = Vec::new();
    for h in handles {
        read_us.extend(h.join().expect("overload client"));
    }
    read_us.sort_unstable();
    let stats = shutdown(server);
    OverloadResult {
        read_p50_us: percentile(&read_us, 50),
        read_p99_us: percentile(&read_us, 99),
        shed: stats.shed_writes.load(Ordering::SeqCst),
        busy_retries: retries.load(Ordering::SeqCst),
        writes_done: writes_done.load(Ordering::SeqCst),
    }
}

fn main() {
    let shared = Arc::new(Shared::new());
    shared.write(42, 5_000);
    // one idempotent write up front: repeating it mid-sweep leaves the
    // content checksum bit-identical
    shared.write(777, 500);

    let server = start_server(
        shared.clone(),
        ServerCfg {
            threads: 4,
            read_timeout: Duration::from_millis(300),
            max_line: 64 * 1024,
            write_budget: 2,
        },
    );
    let addr = server.addr;
    let (ok, reference_sum) = call(addr, "sum", Duration::from_secs(2)).expect("reference");
    assert!(ok);
    let (_, status) = call(addr, "status", Duration::from_secs(2)).expect("status");
    let mut last_version: u64 = status
        .split_whitespace()
        .find_map(|w| w.strip_prefix("v=").and_then(|n| n.parse().ok()))
        .expect("version");
    println!(
        "chaos harness: sweeping 4 fault kinds x {SWEEP_INDICES} op indices \
         against {addr} (reference {reference_sum})"
    );

    let sweep = fault_sweep(addr, &reference_sum, &mut last_version);
    assert!(sweep.points >= 100, "sweep must cover at least 100 points");
    let sweep_stats = shutdown(server);
    println!(
        "  sweep: {} points, {} faults injected (disconnect {}, torn {}, stall {}, delay {}); \
         all recovered bit-identical; server evicted {} timeouts",
        sweep.points,
        sweep.injected,
        sweep.per_kind[0],
        sweep.per_kind[1],
        sweep.per_kind[2],
        sweep.per_kind[3],
        sweep_stats.timeouts.load(Ordering::SeqCst),
    );

    let with_shedding = overload(&shared, 1);
    let without_shedding = overload(&shared, usize::MAX);
    assert!(with_shedding.shed > 0, "budget 1 under write-heavy load must shed");
    assert_eq!(without_shedding.shed, 0, "unbounded budget never sheds");
    assert!(with_shedding.writes_done > 0, "some writes must get through");
    println!(
        "  overload (shedding on,  budget 1):   read p50 {}us p99 {}us; {} shed, \
         {} busy-retries, {} writes done",
        with_shedding.read_p50_us,
        with_shedding.read_p99_us,
        with_shedding.shed,
        with_shedding.busy_retries,
        with_shedding.writes_done,
    );
    println!(
        "  overload (shedding off, unbounded):  read p50 {}us p99 {}us; {} writes done",
        without_shedding.read_p50_us,
        without_shedding.read_p99_us,
        without_shedding.writes_done,
    );

    let json = format!(
        "{{\n  \"generator\": \"scripts/chaos_harness.rs (standalone hardened-service replica; \
         the sweep of record is `cargo test -p serve --test chaos`)\",\n\
         \x20 \"fault_sweep\": {{\n\
         \x20   \"points\": {},\n\
         \x20   \"injected\": {},\n\
         \x20   \"per_kind\": {{\"disconnect\": {}, \"torn\": {}, \"stall\": {}, \"delay\": {}}},\n\
         \x20   \"recovered_bit_identical\": {},\n\
         \x20   \"server_timeout_evictions\": {}\n\
         \x20 }},\n\
         \x20 \"overload\": {{\n\
         \x20   \"shedding_on\": {{\"budget\": 1, \"read_latency_us\": {{\"p50\": {}, \"p99\": {}}}, \
         \"shed_writes\": {}, \"busy_retries\": {}, \"writes_done\": {}}},\n\
         \x20   \"shedding_off\": {{\"budget\": \"unbounded\", \"read_latency_us\": {{\"p50\": {}, \
         \"p99\": {}}}, \"shed_writes\": 0, \"writes_done\": {}}}\n\
         \x20 }},\n\
         \x20 \"note\": \"every sweep point ends with a fresh direct connection returning the \
         bit-identical content checksum at a monotone version; overload compares read latency \
         under a write-heavy mix with the admission budget at 1 vs unbounded\"\n}}\n",
        sweep.points,
        sweep.injected,
        sweep.per_kind[0],
        sweep.per_kind[1],
        sweep.per_kind[2],
        sweep.per_kind[3],
        sweep.points,
        sweep_stats.timeouts.load(Ordering::SeqCst),
        with_shedding.read_p50_us,
        with_shedding.read_p99_us,
        with_shedding.shed,
        with_shedding.busy_retries,
        with_shedding.writes_done,
        without_shedding.read_p50_us,
        without_shedding.read_p99_us,
        without_shedding.writes_done,
    );
    std::fs::write("BENCH_chaos.json", &json).expect("write BENCH_chaos.json");
    println!("\nwrote BENCH_chaos.json");
}
