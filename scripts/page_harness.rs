//! Standalone, dependency-free replica of the paged-storage machinery
//! (`relstore::page` slotted pages + `relstore::pager` buffer pool), for
//! environments where the full workspace cannot be built (no crates.io
//! access). It
//!
//! 1. measures checkpoint write volume against the fraction of dirty
//!    pages — the dirty-page checkpoint must scale with *change* size,
//!    not table size (DESIGN.md §12),
//! 2. measures indexed point-lookup latency and pool hit rate at
//!    dataset/pool ratios 1x / 10x / 100x, asserting resident memory
//!    stays bounded by the pool while every lookup returns the right row,
//! 3. writes `BENCH_page.json`.
//!
//! Build & run:  rustc -O scripts/page_harness.rs -o /tmp/page_harness && /tmp/page_harness
//!
//! The logic below must stay in sync with `crates/relstore/src/page.rs`
//! (slotted layout, `RSPG` magic, per-page CRC) and
//! `crates/relstore/src/pager.rs` (pin counts, clock eviction,
//! copy-on-write writeback, flush-before-directory checkpoint); it is a
//! measurement stand-in, not the implementation of record. Prefer
//! `cargo test -p relstore` whenever the workspace builds.

use std::collections::HashMap;
use std::convert::TryInto;
use std::time::Instant;

// -------------------------------------------------------------- crc32 --

fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xffff_ffff;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

// ------------------------------------------------------- slotted pages --

const PAGE_MAGIC: &[u8; 4] = b"RSPG";
/// Target page size; with the fixed row payload below each page holds
/// `ROWS_PER_PAGE` rows.
const PAGE_BYTES: usize = 4096;
const ROW_BYTES: usize = 56;
const ROWS_PER_PAGE: usize = (PAGE_BYTES - 16) / (ROW_BYTES + 4);

/// One sealed page: a contiguous row-id range starting at `base`.
#[derive(Clone)]
struct Page {
    base: u64,
    rows: Vec<Vec<u8>>,
}

fn encode_page(page: &Page) -> Vec<u8> {
    let mut body = Vec::new();
    body.extend_from_slice(&page.base.to_le_bytes());
    body.extend_from_slice(&(page.rows.len() as u32).to_le_bytes());
    for row in &page.rows {
        body.extend_from_slice(&(row.len() as u32).to_le_bytes());
        body.extend_from_slice(row);
    }
    let mut out = Vec::with_capacity(body.len() + 8);
    out.extend_from_slice(PAGE_MAGIC);
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

fn decode_page(data: &[u8]) -> Option<Page> {
    if data.get(..4)? != PAGE_MAGIC {
        return None;
    }
    let crc = u32::from_le_bytes(data.get(4..8)?.try_into().ok()?);
    let body = data.get(8..)?;
    if crc32(body) != crc {
        return None;
    }
    let base = u64::from_le_bytes(body.get(..8)?.try_into().ok()?);
    let slots = u32::from_le_bytes(body.get(8..12)?.try_into().ok()?) as usize;
    let mut rows = Vec::with_capacity(slots);
    let mut at = 12usize;
    for _ in 0..slots {
        let len = u32::from_le_bytes(body.get(at..at + 4)?.try_into().ok()?) as usize;
        rows.push(body.get(at + 4..at + 4 + len)?.to_vec());
        at += 4 + len;
    }
    Some(Page { base, rows })
}

fn make_row(id: u64) -> Vec<u8> {
    let mut row = vec![0u8; ROW_BYTES];
    row[..8].copy_from_slice(&id.to_le_bytes());
    // deterministic payload so lookups can verify content integrity
    for (i, b) in row[8..].iter_mut().enumerate() {
        *b = (id as usize).wrapping_mul(31).wrapping_add(i) as u8;
    }
    row
}

// -------------------------------------------------------- heap + pager --

/// Append-only heap file (in memory; `synced_len` models fdatasync).
#[derive(Default)]
struct Heap {
    data: Vec<u8>,
    synced_len: usize,
}

struct Frame {
    page: Page,
    dirty: bool,
    pinned: bool,
    referenced: bool,
}

/// Buffer pool over the heap: page table, pins, clock eviction,
/// copy-on-write writeback — the shape of `relstore::pager::Pager`.
struct Pager {
    heap: Heap,
    /// page_no -> (offset, len) of the newest durable image, if any.
    locs: Vec<Option<(u64, u32)>>,
    frames: HashMap<usize, Frame>,
    clock: Vec<usize>,
    hand: usize,
    pool_pages: usize,
    // stats
    hits: u64,
    misses: u64,
    evictions: u64,
    writeback_bytes: u64,
    max_resident: usize,
}

impl Pager {
    fn new(pool_pages: usize) -> Pager {
        Pager {
            heap: Heap::default(),
            locs: Vec::new(),
            frames: HashMap::new(),
            clock: Vec::new(),
            hand: 0,
            pool_pages,
            hits: 0,
            misses: 0,
            evictions: 0,
            writeback_bytes: 0,
            max_resident: 0,
        }
    }

    fn append_image(heap: &mut Heap, page: &Page) -> (u64, u32) {
        let image = encode_page(page);
        let offset = heap.data.len() as u64;
        heap.data.extend_from_slice(&image);
        // deliberately NOT synced: durability comes from checkpoint
        (offset, image.len() as u32)
    }

    /// Make room for one more frame by clock-evicting an unpinned page.
    /// Like the real pager, pinned pages can overcommit the pool: if a
    /// full sweep finds nothing evictable, the install proceeds anyway.
    fn evict_for_space(&mut self) {
        let mut spins = 0usize;
        while self.frames.len() >= self.pool_pages && !self.clock.is_empty() {
            if spins > 2 * self.clock.len() {
                return; // everything pinned: overcommit
            }
            spins += 1;
            let idx = self.hand % self.clock.len();
            let page_no = self.clock[idx];
            let evict = {
                let f = self.frames.get_mut(&page_no).expect("clock entry resident");
                if f.pinned || f.referenced {
                    f.referenced = false;
                    false
                } else {
                    true
                }
            };
            if evict {
                let frame = self.frames.remove(&page_no).expect("evicting resident");
                if frame.dirty {
                    let loc = Self::append_image(&mut self.heap, &frame.page);
                    self.writeback_bytes += loc.1 as u64;
                    self.locs[page_no] = Some(loc);
                }
                self.clock.swap_remove(idx);
                self.evictions += 1;
                spins = 0;
            } else {
                self.hand = self.hand.wrapping_add(1);
            }
        }
    }

    /// Install a freshly sealed page (dirty, no durable image yet).
    fn install(&mut self, page_no: usize, page: Page) {
        self.evict_for_space();
        if self.locs.len() <= page_no {
            self.locs.resize(page_no + 1, None);
        }
        self.frames.insert(
            page_no,
            Frame {
                page,
                dirty: true,
                pinned: false,
                referenced: true,
            },
        );
        self.clock.push(page_no);
        self.max_resident = self.max_resident.max(self.frames.len());
    }

    /// Pin a page into the pool, faulting it in from the heap if absent.
    fn pin(&mut self, page_no: usize) -> &Page {
        if !self.frames.contains_key(&page_no) {
            self.misses += 1;
            self.evict_for_space();
            let (offset, len) = self.locs[page_no].expect("page has a durable image");
            let image = &self.heap.data[offset as usize..(offset + len as u64) as usize];
            let page = decode_page(image).expect("CRC-valid page image");
            self.frames.insert(
                page_no,
                Frame {
                    page,
                    dirty: false,
                    pinned: true,
                    referenced: true,
                },
            );
            self.clock.push(page_no);
            self.max_resident = self.max_resident.max(self.frames.len());
        } else {
            self.hits += 1;
            let f = self.frames.get_mut(&page_no).expect("just checked");
            f.pinned = true;
            f.referenced = true;
        }
        &self.frames[&page_no].page
    }

    fn unpin(&mut self, page_no: usize) {
        self.frames.get_mut(&page_no).expect("unpin resident").pinned = false;
    }

    /// Mutate one row of a page in place, marking the frame dirty.
    fn mutate(&mut self, page_no: usize, slot: usize, row: Vec<u8>) {
        self.pin(page_no);
        let f = self.frames.get_mut(&page_no).expect("pinned resident");
        f.page.rows[slot] = row;
        f.dirty = true;
        f.pinned = false;
    }

    /// Dirty-page checkpoint: flush every dirty frame, fsync the heap,
    /// then "publish" a directory of page locations. Returns the bytes
    /// this checkpoint wrote (dirty images + directory).
    fn checkpoint(&mut self) -> u64 {
        let mut bytes = 0u64;
        let mut dirty: Vec<usize> = self
            .frames
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(&n, _)| n)
            .collect();
        dirty.sort_unstable();
        for page_no in dirty {
            let f = self.frames.get_mut(&page_no).expect("dirty frame resident");
            let loc = Self::append_image(&mut self.heap, &f.page);
            bytes += loc.1 as u64;
            self.locs[page_no] = Some(loc);
            f.dirty = false;
        }
        // heap is synced BEFORE the directory referencing it is published
        self.heap.synced_len = self.heap.data.len();
        let directory_bytes = 8 + 12 * self.locs.len() as u64;
        bytes + directory_bytes
    }
}

// ------------------------------------------------------------- dataset --

/// A paged table of `pages * ROWS_PER_PAGE` fixed-size rows.
struct Dataset {
    pager: Pager,
    pages: usize,
}

impl Dataset {
    fn build(pages: usize, pool_pages: usize) -> Dataset {
        let mut pager = Pager::new(pool_pages);
        for page_no in 0..pages {
            let base = (page_no * ROWS_PER_PAGE) as u64;
            let rows = (0..ROWS_PER_PAGE).map(|i| make_row(base + i as u64)).collect();
            pager.install(page_no, Page { base, rows });
        }
        pager.checkpoint();
        Dataset { pager, pages }
    }

    fn rows(&self) -> u64 {
        (self.pages * ROWS_PER_PAGE) as u64
    }

    /// Indexed point lookup: row id -> page via arithmetic (the replica's
    /// stand-in for the B-tree probe), pin, copy the row out, unpin.
    fn get(&mut self, row_id: u64) -> Vec<u8> {
        let page_no = row_id as usize / ROWS_PER_PAGE;
        let slot = row_id as usize % ROWS_PER_PAGE;
        let page = self.pager.pin(page_no);
        assert_eq!(page.base, (page_no * ROWS_PER_PAGE) as u64, "page base");
        let row = page.rows[slot].clone();
        self.pager.unpin(page_no);
        row
    }

    fn update(&mut self, row_id: u64, stamp: u8) {
        let page_no = row_id as usize / ROWS_PER_PAGE;
        let slot = row_id as usize % ROWS_PER_PAGE;
        let mut row = make_row(row_id);
        row[ROW_BYTES - 1] = stamp;
        self.pager.mutate(page_no, slot, row);
    }
}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

// --------------------------------------------------------- experiments --

struct CheckpointSample {
    dirty_fraction: f64,
    dirty_pages: usize,
    checkpoint_bytes: u64,
    full_rewrite_bytes: u64,
}

/// Checkpoint volume vs dirty fraction: dirty `f` of the pages, then
/// checkpoint, on a pool that holds the whole dataset (so writeback noise
/// from eviction does not pollute the measurement).
fn checkpoint_experiment() -> Vec<CheckpointSample> {
    const PAGES: usize = 256;
    let full_rewrite_bytes = (PAGES * (encode_page(&Page {
        base: 0,
        rows: (0..ROWS_PER_PAGE).map(|i| make_row(i as u64)).collect(),
    })
    .len())) as u64;
    let mut out = Vec::new();
    for &fraction in &[0.0f64, 0.01, 0.05, 0.25, 0.5, 1.0] {
        let mut ds = Dataset::build(PAGES, PAGES + 1);
        let dirty_pages = (PAGES as f64 * fraction).round() as usize;
        let mut rng = 0x1234_5678_9abc_def0u64 | 1;
        for page in 0..dirty_pages {
            // one random row per target page
            let slot = xorshift(&mut rng) as usize % ROWS_PER_PAGE;
            ds.update((page * ROWS_PER_PAGE + slot) as u64, 0xCC);
        }
        let checkpoint_bytes = ds.pager.checkpoint();
        out.push(CheckpointSample {
            dirty_fraction: fraction,
            dirty_pages,
            checkpoint_bytes,
            full_rewrite_bytes,
        });
    }
    // The invariant the tentpole exists for: write volume tracks dirty
    // pages, not dataset size. A 1%-dirty checkpoint must cost well under
    // a tenth of a full rewrite.
    let one_pct = &out[1];
    assert!(
        one_pct.checkpoint_bytes * 10 < one_pct.full_rewrite_bytes,
        "1%-dirty checkpoint wrote {} of {} full-rewrite bytes",
        one_pct.checkpoint_bytes,
        one_pct.full_rewrite_bytes
    );
    out
}

struct LookupSample {
    ratio: usize,
    dataset_pages: usize,
    pool_pages: usize,
    lookups: u64,
    hit_rate: f64,
    mean_lookup_us: f64,
    max_resident_pages: usize,
}

/// Point-lookup latency and residency at dataset/pool ratios 1x/10x/100x.
fn lookup_experiment() -> Vec<LookupSample> {
    const POOL: usize = 32;
    const LOOKUPS: u64 = 50_000;
    let mut out = Vec::new();
    for &ratio in &[1usize, 10, 100] {
        let pages = POOL * ratio;
        let mut ds = Dataset::build(pages, POOL);
        // drop build-time stats; measure steady-state lookups only
        ds.pager.hits = 0;
        ds.pager.misses = 0;
        ds.pager.max_resident = ds.pager.frames.len();
        let rows = ds.rows();
        let mut rng = 0x9e37_79b9_7f4a_7c15u64 | 1;
        let t0 = Instant::now();
        for _ in 0..LOOKUPS {
            let id = xorshift(&mut rng) % rows;
            let row = ds.get(id);
            assert_eq!(row, make_row(id), "lookup returned a wrong or torn row");
        }
        let elapsed = t0.elapsed();
        let p = &ds.pager;
        assert!(
            p.max_resident <= POOL,
            "ratio {ratio}: {} resident pages exceeds the {POOL}-page pool",
            p.max_resident
        );
        out.push(LookupSample {
            ratio,
            dataset_pages: pages,
            pool_pages: POOL,
            lookups: LOOKUPS,
            hit_rate: p.hits as f64 / (p.hits + p.misses) as f64,
            mean_lookup_us: elapsed.as_secs_f64() * 1e6 / LOOKUPS as f64,
            max_resident_pages: p.max_resident,
        });
    }
    out
}

// --------------------------------------------------------------- main --

fn main() {
    println!(
        "page harness: {PAGE_BYTES}-byte pages, {ROWS_PER_PAGE} rows/page ({ROW_BYTES}-byte rows)"
    );

    println!("checkpoint bytes vs dirty fraction (256-page dataset):");
    let checkpoints = checkpoint_experiment();
    for s in &checkpoints {
        println!(
            "  dirty {:>5.1}% ({:>3} pages) -> {:>8} bytes ({:.1}% of full rewrite)",
            s.dirty_fraction * 100.0,
            s.dirty_pages,
            s.checkpoint_bytes,
            s.checkpoint_bytes as f64 * 100.0 / s.full_rewrite_bytes as f64
        );
    }

    println!("indexed point lookups (32-page pool):");
    let lookups = lookup_experiment();
    for s in &lookups {
        println!(
            "  {:>3}x pool ({:>4} pages) -> {:.2}us/lookup, {:.1}% hit rate, {} pages max resident",
            s.ratio,
            s.dataset_pages,
            s.mean_lookup_us,
            s.hit_rate * 100.0,
            s.max_resident_pages
        );
    }

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"page_bytes\": {PAGE_BYTES},\n"));
    json.push_str(&format!("  \"rows_per_page\": {ROWS_PER_PAGE},\n"));
    json.push_str("  \"checkpoint_vs_dirty\": [\n");
    for (i, s) in checkpoints.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"dirty_fraction\": {:.2}, \"dirty_pages\": {}, \"checkpoint_bytes\": {}, \"full_rewrite_bytes\": {}}}{}\n",
            s.dirty_fraction,
            s.dirty_pages,
            s.checkpoint_bytes,
            s.full_rewrite_bytes,
            if i + 1 < checkpoints.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"lookup_at_ratio\": [\n");
    for (i, s) in lookups.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"ratio\": {}, \"dataset_pages\": {}, \"pool_pages\": {}, \"lookups\": {}, \"hit_rate\": {:.4}, \"mean_lookup_us\": {:.3}, \"max_resident_pages\": {}}}{}\n",
            s.ratio,
            s.dataset_pages,
            s.pool_pages,
            s.lookups,
            s.hit_rate,
            s.mean_lookup_us,
            s.max_resident_pages,
            if i + 1 < lookups.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_page.json", &json).expect("write BENCH_page.json");
    println!("\nwrote BENCH_page.json");
}
