//! Standalone, dependency-free replica of the cost-based mapping-algebra
//! planner (`operators::plan`), for environments where the full workspace
//! cannot be built (no crates.io access). It
//!
//! 1. verifies that planned execution is bit-identical to the naive
//!    caller-order fold on every scenario it times (the same invariant
//!    `crates/operators/tests/plan_prop.rs` pins in-tree),
//! 2. measures deep Compose chains (lengths 3–6, fan-out blowup early and
//!    a selective hop late — the shape greedy reordering exists for),
//! 3. measures wide GenerateView pipelines (8+ targets sharing one path
//!    prefix — the shape the shared-prefix memo exists for),
//! 4. measures strategy choice under parallel config (small skewed steps
//!    where the legacy heuristic hash-joins everything and the cost model
//!    picks merge/gallop instead),
//! 5. writes `BENCH_plan.json` with naive vs planned timings and the
//!    chosen-strategy counts per scenario.
//!
//! Build & run:  rustc -O scripts/plan_harness.rs -o /tmp/plan_harness && /tmp/plan_harness
//!
//! The logic below must stay in sync with `crates/operators/src/plan.rs`
//! and `crates/operators/src/compose.rs`; it is a measurement stand-in,
//! not the implementation of record.

use std::collections::HashMap;
use std::time::Instant;

#[derive(Debug, Clone, Copy, PartialEq)]
struct Association {
    from: u64,
    to: u64,
    evidence: Option<f64>,
}

impl Association {
    fn effective_evidence(&self) -> f64 {
        self.evidence.unwrap_or(1.0)
    }
}

/// `Mapping::dedup`: canonical unstable sort + adjacent dedup.
fn dedup(pairs: &mut Vec<Association>) {
    pairs.sort_unstable_by(|a, b| {
        (a.from, a.to)
            .cmp(&(b.from, b.to))
            .then_with(|| b.effective_evidence().total_cmp(&a.effective_evidence()))
            .then_with(|| a.evidence.is_some().cmp(&b.evidence.is_some()))
    });
    pairs.dedup_by_key(|a| (a.from, a.to));
}

// ------------------------------------------------------------------ CSR

/// Replica of `gam::MappingIndex` with the planner-facing stats.
struct MappingIndex {
    fwd_keys: Vec<u64>,
    fwd_offsets: Vec<u32>,
    fwd_to: Vec<u64>,
    inv_keys: Vec<u64>,
    inv_offsets: Vec<u32>,
    inv_from: Vec<u64>,
    inv_pos: Vec<u32>,
    evidence: Vec<f64>,
    fact_mask: Vec<u64>,
}

impl MappingIndex {
    fn build(mut pairs: Vec<Association>) -> Self {
        dedup(&mut pairs);
        let n = pairs.len();
        let mut fwd_keys = Vec::new();
        let mut fwd_offsets = vec![0u32];
        let mut fwd_to = Vec::with_capacity(n);
        let mut evidence = Vec::with_capacity(n);
        let mut fact_mask = vec![0u64; n.div_ceil(64).max(1)];
        for (i, a) in pairs.iter().enumerate() {
            if fwd_keys.last() != Some(&a.from) {
                if !fwd_keys.is_empty() {
                    fwd_offsets.push(fwd_to.len() as u32);
                }
                fwd_keys.push(a.from);
            }
            fwd_to.push(a.to);
            evidence.push(a.effective_evidence());
            if a.evidence.is_none() {
                fact_mask[i / 64] |= 1 << (i % 64);
            }
        }
        fwd_offsets.push(fwd_to.len() as u32);

        let mut by_to: Vec<(u64, u32)> = fwd_to
            .iter()
            .enumerate()
            .map(|(p, &t)| (t, p as u32))
            .collect();
        by_to.sort_unstable();
        let mut inv_keys = Vec::new();
        let mut inv_offsets = vec![0u32];
        let mut inv_from = Vec::with_capacity(n);
        let mut inv_pos = Vec::with_capacity(n);
        for &(t, p) in &by_to {
            if inv_keys.last() != Some(&t) {
                if !inv_keys.is_empty() {
                    inv_offsets.push(inv_from.len() as u32);
                }
                inv_keys.push(t);
            }
            inv_from.push(pairs[p as usize].from);
            inv_pos.push(p);
        }
        inv_offsets.push(inv_from.len() as u32);

        MappingIndex {
            fwd_keys,
            fwd_offsets,
            fwd_to,
            inv_keys,
            inv_offsets,
            inv_from,
            inv_pos,
            evidence,
            fact_mask,
        }
    }

    fn len(&self) -> usize {
        self.fwd_to.len()
    }

    fn evidence_at(&self, p: usize) -> Option<f64> {
        if self.fact_mask[p / 64] & (1 << (p % 64)) != 0 {
            None
        } else {
            Some(self.evidence[p])
        }
    }

    fn fwd_range(&self, i: usize) -> std::ops::Range<usize> {
        self.fwd_offsets[i] as usize..self.fwd_offsets[i + 1] as usize
    }

    fn inv_range(&self, i: usize) -> std::ops::Range<usize> {
        self.inv_offsets[i] as usize..self.inv_offsets[i + 1] as usize
    }

    fn to_pairs(&self) -> Vec<Association> {
        let mut out = Vec::with_capacity(self.len());
        for i in 0..self.fwd_keys.len() {
            for p in self.fwd_range(i) {
                out.push(Association {
                    from: self.fwd_keys[i],
                    to: self.fwd_to[p],
                    evidence: self.evidence_at(p),
                });
            }
        }
        out
    }

    /// `IndexStats::avg_inv_fanout` / `avg_fwd_fanout`.
    fn avg_inv_fanout(&self) -> f64 {
        if self.inv_keys.is_empty() {
            0.0
        } else {
            self.len() as f64 / self.inv_keys.len() as f64
        }
    }

    fn avg_fwd_fanout(&self) -> f64 {
        if self.fwd_keys.is_empty() {
            0.0
        } else {
            self.len() as f64 / self.fwd_keys.len() as f64
        }
    }
}

// ------------------------------------------------------- cost model

/// `plan::cost::GALLOP_RATIO` / `PARALLEL_THRESHOLD`.
const GALLOP_RATIO: usize = 16;
const PARALLEL_THRESHOLD: usize = 8_192;

/// `plan::cost::estimate_join`: joinable middle keys × average fanouts.
fn estimate_join(l: &MappingIndex, r: &MappingIndex) -> f64 {
    let mids = l.inv_keys.len().min(r.fwd_keys.len());
    mids as f64 * l.avg_inv_fanout() * r.avg_fwd_fanout()
}

#[derive(Clone, Copy, PartialEq)]
enum Strategy {
    Merge,
    Gallop(bool, bool),
    Hash(usize),
}

/// `plan::cost::choose_strategy`.
fn choose_strategy(l: &MappingIndex, r: &MappingIndex, jobs: usize) -> Strategy {
    let est = estimate_join(l, r);
    if jobs > 1 && (l.len().max(est as usize)) >= PARALLEL_THRESHOLD {
        let parts = jobs.min(l.inv_keys.len().max(1)).min(l.len().max(1));
        if parts > 1 {
            return Strategy::Hash(parts);
        }
    }
    let gl = l.inv_keys.len() > r.fwd_keys.len().saturating_mul(GALLOP_RATIO);
    let gr = r.fwd_keys.len() > l.inv_keys.len().saturating_mul(GALLOP_RATIO);
    if gl || gr {
        Strategy::Gallop(gl, gr)
    } else {
        Strategy::Merge
    }
}

/// The legacy (pre-planner) per-join heuristic: hash whenever parallel
/// workers are available, otherwise merge with the size-ratio gallop.
fn legacy_strategy(l: &MappingIndex, r: &MappingIndex, jobs: usize) -> Strategy {
    if jobs > 1 && l.len() > 1 {
        return Strategy::Hash(jobs);
    }
    let gl = l.inv_keys.len() > r.fwd_keys.len().saturating_mul(GALLOP_RATIO);
    let gr = r.fwd_keys.len() > l.inv_keys.len().saturating_mul(GALLOP_RATIO);
    if gl || gr {
        Strategy::Gallop(gl, gr)
    } else {
        Strategy::Merge
    }
}

// ------------------------------------------------------------- joins

fn gallop(keys: &[u64], start: usize, target: u64) -> usize {
    let mut step = 1usize;
    while start + step < keys.len() && keys[start + step] < target {
        step <<= 1;
    }
    let lo = start + (step >> 1);
    let hi = (start + step).min(keys.len());
    lo + keys[lo..hi].partition_point(|&k| k < target)
}

fn emit_match(
    left: &MappingIndex,
    right: &MappingIndex,
    i: usize,
    j: usize,
    out: &mut Vec<Association>,
) {
    for p in left.inv_range(i) {
        let lpos = left.inv_pos[p] as usize;
        let l_from = left.inv_from[p];
        let l_ev = left.evidence_at(lpos);
        for q in right.fwd_range(j) {
            let evidence = match (l_ev, right.evidence_at(q)) {
                (None, None) => None,
                _ => Some(left.evidence[lpos] * right.evidence[q]),
            };
            out.push(Association {
                from: l_from,
                to: right.fwd_to[q],
                evidence,
            });
        }
    }
}

/// `compose::merge_join_idx` with explicit gallop flags.
fn merge_join(left: &MappingIndex, right: &MappingIndex, gl: bool, gr: bool) -> MappingIndex {
    let lk = &left.inv_keys;
    let rk = &right.fwd_keys;
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < lk.len() && j < rk.len() {
        if lk[i] < rk[j] {
            i = if gl { gallop(lk, i, rk[j]) } else { i + 1 };
        } else if lk[i] > rk[j] {
            j = if gr { gallop(rk, j, lk[i]) } else { j + 1 };
        } else {
            emit_match(left, right, i, j, &mut out);
            i += 1;
            j += 1;
        }
    }
    MappingIndex::build(out)
}

/// `compose::hash_join_idx`: partition the left pairs, probe a map built
/// from the right side, one thread per partition.
fn hash_join(left: &MappingIndex, right: &MappingIndex, jobs: usize) -> MappingIndex {
    let lp = left.to_pairs();
    let rp = right.to_pairs();
    let mut by_mid: HashMap<u64, Vec<&Association>> = HashMap::with_capacity(rp.len());
    for a in &rp {
        by_mid.entry(a.from).or_default().push(a);
    }
    let probe = |chunk: &[Association]| {
        let mut out = Vec::new();
        for l in chunk {
            if let Some(ms) = by_mid.get(&l.to) {
                for r in ms {
                    let evidence = match (l.evidence, r.evidence) {
                        (None, None) => None,
                        _ => Some(l.effective_evidence() * r.effective_evidence()),
                    };
                    out.push(Association {
                        from: l.from,
                        to: r.to,
                        evidence,
                    });
                }
            }
        }
        out
    };
    let parts: Vec<Vec<Association>> = if jobs <= 1 || lp.len() <= 1 {
        vec![probe(&lp)]
    } else {
        let chunk = lp.len().div_ceil(jobs.min(lp.len()));
        std::thread::scope(|scope| {
            let probe = &probe;
            let handles: Vec<_> = lp
                .chunks(chunk)
                .map(|c| scope.spawn(move || probe(c)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    };
    let mut pairs = Vec::with_capacity(parts.iter().map(Vec::len).sum());
    for p in parts {
        pairs.extend(p);
    }
    MappingIndex::build(pairs)
}

fn join_with(l: &MappingIndex, r: &MappingIndex, s: Strategy) -> MappingIndex {
    match s {
        Strategy::Merge => merge_join(l, r, false, false),
        Strategy::Gallop(gl, gr) => merge_join(l, r, gl, gr),
        Strategy::Hash(jobs) => hash_join(l, r, jobs),
    }
}

#[derive(Default, Clone)]
struct Counts {
    merge: usize,
    gallop: usize,
    hash: usize,
}

impl Counts {
    fn tally(&mut self, s: Strategy) {
        match s {
            Strategy::Merge => self.merge += 1,
            Strategy::Gallop(..) => self.gallop += 1,
            Strategy::Hash(_) => self.hash += 1,
        }
    }
}

// ------------------------------------------------------------ pipelines

/// Naive chain: caller-order left fold, legacy per-join heuristic —
/// replica of `compose::fold_chain_idx` under `plan: false`.
fn naive_chain(steps: &[MappingIndex], jobs: usize, counts: &mut Counts) -> MappingIndex {
    let mut acc = join_step(&steps[0], &steps[1], legacy_strategy(&steps[0], &steps[1], jobs), counts);
    for s in &steps[2..] {
        let strat = legacy_strategy(&acc, s, jobs);
        acc = join_step(&acc, s, strat, counts);
    }
    acc
}

/// Borrowed-or-owned chain item, so planning never copies the inputs
/// (the in-tree planner holds `Arc<MappingIndex>` steps the same way).
enum Item<'a> {
    Step(&'a MappingIndex),
    Joined(MappingIndex),
}

impl Item<'_> {
    fn get(&self) -> &MappingIndex {
        match self {
            Item::Step(s) => s,
            Item::Joined(j) => j,
        }
    }
}

/// Planned chain: greedy adjacent-pair reordering by estimated
/// intermediate cardinality (fact chains only, as in-tree), cost-model
/// strategy per join — replica of `plan::plan_chain`.
fn planned_chain(steps: &[MappingIndex], jobs: usize, counts: &mut Counts) -> MappingIndex {
    let mut items: Vec<Item> = steps.iter().map(Item::Step).collect();
    while items.len() > 1 {
        let mut best = 0;
        let mut best_est = f64::INFINITY;
        for i in 0..items.len() - 1 {
            let est = estimate_join(items[i].get(), items[i + 1].get());
            if est < best_est {
                best_est = est;
                best = i;
            }
        }
        let right = items.remove(best + 1);
        let strat = choose_strategy(items[best].get(), right.get(), jobs);
        items[best] = Item::Joined(join_step(items[best].get(), right.get(), strat, counts));
    }
    match items.remove(0) {
        Item::Joined(j) => j,
        Item::Step(s) => MappingIndex::build(s.to_pairs()),
    }
}

fn join_step(l: &MappingIndex, r: &MappingIndex, s: Strategy, counts: &mut Counts) -> MappingIndex {
    counts.tally(s);
    join_with(l, r, s)
}

/// Planned chain without reordering (scored steps / shared chains): the
/// left fold with the cost-model strategy — used for the wide view.
fn planned_fold(steps: &[MappingIndex], jobs: usize, counts: &mut Counts) -> MappingIndex {
    let mut acc = join_step(&steps[0], &steps[1], choose_strategy(&steps[0], &steps[1], jobs), counts);
    for s in &steps[2..] {
        let strat = choose_strategy(&acc, s, jobs);
        acc = join_step(&acc, s, strat, counts);
    }
    acc
}

fn assert_bit_identical(a: &MappingIndex, b: &MappingIndex, label: &str) {
    let (pa, pb) = (a.to_pairs(), b.to_pairs());
    assert_eq!(pa.len(), pb.len(), "{label}: length mismatch");
    for (x, y) in pa.iter().zip(&pb) {
        assert_eq!((x.from, x.to), (y.from, y.to), "{label}: pair mismatch");
        assert_eq!(
            x.evidence.map(f64::to_bits),
            y.evidence.map(f64::to_bits),
            "{label}: evidence bits mismatch"
        );
    }
}

// -------------------------------------------------------------- helpers

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// One chain hop as a fact mapping: `n` pairs, `dom` domain keys at
/// `base`, fanning out into `rng_w` range keys at `base + 1_000_000`.
fn fact_hop(seed: u64, n: usize, dom: u64, rng_w: u64, base: u64) -> MappingIndex {
    let mut rng = XorShift(seed);
    let mut pairs = Vec::with_capacity(n);
    for _ in 0..n {
        pairs.push(Association {
            from: base + rng.next() % dom.max(1),
            to: base + 1_000_000 + rng.next() % rng_w.max(1),
            evidence: None,
        });
    }
    MappingIndex::build(pairs)
}

fn scored_hop(seed: u64, n: usize, dom: u64, rng_w: u64, base: u64) -> MappingIndex {
    let mut rng = XorShift(seed);
    let mut pairs = Vec::with_capacity(n);
    for _ in 0..n {
        let e = match rng.next() % 4 {
            0 => None,
            _ => Some((rng.next() % 1000) as f64 / 1000.0),
        };
        pairs.push(Association {
            from: base + rng.next() % dom.max(1),
            to: base + 1_000_000 + rng.next() % rng_w.max(1),
            evidence: e,
        });
    }
    MappingIndex::build(pairs)
}

fn best_of(runs: usize, mut f: impl FnMut() -> usize) -> f64 {
    std::hint::black_box(f()); // warm-up
    (0..runs)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

struct Scenario {
    name: String,
    kind: &'static str,
    naive: f64,
    planned: f64,
    naive_counts: Counts,
    planned_counts: Counts,
}

fn main() {
    let mut scenarios: Vec<Scenario> = Vec::new();

    // -------------------------------------------- deep fact chains 3..6
    // Blowup early, selectivity late: each hop fans out ~6×, the final
    // hop keeps only a sliver of its domain. The naive caller-order fold
    // drags the blowup through every join; the greedy reorder joins the
    // selective tail first and shrinks before multiplying.
    for len in [3usize, 4, 6] {
        let mut steps: Vec<MappingIndex> = Vec::new();
        for h in 0..len - 1 {
            let base = h as u64 * 1_000_000;
            let step = if h + 2 == len {
                // selective tail: 150 pairs out of a 30k-key domain
                fact_hop(0xbeef + h as u64, 150, 30_000, 200, base)
            } else {
                fact_hop(0x5eed + h as u64, 60_000, 10_000, 30_000, base)
            };
            steps.push(step);
        }
        let mut nc = Counts::default();
        let mut pc = Counts::default();
        let naive_out = naive_chain(&steps, 1, &mut nc);
        let planned_out = planned_chain(&steps, 1, &mut pc);
        assert_bit_identical(&planned_out, &naive_out, &format!("deep chain len={len}"));
        let naive = best_of(3, || naive_chain(&steps, 1, &mut Counts::default()).len());
        let planned = best_of(3, || planned_chain(&steps, 1, &mut Counts::default()).len());
        scenarios.push(Scenario {
            name: format!("deep_chain_{len}"),
            kind: "deep_chain",
            naive,
            planned,
            naive_counts: nc,
            planned_counts: pc,
        });
    }

    // ------------------------------------- strategy choice under jobs=4
    // Small skewed steps: the legacy heuristic hash-joins every step the
    // moment workers exist (partition + probe-map + thread overhead); the
    // cost model sees the sizes are below the parallel threshold and
    // merges/gallops instead.
    {
        let steps: Vec<MappingIndex> = (0..4)
            .map(|h| {
                let base = h as u64 * 1_000_000;
                if h % 2 == 0 {
                    fact_hop(0xfeed + h as u64, 3_000, 2_000, 60, base)
                } else {
                    fact_hop(0xf00d + h as u64, 400, 60, 2_000, base)
                }
            })
            .collect();
        let mut nc = Counts::default();
        let mut pc = Counts::default();
        let naive_out = naive_chain(&steps, 4, &mut nc);
        let planned_out = planned_chain(&steps, 4, &mut pc);
        assert_bit_identical(&planned_out, &naive_out, "strategy skew chain");
        let naive = best_of(5, || naive_chain(&steps, 4, &mut Counts::default()).len());
        let planned = best_of(5, || planned_chain(&steps, 4, &mut Counts::default()).len());
        scenarios.push(Scenario {
            name: "deep_chain_skew_jobs4".into(),
            kind: "deep_chain",
            naive,
            planned,
            naive_counts: nc,
            planned_counts: pc,
        });
    }

    // ----------------------------------------- wide views, 8+ targets
    // All targets share the prefix S→A→B; each adds one selective hop
    // B→Ti. Naive recomputes the prefix per target; the planner's
    // ViewContext memoizes it once. Scored evidence everywhere — the memo
    // preserves the left-fold parenthesization, so bit-identity holds
    // without the fact-only gate.
    for m in [8usize, 12] {
        let prefix = vec![
            scored_hop(0xaaaa, 40_000, 8_000, 20_000, 0),
            scored_hop(0xbbbb, 40_000, 20_000, 12_000, 1_000_000),
        ];
        let targets: Vec<MappingIndex> = (0..m)
            .map(|t| scored_hop(0xcc00 + t as u64, 2_000, 12_000, 800, 2_000_000))
            .collect();

        // naive: the prefix join is recomputed for every target column
        let naive_run = |counts: &mut Counts| -> usize {
            let mut total = 0;
            for t in &targets {
                let s0 = legacy_strategy(&prefix[0], &prefix[1], 1);
                let acc = join_step(&prefix[0], &prefix[1], s0, counts);
                let s1 = legacy_strategy(&acc, t, 1);
                total += join_step(&acc, t, s1, counts).len();
            }
            total
        };
        let planned_run = |counts: &mut Counts| -> usize {
            // shared prefix computed once (ViewContext memo), then one
            // cost-modelled join per target
            let shared = planned_fold(&prefix, 1, counts);
            let mut total = 0;
            for t in &targets {
                let strat = choose_strategy(&shared, t, 1);
                total += join_step(&shared, t, strat, counts).len();
            }
            total
        };

        // per-column equivalence: memo join ≡ naive fold per target
        let shared = planned_fold(&prefix, 1, &mut Counts::default());
        for (ti, t) in targets.iter().enumerate() {
            let mut scratch = Counts::default();
            let s0 = legacy_strategy(&prefix[0], &prefix[1], 1);
            let acc = join_step(&prefix[0], &prefix[1], s0, &mut scratch);
            let s1 = legacy_strategy(&acc, t, 1);
            let naive_col = join_step(&acc, t, s1, &mut scratch);
            let strat = choose_strategy(&shared, t, 1);
            let planned_col = join_with(&shared, t, strat);
            assert_bit_identical(&planned_col, &naive_col, &format!("wide view m={m} target={ti}"));
        }

        let mut nc = Counts::default();
        let mut pc = Counts::default();
        naive_run(&mut nc);
        planned_run(&mut pc);
        let naive = best_of(3, || naive_run(&mut Counts::default()));
        let planned = best_of(3, || planned_run(&mut Counts::default()));
        scenarios.push(Scenario {
            name: format!("wide_view_{m}_targets"),
            kind: "wide_view",
            naive,
            planned,
            naive_counts: nc,
            planned_counts: pc,
        });
    }

    // -------------------------------------------------------- report
    println!(
        "{:<24} {:>11} {:>11} {:>8}   strategies planned (naive)",
        "scenario", "naive", "planned", "speedup"
    );
    let mut rows: Vec<String> = Vec::new();
    for s in &scenarios {
        println!(
            "{:<24} {:>10.6}s {:>10.6}s {:>7.2}x   merge {} ({}), gallop {} ({}), hash {} ({})",
            s.name,
            s.naive,
            s.planned,
            s.naive / s.planned,
            s.planned_counts.merge,
            s.naive_counts.merge,
            s.planned_counts.gallop,
            s.naive_counts.gallop,
            s.planned_counts.hash,
            s.naive_counts.hash,
        );
        rows.push(format!(
            "{{\"scenario\": \"{}\", \"kind\": \"{}\", \"naive_seconds\": {:.6}, \"planned_seconds\": {:.6}, \"speedup\": {:.3}, \"planned_strategies\": {{\"merge\": {}, \"gallop\": {}, \"hash\": {}}}, \"naive_strategies\": {{\"merge\": {}, \"gallop\": {}, \"hash\": {}}}}}",
            s.name,
            s.kind,
            s.naive,
            s.planned,
            s.naive / s.planned,
            s.planned_counts.merge,
            s.planned_counts.gallop,
            s.planned_counts.hash,
            s.naive_counts.merge,
            s.naive_counts.gallop,
            s.naive_counts.hash,
        ));
    }

    // the planner must actually win where it claims to
    for kind in ["deep_chain", "wide_view"] {
        assert!(
            scenarios
                .iter()
                .any(|s| s.kind == kind && s.planned < s.naive),
            "planned beats naive on at least one {} scenario",
            kind
        );
    }

    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"generator\": \"scripts/plan_harness.rs (standalone replica; the in-tree planner is crates/operators/src/plan.rs)\",\n  \"workers_available\": {workers},\n  \"scenarios\": [\n    {}\n  ],\n  \"note\": \"every timed scenario is first checked bit-identical between planned and naive execution, mirroring crates/operators/tests/plan_prop.rs. deep_chain: fan-out blowup early + selective tail, greedy reorder joins the tail first. wide_view: 8+ targets share a 3-source prefix, memoized once. skew_jobs4: cost model declines sub-threshold hash joins the legacy heuristic would take.\"\n}}\n",
        rows.join(",\n    ")
    );
    std::fs::write("BENCH_plan.json", &json).expect("write BENCH_plan.json");
    println!("\nwrote BENCH_plan.json");
}
