//! Standalone, dependency-free replica of the crash-safety machinery
//! (`relstore::vfs::FaultVfs` + the WAL/snapshot recovery protocol), for
//! environments where the full workspace cannot be built (no crates.io
//! access). It
//!
//! 1. sweeps a power cut over *every* I/O operation of a checkpointing
//!    insert workload and checks, per crash point, that the store reopens,
//!    that the surviving rows are a committed whole-batch prefix, and that
//!    resuming the workload converges on the fault-free state,
//! 2. corrupts the primary snapshot four ways (torn body, flipped CRC,
//!    bad magic, bad version) and checks degradation to the previous
//!    snapshot generation,
//! 3. measures recovery latency (reopen after crash) across the sweep and
//!    writes `BENCH_crash.json`.
//!
//! Build & run:  rustc -O scripts/crash_harness.rs -o /tmp/crash_harness && /tmp/crash_harness
//!
//! The logic below must stay in sync with `crates/relstore/src/wal.rs`
//! (framing `[len u32][crc32 u32][payload]`, commit/epoch markers,
//! committed-prefix scan), `crates/relstore/src/snapshot.rs` (magic,
//! version, CRC, epoch) and `crates/relstore/src/vfs.rs` (op accounting,
//! torn tails, reboot); it is a measurement stand-in, not the
//! implementation of record. Prefer `cargo test -p relstore --test
//! crash_sweep` whenever the workspace builds.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::convert::TryInto;
use std::rc::Rc;
use std::time::{Duration, Instant};

// -------------------------------------------------------------- crc32 --

fn crc32(data: &[u8]) -> u32 {
    // IEEE 802.3 polynomial, bitwise — speed is irrelevant here.
    let mut crc: u32 = 0xffff_ffff;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

// --------------------------------------------------- fault-inject disk --

/// In-memory "disk" with the same fault semantics as `FaultVfs`: every
/// operation is charged; a planned power cut freezes the durable image
/// (synced bytes plus a seeded prefix of any unsynced tail) and fails all
/// subsequent I/O until `reboot`.
#[derive(Default)]
struct DiskState {
    current: BTreeMap<String, Vec<u8>>,
    synced: BTreeMap<String, Vec<u8>>,
    ops: u64,
    crash_at: Option<u64>,
    torn_seed: u64,
    crashed: bool,
}

#[derive(Clone)]
struct Disk(Rc<RefCell<DiskState>>);

#[derive(Debug)]
struct Crashed;

impl Disk {
    fn new() -> Disk {
        Disk(Rc::new(RefCell::new(DiskState::default())))
    }

    fn plan(&self, crash_at: Option<u64>, torn_seed: u64) {
        let mut s = self.0.borrow_mut();
        s.crash_at = crash_at;
        s.torn_seed = torn_seed;
    }

    fn op_count(&self) -> u64 {
        self.0.borrow().ops
    }

    fn charge(s: &mut DiskState) -> Result<(), Crashed> {
        if s.crashed {
            return Err(Crashed);
        }
        s.ops += 1;
        if s.crash_at == Some(s.ops) {
            // Power cut: the durable image keeps synced data plus a
            // seeded prefix of each file's unsynced tail (torn write).
            s.crashed = true;
            let mut torn = s.torn_seed | 1;
            let keys: Vec<String> = s.current.keys().cloned().collect();
            for k in keys {
                let cur = s.current[&k].clone();
                let base = s.synced.get(&k).map_or(0, Vec::len);
                if cur.len() > base {
                    torn ^= torn << 13;
                    torn ^= torn >> 7;
                    torn ^= torn << 17;
                    let keep = base + (torn as usize) % (cur.len() - base + 1);
                    s.synced.insert(k, cur[..keep].to_vec());
                }
            }
            return Err(Crashed);
        }
        Ok(())
    }

    fn append(&self, path: &str, data: &[u8]) -> Result<(), Crashed> {
        let mut s = self.0.borrow_mut();
        Self::charge(&mut s)?;
        s.current.entry(path.to_string()).or_default().extend_from_slice(data);
        Ok(())
    }

    fn write_all(&self, path: &str, data: &[u8]) -> Result<(), Crashed> {
        let mut s = self.0.borrow_mut();
        Self::charge(&mut s)?;
        s.current.insert(path.to_string(), data.to_vec());
        Ok(())
    }

    fn truncate(&self, path: &str, len: usize) -> Result<(), Crashed> {
        let mut s = self.0.borrow_mut();
        Self::charge(&mut s)?;
        if let Some(f) = s.current.get_mut(path) {
            f.truncate(len);
        }
        Ok(())
    }

    fn sync(&self, path: &str) -> Result<(), Crashed> {
        let mut s = self.0.borrow_mut();
        Self::charge(&mut s)?;
        if let Some(data) = s.current.get(path).cloned() {
            s.synced.insert(path.to_string(), data);
        }
        Ok(())
    }

    /// Rename + dir-fsync, as one durable step (the real store renames
    /// then syncs the directory; collapsing them only removes crash
    /// points *between* the two, which the real sweep covers).
    fn rename(&self, from: &str, to: &str) -> Result<(), Crashed> {
        let mut s = self.0.borrow_mut();
        Self::charge(&mut s)?;
        if let Some(data) = s.current.remove(from) {
            s.current.insert(to.to_string(), data);
        }
        if let Some(data) = s.synced.remove(from) {
            s.synced.insert(to.to_string(), data);
        }
        Ok(())
    }

    fn read(&self, path: &str) -> Option<Vec<u8>> {
        self.0.borrow().current.get(path).cloned()
    }

    /// Power comes back: only the durable image survives.
    fn reboot(&self) {
        let mut s = self.0.borrow_mut();
        s.current = s.synced.clone();
        s.crashed = false;
        s.crash_at = None;
    }

    fn corrupt(&self, path: &str, f: impl Fn(&mut Vec<u8>)) {
        let mut s = self.0.borrow_mut();
        if let Some(data) = s.current.get_mut(path) {
            f(data);
        }
        let cur = s.current.get(path).cloned();
        if let (Some(c), Some(_)) = (cur, s.synced.get(path)) {
            s.synced.insert(path.to_string(), c);
        }
    }
}

// ------------------------------------------------------ wal + snapshot --

const WAL: &str = "/db/wal.log";
const SNAP: &str = "/db/snapshot.bin";
const SNAP_PREV: &str = "/db/snapshot.prev";
const SNAP_TMP: &str = "/db/snapshot.tmp";
const SNAP_MAGIC: &[u8; 4] = b"RSSN";
const SNAP_VERSION: u32 = 2;
const OP_INSERT: u8 = 1;
const OP_COMMIT: u8 = 4;
const OP_EPOCH: u8 = 5;

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn get_u32(data: &[u8], at: usize) -> Option<u32> {
    Some(u32::from_le_bytes(data.get(at..at + 4)?.try_into().ok()?))
}

fn get_u64(data: &[u8], at: usize) -> Option<u64> {
    Some(u64::from_le_bytes(data.get(at..at + 8)?.try_into().ok()?))
}

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 8);
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, crc32(payload));
    out.extend_from_slice(payload);
    out
}

/// Mini store: one table of i64 ids, WAL-then-snapshot durability with
/// the real epoch protocol.
struct Store {
    disk: Disk,
    rows: Vec<i64>,
    epoch: u64,
    pending: Vec<u8>, // encoded frames of the open transaction
}

#[derive(Default)]
struct Recovery {
    snapshot_rows: usize,
    wal_txns: u64,
    wal_discarded_ops: u64,
    torn_tail: bool,
    stale_wal: bool,
    used_fallback: bool,
}

impl Store {
    fn open(disk: &Disk) -> Result<(Store, Recovery), Crashed> {
        let mut rec = Recovery::default();
        // Snapshot: primary, else previous generation, else empty.
        let (mut rows, mut epoch) = (Vec::new(), 0u64);
        let mut loaded = false;
        for (path, fallback) in [(SNAP, false), (SNAP_PREV, true)] {
            if let Some(data) = disk.read(path) {
                if let Some((r, e)) = decode_snapshot(&data) {
                    rows = r;
                    epoch = e;
                    rec.used_fallback = fallback;
                    loaded = true;
                    break;
                }
            }
        }
        let _ = loaded;
        rec.snapshot_rows = rows.len();

        // WAL: committed-prefix scan, with epoch staleness check.
        let wal = disk.read(WAL).unwrap_or_default();
        let mut committed: Vec<i64> = Vec::new();
        let mut pending: Vec<i64> = Vec::new();
        let mut wal_epoch: Option<u64> = None;
        let mut offset = 0usize;
        let mut committed_bytes = 0usize;
        loop {
            let Some(len) = get_u32(&wal, offset) else {
                rec.torn_tail = offset < wal.len();
                break;
            };
            let Some(crc) = get_u32(&wal, offset + 4) else {
                rec.torn_tail = true;
                break;
            };
            let Some(payload) = wal.get(offset + 8..offset + 8 + len as usize) else {
                rec.torn_tail = true;
                break;
            };
            if crc32(payload) != crc {
                rec.torn_tail = true;
                break;
            }
            offset += 8 + len as usize;
            match payload.first() {
                Some(&OP_INSERT) => {
                    pending.push(get_u64(payload, 1).unwrap_or(0) as i64);
                }
                Some(&OP_COMMIT) => {
                    committed.append(&mut pending);
                    rec.wal_txns += 1;
                    committed_bytes = offset;
                }
                Some(&OP_EPOCH) => {
                    wal_epoch = get_u64(payload, 1);
                    committed_bytes = offset;
                }
                _ => {
                    rec.torn_tail = true;
                    break;
                }
            }
        }
        rec.wal_discarded_ops = pending.len() as u64;

        if wal_epoch.is_some() && wal_epoch != Some(epoch) {
            // Stale WAL from before an interrupted checkpoint rename:
            // the snapshot already contains its effects. Discard.
            rec.stale_wal = true;
            committed.clear();
        }
        if rec.stale_wal || rec.torn_tail || rec.wal_discarded_ops > 0 {
            // Truncate-to-valid-prefix on open, as WalWriter::open does.
            let keep = if rec.stale_wal { 0 } else { committed_bytes };
            disk.truncate(WAL, keep)?;
            disk.sync(WAL)?;
        }
        rows.extend(committed);
        if disk.read(WAL).is_none() || rec.stale_wal {
            // Fresh or discarded WAL: stamp the current epoch.
            let mut payload = vec![OP_EPOCH];
            put_u64(&mut payload, epoch);
            disk.write_all(WAL, &frame(&payload))?;
            disk.sync(WAL)?;
        }
        Ok((Store { disk: disk.clone(), rows, epoch, pending: Vec::new() }, rec))
    }

    fn insert(&mut self, id: i64) {
        let mut payload = vec![OP_INSERT];
        put_u64(&mut payload, id as u64);
        self.pending.extend_from_slice(&frame(&payload));
        self.rows.push(id);
    }

    fn commit(&mut self) -> Result<(), Crashed> {
        self.pending.extend_from_slice(&frame(&[OP_COMMIT]));
        let buf = std::mem::take(&mut self.pending);
        self.disk.append(WAL, &buf)?;
        self.disk.sync(WAL)
    }

    fn checkpoint(&mut self) -> Result<(), Crashed> {
        let next = self.epoch + 1;
        let snap = encode_snapshot(&self.rows, next);
        self.disk.write_all(SNAP_TMP, &snap)?;
        self.disk.sync(SNAP_TMP)?;
        if self.disk.read(SNAP).is_some() {
            self.disk.rename(SNAP, SNAP_PREV)?;
        }
        self.disk.rename(SNAP_TMP, SNAP)?;
        // WAL reset: truncate and stamp the new epoch.
        let mut payload = vec![OP_EPOCH];
        put_u64(&mut payload, next);
        self.disk.write_all(WAL, &frame(&payload))?;
        self.disk.sync(WAL)?;
        self.epoch = next;
        Ok(())
    }
}

fn encode_snapshot(rows: &[i64], epoch: u64) -> Vec<u8> {
    let mut body = Vec::new();
    put_u64(&mut body, epoch);
    put_u64(&mut body, rows.len() as u64);
    for &r in rows {
        put_u64(&mut body, r as u64);
    }
    let mut out = Vec::with_capacity(body.len() + 12);
    out.extend_from_slice(SNAP_MAGIC);
    put_u32(&mut out, SNAP_VERSION);
    put_u32(&mut out, crc32(&body));
    out.extend_from_slice(&body);
    out
}

fn decode_snapshot(data: &[u8]) -> Option<(Vec<i64>, u64)> {
    if data.get(..4)? != SNAP_MAGIC || get_u32(data, 4)? != SNAP_VERSION {
        return None;
    }
    let body = data.get(12..)?;
    if crc32(body) != get_u32(data, 8)? {
        return None;
    }
    let epoch = get_u64(body, 0)?;
    let n = get_u64(body, 8)? as usize;
    let mut rows = Vec::with_capacity(n);
    for i in 0..n {
        rows.push(get_u64(body, 16 + 8 * i)? as i64);
    }
    Some((rows, epoch))
}

// ----------------------------------------------------------- workload --

const BATCHES: usize = 40;
const BATCH_ROWS: usize = 5;
const CHECKPOINT_EVERY: usize = 4;

/// Run (or resume) the insert workload; returns Err if a fault fired.
fn run_workload(disk: &Disk) -> Result<(), Crashed> {
    let (mut store, _) = Store::open(disk)?;
    let have = store.rows.len();
    assert_eq!(have % BATCH_ROWS, 0, "recovered {have} rows: not a batch boundary");
    for batch in have / BATCH_ROWS..BATCHES {
        for i in 0..BATCH_ROWS {
            store.insert((batch * BATCH_ROWS + i) as i64);
        }
        store.commit()?;
        if (batch + 1) % CHECKPOINT_EVERY == 0 {
            store.checkpoint()?;
        }
    }
    store.checkpoint()
}

fn recovered_rows(disk: &Disk) -> Vec<i64> {
    let (store, _) = Store::open(disk).expect("reopen after reboot");
    let mut rows = store.rows.clone();
    rows.sort_unstable();
    rows
}

// -------------------------------------------------------------- sweep --

struct SweepStats {
    crash_points: u64,
    torn_tail_recoveries: u64,
    stale_wal_discards: u64,
    fallback_snapshot_loads: u64,
    reopen_total: Duration,
    reopen_max: Duration,
}

fn crash_sweep() -> SweepStats {
    // Fault-free reference: learn the op count and expected rows.
    let reference = Disk::new();
    run_workload(&reference).expect("fault-free run");
    let total_ops = reference.op_count();
    let expected: Vec<i64> = (0..(BATCHES * BATCH_ROWS) as i64).collect();

    let mut stats = SweepStats {
        crash_points: 0,
        torn_tail_recoveries: 0,
        stale_wal_discards: 0,
        fallback_snapshot_loads: 0,
        reopen_total: Duration::ZERO,
        reopen_max: Duration::ZERO,
    };
    for crash_at in 1..=total_ops {
        let disk = Disk::new();
        disk.plan(Some(crash_at), crash_at.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        assert!(run_workload(&disk).is_err(), "op {}: power cut did not fire", crash_at);
        disk.reboot();

        let t0 = Instant::now();
        let (store, rec) = Store::open(&disk).expect("reopen must not fail");
        let dt = t0.elapsed();
        stats.reopen_total += dt;
        stats.reopen_max = stats.reopen_max.max(dt);
        stats.crash_points += 1;
        stats.torn_tail_recoveries += rec.torn_tail as u64;
        stats.stale_wal_discards += rec.stale_wal as u64;
        stats.fallback_snapshot_loads += rec.used_fallback as u64;

        // Committed whole-batch prefix.
        let mut rows = store.rows.clone();
        rows.sort_unstable();
        assert_eq!(rows, (0..rows.len() as i64).collect::<Vec<_>>(), "op {crash_at}");
        assert_eq!(rows.len() % BATCH_ROWS, 0, "op {crash_at}: partial batch survived");
        drop(store);

        // Resume and converge.
        run_workload(&disk).unwrap_or_else(|_| panic!("op {}: resume failed", crash_at));
        assert_eq!(recovered_rows(&disk), expected, "op {crash_at}: diverged");
    }
    stats
}

fn corruption_matrix() -> u64 {
    let corruptors: [(&str, fn(&mut Vec<u8>)); 4] = [
        ("truncated-body", |d| {
            let n = d.len() / 2;
            d.truncate(n);
        }),
        ("flipped-crc", |d| d[8] ^= 0xff),
        ("bad-magic", |d| d[0] = b'X'),
        ("bad-version", |d| d[4] = 99),
    ];
    let mut survived = 0;
    for (name, f) in corruptors {
        let disk = Disk::new();
        run_workload(&disk).expect("seed run");
        disk.corrupt(SNAP, f);
        let (store, rec) = Store::open(&disk).expect("open with corrupt primary");
        assert!(rec.used_fallback, "{}: did not fall back to snapshot.prev", name);
        assert!(!store.rows.is_empty(), "{}: fallback lost all rows", name);
        // The fallback generation plus (stale-discarded) WAL is an older
        // but consistent prefix.
        let mut rows = store.rows.clone();
        rows.sort_unstable();
        assert_eq!(rows, (0..rows.len() as i64).collect::<Vec<_>>(), "{name}");
        survived += 1;
        println!("  corrupt {name:<16} -> fallback snapshot, {} rows", rows.len());
    }
    survived
}

// --------------------------------------------------------------- main --

fn main() {
    println!("crash harness: {BATCHES} batches x {BATCH_ROWS} rows, checkpoint every {CHECKPOINT_EVERY}");

    let t0 = Instant::now();
    let stats = crash_sweep();
    let sweep_secs = t0.elapsed().as_secs_f64();
    assert!(stats.crash_points >= 100, "only {} crash points", stats.crash_points);
    println!(
        "sweep: {} crash points in {:.2}s ({} torn tails, {} stale WALs, {} fallback loads)",
        stats.crash_points,
        sweep_secs,
        stats.torn_tail_recoveries,
        stats.stale_wal_discards,
        stats.fallback_snapshot_loads
    );
    println!(
        "reopen: mean {:.1}us, max {:.1}us",
        stats.reopen_total.as_secs_f64() * 1e6 / stats.crash_points as f64,
        stats.reopen_max.as_secs_f64() * 1e6
    );

    println!("corruption matrix:");
    let corruptions = corruption_matrix();

    let json = format!(
        "{{\n  \"crash_points\": {},\n  \"sweep_secs\": {:.3},\n  \"torn_tail_recoveries\": {},\n  \"stale_wal_discards\": {},\n  \"fallback_snapshot_loads\": {},\n  \"reopen_mean_us\": {:.2},\n  \"reopen_max_us\": {:.2},\n  \"snapshot_corruptions_survived\": {}\n}}\n",
        stats.crash_points,
        sweep_secs,
        stats.torn_tail_recoveries,
        stats.stale_wal_discards,
        stats.fallback_snapshot_loads,
        stats.reopen_total.as_secs_f64() * 1e6 / stats.crash_points as f64,
        stats.reopen_max.as_secs_f64() * 1e6,
        corruptions
    );
    std::fs::write("BENCH_crash.json", &json).expect("write BENCH_crash.json");
    println!("\nwrote BENCH_crash.json");
}
