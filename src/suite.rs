//! Umbrella crate hosting workspace-level examples and integration tests.
