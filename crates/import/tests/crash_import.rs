//! End-to-end crash sweep over the import pipeline: a real (demo-scale)
//! ecosystem import runs against the fault-injecting VFS, a power cut is
//! simulated at every I/O operation, and after each cut the store must
//!
//! 1. reopen without error,
//! 2. pass full referential-integrity verification (every committed
//!    prefix is closed under the GAM foreign keys), and
//! 3. converge to a state *identical* to the fault-free import when the
//!    same dumps are re-imported — the source release tag is written last,
//!    so a half-imported source is never skipped by dedup.

use gam::GamStore;
use import::{run_pipeline, PipelineOptions};
use relstore::vfs::{FaultPlan, FaultVfs, Vfs};
use sources::ecosystem::{Ecosystem, EcosystemParams};
use std::path::Path;
use std::sync::Arc;

fn open(vfs: &FaultVfs) -> gam::GamResult<GamStore> {
    let arc: Arc<dyn Vfs> = Arc::new(vfs.clone());
    GamStore::open_with_vfs(arc, Path::new("/db"))
}

fn options() -> PipelineOptions {
    PipelineOptions {
        parse_threads: 1,
        checkpoint_every: Some(2),
        ..PipelineOptions::default()
    }
}

fn import_all(vfs: &FaultVfs, eco: &Ecosystem) -> gam::GamResult<()> {
    let mut store = open(vfs)?;
    run_pipeline(&mut store, &eco.dumps, &options())?;
    store.checkpoint()
}

/// Canonical textual image of every row of every table, so two stores can
/// be compared for bit-identical logical content.
fn fingerprint(store: &GamStore) -> Vec<String> {
    let db = store.database();
    let mut out = Vec::new();
    for name in db.table_names() {
        let table = db.table(name).unwrap();
        for (rid, row) in table.scan() {
            out.push(format!("{name}/{rid:?}: {row:?}"));
        }
    }
    out.sort();
    out
}

#[test]
fn import_crash_sweep_recovers_and_reimports_identically() {
    let eco = Ecosystem::generate(EcosystemParams::demo(11));

    // Fault-free reference run.
    let reference = FaultVfs::new();
    import_all(&reference, &eco).unwrap();
    let total_ops = reference.op_count();
    let expected = {
        let store = open(&reference).unwrap();
        assert!(store.verify_integrity().unwrap().is_empty());
        fingerprint(&store)
    };
    assert!(!expected.is_empty());
    assert!(
        total_ops >= 100,
        "sweep needs >=100 distinct crash points, import only has {total_ops}"
    );

    // Sweep every fault point, thinning only if the workload is huge.
    let step = usize::max(1, total_ops as usize / 300);
    let mut crash_points = 0u64;
    for crash_at in (1..=total_ops).step_by(step) {
        let vfs = FaultVfs::new();
        vfs.set_plan(FaultPlan {
            crash_at: Some(crash_at),
            fail_at: None,
            torn_seed: crash_at.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        });
        let outcome = import_all(&vfs, &eco);
        assert!(
            outcome.is_err() && vfs.crashed(),
            "op {crash_at}: power cut did not fire (of {total_ops})"
        );
        crash_points += 1;
        vfs.reboot();

        // 1+2: reopen succeeds and the committed prefix is referentially
        // closed.
        let store =
            open(&vfs).unwrap_or_else(|e| panic!("op {crash_at}: reopen failed: {e}"));
        let violations = store.verify_integrity().unwrap();
        assert!(
            violations.is_empty(),
            "op {crash_at}: integrity violations after recovery: {violations:?}"
        );
        drop(store);

        // 3: re-importing the same dumps converges on the reference state.
        import_all(&vfs, &eco)
            .unwrap_or_else(|e| panic!("op {crash_at}: re-import failed: {e}"));
        let store = open(&vfs).unwrap();
        let got = fingerprint(&store);
        assert!(
            got == expected,
            "op {crash_at}: re-import diverged from the fault-free state \
             ({} vs {} rows)",
            got.len(),
            expected.len()
        );
    }
    assert!(
        crash_points >= 100,
        "only {crash_points} crash points exercised"
    );
}

/// Injected I/O errors (not power cuts) during import: the run fails, but
/// the store reopens clean and a retry converges.
#[test]
fn import_io_errors_are_recoverable() {
    let eco = Ecosystem::generate(EcosystemParams::demo(12));
    let reference = FaultVfs::new();
    import_all(&reference, &eco).unwrap();
    let total_ops = reference.op_count();
    let expected = {
        let store = open(&reference).unwrap();
        fingerprint(&store)
    };

    // A coarse sample is enough here; the power-cut sweep is exhaustive.
    for fail_at in (1..=total_ops).step_by(17) {
        let vfs = FaultVfs::new();
        vfs.set_plan(FaultPlan {
            crash_at: None,
            fail_at: Some(fail_at),
            torn_seed: fail_at,
        });
        assert!(import_all(&vfs, &eco).is_err(), "op {fail_at}");
        vfs.set_plan(FaultPlan::default());

        let store = open(&vfs)
            .unwrap_or_else(|e| panic!("op {fail_at}: reopen after I/O error failed: {e}"));
        assert!(store.verify_integrity().unwrap().is_empty(), "op {fail_at}");
        drop(store);
        import_all(&vfs, &eco).unwrap();
        let store = open(&vfs).unwrap();
        assert_eq!(fingerprint(&store).len(), expected.len(), "op {fail_at}");
        assert!(fingerprint(&store) == expected, "op {fail_at}: diverged");
    }
}
