//! Equivalence property tests for the bulk-import fast path: on arbitrary
//! random dump shapes the batched importer must be **bit-identical** to the
//! per-row reference implementation — the same `ImportReport`, the same
//! source rows, objects, mappings and association pairs, in the same id
//! order. A second block checks the parallel-parse pipeline against a
//! serial run for several worker counts, and that re-imports are
//! idempotent.

use eav::{EavBatch, EavRecord, SourceMeta};
use gam::model::{SourceContent, SourceStructure};
use gam::GamStore;
use import::{run_pipeline, Importer, PipelineOptions};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use sources::ecosystem::{Ecosystem, EcosystemParams};

/// Accessions over a small pool so in-batch duplicates are common; a slice
/// of them carry stray padding (normalized away) or are blank (dropped).
fn arb_acc() -> impl Strategy<Value = String> {
    prop_oneof![
        6 => (0u8..24).prop_map(|n| format!("a{n}")),
        1 => (0u8..24).prop_map(|n| format!("  a{n} ")),
        1 => Just(" ".to_owned()),
    ]
}

fn arb_record(targets: &'static [&'static str]) -> impl Strategy<Value = EavRecord> {
    prop_oneof![
        (arb_acc(), prop::option::of("[a-z]{1,6}"), prop::option::of(0.0f64..10.0)).prop_map(
            |(accession, text, number)| EavRecord::Object {
                accession,
                text,
                number,
            }
        ),
        (
            arb_acc(),
            prop::sample::select(targets),
            arb_acc(),
            prop::option::of("[a-z]{1,4}"),
            // occasionally out of [0,1]: sanitization must drop those
            prop::option::of(-0.2f64..1.2),
        )
            .prop_map(|(entity, target, accession, text, evidence)| {
                EavRecord::Annotation {
                    entity,
                    target: target.to_owned(),
                    accession,
                    text,
                    evidence,
                }
            }),
        (arb_acc(), arb_acc()).prop_map(|(child, parent)| EavRecord::IsA { child, parent }),
    ]
}

/// A random dump for `name`. Targets never include the batch's own name
/// (a Fact self-mapping is rejected by the store, in both import paths),
/// but do include the other batch names so cross- and back-references are
/// exercised.
fn arb_batch(
    name: &'static str,
    targets: &'static [&'static str],
) -> impl Strategy<Value = EavBatch> {
    (
        prop::sample::select(&["r1", "r2"][..]),
        any::<bool>(),
        any::<bool>(),
        prop::collection::vec(prop::sample::select(&["P1", "P2"][..]), 0..3),
        prop::collection::vec(arb_record(targets), 0..60),
    )
        .prop_map(move |(release, gene, network, partitions, records)| EavBatch {
            meta: SourceMeta {
                name: name.to_owned(),
                release: release.to_owned(),
                content: if gene {
                    SourceContent::Gene
                } else {
                    SourceContent::Other
                },
                structure: if network {
                    SourceStructure::Network
                } else {
                    SourceStructure::Flat
                },
                partitions: partitions.into_iter().map(str::to_owned).collect(),
            },
            records,
        })
}

fn arb_batch_sequence() -> impl Strategy<Value = Vec<EavBatch>> {
    prop::collection::vec(
        prop_oneof![
            arb_batch("S0", &["GO", "Hugo", "OMIM", "S1"]),
            arb_batch("S1", &["GO", "Hugo", "S0"]),
            arb_batch("GO", &["Hugo", "S0", "S1"]),
        ],
        1..5,
    )
}

/// Full-store comparison: identical ids, rows and association pairs.
fn assert_same_stores(a: &GamStore, b: &GamStore) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.cardinalities().unwrap(), b.cardinalities().unwrap());
    let sources_a = a.sources().unwrap();
    prop_assert_eq!(&sources_a, &b.sources().unwrap());
    for src in &sources_a {
        prop_assert_eq!(
            a.objects_of(src.id).unwrap(),
            b.objects_of(src.id).unwrap(),
            "objects diverge for {}",
            &src.name
        );
    }
    let rels_a = a.source_rels().unwrap();
    prop_assert_eq!(&rels_a, &b.source_rels().unwrap());
    for rel in &rels_a {
        let ma = a.load_mapping(rel.id).unwrap();
        let mb = b.load_mapping(rel.id).unwrap();
        prop_assert_eq!(ma.pairs.len(), mb.pairs.len());
        for (x, y) in ma.pairs.iter().zip(&mb.pairs) {
            prop_assert_eq!((x.from, x.to), (y.from, y.to));
            // evidence compared by bit pattern, not float tolerance
            prop_assert_eq!(x.evidence.map(f64::to_bits), y.evidence.map(f64::to_bits));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Bulk path ≡ per-row path: same reports, same store, for any batch
    /// sequence (stubs, re-imports, partitions, IS_A, both mapping kinds).
    #[test]
    fn bulk_import_equals_per_row(batches in arb_batch_sequence()) {
        let mut bulk = GamStore::in_memory().unwrap();
        let mut per_row = GamStore::in_memory().unwrap();
        for batch in &batches {
            let a = Importer::new(&mut bulk).import(batch).unwrap();
            let b = Importer::new(&mut per_row).import_per_row(batch).unwrap();
            prop_assert_eq!(a, b, "reports diverge for {}", &batch.meta.name);
        }
        assert_same_stores(&bulk, &per_row)?;
    }

    /// Importing by value (the pipeline's no-clone path) ≡ importing the
    /// same batch by reference.
    #[test]
    fn owned_import_equals_borrowed(batches in arb_batch_sequence()) {
        let mut borrowed = GamStore::in_memory().unwrap();
        let mut owned = GamStore::in_memory().unwrap();
        for batch in &batches {
            let a = Importer::new(&mut borrowed).import(batch).unwrap();
            let b = Importer::new(&mut owned).import_owned(batch.clone()).unwrap();
            prop_assert_eq!(a, b);
        }
        assert_same_stores(&borrowed, &owned)?;
    }

    /// Re-importing already-integrated batches changes nothing: the same
    /// release is skipped outright; a bumped release runs incrementally
    /// but dedups every object and association.
    #[test]
    fn reimport_is_idempotent(batches in arb_batch_sequence()) {
        let mut store = GamStore::in_memory().unwrap();
        for batch in &batches {
            Importer::new(&mut store).import(batch).unwrap();
        }
        let cards = store.cardinalities().unwrap();
        for batch in &batches {
            let report = Importer::new(&mut store).import(batch).unwrap();
            if report.skipped {
                prop_assert_eq!(report.objects_created, 0);
            } else {
                // incremental path: everything dedups
                prop_assert_eq!(report.objects_created, 0);
                prop_assert_eq!(report.associations_created, 0);
                prop_assert_eq!(report.mappings_created, 0);
                prop_assert!(report.stub_sources_created.is_empty());
            }
            prop_assert_eq!(&store.cardinalities().unwrap(), &cards);
        }
        // a fresh release over identical content also creates nothing
        if let Some(first) = batches.first() {
            let mut bumped = first.clone();
            bumped.meta.release = "zz-new".to_owned();
            let report = Importer::new(&mut store).import(&bumped).unwrap();
            prop_assert!(!report.skipped);
            prop_assert_eq!(report.objects_created, 0);
            prop_assert_eq!(report.associations_created, 0);
            prop_assert_eq!(&store.cardinalities().unwrap(), &cards);
            let src = store.find_source(&first.meta.name).unwrap().unwrap();
            prop_assert_eq!(src.release.as_deref(), Some("zz-new"));
        }
    }
}

proptest! {
    // ecosystem pipelines are heavier: fewer cases
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The parallel-parse pipeline is bit-identical to a serial run for
    /// any worker count: same reports, same store contents.
    #[test]
    fn pipeline_matches_across_job_counts(
        seed in 0u64..500,
        jobs in prop::sample::select(&[2usize, 4, 8][..]),
    ) {
        let eco = Ecosystem::generate(EcosystemParams::demo(seed));
        let serial_opts = PipelineOptions { parse_threads: 1, ..PipelineOptions::default() };
        let mut serial = GamStore::in_memory().unwrap();
        let serial_reports = run_pipeline(&mut serial, &eco.dumps, &serial_opts).unwrap();
        let par_opts = PipelineOptions { parse_threads: jobs, ..PipelineOptions::default() };
        let mut parallel = GamStore::in_memory().unwrap();
        let par_reports = run_pipeline(&mut parallel, &eco.dumps, &par_opts).unwrap();
        prop_assert_eq!(serial_reports, par_reports);
        assert_same_stores(&serial, &parallel)?;
    }
}
