//! `import` — the generic Import step of GenMapper's two-phase data
//! integration (paper §4.1).
//!
//! *Parse* (in the `sources` crate) is the only source-specific code; this
//! crate is the "generic EAV-to-GAM transformation and migration module
//! \[that\] only needs to be implemented once":
//!
//! * **source-level duplicate elimination** — source name plus audit
//!   information (release tag) decide whether a batch is new, a re-import
//!   of the same release (skipped), or an incremental update;
//! * **object-level duplicate elimination** — accessions are compared
//!   within the target source, so re-imports relate new records to
//!   existing objects instead of inserting twice;
//! * **relating against existing data** — annotation targets that are
//!   already integrated (e.g. GO when LocusLink is re-imported) are looked
//!   up, not recreated; unknown targets are registered as stub sources so
//!   their accessions have a home until the real dump arrives;
//! * **structural relationships** — `IS_A` edges become an intra-source
//!   mapping; declared partitions become `Contains` relationships
//!   (GO → BiologicalProcess/...);
//! * **annotation relationships** — records without evidence go into a
//!   `Fact` mapping, scored records into a `Similarity` mapping.
//!
//! [`pipeline`] adds the driver that parses many dumps in parallel
//! (crossbeam-scoped threads) and imports them serially, as GenMapper's
//! loader did against its central MySQL database.

// Non-test code on the import/query path must propagate errors, never
// panic: one malformed dump line must not take down a whole import.
// genlint's no-panic rule enforces the same invariant where clippy is
// not run.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
pub mod importer;
pub mod pipeline;
pub mod report;

pub use importer::Importer;
pub use pipeline::{parse_dumps_lenient, run_pipeline, run_pipeline_timed, PipelineOptions};
pub use report::{ImportReport, ImportTimings};
