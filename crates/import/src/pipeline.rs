//! The load pipeline: parallel Parse, serial Import.
//!
//! Parsing is pure, CPU-bound, per-source work — it fans out across
//! crossbeam-scoped worker threads. Import mutates the central database
//! and runs serially in dump order (GenMapper loads into one MySQL
//! instance the same way). Batches are handed over through a bounded
//! channel so memory stays proportional to the number of workers, not the
//! number of dumps.

use crate::importer::Importer;
use crate::report::{ImportReport, ImportTimings};
use gam::{GamError, GamResult, GamStore};
use sources::ecosystem::SourceDump;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineOptions {
    /// Parser worker threads. `1` parses inline without spawning.
    pub parse_threads: usize,
    /// Checkpoint the store after this many imported batches (durable
    /// stores only). `None` disables intermediate checkpoints.
    pub checkpoint_every: Option<usize>,
    /// Persist every parse result as an EAV staging file in this
    /// directory (named `<source>.eav`), mirroring GenMapper's staging
    /// tables between Parse and Import. `None` keeps batches in memory
    /// only.
    pub staging_dir: Option<std::path::PathBuf>,
    /// Per-dump error budget for lenient parsing: up to this many
    /// malformed lines are quarantined (reported, not imported) before a
    /// dump fails the run. `0` keeps the historical strict behaviour.
    pub error_budget: usize,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            parse_threads: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(4),
            checkpoint_every: None,
            staging_dir: None,
            error_budget: 0,
        }
    }
}

/// Parse all dumps (in parallel) and import them (serially, in dump
/// order). Returns one report per dump. A parse failure aborts the run
/// with an error naming the dump.
pub fn run_pipeline(
    store: &mut GamStore,
    dumps: &[SourceDump],
    options: &PipelineOptions,
) -> GamResult<Vec<ImportReport>> {
    run_pipeline_timed(store, dumps, options).map(|(reports, _)| reports)
}

/// [`run_pipeline`] plus per-phase wall-clock timings (parse / resolve /
/// insert / wal), accumulated across all batches.
pub fn run_pipeline_timed(
    store: &mut GamStore,
    dumps: &[SourceDump],
    options: &PipelineOptions,
) -> GamResult<(Vec<ImportReport>, ImportTimings)> {
    let mut timings = ImportTimings::default();
    let parse_start = Instant::now();
    let parsed = parse_dumps_lenient(dumps, options.parse_threads, options.error_budget)
        .map_err(|e| GamError::Invalid(format!("parse failed: {e}")))?;
    timings.parse += parse_start.elapsed();
    if let Some(dir) = &options.staging_dir {
        // staging files ride the store's VFS so crash sweeps can
        // fault-inject them like any other durable state
        let vfs = store.vfs();
        vfs.create_dir_all(dir)
            .map_err(|e| GamError::Invalid(format!("staging dir: {e}")))?;
        for lp in &parsed {
            let path = dir.join(format!("{}.eav", lp.batch.meta.name));
            let mut file = vfs
                .create(&path)
                .map_err(|e| GamError::Invalid(format!("staging create: {e}")))?;
            file.write_all(eav::staging::write_staging(&lp.batch).as_bytes())
                .map_err(|e| GamError::Invalid(format!("staging write: {e}")))?;
            file.sync()
                .map_err(|e| GamError::Invalid(format!("staging sync: {e}")))?;
        }
        vfs.sync_dir(dir)
            .map_err(|e| GamError::Invalid(format!("staging dir sync: {e}")))?;
    }
    let mut reports = Vec::with_capacity(parsed.len());
    for (i, lp) in parsed.into_iter().enumerate() {
        let mut importer = Importer::new(store);
        let mut report = importer.import_owned(lp.batch)?;
        report.quarantined = lp.quarantined;
        timings.absorb(&importer.timings());
        reports.push(report);
        if let Some(every) = options.checkpoint_every {
            if every > 0 && (i + 1) % every == 0 {
                store.checkpoint()?;
            }
        }
    }
    Ok((reports, timings))
}

/// Parse dumps on up to `threads` workers, preserving dump order in the
/// result.
pub fn parse_dumps(
    dumps: &[SourceDump],
    threads: usize,
) -> Result<Vec<eav::EavBatch>, sources::ParseError> {
    Ok(parse_dumps_lenient(dumps, threads, 0)?
        .into_iter()
        .map(|lp| lp.batch)
        .collect())
}

/// [`parse_dumps`] with a per-dump quarantine budget: malformed lines are
/// removed and reported instead of failing the dump, up to `budget` lines
/// each. `budget == 0` is exactly the strict behaviour.
pub fn parse_dumps_lenient(
    dumps: &[SourceDump],
    threads: usize,
    budget: usize,
) -> Result<Vec<sources::LenientParse>, sources::ParseError> {
    if threads <= 1 || dumps.len() <= 1 {
        return dumps.iter().map(|d| d.parse_lenient(budget)).collect();
    }
    let n = dumps.len();
    let mut slots: Vec<Option<Result<sources::LenientParse, sources::ParseError>>> =
        (0..n).map(|_| None).collect();
    let cursor = AtomicUsize::new(0);
    let slots_ptr = std::sync::Mutex::new(&mut slots);

    crossbeam::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|_| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    return;
                }
                let result = dumps[i].parse_lenient(budget);
                // a poisoned slot mutex only means another worker
                // panicked while holding it; the slots themselves are
                // plain writes, safe to keep filling
                let mut guard = slots_ptr.lock().unwrap_or_else(|p| p.into_inner());
                guard[i] = Some(result);
            });
        }
    })
    // a worker panic is a bug in this crate, not a parse failure —
    // re-raise it on the calling thread instead of masking it
    .unwrap_or_else(|panic| std::panic::resume_unwind(panic));

    let mut out = Vec::with_capacity(n);
    for (i, slot) in slots.into_iter().enumerate() {
        out.push(slot.ok_or_else(|| sources::ParseError {
            dialect: "pipeline",
            line: None,
            reason: format!("parser worker abandoned dump #{i}"),
        })??);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sources::ecosystem::{Ecosystem, EcosystemParams};

    #[test]
    fn pipeline_imports_demo_ecosystem() {
        let eco = Ecosystem::generate(EcosystemParams::demo(31));
        let mut store = GamStore::in_memory().unwrap();
        let reports = run_pipeline(&mut store, &eco.dumps, &PipelineOptions::default()).unwrap();
        assert_eq!(reports.len(), eco.dumps.len());
        assert!(reports.iter().all(|r| !r.skipped));
        let cards = store.cardinalities().unwrap();
        // 10 core + 4 satellites + GO partitions + pseudo-target stubs
        assert!(cards.sources >= 14, "got {} sources", cards.sources);
        assert!(cards.objects > 500);
        assert!(cards.associations > 500);
        assert!(cards.mappings >= 15);
        // re-running the pipeline is a no-op (source-level dedup)
        let again = run_pipeline(&mut store, &eco.dumps, &PipelineOptions::default()).unwrap();
        assert!(again.iter().all(|r| r.skipped));
        assert_eq!(store.cardinalities().unwrap(), cards);
    }

    #[test]
    fn timed_pipeline_reports_phase_durations() {
        let eco = Ecosystem::generate(EcosystemParams::demo(36));
        let mut store = GamStore::in_memory().unwrap();
        let (reports, timings) =
            run_pipeline_timed(&mut store, &eco.dumps, &PipelineOptions::default()).unwrap();
        assert_eq!(reports.len(), eco.dumps.len());
        assert!(timings.parse > std::time::Duration::ZERO);
        assert!(timings.total() >= timings.parse + timings.insert);
    }

    #[test]
    fn parallel_parse_matches_serial_parse() {
        let eco = Ecosystem::generate(EcosystemParams::demo(32));
        let serial = parse_dumps(&eco.dumps, 1).unwrap();
        let parallel = parse_dumps(&eco.dumps, 4).unwrap();
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn order_independence_of_import() {
        // Importing sources in a different order yields the same
        // cardinalities (ids differ, content does not).
        let eco = Ecosystem::generate(EcosystemParams::demo(33));
        let mut fwd = GamStore::in_memory().unwrap();
        run_pipeline(&mut fwd, &eco.dumps, &PipelineOptions::default()).unwrap();
        let mut rev_dumps = eco.dumps.clone();
        rev_dumps.reverse();
        let mut rev = GamStore::in_memory().unwrap();
        run_pipeline(&mut rev, &rev_dumps, &PipelineOptions::default()).unwrap();
        assert_eq!(
            fwd.cardinalities().unwrap(),
            rev.cardinalities().unwrap()
        );
    }

    #[test]
    fn staging_files_roundtrip_through_disk() {
        let eco = Ecosystem::generate(EcosystemParams::demo(35));
        let dir = std::env::temp_dir().join("genmapper-staging-test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = GamStore::in_memory().unwrap();
        let options = PipelineOptions {
            staging_dir: Some(dir.clone()),
            ..PipelineOptions::default()
        };
        run_pipeline(&mut store, &eco.dumps, &options).unwrap();
        // every source left a staging file, and re-reading one yields the
        // exact batch the parser produced
        for dump in &eco.dumps {
            let path = dir.join(format!("{}.eav", dump.name));
            assert!(path.exists(), "staging file for {}", dump.name);
            let text = std::fs::read_to_string(&path).unwrap();
            let reread = eav::staging::read_staging(text.as_bytes()).unwrap();
            let mut original = dump.parse().unwrap();
            original.sanitize();
            assert_eq!(reread, original, "staging roundtrip for {}", dump.name);
        }
        // importing the re-read staging files into a fresh store matches
        let mut store2 = GamStore::in_memory().unwrap();
        for dump in &eco.dumps {
            let text =
                std::fs::read_to_string(dir.join(format!("{}.eav", dump.name))).unwrap();
            let batch = eav::staging::read_staging(text.as_bytes()).unwrap();
            crate::Importer::new(&mut store2).import(&batch).unwrap();
        }
        assert_eq!(
            store.cardinalities().unwrap(),
            store2.cardinalities().unwrap()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_failure_is_reported_with_source() {
        let mut eco = Ecosystem::generate(EcosystemParams::demo(34));
        eco.dumps[2].text = "garbage that is not unigene".into();
        let mut store = GamStore::in_memory().unwrap();
        let err = run_pipeline(&mut store, &eco.dumps, &PipelineOptions::default()).unwrap_err();
        assert!(err.to_string().contains("parse failed"));
    }

    #[test]
    fn error_budget_imports_clean_records_and_reports_quarantine() {
        // Corrupt one LocusLink field line; with a budget the run succeeds,
        // loads everything else, and reports the quarantined line.
        let mut eco = Ecosystem::generate(EcosystemParams::demo(34));
        let clean_cards = {
            let mut store = GamStore::in_memory().unwrap();
            run_pipeline(&mut store, &eco.dumps, &PipelineOptions::default()).unwrap();
            store.cardinalities().unwrap()
        };
        let mut lines: Vec<String> = eco.dumps[0].text.lines().map(str::to_owned).collect();
        let bad = lines.iter().position(|l| l.starts_with("CHR:")).unwrap();
        lines[bad] = "CHR:".to_owned(); // empty field value -> parse error
        eco.dumps[0].text = lines.join("\n") + "\n";

        // Strict (default) run still fails fast.
        let mut strict = GamStore::in_memory().unwrap();
        let err =
            run_pipeline(&mut strict, &eco.dumps, &PipelineOptions::default()).unwrap_err();
        assert!(err.to_string().contains("parse failed"));

        let options = PipelineOptions {
            error_budget: 3,
            ..PipelineOptions::default()
        };
        let mut store = GamStore::in_memory().unwrap();
        let reports = run_pipeline(&mut store, &eco.dumps, &options).unwrap();
        let q: Vec<_> = reports.iter().flat_map(|r| &r.quarantined).collect();
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].line, bad + 1);
        assert!(reports[0].to_string().contains("1 quarantined"));
        // exactly one annotation record was lost relative to the clean run
        let cards = store.cardinalities().unwrap();
        assert_eq!(cards.sources, clean_cards.sources);
        assert_eq!(cards.objects, clean_cards.objects);
        assert_eq!(cards.associations, clean_cards.associations - 1);
    }
}
