//! Import reports: what one batch did to the database.

use std::fmt;
use std::time::Duration;

/// Wall-clock spent per import phase, accumulated across batches. The
/// import benchmark harness serializes these into `BENCH_import.json`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ImportTimings {
    /// Parsing dumps into EAV batches (filled in by the pipeline; a bare
    /// [`Importer`](crate::Importer) never parses).
    pub parse: Duration,
    /// Resolution and grouping: sanitize, annotation grouping, batched
    /// source lookups, symbol-map construction.
    pub resolve: Duration,
    /// Store mutations: bulk object and association inserts.
    pub insert: Duration,
    /// WAL group-commit fsync at the end of each batch.
    pub wal: Duration,
}

impl ImportTimings {
    /// Fold another sample into this one.
    pub fn absorb(&mut self, other: &ImportTimings) {
        self.parse += other.parse;
        self.resolve += other.resolve;
        self.insert += other.insert;
        self.wal += other.wal;
    }

    /// Total across all phases.
    pub fn total(&self) -> Duration {
        self.parse + self.resolve + self.insert + self.wal
    }
}

/// Outcome of importing one EAV batch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ImportReport {
    /// Source name the batch belonged to.
    pub source: String,
    /// Release tag of the batch.
    pub release: String,
    /// True if the whole batch was skipped because the same (name,
    /// release) was already imported.
    pub skipped: bool,
    /// True if the source row was created by this import (false for
    /// re-imports and for previously-created stubs now being filled).
    pub source_created: bool,
    /// Objects inserted, per owning source (the parsed source itself plus
    /// any annotation targets).
    pub objects_created: usize,
    /// Object records that resolved to existing objects (dedup hits).
    pub objects_deduped: usize,
    /// Target sources newly registered as stubs.
    pub stub_sources_created: Vec<String>,
    /// Source-level mappings (SOURCE_REL rows) created.
    pub mappings_created: usize,
    /// Object associations inserted.
    pub associations_created: usize,
    /// Association records skipped as duplicates.
    pub associations_deduped: usize,
    /// Malformed records dropped during sanitization.
    pub records_dropped: usize,
    /// Dump lines quarantined by lenient parsing (empty unless the
    /// pipeline ran with a non-zero error budget and the dump needed it).
    pub quarantined: Vec<sources::QuarantinedLine>,
}

impl ImportReport {
    /// A report for a batch skipped by source-level dedup.
    pub fn skipped(source: &str, release: &str) -> Self {
        ImportReport {
            source: source.to_owned(),
            release: release.to_owned(),
            skipped: true,
            ..Default::default()
        }
    }
}

impl fmt::Display for ImportReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.skipped {
            return write!(f, "{} ({}): skipped, already imported", self.source, self.release);
        }
        write!(
            f,
            "{} ({}): +{} objects ({} deduped), +{} mappings, +{} associations ({} deduped)",
            self.source,
            self.release,
            self.objects_created,
            self.objects_deduped,
            self.mappings_created,
            self.associations_created,
            self.associations_deduped,
        )?;
        if !self.stub_sources_created.is_empty() {
            write!(f, ", stubs: {}", self.stub_sources_created.join(", "))?;
        }
        if !self.quarantined.is_empty() {
            write!(f, ", {} quarantined", self.quarantined.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let r = ImportReport::skipped("GO", "200312");
        assert!(r.to_string().contains("skipped"));
        let r = ImportReport {
            source: "LocusLink".into(),
            release: "r1".into(),
            objects_created: 10,
            associations_created: 25,
            stub_sources_created: vec!["Hugo".into()],
            ..Default::default()
        };
        let text = r.to_string();
        assert!(text.contains("+10 objects"));
        assert!(text.contains("stubs: Hugo"));
    }
}
