//! The generic EAV→GAM importer.

use crate::report::ImportReport;
use eav::{EavBatch, EavRecord};
use gam::mapping::Association;
use gam::model::{RelType, SourceContent, SourceStructure};
use gam::{GamResult, GamStore, SourceId};
use std::collections::BTreeMap;

/// Imports EAV batches into a [`GamStore`], applying source- and
/// object-level duplicate elimination.
pub struct Importer<'a> {
    store: &'a mut GamStore,
}

impl<'a> Importer<'a> {
    /// Wrap a store.
    pub fn new(store: &'a mut GamStore) -> Self {
        Importer { store }
    }

    /// Import one batch. The batch is sanitized (normalized, invalid
    /// records dropped) before integration.
    pub fn import(&mut self, batch: &EavBatch) -> GamResult<ImportReport> {
        let mut batch = batch.clone();
        let dropped = batch.sanitize();
        let mut report = ImportReport {
            source: batch.meta.name.clone(),
            release: batch.meta.release.clone(),
            records_dropped: dropped,
            ..Default::default()
        };

        // ---- source-level duplicate elimination -----------------------
        let source = match self.store.find_source(&batch.meta.name)? {
            Some(existing) => {
                if existing.release.as_deref() == Some(batch.meta.release.as_str()) {
                    // Same name and audit info: the batch is already in.
                    report.skipped = true;
                    return Ok(report);
                }
                // Incremental re-import: refresh the audit info and relate
                // new records against the existing objects. The source's
                // own dump is authoritative for its classification, so a
                // stub created from cross-references is upgraded here.
                self.store
                    .set_source_release(existing.id, &batch.meta.release)?;
                if existing.content != batch.meta.content
                    || existing.structure != batch.meta.structure
                {
                    self.store.update_source_meta(
                        existing.id,
                        batch.meta.content,
                        batch.meta.structure,
                    )?;
                }
                existing
            }
            None => {
                report.source_created = true;
                self.store.create_source(
                    &batch.meta.name,
                    batch.meta.content,
                    batch.meta.structure,
                    Some(&batch.meta.release),
                )?
            }
        };

        // ---- partitions (Contains relationships) ----------------------
        for partition in &batch.meta.partitions {
            let pname = format!("{}.{}", batch.meta.name, partition);
            let pid = match self.store.find_source(&pname)? {
                Some(s) => s.id,
                None => {
                    report.stub_sources_created.push(pname.clone());
                    self.store
                        .create_source(&pname, batch.meta.content, batch.meta.structure, None)?
                        .id
                }
            };
            if self
                .store
                .find_source_rel(source.id, pid, Some(RelType::Contains))?
                .is_none()
            {
                self.store
                    .create_source_rel(source.id, pid, RelType::Contains, None)?;
                report.mappings_created += 1;
            }
        }

        // ---- objects of the parsed source ------------------------------
        // Merge Object records by accession (a dump may first declare the
        // accession and later add its name), preferring non-empty fields.
        let mut own_objects: BTreeMap<&str, (Option<&str>, Option<f64>)> = BTreeMap::new();
        for record in &batch.records {
            match record {
                EavRecord::Object {
                    accession,
                    text,
                    number,
                } => {
                    let entry = own_objects.entry(accession.as_str()).or_default();
                    if let Some(t) = text.as_deref() {
                        entry.0 = Some(t);
                    }
                    if let Some(n) = *number {
                        entry.1 = Some(n);
                    }
                }
                // entities referenced by annotations/edges belong to this
                // source too, even if never declared explicitly
                EavRecord::Annotation { entity, .. } => {
                    own_objects.entry(entity.as_str()).or_default();
                }
                EavRecord::IsA { child, parent } => {
                    own_objects.entry(child.as_str()).or_default();
                    own_objects.entry(parent.as_str()).or_default();
                }
            }
        }
        let object_rows: Vec<(String, Option<String>, Option<f64>)> = own_objects
            .iter()
            .map(|(acc, (text, number))| {
                ((*acc).to_owned(), text.map(str::to_owned), *number)
            })
            .collect();
        let (_, created) = self.store.add_objects_bulk(source.id, &object_rows)?;
        report.objects_created += created;
        report.objects_deduped += object_rows.len() - created;

        // ---- annotation relationships, grouped by (target, kind) ------
        // Separate fact and similarity associations per target: they back
        // distinct SOURCE_REL rows of different types.
        type Key = (String, bool); // (target name, scored?)
        type AnnotationRow<'r> = (&'r str, &'r str, Option<&'r str>, Option<f64>);
        let mut groups: BTreeMap<Key, Vec<AnnotationRow<'_>>> = BTreeMap::new();
        for record in &batch.records {
            if let EavRecord::Annotation {
                entity,
                target,
                accession,
                text,
                evidence,
            } = record
            {
                groups
                    .entry((target.clone(), evidence.is_some()))
                    .or_default()
                    .push((entity, accession, text.as_deref(), *evidence));
            }
        }
        for ((target_name, scored), rows) in &groups {
            let target = self.ensure_target(target_name, &batch, &mut report)?;
            // objects on the target side (relate to existing data)
            let target_objects: Vec<(String, Option<String>, Option<f64>)> = {
                let mut merged: BTreeMap<&str, Option<&str>> = BTreeMap::new();
                for (_, acc, text, _) in rows {
                    let entry = merged.entry(acc).or_default();
                    if text.is_some() {
                        *entry = *text;
                    }
                }
                merged
                    .iter()
                    .map(|(acc, text)| ((*acc).to_owned(), text.map(str::to_owned), None))
                    .collect()
            };
            let (_, created) = self.store.add_objects_bulk(target.raw_id(), &target_objects)?;
            report.objects_created += created;
            report.objects_deduped += target_objects.len() - created;

            let rel_type = if *scored {
                RelType::Similarity
            } else {
                RelType::Fact
            };
            // Reuse an existing mapping in either orientation (the reverse
            // direction exists when the target's own dump linked back to
            // this source first); associations must follow the stored
            // orientation.
            let (rel, forward) = match self
                .store
                .find_source_rel(source.id, target.raw_id(), Some(rel_type))?
            {
                Some((rel, fwd)) => (rel.id, fwd),
                None => {
                    report.mappings_created += 1;
                    (
                        self.store
                            .create_source_rel(source.id, target.raw_id(), rel_type, None)?,
                        true,
                    )
                }
            };
            // resolve accessions to object ids and bulk-insert
            let mut assocs = Vec::with_capacity(rows.len());
            for (entity, acc, _, evidence) in rows {
                let from = self
                    .store
                    .find_object(source.id, entity)?
                    .expect("entity ensured above");
                let to = self
                    .store
                    .find_object(target.raw_id(), acc)?
                    .expect("target object ensured above");
                let (o1, o2) = if forward {
                    (from.id, to.id)
                } else {
                    (to.id, from.id)
                };
                assocs.push(Association {
                    from: o1,
                    to: o2,
                    evidence: *evidence,
                });
            }
            let mut added = 0;
            let total = assocs.len();
            self.store.add_associations_bulk(rel, assocs, &mut added)?;
            report.associations_created += added;
            report.associations_deduped += total - added;
        }

        // ---- structural IS_A relationships ----------------------------
        let isa_edges: Vec<(&str, &str)> = batch
            .records
            .iter()
            .filter_map(|r| match r {
                EavRecord::IsA { child, parent } => Some((child.as_str(), parent.as_str())),
                _ => None,
            })
            .collect();
        if !isa_edges.is_empty() {
            let rel = match self
                .store
                .find_source_rel(source.id, source.id, Some(RelType::IsA))?
            {
                Some((rel, _)) => rel.id,
                None => {
                    report.mappings_created += 1;
                    self.store
                        .create_source_rel(source.id, source.id, RelType::IsA, None)?
                }
            };
            let mut assocs = Vec::with_capacity(isa_edges.len());
            for (child, parent) in isa_edges {
                let from = self
                    .store
                    .find_object(source.id, child)?
                    .expect("ensured above");
                let to = self
                    .store
                    .find_object(source.id, parent)?
                    .expect("ensured above");
                assocs.push(Association::fact(from.id, to.id));
            }
            let mut added = 0;
            let total = assocs.len();
            self.store.add_associations_bulk(rel, assocs, &mut added)?;
            report.associations_created += added;
            report.associations_deduped += total - added;
        }

        Ok(report)
    }

    /// Find an annotation target, creating a stub source if it is unknown.
    /// Stubs are classified by the batch's own content as a neutral default
    /// and `Flat` structure; when the target's own dump is imported later,
    /// its metadata comes from that dump.
    fn ensure_target(
        &mut self,
        name: &str,
        batch: &EavBatch,
        report: &mut ImportReport,
    ) -> GamResult<TargetHandle> {
        if let Some(existing) = self.store.find_source(name)? {
            return Ok(TargetHandle { id: existing.id });
        }
        report.stub_sources_created.push(name.to_owned());
        let source = self.store.create_source(
            name,
            stub_content(name, batch.meta.content),
            SourceStructure::Flat,
            None,
        )?;
        Ok(TargetHandle { id: source.id })
    }
}

/// Lightweight wrapper so call sites read as target.raw_id().
struct TargetHandle {
    id: SourceId,
}

impl TargetHandle {
    fn raw_id(&self) -> SourceId {
        self.id
    }
}

/// Heuristic content class for stub targets: gene-ish hubs are Gene,
/// everything else inherits a neutral `Other`.
fn stub_content(name: &str, _importing: SourceContent) -> SourceContent {
    match name {
        "LocusLink" | "Unigene" | "Hugo" => SourceContent::Gene,
        "SwissProt" | "InterPro" => SourceContent::Protein,
        _ => SourceContent::Other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eav::SourceMeta;

    fn store() -> GamStore {
        GamStore::in_memory().unwrap()
    }

    fn locuslink_batch() -> EavBatch {
        let mut b = EavBatch::new(SourceMeta::flat_gene("LocusLink", "r1"));
        b.push(EavRecord::object("353"));
        b.push(EavRecord::named_object("353", "adenine phosphoribosyltransferase"));
        b.push(EavRecord::annotation("353", "Hugo", "APRT"));
        b.push(EavRecord::annotation("353", "Location", "16q24"));
        b.push(EavRecord::annotation("353", "Enzyme", "2.4.2.7"));
        b.push(EavRecord::annotation_with_text("353", "GO", "GO:0009116", "nucleoside metabolism"));
        b.push(EavRecord::object("1234"));
        b.push(EavRecord::annotation("1234", "GO", "GO:0009116"));
        b
    }

    #[test]
    fn basic_import_creates_everything() {
        let mut s = store();
        let report = Importer::new(&mut s).import(&locuslink_batch()).unwrap();
        assert!(report.source_created);
        assert!(!report.skipped);
        // objects: 2 loci + APRT + 16q24 + 2.4.2.7 + GO:0009116
        assert_eq!(report.objects_created, 6);
        assert_eq!(report.associations_created, 5);
        // one Fact mapping per target
        assert_eq!(report.mappings_created, 4);
        assert_eq!(
            report.stub_sources_created,
            vec!["Enzyme", "GO", "Hugo", "Location"]
        );
        // object text landed on both sides
        let ll = s.find_source("LocusLink").unwrap().unwrap();
        let locus = s.find_object(ll.id, "353").unwrap().unwrap();
        assert_eq!(locus.text.as_deref(), Some("adenine phosphoribosyltransferase"));
        let go = s.find_source("GO").unwrap().unwrap();
        let term = s.find_object(go.id, "GO:0009116").unwrap().unwrap();
        assert_eq!(term.text.as_deref(), Some("nucleoside metabolism"));
    }

    #[test]
    fn same_release_is_skipped_entirely() {
        let mut s = store();
        Importer::new(&mut s).import(&locuslink_batch()).unwrap();
        let before = s.cardinalities().unwrap();
        let report = Importer::new(&mut s).import(&locuslink_batch()).unwrap();
        assert!(report.skipped);
        assert_eq!(s.cardinalities().unwrap(), before, "idempotent re-import");
    }

    #[test]
    fn new_release_is_incremental() {
        let mut s = store();
        Importer::new(&mut s).import(&locuslink_batch()).unwrap();
        let mut updated = locuslink_batch();
        updated.meta.release = "r2".into();
        updated.push(EavRecord::object("999"));
        updated.push(EavRecord::annotation("999", "GO", "GO:0009116"));
        let report = Importer::new(&mut s).import(&updated).unwrap();
        assert!(!report.skipped);
        assert!(!report.source_created);
        // only the new locus is inserted; everything else dedups
        assert_eq!(report.objects_created, 1);
        assert_eq!(report.associations_created, 1);
        assert_eq!(report.associations_deduped, 5);
        assert!(report.stub_sources_created.is_empty());
        assert_eq!(report.mappings_created, 0, "existing mappings reused");
        let src = s.find_source("LocusLink").unwrap().unwrap();
        assert_eq!(src.release.as_deref(), Some("r2"));
    }

    #[test]
    fn relates_against_previously_imported_target() {
        // paper: "if GO has already been integrated into GAM, re-importing
        // LocusLink only requires to relate the new LocusLink objects with
        // the existing GO terms"
        let mut s = store();
        let mut go = EavBatch::new(SourceMeta::network(
            "GO",
            "200312",
            SourceContent::Other,
        ));
        go.meta.partitions = vec!["BiologicalProcess".into()];
        go.push(EavRecord::named_object("GO:0008150", "biological_process"));
        go.push(EavRecord::named_object("GO:0009116", "nucleoside metabolism"));
        go.push(EavRecord::is_a("GO:0009116", "GO:0008150"));
        let go_report = Importer::new(&mut s).import(&go).unwrap();
        assert_eq!(go_report.objects_created, 2);
        assert_eq!(go_report.mappings_created, 2); // Contains + IS_A
        assert_eq!(go_report.stub_sources_created, vec!["GO.BiologicalProcess"]);

        let ll_report = Importer::new(&mut s).import(&locuslink_batch()).unwrap();
        // GO:0009116 already exists: no new GO object
        assert!(!ll_report.stub_sources_created.contains(&"GO".to_owned()));
        let go_src = s.find_source("GO").unwrap().unwrap();
        assert_eq!(s.object_count(go_src.id).unwrap(), 2);
        // GO source keeps its Network structure (not overwritten by stubs)
        assert_eq!(go_src.structure, SourceStructure::Network);
        // the LocusLink->GO mapping references the existing term
        let ll = s.find_source("LocusLink").unwrap().unwrap();
        let (rel, fwd) = s.find_source_rel(ll.id, go_src.id, Some(RelType::Fact)).unwrap().unwrap();
        assert!(fwd);
        let mapping = s.load_mapping(rel.id).unwrap();
        assert_eq!(mapping.len(), 2);
    }

    #[test]
    fn stub_filled_by_later_full_import() {
        let mut s = store();
        // LocusLink first: creates a GO stub holding GO:0009116
        Importer::new(&mut s).import(&locuslink_batch()).unwrap();
        // now the full GO arrives
        let mut go = EavBatch::new(SourceMeta::network("GO", "200312", SourceContent::Other));
        go.push(EavRecord::named_object("GO:0008150", "biological_process"));
        go.push(EavRecord::named_object("GO:0009116", "nucleoside metabolism"));
        go.push(EavRecord::is_a("GO:0009116", "GO:0008150"));
        let report = Importer::new(&mut s).import(&go).unwrap();
        assert!(!report.source_created, "stub reused");
        assert_eq!(report.objects_created, 1, "only the root is new");
        assert_eq!(report.objects_deduped, 1);
        // the stub's release is now the real one
        let go_src = s.find_source("GO").unwrap().unwrap();
        assert_eq!(go_src.release.as_deref(), Some("200312"));
    }

    #[test]
    fn similarity_and_fact_mappings_are_separate() {
        let mut s = store();
        let mut b = EavBatch::new(SourceMeta::flat_gene("NetAffx", "na34"));
        b.push(EavRecord::object("1000_at"));
        b.push(EavRecord::similarity("1000_at", "Unigene", "Hs.1", 0.9));
        b.push(EavRecord::annotation("1000_at", "Unigene", "Hs.1"));
        let report = Importer::new(&mut s).import(&b).unwrap();
        assert_eq!(report.mappings_created, 2);
        let na = s.find_source("NetAffx").unwrap().unwrap();
        let ug = s.find_source("Unigene").unwrap().unwrap();
        let fact = s.find_source_rel(na.id, ug.id, Some(RelType::Fact)).unwrap().unwrap();
        let sim = s
            .find_source_rel(na.id, ug.id, Some(RelType::Similarity))
            .unwrap()
            .unwrap();
        assert_ne!(fact.0.id, sim.0.id);
        let sim_map = s.load_mapping(sim.0.id).unwrap();
        assert_eq!(sim_map.pairs[0].evidence, Some(0.9));
    }

    #[test]
    fn isa_edges_build_intra_source_mapping() {
        let mut s = store();
        let mut b = EavBatch::new(SourceMeta::network("Enzyme", "33.0", SourceContent::Other));
        b.push(EavRecord::is_a("2.4.2.7", "2.4.2"));
        b.push(EavRecord::is_a("2.4.2", "2.4"));
        let report = Importer::new(&mut s).import(&b).unwrap();
        // implicit objects created from edge endpoints
        assert_eq!(report.objects_created, 3);
        let ez = s.find_source("Enzyme").unwrap().unwrap();
        let (rel, _) = s.find_source_rel(ez.id, ez.id, Some(RelType::IsA)).unwrap().unwrap();
        let map = s.load_mapping(rel.id).unwrap();
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn dropped_records_are_counted() {
        let mut s = store();
        let mut b = EavBatch::new(SourceMeta::flat_gene("X", "r1"));
        b.push(EavRecord::object("ok"));
        b.push(EavRecord::object(""));
        b.push(EavRecord::is_a("a", "a"));
        let report = Importer::new(&mut s).import(&b).unwrap();
        assert_eq!(report.records_dropped, 2);
        assert_eq!(report.objects_created, 1);
    }
}
