//! The generic EAV→GAM importer.
//!
//! The default path ([`Importer::import`] / [`Importer::import_owned`]) is
//! batch-oriented: annotation records are grouped with borrowed keys (the
//! batch itself is the string arena), all partition/target source names are
//! resolved in one index pass, object accessions resolve through the
//! store's batched accession resolver, and every store write lands inside
//! one WAL group-commit window so a batch pays a single fsync. The
//! pre-batching implementation survives as
//! [`Importer::import_per_row`] — the reference the equivalence property
//! tests and benchmarks compare against; both paths make identical dedup
//! decisions and assign identical ids.

use crate::report::{ImportReport, ImportTimings};
use eav::{EavBatch, EavRecord};
use gam::mapping::Association;
use gam::model::{RelType, SourceContent, SourceStructure};
use gam::{GamError, GamResult, GamStore, ObjectId, SourceId};
use std::collections::BTreeMap;
use std::time::Instant;

/// Imports EAV batches into a [`GamStore`], applying source- and
/// object-level duplicate elimination.
pub struct Importer<'a> {
    store: &'a mut GamStore,
    timings: ImportTimings,
}

impl<'a> Importer<'a> {
    /// Wrap a store.
    pub fn new(store: &'a mut GamStore) -> Self {
        Importer {
            store,
            timings: ImportTimings::default(),
        }
    }

    /// Per-phase wall-clock accumulated by this importer (resolve, insert,
    /// wal; parse is filled in by the pipeline).
    pub fn timings(&self) -> ImportTimings {
        self.timings
    }

    /// Import one batch. The batch is sanitized (normalized, invalid
    /// records dropped) before integration; already-clean batches are
    /// imported without copying.
    pub fn import(&mut self, batch: &EavBatch) -> GamResult<ImportReport> {
        if batch.is_clean() {
            self.import_sanitized(batch, 0)
        } else {
            let mut owned = batch.clone();
            let dropped = owned.sanitize();
            self.import_sanitized(&owned, dropped)
        }
    }

    /// Import one batch by value, sanitizing in place. The pipeline hands
    /// its parse output here so no batch is ever cloned.
    pub fn import_owned(&mut self, mut batch: EavBatch) -> GamResult<ImportReport> {
        let dropped = batch.sanitize();
        self.import_sanitized(&batch, dropped)
    }

    fn import_sanitized(&mut self, batch: &EavBatch, dropped: usize) -> GamResult<ImportReport> {
        let start = Instant::now();
        let insert0 = self.timings.insert;
        let wal0 = self.timings.wal;
        let mut report = ImportReport {
            source: batch.meta.name.clone(),
            release: batch.meta.release.clone(),
            records_dropped: dropped,
            ..Default::default()
        };

        // ---- source-level duplicate elimination -----------------------
        let existing = self.store.find_source(&batch.meta.name)?;
        if let Some(src) = &existing {
            if src.release.as_deref() == Some(batch.meta.release.as_str()) {
                // Same name and audit info: the batch is already in.
                report.skipped = true;
                self.timings.resolve += start.elapsed();
                return Ok(report);
            }
        }

        // Everything the batch writes commits inside one group-commit
        // window: the WAL is fsynced once, at the end.
        self.store.begin_group_commit();
        let body = self.import_body(existing, batch, &mut report);
        let wal_start = Instant::now();
        let synced = self.store.end_group_commit();
        self.timings.wal += wal_start.elapsed();
        body?;
        synced?;
        let attributed = (self.timings.insert - insert0) + (self.timings.wal - wal0);
        self.timings.resolve += start.elapsed().saturating_sub(attributed);
        Ok(report)
    }

    fn import_body(
        &mut self,
        existing: Option<gam::model::Source>,
        batch: &EavBatch,
        report: &mut ImportReport,
    ) -> GamResult<()> {
        let source = match existing {
            Some(existing) => {
                // Incremental re-import: relate new records against the
                // existing objects. The source's own dump is authoritative
                // for its classification, so a stub created from
                // cross-references is upgraded here.
                if existing.content != batch.meta.content
                    || existing.structure != batch.meta.structure
                {
                    self.store.update_source_meta(
                        existing.id,
                        batch.meta.content,
                        batch.meta.structure,
                    )?;
                }
                existing
            }
            None => {
                report.source_created = true;
                self.store.create_source(
                    &batch.meta.name,
                    batch.meta.content,
                    batch.meta.structure,
                    None,
                )?
            }
        };

        // ---- annotation groups, keyed by (target, kind) ----------------
        // Separate fact and similarity associations per target: they back
        // distinct SOURCE_REL rows of different types. Keys borrow from
        // the batch; iteration order matches the owned-key map the per-row
        // path used, so stub creation order (and thus ids) is unchanged.
        type AnnotationRow<'r> = (&'r str, &'r str, Option<&'r str>, Option<f64>);
        let mut groups: BTreeMap<(&str, bool), Vec<AnnotationRow<'_>>> = BTreeMap::new();
        for record in &batch.records {
            if let EavRecord::Annotation {
                entity,
                target,
                accession,
                text,
                evidence,
            } = record
            {
                groups
                    .entry((target.as_str(), evidence.is_some()))
                    .or_default()
                    .push((entity, accession, text.as_deref(), *evidence));
            }
        }

        // ---- batched source resolution (partitions + targets) ----------
        // One sorted index pass answers every partition and annotation
        // target lookup for this batch; stubs created below are recorded
        // in `known` so later groups see them, exactly as per-group
        // `find_source` calls would.
        let pnames: Vec<String> = batch
            .meta
            .partitions
            .iter()
            .map(|p| format!("{}.{}", batch.meta.name, p))
            .collect();
        let mut probe: Vec<&str> = pnames.iter().map(String::as_str).collect();
        probe.extend(groups.keys().map(|(target, _)| *target));
        let hits = self.store.find_sources(&probe)?;
        let mut known: BTreeMap<&str, SourceId> = BTreeMap::new();
        for (name, hit) in probe.iter().zip(&hits) {
            if let Some(s) = hit {
                known.insert(name, s.id);
            }
        }
        known.insert(batch.meta.name.as_str(), source.id);

        // ---- partitions (Contains relationships) ----------------------
        for pname in &pnames {
            let pid = match known.get(pname.as_str()) {
                Some(id) => *id,
                None => {
                    report.stub_sources_created.push(pname.clone());
                    let id = self
                        .store
                        .create_source(pname, batch.meta.content, batch.meta.structure, None)?
                        .id;
                    known.insert(pname.as_str(), id);
                    id
                }
            };
            if self
                .store
                .find_source_rel(source.id, pid, Some(RelType::Contains))?
                .is_none()
            {
                self.store
                    .create_source_rel(source.id, pid, RelType::Contains, None)?;
                report.mappings_created += 1;
            }
        }

        // ---- objects of the parsed source ------------------------------
        // Merge Object records by accession (a dump may first declare the
        // accession and later add its name), preferring non-empty fields.
        let mut own_objects: BTreeMap<&str, (Option<&str>, Option<f64>)> = BTreeMap::new();
        for record in &batch.records {
            match record {
                EavRecord::Object {
                    accession,
                    text,
                    number,
                } => {
                    let entry = own_objects.entry(accession.as_str()).or_default();
                    if let Some(t) = text.as_deref() {
                        entry.0 = Some(t);
                    }
                    if let Some(n) = *number {
                        entry.1 = Some(n);
                    }
                }
                // entities referenced by annotations/edges belong to this
                // source too, even if never declared explicitly
                EavRecord::Annotation { entity, .. } => {
                    own_objects.entry(entity.as_str()).or_default();
                }
                EavRecord::IsA { child, parent } => {
                    own_objects.entry(child.as_str()).or_default();
                    own_objects.entry(parent.as_str()).or_default();
                }
            }
        }
        let object_rows: Vec<(&str, Option<&str>, Option<f64>)> = own_objects
            .iter()
            .map(|(acc, (text, number))| (*acc, *text, *number))
            .collect();
        let t = Instant::now();
        let inserted = self.store.add_objects_bulk_ref(source.id, &object_rows);
        self.timings.insert += t.elapsed();
        let (ids, created) = inserted?;
        report.objects_created += created;
        report.objects_deduped += object_rows.len() - created;
        // symbol table: accession -> id for every object of this source
        // touched by the batch; association building below never goes
        // back to the store for an id
        let own_ids: BTreeMap<&str, ObjectId> = object_rows
            .iter()
            .map(|(acc, _, _)| *acc)
            .zip(ids)
            .collect();

        // ---- annotation relationships ----------------------------------
        for ((target_name, scored), rows) in &groups {
            let target = match known.get(target_name) {
                Some(id) => *id,
                None => {
                    // unknown target: register a stub source so its
                    // accessions have a home until the real dump arrives
                    report.stub_sources_created.push((*target_name).to_owned());
                    let id = self
                        .store
                        .create_source(
                            target_name,
                            stub_content(target_name, batch.meta.content),
                            SourceStructure::Flat,
                            None,
                        )?
                        .id;
                    known.insert(target_name, id);
                    id
                }
            };
            // objects on the target side (relate to existing data)
            let mut merged: BTreeMap<&str, Option<&str>> = BTreeMap::new();
            for (_, acc, text, _) in rows {
                let entry = merged.entry(acc).or_default();
                if text.is_some() {
                    *entry = *text;
                }
            }
            let target_rows: Vec<(&str, Option<&str>, Option<f64>)> =
                merged.iter().map(|(acc, text)| (*acc, *text, None)).collect();
            let t = Instant::now();
            let inserted = self.store.add_objects_bulk_ref(target, &target_rows);
            self.timings.insert += t.elapsed();
            let (tids, created) = inserted?;
            report.objects_created += created;
            report.objects_deduped += target_rows.len() - created;
            let target_ids: BTreeMap<&str, ObjectId> = target_rows
                .iter()
                .map(|(acc, _, _)| *acc)
                .zip(tids)
                .collect();

            let rel_type = if *scored {
                RelType::Similarity
            } else {
                RelType::Fact
            };
            // Reuse an existing mapping in either orientation (the reverse
            // direction exists when the target's own dump linked back to
            // this source first); associations must follow the stored
            // orientation.
            let (rel, forward) = match self
                .store
                .find_source_rel(source.id, target, Some(rel_type))?
            {
                Some((rel, fwd)) => (rel.id, fwd),
                None => {
                    report.mappings_created += 1;
                    (
                        self.store
                            .create_source_rel(source.id, target, rel_type, None)?,
                        true,
                    )
                }
            };
            let mut assocs = Vec::with_capacity(rows.len());
            for (entity, acc, _, evidence) in rows {
                let from = *own_ids.get(entity).ok_or_else(|| {
                    GamError::Invalid(format!(
                        "annotation entity {entity} missing from source {}",
                        batch.meta.name
                    ))
                })?;
                let to = *target_ids.get(acc).ok_or_else(|| {
                    GamError::Invalid(format!(
                        "annotating object {acc} missing from target {target_name}"
                    ))
                })?;
                let (o1, o2) = if forward { (from, to) } else { (to, from) };
                assocs.push(Association {
                    from: o1,
                    to: o2,
                    evidence: *evidence,
                });
            }
            let mut added = 0;
            let total = assocs.len();
            let t = Instant::now();
            let inserted = self.store.add_associations_bulk(rel, assocs, &mut added);
            self.timings.insert += t.elapsed();
            inserted?;
            report.associations_created += added;
            report.associations_deduped += total - added;
        }

        // ---- structural IS_A relationships ----------------------------
        let isa_edges: Vec<(&str, &str)> = batch
            .records
            .iter()
            .filter_map(|r| match r {
                EavRecord::IsA { child, parent } => Some((child.as_str(), parent.as_str())),
                _ => None,
            })
            .collect();
        if !isa_edges.is_empty() {
            let rel = match self
                .store
                .find_source_rel(source.id, source.id, Some(RelType::IsA))?
            {
                Some((rel, _)) => rel.id,
                None => {
                    report.mappings_created += 1;
                    self.store
                        .create_source_rel(source.id, source.id, RelType::IsA, None)?
                }
            };
            let mut assocs = Vec::with_capacity(isa_edges.len());
            for (child, parent) in isa_edges {
                let from = *own_ids.get(child).ok_or_else(|| {
                    GamError::Invalid(format!("IS_A child {child} missing from its source"))
                })?;
                let to = *own_ids.get(parent).ok_or_else(|| {
                    GamError::Invalid(format!("IS_A parent {parent} missing from its source"))
                })?;
                assocs.push(Association::fact(from, to));
            }
            let mut added = 0;
            let total = assocs.len();
            let t = Instant::now();
            let inserted = self.store.add_associations_bulk(rel, assocs, &mut added);
            self.timings.insert += t.elapsed();
            inserted?;
            report.associations_created += added;
            report.associations_deduped += total - added;
        }

        // The release tag is written *last*: the source-level dedup check
        // skips a dump whose recorded release already matches, so stamping
        // it only after every record landed means a crash mid-import leaves
        // the source without the new release and the re-import runs again
        // instead of being silently skipped against a half-loaded store.
        self.store
            .set_source_release(source.id, &batch.meta.release)?;

        Ok(())
    }

    /// The pre-batching reference implementation: one store lookup per
    /// accession, one transaction per logical step, one WAL fsync per
    /// commit. The equivalence property tests assert this path and the
    /// bulk path produce identical reports and store contents; the import
    /// benchmark uses it as the baseline. Not used by the pipeline.
    #[doc(hidden)]
    pub fn import_per_row(&mut self, batch: &EavBatch) -> GamResult<ImportReport> {
        let mut batch = batch.clone();
        let dropped = batch.sanitize();
        let mut report = ImportReport {
            source: batch.meta.name.clone(),
            release: batch.meta.release.clone(),
            records_dropped: dropped,
            ..Default::default()
        };

        let source = match self.store.find_source(&batch.meta.name)? {
            Some(existing) => {
                if existing.release.as_deref() == Some(batch.meta.release.as_str()) {
                    report.skipped = true;
                    return Ok(report);
                }
                if existing.content != batch.meta.content
                    || existing.structure != batch.meta.structure
                {
                    self.store.update_source_meta(
                        existing.id,
                        batch.meta.content,
                        batch.meta.structure,
                    )?;
                }
                existing
            }
            None => {
                report.source_created = true;
                self.store.create_source(
                    &batch.meta.name,
                    batch.meta.content,
                    batch.meta.structure,
                    None,
                )?
            }
        };

        for partition in &batch.meta.partitions {
            let pname = format!("{}.{}", batch.meta.name, partition);
            let pid = match self.store.find_source(&pname)? {
                Some(s) => s.id,
                None => {
                    report.stub_sources_created.push(pname.clone());
                    self.store
                        .create_source(&pname, batch.meta.content, batch.meta.structure, None)?
                        .id
                }
            };
            if self
                .store
                .find_source_rel(source.id, pid, Some(RelType::Contains))?
                .is_none()
            {
                self.store
                    .create_source_rel(source.id, pid, RelType::Contains, None)?;
                report.mappings_created += 1;
            }
        }

        let mut own_objects: BTreeMap<&str, (Option<&str>, Option<f64>)> = BTreeMap::new();
        for record in &batch.records {
            match record {
                EavRecord::Object {
                    accession,
                    text,
                    number,
                } => {
                    let entry = own_objects.entry(accession.as_str()).or_default();
                    if let Some(t) = text.as_deref() {
                        entry.0 = Some(t);
                    }
                    if let Some(n) = *number {
                        entry.1 = Some(n);
                    }
                }
                EavRecord::Annotation { entity, .. } => {
                    own_objects.entry(entity.as_str()).or_default();
                }
                EavRecord::IsA { child, parent } => {
                    own_objects.entry(child.as_str()).or_default();
                    own_objects.entry(parent.as_str()).or_default();
                }
            }
        }
        for (acc, (text, number)) in &own_objects {
            let (_, fresh) = self.store.ensure_object(source.id, acc, *text, *number)?;
            if fresh {
                report.objects_created += 1;
            } else {
                report.objects_deduped += 1;
            }
        }

        type AnnotationRow<'r> = (&'r str, &'r str, Option<&'r str>, Option<f64>);
        let mut groups: BTreeMap<(String, bool), Vec<AnnotationRow<'_>>> = BTreeMap::new();
        for record in &batch.records {
            if let EavRecord::Annotation {
                entity,
                target,
                accession,
                text,
                evidence,
            } = record
            {
                groups
                    .entry((target.clone(), evidence.is_some()))
                    .or_default()
                    .push((entity, accession, text.as_deref(), *evidence));
            }
        }
        for ((target_name, scored), rows) in &groups {
            let target = match self.store.find_source(target_name)? {
                Some(existing) => existing.id,
                None => {
                    report.stub_sources_created.push(target_name.clone());
                    self.store
                        .create_source(
                            target_name,
                            stub_content(target_name, batch.meta.content),
                            SourceStructure::Flat,
                            None,
                        )?
                        .id
                }
            };
            let mut merged: BTreeMap<&str, Option<&str>> = BTreeMap::new();
            for (_, acc, text, _) in rows {
                let entry = merged.entry(acc).or_default();
                if text.is_some() {
                    *entry = *text;
                }
            }
            for (acc, text) in &merged {
                let (_, fresh) = self.store.ensure_object(target, acc, *text, None)?;
                if fresh {
                    report.objects_created += 1;
                } else {
                    report.objects_deduped += 1;
                }
            }

            let rel_type = if *scored {
                RelType::Similarity
            } else {
                RelType::Fact
            };
            let (rel, forward) = match self
                .store
                .find_source_rel(source.id, target, Some(rel_type))?
            {
                Some((rel, fwd)) => (rel.id, fwd),
                None => {
                    report.mappings_created += 1;
                    (
                        self.store
                            .create_source_rel(source.id, target, rel_type, None)?,
                        true,
                    )
                }
            };
            for (entity, acc, _, evidence) in rows {
                let from = self.store.find_object(source.id, entity)?.ok_or_else(|| {
                    GamError::Invalid(format!(
                        "annotation entity {entity} missing from source {}",
                        batch.meta.name
                    ))
                })?;
                let to = self.store.find_object(target, acc)?.ok_or_else(|| {
                    GamError::Invalid(format!(
                        "annotating object {acc} missing from target {target_name}"
                    ))
                })?;
                let (o1, o2) = if forward {
                    (from.id, to.id)
                } else {
                    (to.id, from.id)
                };
                if self.store.add_association(rel, o1, o2, *evidence)? {
                    report.associations_created += 1;
                } else {
                    report.associations_deduped += 1;
                }
            }
        }

        let isa_edges: Vec<(&str, &str)> = batch
            .records
            .iter()
            .filter_map(|r| match r {
                EavRecord::IsA { child, parent } => Some((child.as_str(), parent.as_str())),
                _ => None,
            })
            .collect();
        if !isa_edges.is_empty() {
            let rel = match self
                .store
                .find_source_rel(source.id, source.id, Some(RelType::IsA))?
            {
                Some((rel, _)) => rel.id,
                None => {
                    report.mappings_created += 1;
                    self.store
                        .create_source_rel(source.id, source.id, RelType::IsA, None)?
                }
            };
            for (child, parent) in isa_edges {
                let from = self.store.find_object(source.id, child)?.ok_or_else(|| {
                    GamError::Invalid(format!("IS_A child {child} missing from its source"))
                })?;
                let to = self.store.find_object(source.id, parent)?.ok_or_else(|| {
                    GamError::Invalid(format!("IS_A parent {parent} missing from its source"))
                })?;
                if self.store.add_association(rel, from.id, to.id, None)? {
                    report.associations_created += 1;
                } else {
                    report.associations_deduped += 1;
                }
            }
        }

        // Release written last — see `import_body` for the crash rationale.
        self.store
            .set_source_release(source.id, &batch.meta.release)?;

        Ok(report)
    }
}

/// Heuristic content class for stub targets: gene-ish hubs are Gene,
/// everything else inherits a neutral `Other`.
fn stub_content(name: &str, _importing: SourceContent) -> SourceContent {
    match name {
        "LocusLink" | "Unigene" | "Hugo" => SourceContent::Gene,
        "SwissProt" | "InterPro" => SourceContent::Protein,
        _ => SourceContent::Other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eav::SourceMeta;

    fn store() -> GamStore {
        GamStore::in_memory().unwrap()
    }

    fn locuslink_batch() -> EavBatch {
        let mut b = EavBatch::new(SourceMeta::flat_gene("LocusLink", "r1"));
        b.push(EavRecord::object("353"));
        b.push(EavRecord::named_object("353", "adenine phosphoribosyltransferase"));
        b.push(EavRecord::annotation("353", "Hugo", "APRT"));
        b.push(EavRecord::annotation("353", "Location", "16q24"));
        b.push(EavRecord::annotation("353", "Enzyme", "2.4.2.7"));
        b.push(EavRecord::annotation_with_text("353", "GO", "GO:0009116", "nucleoside metabolism"));
        b.push(EavRecord::object("1234"));
        b.push(EavRecord::annotation("1234", "GO", "GO:0009116"));
        b
    }

    #[test]
    fn basic_import_creates_everything() {
        let mut s = store();
        let report = Importer::new(&mut s).import(&locuslink_batch()).unwrap();
        assert!(report.source_created);
        assert!(!report.skipped);
        // objects: 2 loci + APRT + 16q24 + 2.4.2.7 + GO:0009116
        assert_eq!(report.objects_created, 6);
        assert_eq!(report.associations_created, 5);
        // one Fact mapping per target
        assert_eq!(report.mappings_created, 4);
        assert_eq!(
            report.stub_sources_created,
            vec!["Enzyme", "GO", "Hugo", "Location"]
        );
        // object text landed on both sides
        let ll = s.find_source("LocusLink").unwrap().unwrap();
        let locus = s.find_object(ll.id, "353").unwrap().unwrap();
        assert_eq!(locus.text.as_deref(), Some("adenine phosphoribosyltransferase"));
        let go = s.find_source("GO").unwrap().unwrap();
        let term = s.find_object(go.id, "GO:0009116").unwrap().unwrap();
        assert_eq!(term.text.as_deref(), Some("nucleoside metabolism"));
    }

    #[test]
    fn same_release_is_skipped_entirely() {
        let mut s = store();
        Importer::new(&mut s).import(&locuslink_batch()).unwrap();
        let before = s.cardinalities().unwrap();
        let report = Importer::new(&mut s).import(&locuslink_batch()).unwrap();
        assert!(report.skipped);
        assert_eq!(s.cardinalities().unwrap(), before, "idempotent re-import");
    }

    #[test]
    fn new_release_is_incremental() {
        let mut s = store();
        Importer::new(&mut s).import(&locuslink_batch()).unwrap();
        let mut updated = locuslink_batch();
        updated.meta.release = "r2".into();
        updated.push(EavRecord::object("999"));
        updated.push(EavRecord::annotation("999", "GO", "GO:0009116"));
        let report = Importer::new(&mut s).import(&updated).unwrap();
        assert!(!report.skipped);
        assert!(!report.source_created);
        // only the new locus is inserted; everything else dedups
        assert_eq!(report.objects_created, 1);
        assert_eq!(report.associations_created, 1);
        assert_eq!(report.associations_deduped, 5);
        assert!(report.stub_sources_created.is_empty());
        assert_eq!(report.mappings_created, 0, "existing mappings reused");
        let src = s.find_source("LocusLink").unwrap().unwrap();
        assert_eq!(src.release.as_deref(), Some("r2"));
    }

    #[test]
    fn relates_against_previously_imported_target() {
        // paper: "if GO has already been integrated into GAM, re-importing
        // LocusLink only requires to relate the new LocusLink objects with
        // the existing GO terms"
        let mut s = store();
        let mut go = EavBatch::new(SourceMeta::network(
            "GO",
            "200312",
            SourceContent::Other,
        ));
        go.meta.partitions = vec!["BiologicalProcess".into()];
        go.push(EavRecord::named_object("GO:0008150", "biological_process"));
        go.push(EavRecord::named_object("GO:0009116", "nucleoside metabolism"));
        go.push(EavRecord::is_a("GO:0009116", "GO:0008150"));
        let go_report = Importer::new(&mut s).import(&go).unwrap();
        assert_eq!(go_report.objects_created, 2);
        assert_eq!(go_report.mappings_created, 2); // Contains + IS_A
        assert_eq!(go_report.stub_sources_created, vec!["GO.BiologicalProcess"]);

        let ll_report = Importer::new(&mut s).import(&locuslink_batch()).unwrap();
        // GO:0009116 already exists: no new GO object
        assert!(!ll_report.stub_sources_created.contains(&"GO".to_owned()));
        let go_src = s.find_source("GO").unwrap().unwrap();
        assert_eq!(s.object_count(go_src.id).unwrap(), 2);
        // GO source keeps its Network structure (not overwritten by stubs)
        assert_eq!(go_src.structure, SourceStructure::Network);
        // the LocusLink->GO mapping references the existing term
        let ll = s.find_source("LocusLink").unwrap().unwrap();
        let (rel, fwd) = s.find_source_rel(ll.id, go_src.id, Some(RelType::Fact)).unwrap().unwrap();
        assert!(fwd);
        let mapping = s.load_mapping(rel.id).unwrap();
        assert_eq!(mapping.len(), 2);
    }

    #[test]
    fn stub_filled_by_later_full_import() {
        let mut s = store();
        // LocusLink first: creates a GO stub holding GO:0009116
        Importer::new(&mut s).import(&locuslink_batch()).unwrap();
        // now the full GO arrives
        let mut go = EavBatch::new(SourceMeta::network("GO", "200312", SourceContent::Other));
        go.push(EavRecord::named_object("GO:0008150", "biological_process"));
        go.push(EavRecord::named_object("GO:0009116", "nucleoside metabolism"));
        go.push(EavRecord::is_a("GO:0009116", "GO:0008150"));
        let report = Importer::new(&mut s).import(&go).unwrap();
        assert!(!report.source_created, "stub reused");
        assert_eq!(report.objects_created, 1, "only the root is new");
        assert_eq!(report.objects_deduped, 1);
        // the stub's release is now the real one
        let go_src = s.find_source("GO").unwrap().unwrap();
        assert_eq!(go_src.release.as_deref(), Some("200312"));
    }

    #[test]
    fn similarity_and_fact_mappings_are_separate() {
        let mut s = store();
        let mut b = EavBatch::new(SourceMeta::flat_gene("NetAffx", "na34"));
        b.push(EavRecord::object("1000_at"));
        b.push(EavRecord::similarity("1000_at", "Unigene", "Hs.1", 0.9));
        b.push(EavRecord::annotation("1000_at", "Unigene", "Hs.1"));
        let report = Importer::new(&mut s).import(&b).unwrap();
        assert_eq!(report.mappings_created, 2);
        let na = s.find_source("NetAffx").unwrap().unwrap();
        let ug = s.find_source("Unigene").unwrap().unwrap();
        let fact = s.find_source_rel(na.id, ug.id, Some(RelType::Fact)).unwrap().unwrap();
        let sim = s
            .find_source_rel(na.id, ug.id, Some(RelType::Similarity))
            .unwrap()
            .unwrap();
        assert_ne!(fact.0.id, sim.0.id);
        let sim_map = s.load_mapping(sim.0.id).unwrap();
        assert_eq!(sim_map.pairs[0].evidence, Some(0.9));
    }

    #[test]
    fn isa_edges_build_intra_source_mapping() {
        let mut s = store();
        let mut b = EavBatch::new(SourceMeta::network("Enzyme", "33.0", SourceContent::Other));
        b.push(EavRecord::is_a("2.4.2.7", "2.4.2"));
        b.push(EavRecord::is_a("2.4.2", "2.4"));
        let report = Importer::new(&mut s).import(&b).unwrap();
        // implicit objects created from edge endpoints
        assert_eq!(report.objects_created, 3);
        let ez = s.find_source("Enzyme").unwrap().unwrap();
        let (rel, _) = s.find_source_rel(ez.id, ez.id, Some(RelType::IsA)).unwrap().unwrap();
        let map = s.load_mapping(rel.id).unwrap();
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn dropped_records_are_counted() {
        let mut s = store();
        let mut b = EavBatch::new(SourceMeta::flat_gene("X", "r1"));
        b.push(EavRecord::object("ok"));
        b.push(EavRecord::object(""));
        b.push(EavRecord::is_a("a", "a"));
        let report = Importer::new(&mut s).import(&b).unwrap();
        assert_eq!(report.records_dropped, 2);
        assert_eq!(report.objects_created, 1);
    }

    #[test]
    fn bulk_and_per_row_paths_agree_on_the_demo_sequence() {
        // The locked-down equivalence: identical reports and identical
        // store contents across a sequence that exercises stubs, dedup,
        // both mapping kinds, partitions, IS_A edges and re-imports.
        // (Random shapes are covered by the proptests in tests/bulk_prop.rs.)
        let mut go = EavBatch::new(SourceMeta::network("GO", "200312", SourceContent::Other));
        go.meta.partitions = vec!["BiologicalProcess".into()];
        go.push(EavRecord::named_object("GO:0008150", "biological_process"));
        go.push(EavRecord::named_object("GO:0009116", "nucleoside metabolism"));
        go.push(EavRecord::is_a("GO:0009116", "GO:0008150"));
        let mut na = EavBatch::new(SourceMeta::flat_gene("NetAffx", "na34"));
        na.push(EavRecord::object("1000_at"));
        na.push(EavRecord::similarity("1000_at", "Unigene", "Hs.1", 0.9));
        na.push(EavRecord::annotation("1000_at", "Unigene", "Hs.1"));
        na.push(EavRecord::annotation("1000_at", "LocusLink", "353"));
        let mut ll2 = locuslink_batch();
        ll2.meta.release = "r2".into();
        ll2.push(EavRecord::object("999"));
        let sequence = [locuslink_batch(), go, na, ll2];

        let mut bulk = store();
        let mut per_row = store();
        for batch in &sequence {
            let a = Importer::new(&mut bulk).import(batch).unwrap();
            let b = Importer::new(&mut per_row).import_per_row(batch).unwrap();
            assert_eq!(a, b, "reports diverge for {}", batch.meta.name);
        }
        assert_eq!(
            bulk.cardinalities().unwrap(),
            per_row.cardinalities().unwrap()
        );
        for src in bulk.sources().unwrap() {
            let other = per_row.find_source(&src.name).unwrap().unwrap();
            assert_eq!(src, other, "source rows diverge for {}", src.name);
            assert_eq!(
                bulk.objects_of(src.id).unwrap(),
                per_row.objects_of(other.id).unwrap(),
                "objects diverge for {}",
                src.name
            );
        }
        for rel in bulk.source_rels().unwrap() {
            let a = bulk.load_mapping(rel.id).unwrap();
            let b = per_row.load_mapping(rel.id).unwrap();
            assert_eq!(a.pairs, b.pairs, "mapping {} diverges", rel.id);
        }
    }

    #[test]
    fn import_owned_matches_borrowed_import() {
        let mut s1 = store();
        let mut s2 = store();
        let mut dirty = locuslink_batch();
        dirty.push(EavRecord::object("  padded  "));
        dirty.push(EavRecord::object(" "));
        let a = Importer::new(&mut s1).import(&dirty).unwrap();
        let b = Importer::new(&mut s2).import_owned(dirty).unwrap();
        assert_eq!(a, b);
        assert_eq!(s1.cardinalities().unwrap(), s2.cardinalities().unwrap());
        assert_eq!(a.records_dropped, 1, "blank accession dropped");
    }

    #[test]
    fn timings_cover_the_phases() {
        let mut s = store();
        let mut imp = Importer::new(&mut s);
        imp.import(&locuslink_batch()).unwrap();
        let t = imp.timings();
        assert!(t.insert > std::time::Duration::ZERO, "insert time recorded");
        assert_eq!(t.parse, std::time::Duration::ZERO, "parse is the pipeline's");
    }
}
