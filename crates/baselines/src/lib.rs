//! `baselines` — the comparison systems implied by the paper's §1.
//!
//! GenMapper's claims are architectural; to give the benchmark harness
//! something to compare against, this crate implements the two designs the
//! paper positions itself against:
//!
//! * [`srs`] — an SRS/DBGET-style store: "each source is replicated
//!   locally as is, parsed and indexed, resulting in a set of queryable
//!   attributes for the corresponding source. While a uniform query
//!   interface is provided ... join queries over multiple sources are not
//!   possible. Cross-references can be utilized for interactive
//!   navigation, but not for the generation and analysis of annotation
//!   profiles." Multi-source questions must be answered by client-side
//!   link navigation, one hop at a time.
//! * [`star`] — a conventional warehouse with an **application-specific
//!   global schema** (a gene-centric star schema). Fast for the queries
//!   the schema anticipated, but integrating a source the schema did not
//!   anticipate requires schema evolution and a rebuild — the maintenance
//!   cost the generic GAM avoids.

pub mod srs;
pub mod star;

pub use srs::SrsStore;
pub use star::{StarError, StarWarehouse};
