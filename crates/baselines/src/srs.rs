//! An SRS/DBGET-style per-source indexed store with link navigation.

use eav::{EavBatch, EavRecord};
use std::collections::{BTreeMap, BTreeSet};

/// One indexed entry of a source: its attributes and outgoing links.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SrsEntry {
    /// Display name, if the dump carried one.
    pub name: Option<String>,
    /// Cross-references: target source name → target accessions. These
    /// support *navigation* (one hop), not joins.
    pub links: BTreeMap<String, BTreeSet<String>>,
}

/// The store: per source, an accession-indexed entry set plus an inverted
/// word index over entry names (SRS's queryable attributes).
#[derive(Debug, Default)]
pub struct SrsStore {
    sources: BTreeMap<String, BTreeMap<String, SrsEntry>>,
    /// source → word → accessions
    word_index: BTreeMap<String, BTreeMap<String, BTreeSet<String>>>,
    /// reverse links: target source → target accession → (origin source, origin accession)
    backlinks: BTreeMap<String, BTreeMap<String, BTreeSet<(String, String)>>>,
}

impl SrsStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Index one parsed source (replicating it "as is").
    pub fn load(&mut self, batch: &EavBatch) {
        let source = self.sources.entry(batch.meta.name.clone()).or_default();
        let words = self.word_index.entry(batch.meta.name.clone()).or_default();
        for record in &batch.records {
            match record {
                EavRecord::Object {
                    accession, text, ..
                } => {
                    let entry = source.entry(accession.clone()).or_default();
                    if let Some(t) = text {
                        entry.name = Some(t.clone());
                        for word in t.split_whitespace() {
                            words
                                .entry(word.to_ascii_lowercase())
                                .or_default()
                                .insert(accession.clone());
                        }
                    }
                }
                EavRecord::Annotation {
                    entity,
                    target,
                    accession,
                    ..
                } => {
                    source
                        .entry(entity.clone())
                        .or_default()
                        .links
                        .entry(target.clone())
                        .or_default()
                        .insert(accession.clone());
                    self.backlinks
                        .entry(target.clone())
                        .or_default()
                        .entry(accession.clone())
                        .or_default()
                        .insert((batch.meta.name.clone(), entity.clone()));
                }
                EavRecord::IsA { .. } => {
                    // SRS indexes taxonomy entries but exposes no closure
                }
            }
        }
    }

    /// Names of loaded sources.
    pub fn source_names(&self) -> Vec<&str> {
        self.sources.keys().map(String::as_str).collect()
    }

    /// Entry lookup within one source (the supported query form).
    pub fn get(&self, source: &str, accession: &str) -> Option<&SrsEntry> {
        self.sources.get(source)?.get(accession)
    }

    /// Keyword query over one source's name words (the other supported
    /// query form). No cross-source joins exist.
    pub fn keyword_search(&self, source: &str, word: &str) -> Vec<&str> {
        self.word_index
            .get(source)
            .and_then(|w| w.get(&word.to_ascii_lowercase()))
            .map(|accs| accs.iter().map(String::as_str).collect())
            .unwrap_or_default()
    }

    /// Navigate one link hop from an entry ("cross-references can be
    /// utilized for interactive navigation").
    pub fn navigate(&self, source: &str, accession: &str, target: &str) -> Vec<&str> {
        self.get(source, accession)
            .and_then(|e| e.links.get(target))
            .map(|accs| accs.iter().map(String::as_str).collect())
            .unwrap_or_default()
    }

    /// Navigate a link backwards (who points at me?), as link-based
    /// browsers do.
    pub fn navigate_back(&self, target: &str, accession: &str) -> Vec<(&str, &str)> {
        self.backlinks
            .get(target)
            .and_then(|m| m.get(accession))
            .map(|set| {
                set.iter()
                    .map(|(s, a)| (s.as_str(), a.as_str()))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The client-side emulation of a join query: "which entries of
    /// `source` link (possibly through `hops` intermediate sources) to
    /// `target_accession` in `target`?" — answered by breadth-first link
    /// navigation. This is what a user of SRS must script by hand, and its
    /// cost is the fan-out the benchmark measures against GenMapper's
    /// GenerateView.
    pub fn navigate_join(
        &self,
        source: &str,
        path: &[&str],
        target_accession: &str,
    ) -> Vec<String> {
        let Some(entries) = self.sources.get(source) else {
            return Vec::new();
        };
        let mut hits = Vec::new();
        // for every entry, walk the path hop by hop (the fan-out)
        for (accession, _) in entries.iter() {
            let mut frontier: BTreeSet<(String, String)> =
                [(source.to_owned(), accession.clone())].into();
            for hop in path {
                let mut next = BTreeSet::new();
                for (src, acc) in &frontier {
                    if let Some(entry) = self.get(src, acc) {
                        if let Some(links) = entry.links.get(*hop) {
                            for l in links {
                                next.insert(((*hop).to_owned(), l.clone()));
                            }
                        }
                    }
                    // links may also be stored on the hop side, pointing back
                    for (back_src, back_acc) in self.navigate_back(src, acc) {
                        if back_src == *hop {
                            next.insert((back_src.to_owned(), back_acc.to_owned()));
                        }
                    }
                }
                frontier = next;
                if frontier.is_empty() {
                    break;
                }
            }
            if frontier
                .iter()
                .any(|(_, acc)| acc == target_accession)
            {
                hits.push(accession.clone());
            }
        }
        hits
    }

    /// Total indexed entries across sources.
    pub fn entry_count(&self) -> usize {
        self.sources.values().map(BTreeMap::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eav::SourceMeta;

    fn store() -> SrsStore {
        let mut s = SrsStore::new();
        let mut ll = EavBatch::new(SourceMeta::flat_gene("LocusLink", "r1"));
        ll.push(EavRecord::named_object("353", "adenine phosphoribosyltransferase"));
        ll.push(EavRecord::annotation("353", "GO", "GO:0009116"));
        ll.push(EavRecord::annotation("353", "Hugo", "APRT"));
        ll.push(EavRecord::object("999"));
        ll.push(EavRecord::annotation("999", "GO", "GO:0000001"));
        s.load(&ll);
        let mut ug = EavBatch::new(SourceMeta::flat_gene("Unigene", "b1"));
        ug.push(EavRecord::named_object("Hs.1", "cluster one"));
        ug.push(EavRecord::annotation("Hs.1", "LocusLink", "353"));
        s.load(&ug);
        s
    }

    #[test]
    fn per_source_lookup_and_keyword() {
        let s = store();
        assert_eq!(s.source_names(), vec!["LocusLink", "Unigene"]);
        let entry = s.get("LocusLink", "353").unwrap();
        assert_eq!(entry.name.as_deref(), Some("adenine phosphoribosyltransferase"));
        assert_eq!(s.keyword_search("LocusLink", "ADENINE"), vec!["353"]);
        assert!(s.keyword_search("LocusLink", "missing").is_empty());
        assert_eq!(s.entry_count(), 3);
    }

    #[test]
    fn navigation_one_hop() {
        let s = store();
        assert_eq!(s.navigate("LocusLink", "353", "GO"), vec!["GO:0009116"]);
        assert!(s.navigate("LocusLink", "353", "OMIM").is_empty());
        // backwards: who links to locus 353?
        let back = s.navigate_back("LocusLink", "353");
        assert!(back.contains(&("Unigene", "Hs.1")));
    }

    #[test]
    fn join_emulation_by_navigation() {
        let s = store();
        // Unigene clusters annotated (via LocusLink) with GO:0009116
        let hits = s.navigate_join("Unigene", &["LocusLink", "GO"], "GO:0009116");
        assert_eq!(hits, vec!["Hs.1"]);
        // a term only reachable from locus 999, which no cluster links to
        let hits = s.navigate_join("Unigene", &["LocusLink", "GO"], "GO:0000001");
        assert!(hits.is_empty());
    }
}
