//! A conventional warehouse with an application-specific star schema.
//!
//! The schema is gene-centric, designed up front for the "known" sources:
//! a `gene` fact table (symbol, location, chromosome, unigene cluster)
//! plus bridge tables `gene_go` and `gene_omim`. Queries the schema
//! anticipated are direct indexed lookups. The price is rigidity:
//! integrating a source the designers did not anticipate raises
//! [`StarError::SchemaEvolutionRequired`], and accepting it means a
//! schema migration that rewrites the warehouse — the exact
//! construction/maintenance problem the paper's generic GAM avoids (§1).

use eav::{EavBatch, EavRecord};
use relstore::schema::{Column, Schema};
use relstore::value::{Value, ValueType};
use relstore::{Database, Predicate, StoreError};
use std::collections::BTreeMap;

/// Errors of the star warehouse.
#[derive(Debug)]
pub enum StarError {
    /// The batch came from a source the star schema does not model.
    /// Integrating it requires a schema migration
    /// ([`StarWarehouse::migrate_add_bridge`]).
    SchemaEvolutionRequired { source: String },
    /// Underlying storage error.
    Store(StoreError),
}

impl std::fmt::Display for StarError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StarError::SchemaEvolutionRequired { source } => write!(
                f,
                "source {source} is not part of the star schema; schema evolution required"
            ),
            StarError::Store(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for StarError {}

impl From<StoreError> for StarError {
    fn from(e: StoreError) -> Self {
        StarError::Store(e)
    }
}

/// The warehouse.
pub struct StarWarehouse {
    db: Database,
    /// Bridge tables added by schema evolution: source name → table name.
    extra_bridges: BTreeMap<String, String>,
    next_gene_key: i64,
}

fn gene_schema() -> Schema {
    Schema::builder("gene")
        .column(Column::new("gene_key", ValueType::Int))
        .column(Column::new("locus", ValueType::Text))
        .column(Column::nullable("symbol", ValueType::Text))
        .column(Column::nullable("name", ValueType::Text))
        .column(Column::nullable("chromosome", ValueType::Text))
        .column(Column::nullable("location", ValueType::Text))
        .column(Column::nullable("unigene", ValueType::Text))
        .primary_key(&["gene_key"])
        .unique_index("by_locus", &["locus"])
        .index("by_symbol", &["symbol"])
        .index("by_location", &["location"])
        .build()
        .expect("static schema")
}

fn bridge_schema(table: &str) -> Schema {
    Schema::builder(table)
        .column(Column::new("gene_key", ValueType::Int))
        .column(Column::new("value", ValueType::Text))
        .index("by_gene", &["gene_key"])
        .index("by_value", &["value"])
        .build()
        .expect("static schema")
}

impl StarWarehouse {
    /// Fresh warehouse with the designed-up-front schema.
    pub fn new() -> Result<Self, StarError> {
        let mut db = Database::in_memory();
        db.create_table(gene_schema())?;
        db.create_table(bridge_schema("gene_go"))?;
        db.create_table(bridge_schema("gene_omim"))?;
        Ok(StarWarehouse {
            db,
            extra_bridges: BTreeMap::new(),
            next_gene_key: 1,
        })
    }

    fn bridge_for(&self, source: &str) -> Option<String> {
        match source {
            "GO" => Some("gene_go".to_owned()),
            "OMIM" => Some("gene_omim".to_owned()),
            other => self.extra_bridges.get(other).cloned(),
        }
    }

    /// Integrate a parsed source. Only sources the schema anticipated are
    /// accepted: `LocusLink` fills the fact table; `GO` and `OMIM`
    /// annotations (inside the LocusLink batch) fill the bridges; all
    /// other sources require schema evolution.
    pub fn integrate(&mut self, batch: &EavBatch) -> Result<usize, StarError> {
        if batch.meta.name != "LocusLink" {
            return Err(StarError::SchemaEvolutionRequired {
                source: batch.meta.name.clone(),
            });
        }
        let mut rows = 0usize;
        // first pass: fact rows
        let mut facts: BTreeMap<&str, [Option<&str>; 5]> = BTreeMap::new();
        let mut bridges: Vec<(&str, String, &str)> = Vec::new(); // (locus, table, value)
        for record in &batch.records {
            match record {
                EavRecord::Object { accession, text, .. } => {
                    let entry = facts.entry(accession).or_default();
                    if let Some(t) = text {
                        entry[1] = Some(t);
                    }
                }
                EavRecord::Annotation {
                    entity,
                    target,
                    accession,
                    ..
                } => match target.as_str() {
                    "Hugo" => {
                        facts.entry(entity).or_default()[0] = Some(accession);
                    }
                    "Chr" => {
                        facts.entry(entity).or_default()[2] = Some(accession);
                    }
                    "Location" => {
                        facts.entry(entity).or_default()[3] = Some(accession);
                    }
                    "Unigene" => {
                        facts.entry(entity).or_default()[4] = Some(accession);
                    }
                    other => {
                        if let Some(table) = self.bridge_for(other) {
                            bridges.push((entity, table, accession));
                        }
                        // annotations outside the schema are silently lost —
                        // the information loss the generic model avoids
                    }
                },
                EavRecord::IsA { .. } => {
                    // the star schema has no place for taxonomy structure
                }
            }
        }
        let mut keys: BTreeMap<&str, i64> = BTreeMap::new();
        {
            let mut txn = self.db.begin();
            for (locus, [symbol, name, chr, loc, unigene]) in &facts {
                let key = self.next_gene_key;
                self.next_gene_key += 1;
                keys.insert(locus, key);
                let opt = |v: &Option<&str>| v.map(Value::text).unwrap_or(Value::Null);
                txn.insert(
                    "gene",
                    vec![
                        Value::Int(key),
                        Value::text(*locus),
                        opt(symbol),
                        opt(name),
                        opt(chr),
                        opt(loc),
                        opt(unigene),
                    ],
                )?;
                rows += 1;
            }
            for (locus, table, value) in &bridges {
                let key = keys[locus];
                txn.insert(table, vec![Value::Int(key), Value::text(*value)])?;
                rows += 1;
            }
            txn.commit()?;
        }
        Ok(rows)
    }

    /// Schema evolution: add a bridge table for a new annotation source.
    /// In a real warehouse this is a migration (DDL + reload); here it
    /// registers the table so a subsequent re-integration can fill it.
    pub fn migrate_add_bridge(&mut self, source: &str) -> Result<(), StarError> {
        let table = format!("gene_{}", source.to_ascii_lowercase());
        self.db.create_table(bridge_schema(&table))?;
        self.extra_bridges.insert(source.to_owned(), table);
        Ok(())
    }

    /// Anticipated query: loci at a cytogenetic location (indexed).
    pub fn loci_at_location(&self, location: &str) -> Result<Vec<String>, StarError> {
        let rows = self
            .db
            .table("gene")?
            .select(&Predicate::eq("location", Value::text(location)))?;
        Ok(rows
            .into_iter()
            .map(|r| r.get(1).as_text().unwrap_or_default().to_owned())
            .collect())
    }

    /// Anticipated query: loci annotated with a GO term (bridge + fact).
    pub fn loci_with_go(&self, term: &str) -> Result<Vec<String>, StarError> {
        let bridge = self
            .db
            .table("gene_go")?
            .select(&Predicate::eq("value", Value::text(term)))?;
        let gene = self.db.table("gene")?;
        let mut out = Vec::with_capacity(bridge.len());
        for row in bridge {
            let key = row.get(0).clone();
            if let Some(g) = gene.lookup_unique("pk", &[key])? {
                out.push(g.get(1).as_text().unwrap_or_default().to_owned());
            }
        }
        out.sort();
        Ok(out)
    }

    /// Lookup one gene row by locus.
    pub fn gene(&self, locus: &str) -> Result<Option<Vec<Value>>, StarError> {
        Ok(self
            .db
            .table("gene")?
            .lookup_unique("by_locus", &[Value::text(locus)])?
            .map(|r| r.values().to_vec()))
    }

    /// Total rows across fact and bridge tables.
    pub fn row_count(&self) -> Result<usize, StarError> {
        Ok(self.db.stats()?.total_rows())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eav::SourceMeta;

    fn locuslink_batch() -> EavBatch {
        let mut b = EavBatch::new(SourceMeta::flat_gene("LocusLink", "r1"));
        b.push(EavRecord::named_object("353", "adenine phosphoribosyltransferase"));
        b.push(EavRecord::annotation("353", "Hugo", "APRT"));
        b.push(EavRecord::annotation("353", "Location", "16q24"));
        b.push(EavRecord::annotation("353", "GO", "GO:0009116"));
        b.push(EavRecord::annotation("353", "OMIM", "102600"));
        b.push(EavRecord::annotation("353", "Enzyme", "2.4.2.7")); // not modeled!
        b
    }

    #[test]
    fn anticipated_queries_work() {
        let mut w = StarWarehouse::new().unwrap();
        let rows = w.integrate(&locuslink_batch()).unwrap();
        assert_eq!(rows, 3); // 1 fact + go + omim bridges
        assert_eq!(w.loci_at_location("16q24").unwrap(), vec!["353"]);
        assert_eq!(w.loci_with_go("GO:0009116").unwrap(), vec!["353"]);
        let gene = w.gene("353").unwrap().unwrap();
        assert_eq!(gene[2], Value::text("APRT"));
    }

    #[test]
    fn unanticipated_source_requires_evolution() {
        let mut w = StarWarehouse::new().unwrap();
        let go_batch = EavBatch::new(SourceMeta::network(
            "GO",
            "200312",
            gam::model::SourceContent::Other,
        ));
        let err = w.integrate(&go_batch).unwrap_err();
        assert!(matches!(err, StarError::SchemaEvolutionRequired { .. }));
        assert!(err.to_string().contains("GO"));
    }

    #[test]
    fn unmodeled_annotations_are_lost_until_migration() {
        let mut w = StarWarehouse::new().unwrap();
        w.integrate(&locuslink_batch()).unwrap();
        // Enzyme annotation silently dropped — schema has no bridge
        assert_eq!(w.row_count().unwrap(), 3);

        // after migration + re-integration, the data lands
        let mut w2 = StarWarehouse::new().unwrap();
        w2.migrate_add_bridge("Enzyme").unwrap();
        let rows = w2.integrate(&locuslink_batch()).unwrap();
        assert_eq!(rows, 4);
    }
}
