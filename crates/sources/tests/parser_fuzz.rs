//! Robustness: no parser may panic on arbitrary input — real dumps arrive
//! truncated, mis-encoded, or simply wrong, and the pipeline must fail
//! with a located error, never abort.

use proptest::prelude::*;
use sources::dialects;

/// All parsers under test.
type Parser = fn(&str) -> Result<eav::EavBatch, sources::ParseError>;

fn parsers() -> Vec<(&'static str, Parser)> {
    vec![
        ("locuslink", dialects::locuslink::parse),
        ("go", dialects::go::parse),
        ("unigene", dialects::unigene::parse),
        ("enzyme", dialects::enzyme::parse),
        ("hugo", dialects::hugo::parse),
        ("omim", dialects::omim::parse),
        ("netaffx", dialects::netaffx::parse),
        ("swissprot", dialects::swissprot::parse),
        ("interpro", dialects::interpro::parse),
        ("genemap", dialects::genemap::parse),
        ("satellite", dialects::satellite::parse),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary garbage: every parser returns Ok or a ParseError.
    #[test]
    fn parsers_never_panic_on_garbage(input in "\\PC*") {
        for (name, parse) in parsers() {
            let result = std::panic::catch_unwind(|| parse(&input));
            prop_assert!(result.is_ok(), "{name} panicked on {input:?}");
        }
    }

    /// Line-structured garbage that resembles the dialects more closely
    /// (tags, separators, numbers) to reach deeper parse paths.
    #[test]
    fn parsers_never_panic_on_structured_noise(
        lines in proptest::collection::vec(
            prop_oneof![
                "[A-Z]{2}   [a-z0-9 .;~|=,-]{0,30}",
                ">>[0-9]{0,8}",
                "#[a-z]+\\t[A-Za-z0-9 ]{0,10}",
                "\\[Term\\]",
                "[a-z_]+: [A-Za-z0-9:. !]{0,20}",
                "[A-Za-z0-9.]{0,12}\\|[a-z ]{0,12}\\|[0-9,]{0,8}",
                "[A-Za-z0-9]{0,8},[a-z ]{0,10},[A-Za-z0-9;~.=|]{0,20}",
                "[A-Za-z0-9]{0,6}\\t[0-9]{0,6}\\t[0-9]{0,6}\\t[0-9]{0,6}",
                Just("//".to_owned()),
                Just("*RECORD*".to_owned()),
                Just("*FIELD* NO".to_owned()),
            ],
            0..30,
        )
    ) {
        let input = lines.join("\n");
        for (name, parse) in parsers() {
            let result = std::panic::catch_unwind(|| parse(&input));
            prop_assert!(result.is_ok(), "{name} panicked on {input:?}");
        }
    }

    /// Truncating a valid dump at any byte never panics any parser, and
    /// staging files survive the same treatment.
    #[test]
    fn truncated_valid_dumps_never_panic(cut in 0usize..2_000, seed in 1u64..20) {
        let eco = sources::ecosystem::Ecosystem::generate(
            sources::ecosystem::EcosystemParams::demo(seed),
        );
        for dump in &eco.dumps {
            let cut = cut.min(dump.text.len());
            // cut on a char boundary
            let mut boundary = cut;
            while !dump.text.is_char_boundary(boundary) {
                boundary -= 1;
            }
            let truncated = &dump.text[..boundary];
            let clipped = sources::ecosystem::SourceDump {
                name: dump.name.clone(),
                dialect: dump.dialect,
                text: truncated.to_owned(),
            };
            let result = std::panic::catch_unwind(|| clipped.parse());
            prop_assert!(result.is_ok(), "{} panicked at cut {boundary}", dump.name);
        }
        // staging reader too
        let batch = eco.dumps[0].parse().unwrap();
        let staged = eav::staging::write_staging(&batch);
        let cut = cut.min(staged.len());
        let mut boundary = cut;
        while !staged.is_char_boundary(boundary) {
            boundary -= 1;
        }
        let result = std::panic::catch_unwind(|| {
            let _ = eav::staging::read_staging(&staged.as_bytes()[..boundary]);
        });
        prop_assert!(result.is_ok(), "staging reader panicked");
    }
}
