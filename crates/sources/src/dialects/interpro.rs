//! InterPro dialect — protein domain/family entries as a TSV listing with
//! an explicit parent column (InterPro maintains a parent/child tree, so
//! the source is imported as a `Network` source with IS_A edges).

use crate::dialects::names;
use crate::universe::Universe;
use crate::ParseError;
use eav::{EavBatch, EavRecord, SourceMeta};
use gam::model::SourceContent;
use std::fmt::Write as _;

/// Release tag.
pub const RELEASE: &str = "7.1";

/// Render the InterPro TSV.
pub fn generate(u: &Universe) -> String {
    let mut out = String::from("accession\tname\tparent\n");
    for d in &u.interpro {
        let parent = d
            .parent
            .map(|p| u.interpro[p].acc.clone())
            .unwrap_or_else(|| "-".to_owned());
        let _ = writeln!(out, "{}\t{}\t{parent}", d.acc, d.name);
    }
    out
}

/// Parse an InterPro TSV into EAV staging records.
pub fn parse(text: &str) -> Result<EavBatch, ParseError> {
    const D: &str = "InterPro";
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, "accession\tname\tparent")) => {}
        _ => return Err(ParseError::general(D, "missing or bad TSV header")),
    }
    let mut batch = EavBatch::new(SourceMeta::network(
        names::INTERPRO,
        RELEASE,
        SourceContent::Protein,
    ));
    for (lineno, line) in lines {
        let lineno = lineno + 1;
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 3 {
            return Err(ParseError::at(D, lineno, "expected 3 TSV fields"));
        }
        let (acc, name, parent) = (fields[0], fields[1], fields[2]);
        if acc.is_empty() {
            return Err(ParseError::at(D, lineno, "empty accession"));
        }
        batch.push(EavRecord::named_object(acc, name));
        if parent != "-" {
            batch.push(EavRecord::is_a(acc, parent));
        }
    }
    batch.sanitize();
    Ok(batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::UniverseParams;

    #[test]
    fn roundtrip() {
        let u = Universe::generate(UniverseParams::tiny(11));
        let batch = parse(&generate(&u)).unwrap();
        let (objects, _, isa) = batch.counts();
        assert_eq!(objects, u.interpro.len());
        let expected = u.interpro.iter().filter(|d| d.parent.is_some()).count();
        assert_eq!(isa, expected);
    }

    #[test]
    fn malformed() {
        assert!(parse("").is_err());
        assert!(parse("accession\tname\tparent\na\tb\n").is_err());
        assert!(parse("accession\tname\tparent\n\tname\t-\n").is_err());
    }
}
