//! NetAffx dialect — the vendor annotation CSV for Affymetrix probe sets.
//!
//! `probeset,unigene,locuslink,confidence` with `---` for missing values,
//! as Affymetrix CSVs use. NetAffx is the paper's example of a vendor-based
//! source (§1) and the entry point of the §5.2 profiling pipeline: its
//! proprietary probe identifiers must be mapped to UniGene before GO
//! annotations can be derived.
//!
//! The `confidence` column carries an evidence value: probe-to-cluster
//! assignments are computed alignments, so the emitted records are
//! Similarity (not Fact) annotations.

use crate::dialects::names;
use crate::universe::Universe;
use crate::ParseError;
use eav::{EavBatch, EavRecord, SourceMeta};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// Release tag (NetAffx annotation build).
pub const RELEASE: &str = "na34";

/// Render the NetAffx CSV. Confidence values are derived from a seeded RNG
/// keyed by the universe's seed so dumps stay deterministic.
pub fn generate(u: &Universe) -> String {
    let mut rng = SmallRng::seed_from_u64(u.params.seed ^ 0xAFF1);
    let mut out = String::from("probeset,unigene,locuslink,confidence\n");
    for ps in &u.probesets {
        let unigene = &u.unigene[ps.unigene].acc;
        let locus = ps
            .locus
            .map(|l| u.loci[l].id.to_string())
            .unwrap_or_else(|| "---".to_owned());
        let confidence = 0.5 + rng.gen::<f64>() * 0.5;
        let _ = writeln!(out, "{},{unigene},{locus},{confidence:.3}", ps.acc);
    }
    out
}

/// Parse a NetAffx CSV into EAV staging records.
pub fn parse(text: &str) -> Result<EavBatch, ParseError> {
    const D: &str = "NetAffx";
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, "probeset,unigene,locuslink,confidence")) => {}
        _ => return Err(ParseError::general(D, "missing or bad CSV header")),
    }
    let mut batch = EavBatch::new(SourceMeta::flat_gene(names::NETAFFX, RELEASE));
    for (lineno, line) in lines {
        let lineno = lineno + 1;
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 4 {
            return Err(ParseError::at(D, lineno, "expected 4 CSV fields"));
        }
        let (probeset, unigene, locus, confidence) = (fields[0], fields[1], fields[2], fields[3]);
        if probeset.is_empty() {
            return Err(ParseError::at(D, lineno, "empty probe set id"));
        }
        let confidence: f64 = confidence
            .parse()
            .map_err(|_| ParseError::at(D, lineno, "bad confidence value"))?;
        if !(0.0..=1.0).contains(&confidence) {
            return Err(ParseError::at(D, lineno, "confidence outside [0,1]"));
        }
        batch.push(EavRecord::object(probeset));
        if unigene != "---" {
            batch.push(EavRecord::similarity(
                probeset,
                names::UNIGENE,
                unigene,
                confidence,
            ));
        }
        if locus != "---" {
            batch.push(EavRecord::similarity(
                probeset,
                names::LOCUSLINK,
                locus,
                confidence,
            ));
        }
    }
    batch.sanitize();
    Ok(batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::UniverseParams;

    #[test]
    fn roundtrip() {
        let u = Universe::generate(UniverseParams::tiny(9));
        let batch = parse(&generate(&u)).unwrap();
        let (objects, annotations, _) = batch.counts();
        assert_eq!(objects, u.probesets.len());
        let with_locus = u.probesets.iter().filter(|p| p.locus.is_some()).count();
        assert_eq!(annotations, u.probesets.len() + with_locus);
        // all annotations carry evidence (similarity links)
        for r in &batch.records {
            if let EavRecord::Annotation { evidence, .. } = r {
                let e = evidence.expect("NetAffx links are scored");
                assert!((0.5..=1.0).contains(&e));
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let u = Universe::generate(UniverseParams::tiny(9));
        assert_eq!(generate(&u), generate(&u));
    }

    #[test]
    fn malformed() {
        assert!(parse("bad header\n").is_err());
        let h = "probeset,unigene,locuslink,confidence\n";
        assert!(parse(&format!("{h}a,b,c\n")).is_err());
        assert!(parse(&format!("{h}a,Hs.1,---,notanum\n")).is_err());
        assert!(parse(&format!("{h}a,Hs.1,---,1.5\n")).is_err());
        assert!(parse(&format!("{h},Hs.1,---,0.9\n")).is_err());
    }
}
