//! Hugo dialect — the official gene nomenclature as a CSV table.
//!
//! `symbol,name,locuslink`. Hugo provides "official gene symbols" (paper
//! §2); each symbol is an object whose name is the approved gene name, with
//! a fact link back to LocusLink.

use crate::dialects::names;
use crate::universe::Universe;
use crate::ParseError;
use eav::{EavBatch, EavRecord, SourceMeta};
use std::fmt::Write as _;

/// Release tag.
pub const RELEASE: &str = "2003-11";

/// Render the Hugo CSV.
pub fn generate(u: &Universe) -> String {
    let mut out = String::from("symbol,name,locuslink\n");
    for locus in &u.loci {
        let _ = writeln!(out, "{},{},{}", locus.symbol, locus.name, locus.id);
    }
    out
}

/// Parse a Hugo CSV into EAV staging records.
pub fn parse(text: &str) -> Result<EavBatch, ParseError> {
    const D: &str = "Hugo";
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, "symbol,name,locuslink")) => {}
        _ => return Err(ParseError::general(D, "missing or bad CSV header")),
    }
    let mut batch = EavBatch::new(SourceMeta::flat_gene(names::HUGO, RELEASE));
    for (lineno, line) in lines {
        let lineno = lineno + 1;
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 3 {
            return Err(ParseError::at(D, lineno, "expected 3 CSV fields"));
        }
        let (symbol, name, locus) = (fields[0], fields[1], fields[2]);
        if symbol.is_empty() || locus.is_empty() {
            return Err(ParseError::at(D, lineno, "empty key field"));
        }
        batch.push(EavRecord::named_object(symbol, name));
        batch.push(EavRecord::annotation(symbol, names::LOCUSLINK, locus));
    }
    batch.sanitize();
    Ok(batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::UniverseParams;

    #[test]
    fn roundtrip() {
        let u = Universe::generate(UniverseParams::tiny(6));
        let batch = parse(&generate(&u)).unwrap();
        let (objects, annotations, _) = batch.counts();
        assert_eq!(objects, u.loci.len());
        assert_eq!(annotations, u.loci.len());
        assert!(batch.records.contains(&EavRecord::named_object(
            "APRT",
            "adenine phosphoribosyltransferase"
        )));
        assert!(batch
            .records
            .contains(&EavRecord::annotation("APRT", "LocusLink", "353")));
    }

    #[test]
    fn malformed() {
        assert!(parse("").is_err(), "missing header");
        assert!(parse("wrong,header,here\n").is_err());
        assert!(parse("symbol,name,locuslink\na,b\n").is_err());
        assert!(parse("symbol,name,locuslink\n,name,1\n").is_err());
    }
}
