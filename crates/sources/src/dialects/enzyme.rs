//! Enzyme dialect — an ENZYME-database-style `.dat` flat file.
//!
//! Stanzas terminated by `//`, with `ID` and `DE` lines. The EC hierarchy
//! (class → subclass → sub-subclass → entry) is expressed with `PA`
//! (parent) lines, yielding the IS_A structure the paper cites for Enzyme
//! ("the typical semantic relationship found ... within a taxonomy like
//! Biological Process or Enzyme", §3).

use crate::dialects::names;
use crate::universe::Universe;
use crate::ParseError;
use eav::{EavBatch, EavRecord, SourceMeta};
use gam::model::SourceContent;
use std::fmt::Write as _;

/// Release tag.
pub const RELEASE: &str = "33.0";

/// Render the ENZYME .dat dump.
pub fn generate(u: &Universe) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "CC ENZYME release {RELEASE}");
    for e in &u.enzymes {
        let _ = writeln!(out, "ID   {}", e.ec);
        let _ = writeln!(out, "DE   {}", e.name);
        if let Some(p) = e.parent {
            let _ = writeln!(out, "PA   {}", u.enzymes[p].ec);
        }
        let _ = writeln!(out, "//");
    }
    out
}

/// Parse an ENZYME .dat dump into EAV staging records.
pub fn parse(text: &str) -> Result<EavBatch, ParseError> {
    const D: &str = "Enzyme";
    let mut batch = EavBatch::new(SourceMeta::network(names::ENZYME, RELEASE, SourceContent::Other));
    let mut id: Option<String> = None;
    let mut de: Option<String> = None;
    let mut pa: Option<String> = None;
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        if line.is_empty() || line.starts_with("CC") {
            continue;
        }
        if line.starts_with("//") {
            let acc = id
                .take()
                .ok_or_else(|| ParseError::at(D, lineno, "stanza terminator without ID"))?;
            match de.take() {
                Some(name) => batch.push(EavRecord::named_object(&acc, name)),
                None => batch.push(EavRecord::object(&acc)),
            }
            if let Some(parent) = pa.take() {
                batch.push(EavRecord::is_a(&acc, parent));
            }
            continue;
        }
        if line.len() < 5 || !line.is_char_boundary(5) {
            return Err(ParseError::at(D, lineno, "short or malformed line"));
        }
        let (tag, value) = line.split_at(5);
        let value = value.trim();
        match tag.trim() {
            "ID" => id = Some(value.to_owned()),
            "DE" => de = Some(value.to_owned()),
            "PA" => pa = Some(value.to_owned()),
            other => return Err(ParseError::at(D, lineno, format!("unknown tag {other}"))),
        }
    }
    if id.is_some() {
        return Err(ParseError::general(D, "unterminated final stanza"));
    }
    batch.sanitize();
    Ok(batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::UniverseParams;

    #[test]
    fn roundtrip_hierarchy() {
        let u = Universe::generate(UniverseParams::tiny(5));
        let batch = parse(&generate(&u)).unwrap();
        let (objects, _, isa) = batch.counts();
        assert_eq!(objects, u.enzymes.len());
        let expected_edges = u.enzymes.iter().filter(|e| e.parent.is_some()).count();
        assert_eq!(isa, expected_edges);
        // the paper's 2.4.2.7 chain
        assert!(batch.records.contains(&EavRecord::named_object(
            "2.4.2.7",
            "adenine phosphoribosyltransferase"
        )));
        assert!(batch.records.contains(&EavRecord::is_a("2.4.2.7", "2.4.2")));
        assert!(batch.records.contains(&EavRecord::is_a("2.4.2", "2.4")));
        assert!(batch.records.contains(&EavRecord::is_a("2.4", "2")));
        assert_eq!(batch.meta.structure, gam::model::SourceStructure::Network);
    }

    #[test]
    fn malformed() {
        assert!(parse("//\n").is_err(), "terminator without ID");
        assert!(parse("ID   1.1.1.1\n").is_err(), "unterminated stanza");
        assert!(parse("XX   what\n//\n").is_err());
        assert!(parse("ID\n").is_err(), "short line");
    }
}
