//! Source dialects: one module per synthetic public source.
//!
//! Each module provides `generate(&Universe) -> String` (render the shared
//! ground truth into the source's native flat-file format) and
//! `parse(&str) -> Result<EavBatch, ParseError>` (the paper's
//! source-specific Parse step). Parsers never consult the universe — they
//! see only the flat file, like real parsers see only the downloaded dump.

pub mod enzyme;
pub mod genemap;
pub mod go;
pub mod hugo;
pub mod interpro;
pub mod locuslink;
pub mod netaffx;
pub mod omim;
pub mod satellite;
pub mod swissprot;
pub mod unigene;

/// Canonical source names, as registered in GAM.
pub mod names {
    pub const LOCUSLINK: &str = "LocusLink";
    pub const GO: &str = "GO";
    pub const UNIGENE: &str = "Unigene";
    pub const ENZYME: &str = "Enzyme";
    pub const HUGO: &str = "Hugo";
    pub const OMIM: &str = "OMIM";
    pub const NETAFFX: &str = "NetAffx";
    pub const SWISSPROT: &str = "SwissProt";
    pub const INTERPRO: &str = "InterPro";
    pub const GENEMAP: &str = "GeneMap";
    /// Pseudo-targets carried inside LocusLink records (paper Figure 1
    /// shows Location and Chr as annotation columns in their own right).
    pub const LOCATION: &str = "Location";
    pub const CHROMOSOME: &str = "Chr";
}
