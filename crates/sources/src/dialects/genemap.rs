//! GeneMap dialect — genome positions in a GFF-like table, standing in for
//! the genome-mapping sources of the paper's §1 (Ensembl, UCSC Human
//! Genome Browser): "a few sources focus on sequence-based objects and
//! uniformly map them onto the genome".
//!
//! `chromosome <TAB> start <TAB> end <TAB> locuslink`. Each row defines a
//! position object (accession `chr:start-end`, numeric component = start)
//! and a fact link to the locus it places.

use crate::dialects::names;
use crate::universe::Universe;
use crate::ParseError;
use eav::{EavBatch, EavRecord, SourceMeta};
use gam::model::SourceContent;
use std::fmt::Write as _;

/// Release tag (genome assembly).
pub const RELEASE: &str = "hg16";

/// Render the GeneMap table.
pub fn generate(u: &Universe) -> String {
    let mut out = String::new();
    for locus in &u.loci {
        let start = locus.position;
        let end = start + 3_000 + u64::from(locus.id % 50_000);
        let _ = writeln!(
            out,
            "chr{}\t{start}\t{end}\t{}",
            locus.chromosome, locus.id
        );
    }
    out
}

/// Parse a GeneMap table into EAV staging records.
pub fn parse(text: &str) -> Result<EavBatch, ParseError> {
    const D: &str = "GeneMap";
    let mut batch = EavBatch::new(SourceMeta {
        name: names::GENEMAP.to_owned(),
        release: RELEASE.to_owned(),
        content: SourceContent::Other,
        structure: gam::model::SourceStructure::Flat,
        partitions: Vec::new(),
    });
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 4 {
            return Err(ParseError::at(D, lineno, "expected 4 TSV fields"));
        }
        let (chrom, start, end, locus) = (fields[0], fields[1], fields[2], fields[3]);
        let start_n: u64 = start
            .parse()
            .map_err(|_| ParseError::at(D, lineno, "bad start coordinate"))?;
        let end_n: u64 = end
            .parse()
            .map_err(|_| ParseError::at(D, lineno, "bad end coordinate"))?;
        if end_n <= start_n {
            return Err(ParseError::at(D, lineno, "empty or inverted interval"));
        }
        if locus.is_empty() {
            return Err(ParseError::at(D, lineno, "empty locus"));
        }
        let acc = format!("{chrom}:{start}-{end}");
        batch.push(EavRecord::Object {
            accession: acc.clone(),
            text: None,
            number: Some(start_n as f64),
        });
        batch.push(EavRecord::annotation(&acc, names::LOCUSLINK, locus));
    }
    batch.sanitize();
    Ok(batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::UniverseParams;

    #[test]
    fn roundtrip() {
        let u = Universe::generate(UniverseParams::tiny(12));
        let batch = parse(&generate(&u)).unwrap();
        let (objects, annotations, _) = batch.counts();
        assert_eq!(objects, u.loci.len());
        assert_eq!(annotations, u.loci.len());
        // position objects carry their start coordinate as number
        let has_number = batch.records.iter().any(|r| {
            matches!(r, EavRecord::Object { number: Some(n), .. } if *n > 0.0)
        });
        assert!(has_number);
    }

    #[test]
    fn malformed() {
        assert!(parse("chr1\t10\n").is_err());
        assert!(parse("chr1\tten\t20\t353\n").is_err());
        assert!(parse("chr1\t10\t5\t353\n").is_err(), "inverted interval");
        assert!(parse("chr1\t10\t20\t\n").is_err());
        assert!(parse("# comment\n").unwrap().records.is_empty());
    }
}
