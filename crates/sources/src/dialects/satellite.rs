//! Satellite dialect — a generic flat-file format standing in for the long
//! tail of the 60+ sources GenMapper integrates (paper §5).
//!
//! Real deployments integrate many small, structurally similar sources:
//! pathway collections, marker panels, clone libraries, expression-study
//! gene lists. Each satellite source here is a CSV-like dump whose objects
//! link to the accessions of one or more hub sources (LocusLink, Unigene,
//! SwissProt, GO). Links may carry a computed confidence (`acc~0.87`),
//! which the importer turns into a Similarity mapping separate from the
//! Fact mapping — so one satellite contributes up to
//! `2 × hubs` mappings, reproducing the paper's mapping-to-source ratio
//! (500+ mappings over 60+ sources):
//!
//! ```text
//! #satellite PathwayDB03
//! #release r1
//! #hub LocusLink
//! #hub GO
//! accession,name,links
//! PW03:0001,glycolysis variant 1,LocusLink=353;1021~0.91|GO=GO:0010001
//! ```

use crate::universe::Universe;
use crate::ParseError;
use eav::{EavBatch, EavRecord, SourceMeta};
use gam::model::{SourceContent, SourceStructure};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// The hubs a satellite's objects may link against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hub {
    LocusLink,
    Unigene,
    SwissProt,
    Go,
}

impl Hub {
    /// Hub source name as registered in GAM.
    pub fn source_name(self) -> &'static str {
        match self {
            Hub::LocusLink => super::names::LOCUSLINK,
            Hub::Unigene => super::names::UNIGENE,
            Hub::SwissProt => super::names::SWISSPROT,
            Hub::Go => super::names::GO,
        }
    }

    fn from_name(name: &str) -> Option<Hub> {
        match name {
            "LocusLink" => Some(Hub::LocusLink),
            "Unigene" => Some(Hub::Unigene),
            "SwissProt" => Some(Hub::SwissProt),
            "GO" => Some(Hub::Go),
            _ => None,
        }
    }

    /// Content class satellites of this (primary) hub carry.
    fn content(self) -> SourceContent {
        match self {
            Hub::LocusLink | Hub::Unigene => SourceContent::Gene,
            Hub::SwissProt => SourceContent::Protein,
            Hub::Go => SourceContent::Other,
        }
    }

    /// All hubs, for round-robin assignment.
    pub fn all() -> [Hub; 4] {
        [Hub::LocusLink, Hub::Unigene, Hub::SwissProt, Hub::Go]
    }
}

/// Parameters for one satellite dump.
#[derive(Debug, Clone)]
pub struct SatelliteSpec {
    /// Source name, e.g. `PathwayDB03`.
    pub name: String,
    /// Hubs the satellite links to (first hub decides the content class).
    pub hubs: Vec<Hub>,
    /// Number of objects.
    pub n_objects: usize,
    /// Total links per object, distributed round-robin over the hubs.
    pub links_per_object: usize,
    /// Fraction of links that carry a computed confidence (Similarity).
    pub scored_fraction: f64,
    /// RNG seed for link selection.
    pub seed: u64,
}

fn hub_accessions(u: &Universe, hub: Hub) -> Vec<String> {
    match hub {
        Hub::LocusLink => u.loci.iter().map(|l| l.id.to_string()).collect(),
        Hub::Unigene => u.unigene.iter().map(|c| c.acc.clone()).collect(),
        Hub::SwissProt => u.proteins.iter().map(|p| p.acc.clone()).collect(),
        Hub::Go => u.go_terms.iter().map(|t| t.acc.clone()).collect(),
    }
}

/// Render a satellite dump.
pub fn generate(u: &Universe, spec: &SatelliteSpec) -> String {
    assert!(!spec.hubs.is_empty(), "satellite needs at least one hub");
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let pools: Vec<Vec<String>> = spec.hubs.iter().map(|&h| hub_accessions(u, h)).collect();
    let mut out = String::new();
    let _ = writeln!(out, "#satellite\t{}", spec.name);
    let _ = writeln!(out, "#release\tr1");
    for hub in &spec.hubs {
        let _ = writeln!(out, "#hub\t{}", hub.source_name());
    }
    let _ = writeln!(out, "accession,name,links");
    let prefix: String = spec
        .name
        .chars()
        .filter(|c| c.is_ascii_uppercase() || c.is_ascii_digit())
        .collect();
    for i in 0..spec.n_objects {
        // collect links grouped by hub
        let mut per_hub: Vec<Vec<String>> = vec![Vec::new(); spec.hubs.len()];
        for j in 0..spec.links_per_object {
            let h = (i + j) % spec.hubs.len();
            let pool = &pools[h];
            if pool.is_empty() {
                continue;
            }
            let acc = &pool[rng.gen_range(0..pool.len())];
            let link = if rng.gen_bool(spec.scored_fraction) {
                format!("{acc}~{:.3}", 0.5 + rng.gen::<f64>() * 0.5)
            } else {
                acc.clone()
            };
            if !per_hub[h].contains(&link) {
                per_hub[h].push(link);
            }
        }
        let groups: Vec<String> = spec
            .hubs
            .iter()
            .zip(&per_hub)
            .filter(|(_, links)| !links.is_empty())
            .map(|(hub, links)| format!("{}={}", hub.source_name(), links.join(";")))
            .collect();
        let _ = writeln!(
            out,
            "{prefix}:{i:05},{} entry {i},{}",
            spec.name,
            groups.join("|")
        );
    }
    out
}

/// Parse a satellite dump into EAV staging records.
pub fn parse(text: &str) -> Result<EavBatch, ParseError> {
    const D: &str = "Satellite";
    let mut name: Option<String> = None;
    let mut release: Option<String> = None;
    let mut hubs: Vec<Hub> = Vec::new();
    let mut records = Vec::new();
    let mut saw_header = false;
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let (key, value) = rest
                .split_once('\t')
                .ok_or_else(|| ParseError::at(D, lineno, "header without value"))?;
            match key {
                "satellite" => name = Some(value.to_owned()),
                "release" => release = Some(value.to_owned()),
                "hub" => hubs.push(
                    Hub::from_name(value)
                        .ok_or_else(|| ParseError::at(D, lineno, "unknown hub"))?,
                ),
                other => return Err(ParseError::at(D, lineno, format!("unknown header {other}"))),
            }
            continue;
        }
        if line == "accession,name,links" {
            saw_header = true;
            continue;
        }
        if !saw_header {
            return Err(ParseError::at(D, lineno, "data before CSV header"));
        }
        if hubs.is_empty() {
            return Err(ParseError::at(D, lineno, "data before #hub header"));
        }
        let fields: Vec<&str> = line.splitn(3, ',').collect();
        if fields.len() != 3 {
            return Err(ParseError::at(D, lineno, "expected 3 CSV fields"));
        }
        let (acc, obj_name, groups) = (fields[0], fields[1], fields[2]);
        if acc.is_empty() {
            return Err(ParseError::at(D, lineno, "empty accession"));
        }
        records.push(EavRecord::named_object(acc, obj_name));
        for group in groups.split('|').filter(|s| !s.is_empty()) {
            let (hub_name, links) = group
                .split_once('=')
                .ok_or_else(|| ParseError::at(D, lineno, "link group without hub prefix"))?;
            let hub = Hub::from_name(hub_name)
                .ok_or_else(|| ParseError::at(D, lineno, "link group names unknown hub"))?;
            if !hubs.contains(&hub) {
                return Err(ParseError::at(D, lineno, "link group hub was not declared"));
            }
            for link in links.split(';').filter(|s| !s.is_empty()) {
                match link.split_once('~') {
                    Some((target_acc, score)) => {
                        let evidence: f64 = score
                            .parse()
                            .map_err(|_| ParseError::at(D, lineno, "bad link confidence"))?;
                        if !(0.0..=1.0).contains(&evidence) {
                            return Err(ParseError::at(D, lineno, "confidence outside [0,1]"));
                        }
                        records.push(EavRecord::similarity(
                            acc,
                            hub.source_name(),
                            target_acc,
                            evidence,
                        ));
                    }
                    None => {
                        records.push(EavRecord::annotation(acc, hub.source_name(), link));
                    }
                }
            }
        }
    }
    if hubs.is_empty() {
        return Err(ParseError::general(D, "missing #hub header"));
    }
    let mut batch = EavBatch {
        meta: SourceMeta {
            name: name.ok_or_else(|| ParseError::general(D, "missing #satellite header"))?,
            release: release.ok_or_else(|| ParseError::general(D, "missing #release header"))?,
            content: hubs[0].content(),
            structure: SourceStructure::Flat,
            partitions: Vec::new(),
        },
        records,
    };
    batch.sanitize();
    Ok(batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::UniverseParams;

    fn spec() -> SatelliteSpec {
        SatelliteSpec {
            name: "PathwayDB03".into(),
            hubs: vec![Hub::LocusLink, Hub::Go],
            n_objects: 25,
            links_per_object: 4,
            scored_fraction: 0.5,
            seed: 99,
        }
    }

    #[test]
    fn roundtrip_multi_hub() {
        let u = Universe::generate(UniverseParams::tiny(13));
        let batch = parse(&generate(&u, &spec())).unwrap();
        assert_eq!(batch.meta.name, "PathwayDB03");
        assert_eq!(batch.meta.content, SourceContent::Gene);
        let (objects, annotations, _) = batch.counts();
        assert_eq!(objects, 25);
        assert!(annotations > 25, "several links per object");
        assert_eq!(batch.referenced_targets(), vec!["GO", "LocusLink"]);
        // both scored and unscored links exist
        let mut scored = 0;
        let mut facts = 0;
        let lo_ids: std::collections::HashSet<String> =
            u.loci.iter().map(|l| l.id.to_string()).collect();
        let go_ids: std::collections::HashSet<&str> =
            u.go_terms.iter().map(|t| t.acc.as_str()).collect();
        for r in &batch.records {
            if let EavRecord::Annotation {
                target,
                accession,
                evidence,
                ..
            } = r
            {
                match evidence {
                    Some(e) => {
                        assert!((0.5..=1.0).contains(e));
                        scored += 1;
                    }
                    None => facts += 1,
                }
                match target.as_str() {
                    "LocusLink" => assert!(lo_ids.contains(accession)),
                    "GO" => assert!(go_ids.contains(accession.as_str())),
                    other => panic!("unexpected target {other}"),
                }
            }
        }
        assert!(scored > 0 && facts > 0);
    }

    #[test]
    fn single_hub_and_all_hubs() {
        let u = Universe::generate(UniverseParams::tiny(13));
        for hub in Hub::all() {
            let s = SatelliteSpec {
                hubs: vec![hub],
                name: format!("Sat{}", hub.source_name()),
                ..spec()
            };
            let batch = parse(&generate(&u, &s)).unwrap();
            assert_eq!(batch.referenced_targets(), vec![hub.source_name()]);
        }
        let s = SatelliteSpec {
            hubs: Hub::all().to_vec(),
            links_per_object: 8,
            ..spec()
        };
        let batch = parse(&generate(&u, &s)).unwrap();
        assert_eq!(batch.referenced_targets().len(), 4);
    }

    #[test]
    fn deterministic() {
        let u = Universe::generate(UniverseParams::tiny(13));
        assert_eq!(generate(&u, &spec()), generate(&u, &spec()));
    }

    #[test]
    fn malformed() {
        assert!(parse("").is_err(), "missing headers");
        assert!(parse("#satellite\tX\n#release\tr\n#hub\tMystery\n").is_err());
        let h = "#satellite\tX\n#release\tr\n#hub\tGO\naccession,name,links\n";
        assert!(parse(&format!("{h}onlyone\n")).is_err());
        assert!(parse(&format!("{h},noacc,GO=GO:1\n")).is_err());
        assert!(parse(&format!("{h}X:1,n,nogroup\n")).is_err(), "link without hub prefix");
        assert!(parse(&format!("{h}X:1,n,LocusLink=353\n")).is_err(), "undeclared hub");
        assert!(parse(&format!("{h}X:1,n,GO=GO:1~bad\n")).is_err());
        assert!(parse(&format!("{h}X:1,n,GO=GO:1~1.5\n")).is_err());
        assert!(parse("#satellite\tX\n#release\tr\n#hub\tGO\nrow,before,header\n").is_err());
        // object with no links is fine
        let b = parse(&format!("{h}X:1,thing,\n")).unwrap();
        assert_eq!(b.counts(), (1, 0, 0));
    }
}
