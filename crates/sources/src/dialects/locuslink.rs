//! LocusLink dialect — the hub gene source (paper Figure 1).
//!
//! Format: one record per locus, started by `>>accession`, followed by
//! `KEY: value` lines. The record carries the cross-references shown in the
//! paper's Figure 1: Hugo symbol, alias, chromosome, cytogenetic location,
//! OMIM, Enzyme, GO, and UniGene.

use crate::dialects::names;
use crate::universe::Universe;
use crate::ParseError;
use eav::{EavBatch, EavRecord, SourceMeta};
use std::fmt::Write as _;

/// Release tag rendered into dumps and used for source-level dedup.
pub const RELEASE: &str = "2003-10";

/// Render the LocusLink dump.
pub fn generate(u: &Universe) -> String {
    let mut out = String::new();
    for locus in &u.loci {
        let _ = writeln!(out, ">>{}", locus.id);
        let _ = writeln!(out, "SYMBOL: {}", locus.symbol);
        let _ = writeln!(out, "NAME: {}", locus.name);
        let _ = writeln!(out, "CHR: {}", locus.chromosome);
        let _ = writeln!(out, "MAP: {}", locus.location);
        if let Some(e) = locus.enzyme {
            let _ = writeln!(out, "EC: {}", u.enzymes[e].ec);
        }
        for &g in &locus.go_terms {
            let t = &u.go_terms[g];
            let _ = writeln!(out, "GO: {}|{}", t.acc, t.name);
        }
        for &o in &locus.omim {
            let _ = writeln!(out, "OMIM: {}", u.omim[o].id);
        }
        let _ = writeln!(out, "UNIGENE: {}", u.unigene[locus.unigene].acc);
    }
    out
}

/// Parse a LocusLink dump into EAV staging records.
pub fn parse(text: &str) -> Result<EavBatch, ParseError> {
    const D: &str = "LocusLink";
    let mut batch = EavBatch::new(SourceMeta::flat_gene(names::LOCUSLINK, RELEASE));
    let mut current: Option<String> = None;
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(acc) = line.strip_prefix(">>") {
            let acc = acc.trim();
            if acc.is_empty() {
                return Err(ParseError::at(D, lineno, "empty locus accession"));
            }
            batch.push(EavRecord::object(acc));
            current = Some(acc.to_owned());
            continue;
        }
        let entity = current
            .as_deref()
            .ok_or_else(|| ParseError::at(D, lineno, "field before first record"))?
            .to_owned();
        let (key, value) = line
            .split_once(':')
            .ok_or_else(|| ParseError::at(D, lineno, "field without colon"))?;
        let value = value.trim();
        if value.is_empty() {
            return Err(ParseError::at(D, lineno, "empty field value"));
        }
        match key.trim() {
            "SYMBOL" => batch.push(EavRecord::annotation(&entity, names::HUGO, value)),
            // NAME is the locus's own textual component; attach it to the
            // object record via a refreshed Object entry.
            "NAME" => batch.push(EavRecord::named_object(&entity, value)),
            "CHR" => batch.push(EavRecord::annotation(&entity, names::CHROMOSOME, value)),
            "MAP" => batch.push(EavRecord::annotation(&entity, names::LOCATION, value)),
            "EC" => batch.push(EavRecord::annotation(&entity, names::ENZYME, value)),
            "GO" => {
                let (acc, name) = value
                    .split_once('|')
                    .ok_or_else(|| ParseError::at(D, lineno, "GO field needs acc|name"))?;
                batch.push(EavRecord::annotation_with_text(&entity, names::GO, acc, name));
            }
            "OMIM" => batch.push(EavRecord::annotation(&entity, names::OMIM, value)),
            "UNIGENE" => batch.push(EavRecord::annotation(&entity, names::UNIGENE, value)),
            other => {
                return Err(ParseError::at(D, lineno, format!("unknown field {other}")));
            }
        }
    }
    batch.sanitize();
    Ok(batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::UniverseParams;

    #[test]
    fn generates_paper_figure1_record() {
        let u = Universe::generate(UniverseParams::tiny(1));
        let dump = generate(&u);
        assert!(dump.contains(">>353"));
        assert!(dump.contains("SYMBOL: APRT"));
        assert!(dump.contains("MAP: 16q24"));
        assert!(dump.contains("EC: 2.4.2.7"));
        assert!(dump.contains("GO: GO:0009116|nucleoside metabolism"));
        assert!(dump.contains("OMIM: 102600"));
    }

    #[test]
    fn parse_emits_table1_quadruples() {
        let u = Universe::generate(UniverseParams::tiny(1));
        let batch = parse(&generate(&u)).unwrap();
        assert_eq!(batch.meta.name, "LocusLink");
        // the Table 1 rows for locus 353
        assert!(batch
            .records
            .contains(&EavRecord::annotation("353", "Hugo", "APRT")));
        assert!(batch
            .records
            .contains(&EavRecord::annotation("353", "Location", "16q24")));
        assert!(batch
            .records
            .contains(&EavRecord::annotation("353", "Enzyme", "2.4.2.7")));
        assert!(batch.records.contains(&EavRecord::annotation_with_text(
            "353",
            "GO",
            "GO:0009116",
            "nucleoside metabolism"
        )));
        // every locus appears as an object
        let (objects, annotations, isa) = batch.counts();
        assert!(objects >= u.loci.len(), "one O record per locus + NAME updates");
        assert!(annotations > objects);
        assert_eq!(isa, 0);
        assert!(batch.referenced_targets().contains(&"Unigene"));
    }

    #[test]
    fn parse_errors_are_located() {
        assert!(parse("SYMBOL: X\n").is_err(), "field before record");
        assert!(parse(">>1\nNOCOLON\n").is_err());
        assert!(parse(">>1\nBOGUS: x\n").is_err());
        assert!(parse(">>1\nGO: missingpipe\n").is_err());
        assert!(parse(">>\n").is_err());
        let err = parse(">>1\nSYMBOL:\n").unwrap_err();
        assert_eq!(err.line, Some(2));
    }

    #[test]
    fn empty_dump_is_empty_batch() {
        let batch = parse("").unwrap();
        assert_eq!(batch.records.len(), 0);
    }
}
