//! GeneOntology dialect — an OBO-style stanza format.
//!
//! GO is the paper's flagship *Network* source: a taxonomy in three
//! sub-divisions (Biological Process, Molecular Function, Cellular
//! Component) related to the GO source by `Contains`, with `IS_A` edges
//! between terms (paper §3, "Structural relationships").

use crate::dialects::names;
use crate::universe::{Universe, GO_NAMESPACES, GO_PARTITIONS};
use crate::ParseError;
use eav::{EavBatch, EavRecord, SourceMeta};
use gam::model::SourceContent;
use std::fmt::Write as _;

/// Release tag of the generated ontology.
pub const RELEASE: &str = "200312";

/// Render the GO term stanzas.
pub fn generate(u: &Universe) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "format-version: 1.0");
    let _ = writeln!(out, "date: {RELEASE}");
    for term in &u.go_terms {
        let _ = writeln!(out);
        let _ = writeln!(out, "[Term]");
        let _ = writeln!(out, "id: {}", term.acc);
        let _ = writeln!(out, "name: {}", term.name);
        let _ = writeln!(out, "namespace: {}", GO_NAMESPACES[term.namespace]);
        for &p in &term.parents {
            let parent = &u.go_terms[p];
            let _ = writeln!(out, "is_a: {} ! {}", parent.acc, parent.name);
        }
    }
    out
}

/// Parse a GO dump into EAV staging records. Emits one `Object` per term
/// and one `IsA` edge per `is_a:` line. Partition names are derived from
/// the namespaces seen.
pub fn parse(text: &str) -> Result<EavBatch, ParseError> {
    const D: &str = "GO";
    let mut meta = SourceMeta::network(names::GO, RELEASE, SourceContent::Other);
    let mut records = Vec::new();
    let mut seen_namespaces = [false; 3];

    let mut in_term = false;
    let mut id: Option<String> = None;
    let mut name: Option<String> = None;
    let mut parents: Vec<String> = Vec::new();

    let flush = |id: &mut Option<String>,
                     name: &mut Option<String>,
                     parents: &mut Vec<String>,
                     records: &mut Vec<EavRecord>|
     -> Result<(), ParseError> {
        if let Some(acc) = id.take() {
            match name.take() {
                Some(n) => records.push(EavRecord::named_object(&acc, n)),
                None => records.push(EavRecord::object(&acc)),
            }
            for p in parents.drain(..) {
                records.push(EavRecord::is_a(&acc, p));
            }
        } else if name.is_some() || !parents.is_empty() {
            return Err(ParseError::general(D, "term stanza without id"));
        }
        Ok(())
    };

    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line.trim();
        if line == "[Term]" {
            flush(&mut id, &mut name, &mut parents, &mut records)?;
            in_term = true;
            continue;
        }
        if line.is_empty() || line.starts_with("format-version:") || line.starts_with("date:") {
            continue;
        }
        if !in_term {
            return Err(ParseError::at(D, lineno, "field outside [Term] stanza"));
        }
        let (key, value) = line
            .split_once(':')
            .ok_or_else(|| ParseError::at(D, lineno, "field without colon"))?;
        let value = value.trim();
        match key {
            "id" => id = Some(value.to_owned()),
            "name" => name = Some(value.to_owned()),
            "namespace" => {
                let ns = GO_NAMESPACES
                    .iter()
                    .position(|n| *n == value)
                    .ok_or_else(|| ParseError::at(D, lineno, "unknown namespace"))?;
                seen_namespaces[ns] = true;
            }
            "is_a" => {
                // strip the trailing "! parent name" comment
                let acc = value.split('!').next().unwrap_or("").trim();
                if acc.is_empty() {
                    return Err(ParseError::at(D, lineno, "empty is_a target"));
                }
                parents.push(acc.to_owned());
            }
            other => return Err(ParseError::at(D, lineno, format!("unknown field {other}"))),
        }
    }
    flush(&mut id, &mut name, &mut parents, &mut records)?;

    for (ns, seen) in seen_namespaces.iter().enumerate() {
        if *seen {
            meta.partitions.push(GO_PARTITIONS[ns].to_owned());
        }
    }
    let mut batch = EavBatch { meta, records };
    batch.sanitize();
    Ok(batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::UniverseParams;

    #[test]
    fn roundtrip_structure() {
        let u = Universe::generate(UniverseParams::tiny(3));
        let batch = parse(&generate(&u)).unwrap();
        let (objects, annotations, isa) = batch.counts();
        assert_eq!(objects, u.go_terms.len());
        assert_eq!(annotations, 0);
        let expected_edges: usize = u.go_terms.iter().map(|t| t.parents.len()).sum();
        assert_eq!(isa, expected_edges);
        assert_eq!(
            batch.meta.partitions,
            vec!["BiologicalProcess", "MolecularFunction", "CellularComponent"]
        );
        assert!(batch
            .records
            .contains(&EavRecord::named_object("GO:0009116", "nucleoside metabolism")));
        assert!(batch
            .records
            .contains(&EavRecord::is_a("GO:0009116", "GO:0008150")));
    }

    #[test]
    fn is_a_comment_stripping() {
        let text = "[Term]\nid: GO:1\nname: x\nnamespace: biological_process\nis_a: GO:2 ! parent thing\n";
        let batch = parse(text).unwrap();
        assert!(batch.records.contains(&EavRecord::is_a("GO:1", "GO:2")));
        assert_eq!(batch.meta.partitions, vec!["BiologicalProcess"]);
    }

    #[test]
    fn malformed_stanzas_rejected() {
        assert!(parse("id: GO:1\n").is_err(), "field outside stanza");
        assert!(parse("[Term]\nname: orphan\n").is_err(), "stanza without id");
        assert!(parse("[Term]\nid: GO:1\nnamespace: bogus\n").is_err());
        assert!(parse("[Term]\nid: GO:1\nwhatever: x\n").is_err());
        assert!(parse("[Term]\nid: GO:1\nis_a: !\n").is_err());
        assert!(parse("[Term]\nid: GO:1\nnocolonhere\n").is_err());
    }

    #[test]
    fn header_lines_ignored() {
        let batch = parse("format-version: 1.0\ndate: 200312\n").unwrap();
        assert!(batch.records.is_empty());
    }
}
