//! UniGene dialect — a pipe-separated cluster table.
//!
//! One line per cluster: `ID|TITLE|LOCUSLINK[,LOCUSLINK...]`. UniGene is
//! the "generally accepted gene representation" the paper's profiling
//! pipeline maps Affymetrix probes onto (§5.2).

use crate::dialects::names;
use crate::universe::Universe;
use crate::ParseError;
use eav::{EavBatch, EavRecord, SourceMeta};
use std::fmt::Write as _;

/// Release tag (UniGene "build" number).
pub const RELEASE: &str = "Hs.build171";

/// Render the UniGene cluster table.
pub fn generate(u: &Universe) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# UniGene build {RELEASE}");
    for cluster in &u.unigene {
        let loci: Vec<String> = cluster
            .loci
            .iter()
            .map(|&l| u.loci[l].id.to_string())
            .collect();
        let _ = writeln!(out, "{}|{}|{}", cluster.acc, cluster.title, loci.join(","));
    }
    out
}

/// Parse a UniGene table into EAV staging records.
pub fn parse(text: &str) -> Result<EavBatch, ParseError> {
    const D: &str = "Unigene";
    let mut batch = EavBatch::new(SourceMeta::flat_gene(names::UNIGENE, RELEASE));
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('|').collect();
        if fields.len() != 3 {
            return Err(ParseError::at(D, lineno, "expected ID|TITLE|LOCI"));
        }
        let (acc, title, loci) = (fields[0], fields[1], fields[2]);
        if acc.is_empty() {
            return Err(ParseError::at(D, lineno, "empty cluster id"));
        }
        batch.push(EavRecord::named_object(acc, title));
        for locus in loci.split(',').filter(|s| !s.is_empty()) {
            batch.push(EavRecord::annotation(acc, names::LOCUSLINK, locus));
        }
    }
    batch.sanitize();
    Ok(batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::UniverseParams;

    #[test]
    fn roundtrip_counts() {
        let u = Universe::generate(UniverseParams::tiny(4));
        let batch = parse(&generate(&u)).unwrap();
        let (objects, annotations, _) = batch.counts();
        assert_eq!(objects, u.unigene.len());
        assert_eq!(annotations, u.loci.len(), "one link per member locus");
        assert_eq!(batch.referenced_targets(), vec!["LocusLink"]);
    }

    #[test]
    fn cluster_links_back_to_locus_353() {
        let u = Universe::generate(UniverseParams::tiny(4));
        let batch = parse(&generate(&u)).unwrap();
        let cluster = &u.unigene[u.locus_353().unigene];
        assert!(batch
            .records
            .contains(&EavRecord::annotation(&cluster.acc, "LocusLink", "353")));
    }

    #[test]
    fn malformed_lines() {
        assert!(parse("only|two\n").is_err());
        assert!(parse("|title|1\n").is_err());
        // comments and blanks are fine
        assert!(parse("# header\n\n").unwrap().records.is_empty());
    }
}
