//! OMIM dialect — disease catalogue in `*FIELD*` stanza format.
//!
//! Each entry:
//!
//! ```text
//! *RECORD*
//! *FIELD* NO
//! 102600
//! *FIELD* TI
//! APRT DEFICIENCY
//! *FIELD* LL
//! 353
//! ```
//!
//! OMIM supplies the "disease information" annotations of Figure 1.

use crate::dialects::names;
use crate::universe::Universe;
use crate::ParseError;
use eav::{EavBatch, EavRecord, SourceMeta};
use gam::model::SourceContent;
use std::fmt::Write as _;

/// Release tag.
pub const RELEASE: &str = "2003-12-15";

/// Render the OMIM dump.
pub fn generate(u: &Universe) -> String {
    let mut out = String::new();
    for entry in &u.omim {
        let _ = writeln!(out, "*RECORD*");
        let _ = writeln!(out, "*FIELD* NO");
        let _ = writeln!(out, "{}", entry.id);
        let _ = writeln!(out, "*FIELD* TI");
        let _ = writeln!(out, "{}", entry.title);
        let _ = writeln!(out, "*FIELD* LL");
        for &l in &entry.loci {
            let _ = writeln!(out, "{}", u.loci[l].id);
        }
    }
    out
}

/// Parse an OMIM dump into EAV staging records.
pub fn parse(text: &str) -> Result<EavBatch, ParseError> {
    const D: &str = "OMIM";
    let mut batch = EavBatch::new(SourceMeta {
        name: names::OMIM.to_owned(),
        release: RELEASE.to_owned(),
        content: SourceContent::Other,
        structure: gam::model::SourceStructure::Flat,
        partitions: Vec::new(),
    });
    #[derive(PartialEq, Clone, Copy)]
    enum Field {
        None,
        No,
        Ti,
        Ll,
    }
    let mut field = Field::None;
    let mut no: Option<String> = None;
    let mut ti: Option<String> = None;
    let mut lls: Vec<String> = Vec::new();

    let flush = |no: &mut Option<String>,
                     ti: &mut Option<String>,
                     lls: &mut Vec<String>,
                     batch: &mut EavBatch|
     -> Result<(), ParseError> {
        if let Some(id) = no.take() {
            match ti.take() {
                Some(title) => batch.push(EavRecord::named_object(&id, title)),
                None => batch.push(EavRecord::object(&id)),
            }
            for ll in lls.drain(..) {
                batch.push(EavRecord::annotation(&id, names::LOCUSLINK, ll));
            }
        } else if ti.is_some() || !lls.is_empty() {
            return Err(ParseError::general(D, "record without *FIELD* NO"));
        }
        Ok(())
    };

    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if line == "*RECORD*" {
            flush(&mut no, &mut ti, &mut lls, &mut batch)?;
            field = Field::None;
            continue;
        }
        if let Some(tag) = line.strip_prefix("*FIELD* ") {
            field = match tag {
                "NO" => Field::No,
                "TI" => Field::Ti,
                "LL" => Field::Ll,
                other => return Err(ParseError::at(D, lineno, format!("unknown field {other}"))),
            };
            continue;
        }
        match field {
            Field::No => no = Some(line.to_owned()),
            Field::Ti => ti = Some(line.to_owned()),
            Field::Ll => lls.push(line.to_owned()),
            Field::None => return Err(ParseError::at(D, lineno, "data outside a field")),
        }
    }
    flush(&mut no, &mut ti, &mut lls, &mut batch)?;
    batch.sanitize();
    Ok(batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::UniverseParams;

    #[test]
    fn roundtrip() {
        let u = Universe::generate(UniverseParams::tiny(8));
        let batch = parse(&generate(&u)).unwrap();
        let (objects, annotations, _) = batch.counts();
        assert_eq!(objects, u.omim.len());
        let expected_links: usize = u.omim.iter().map(|e| e.loci.len()).sum();
        assert_eq!(annotations, expected_links);
        // the pinned APRT-deficiency entry links to locus 353
        assert!(batch
            .records
            .contains(&EavRecord::annotation("102600", "LocusLink", "353")));
    }

    #[test]
    fn malformed() {
        assert!(parse("data first\n").is_err());
        assert!(parse("*RECORD*\n*FIELD* XX\n").is_err());
        assert!(parse("*RECORD*\n*FIELD* TI\ntitle only\n").is_err(), "record missing NO");
    }

    #[test]
    fn entry_without_title_is_kept() {
        let batch = parse("*RECORD*\n*FIELD* NO\n999999\n").unwrap();
        assert_eq!(batch.records, vec![EavRecord::object("999999")]);
    }
}
