//! SwissProt dialect — the protein knowledge base flat-file format.
//!
//! Entries delimited by `//`, with two-letter line codes: `ID` (entry
//! name), `AC` (accession), `GN` (gene symbol), and `DR` cross-reference
//! lines (`DR   LocusLink; 353.` / `DR   InterPro; IPR000312.`), matching
//! the protein-annotation sources of the paper's §1.

use crate::dialects::names;
use crate::universe::Universe;
use crate::ParseError;
use eav::{EavBatch, EavRecord, SourceMeta};
use gam::model::SourceContent;
use std::fmt::Write as _;

/// Release tag.
pub const RELEASE: &str = "42.0";

/// Render the SwissProt dump.
pub fn generate(u: &Universe) -> String {
    let mut out = String::new();
    for p in &u.proteins {
        let locus = &u.loci[p.locus];
        let _ = writeln!(out, "ID   {}", p.entry_name);
        let _ = writeln!(out, "AC   {};", p.acc);
        let _ = writeln!(out, "GN   {};", locus.symbol);
        let _ = writeln!(out, "DR   LocusLink; {}.", locus.id);
        for &d in &p.domains {
            let _ = writeln!(out, "DR   InterPro; {}.", u.interpro[d].acc);
        }
        let _ = writeln!(out, "//");
    }
    out
}

/// Parse a SwissProt dump into EAV staging records. Objects are protein
/// accessions (the `AC` line) with the entry name as text.
pub fn parse(text: &str) -> Result<EavBatch, ParseError> {
    const D: &str = "SwissProt";
    let mut batch = EavBatch::new(SourceMeta {
        name: names::SWISSPROT.to_owned(),
        release: RELEASE.to_owned(),
        content: SourceContent::Protein,
        structure: gam::model::SourceStructure::Flat,
        partitions: Vec::new(),
    });
    let mut entry_name: Option<String> = None;
    let mut acc: Option<String> = None;
    let mut pending: Vec<(String, String)> = Vec::new(); // (target, accession)

    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if line.starts_with("//") {
            let acc = acc
                .take()
                .ok_or_else(|| ParseError::at(D, lineno, "entry without AC line"))?;
            match entry_name.take() {
                Some(name) => batch.push(EavRecord::named_object(&acc, name)),
                None => batch.push(EavRecord::object(&acc)),
            }
            for (target, target_acc) in pending.drain(..) {
                batch.push(EavRecord::annotation(&acc, target, target_acc));
            }
            continue;
        }
        if line.len() < 5 || !line.is_char_boundary(5) {
            return Err(ParseError::at(D, lineno, "short or malformed line"));
        }
        let (code, value) = line.split_at(5);
        let value = value.trim().trim_end_matches(['.', ';']);
        match code.trim() {
            "ID" => entry_name = Some(value.to_owned()),
            "AC" => acc = Some(value.to_owned()),
            "GN" => pending.push((names::HUGO.to_owned(), value.to_owned())),
            "DR" => {
                let (db, target_acc) = value
                    .split_once(';')
                    .ok_or_else(|| ParseError::at(D, lineno, "DR line needs 'db; acc'"))?;
                let target = match db.trim() {
                    "LocusLink" => names::LOCUSLINK,
                    "InterPro" => names::INTERPRO,
                    other => {
                        return Err(ParseError::at(D, lineno, format!("unknown DR database {other}")))
                    }
                };
                pending.push((target.to_owned(), target_acc.trim().to_owned()));
            }
            other => return Err(ParseError::at(D, lineno, format!("unknown line code {other}"))),
        }
    }
    if acc.is_some() {
        return Err(ParseError::general(D, "unterminated final entry"));
    }
    batch.sanitize();
    Ok(batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::UniverseParams;

    #[test]
    fn roundtrip() {
        let u = Universe::generate(UniverseParams::tiny(10));
        let batch = parse(&generate(&u)).unwrap();
        let (objects, annotations, _) = batch.counts();
        assert_eq!(objects, u.proteins.len());
        let expected: usize = u
            .proteins
            .iter()
            .map(|p| 2 + p.domains.len()) // GN + LocusLink DR + InterPro DRs
            .sum();
        assert_eq!(annotations, expected);
        // the pinned APRT protein
        assert!(batch
            .records
            .contains(&EavRecord::named_object("P07741", "APRT_HUMAN")));
        assert!(batch
            .records
            .contains(&EavRecord::annotation("P07741", "LocusLink", "353")));
        assert!(batch
            .records
            .contains(&EavRecord::annotation("P07741", "Hugo", "APRT")));
        assert_eq!(batch.meta.content, SourceContent::Protein);
    }

    #[test]
    fn malformed() {
        assert!(parse("//\n").is_err(), "entry without AC");
        assert!(parse("AC   P1;\n").is_err(), "unterminated");
        assert!(parse("AC   P1;\nDR   nosemicolon\n//\n").is_err());
        assert!(parse("AC   P1;\nDR   Mystery; X.\n//\n").is_err());
        assert!(parse("ZZ   what\n").is_err());
        assert!(parse("ID\n").is_err(), "short line");
    }
}
