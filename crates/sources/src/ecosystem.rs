//! The full source ecosystem at a chosen scale.
//!
//! [`Ecosystem::generate`] renders every core dialect from one shared
//! [`Universe`] plus a configurable number of satellite sources, yielding
//! the flat-file dumps. [`Ecosystem::parse_all`] runs every parser — the
//! paper's per-source `Parse` step — producing the EAV batches the generic
//! Import consumes.
//!
//! [`EcosystemParams::paper_scale`] reproduces the §5 deployment numbers
//! (60+ sources, ~2 M objects, ~5 M associations, 500+ mappings after
//! derived mappings are materialized).

use crate::dialects::satellite::{Hub, SatelliteSpec};
use crate::dialects::{self, names};
use crate::universe::{Universe, UniverseParams};
use crate::{ParseError, QuarantinedLine};
use eav::EavBatch;

/// Which dialect a dump is written in (decides which parser reads it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dialect {
    LocusLink,
    Go,
    Unigene,
    Enzyme,
    Hugo,
    Omim,
    NetAffx,
    SwissProt,
    InterPro,
    GeneMap,
    Satellite,
}

/// One generated source dump.
#[derive(Debug, Clone)]
pub struct SourceDump {
    /// Source name (matches the name inside the dump).
    pub name: String,
    pub dialect: Dialect,
    /// The flat-file text.
    pub text: String,
}

/// Result of a lenient parse: the batch built from the surviving lines
/// plus the lines that were removed to get there.
#[derive(Debug, Clone)]
pub struct LenientParse {
    pub batch: EavBatch,
    pub quarantined: Vec<QuarantinedLine>,
}

impl SourceDump {
    /// Run the dialect's parser over this dump.
    pub fn parse(&self) -> Result<EavBatch, ParseError> {
        parse_text(self.dialect, &self.text)
    }

    /// Parse with graceful degradation: when the parser rejects a line, the
    /// line is removed (quarantined) and the parse retried, up to `budget`
    /// removals. Errors the parser cannot attribute to a line — and any
    /// error once the budget is spent — still fail the dump, so structural
    /// corruption is not silently eaten record by record.
    pub fn parse_lenient(&self, budget: usize) -> Result<LenientParse, ParseError> {
        // Fast path: a clean dump never re-allocates the text.
        match parse_text(self.dialect, &self.text) {
            Ok(batch) => {
                return Ok(LenientParse {
                    batch,
                    quarantined: Vec::new(),
                })
            }
            Err(err) if err.line.is_none() || budget == 0 => return Err(err),
            Err(_) => {}
        }
        // Surviving lines, each tagged with its original 1-based number so
        // quarantine reports point into the raw dump, not the shrunk text.
        let mut lines: Vec<(usize, &str)> = self
            .text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l))
            .collect();
        let mut quarantined: Vec<QuarantinedLine> = Vec::new();
        loop {
            let mut text = String::with_capacity(self.text.len());
            for (_, l) in &lines {
                text.push_str(l);
                text.push('\n');
            }
            match parse_text(self.dialect, &text) {
                Ok(batch) => return Ok(LenientParse { batch, quarantined }),
                Err(err) => {
                    let idx = match err.line {
                        Some(l) if l >= 1 && l <= lines.len() => l - 1,
                        _ => return Err(err),
                    };
                    if quarantined.len() >= budget {
                        return Err(err);
                    }
                    let (orig, content) = lines.remove(idx);
                    quarantined.push(QuarantinedLine {
                        line: orig,
                        snippet: content.chars().take(80).collect(),
                        reason: err.reason,
                    });
                }
            }
        }
    }
}

fn parse_text(dialect: Dialect, text: &str) -> Result<EavBatch, ParseError> {
    match dialect {
        Dialect::LocusLink => dialects::locuslink::parse(text),
        Dialect::Go => dialects::go::parse(text),
        Dialect::Unigene => dialects::unigene::parse(text),
        Dialect::Enzyme => dialects::enzyme::parse(text),
        Dialect::Hugo => dialects::hugo::parse(text),
        Dialect::Omim => dialects::omim::parse(text),
        Dialect::NetAffx => dialects::netaffx::parse(text),
        Dialect::SwissProt => dialects::swissprot::parse(text),
        Dialect::InterPro => dialects::interpro::parse(text),
        Dialect::GeneMap => dialects::genemap::parse(text),
        Dialect::Satellite => dialects::satellite::parse(text),
    }
}

/// Scale parameters of the ecosystem.
#[derive(Debug, Clone)]
pub struct EcosystemParams {
    pub universe: UniverseParams,
    /// Number of satellite sources beyond the ten core dialects.
    pub n_satellites: usize,
    /// Objects per satellite source.
    pub satellite_objects: usize,
    /// Links per satellite object (distributed over the satellite's hubs).
    pub satellite_links: usize,
    /// Hubs per satellite (1–4). Paper-scale uses all four, which drives
    /// the mapping count toward the deployment's 500+ (each hub yields a
    /// Fact and a Similarity mapping).
    pub satellite_hubs: usize,
    /// Fraction of satellite links carrying a computed confidence.
    pub satellite_scored_fraction: f64,
}

impl EcosystemParams {
    /// Small setup for tests and examples: 10 core sources + a few
    /// satellites.
    pub fn demo(seed: u64) -> Self {
        EcosystemParams {
            universe: UniverseParams::tiny(seed),
            n_satellites: 4,
            satellite_objects: 40,
            satellite_links: 3,
            satellite_hubs: 2,
            satellite_scored_fraction: 0.3,
        }
    }

    /// Mid-size setup (default universe) used by most benches.
    pub fn medium(seed: u64) -> Self {
        EcosystemParams {
            universe: UniverseParams {
                seed,
                ..UniverseParams::default()
            },
            n_satellites: 12,
            satellite_objects: 400,
            satellite_links: 3,
            satellite_hubs: 2,
            satellite_scored_fraction: 0.3,
        }
    }

    /// The paper's §5 deployment scale: the run registers 60+ sources and
    /// reaches ~2 M objects / ~5 M associations. Heavy: ~GBs of dump text.
    pub fn paper_scale(seed: u64) -> Self {
        EcosystemParams {
            universe: UniverseParams {
                seed,
                n_loci: 40_000, // the paper's microarrays cover ~40k genes
                n_go_terms: 12_000,
                n_enzymes: 4_000,
                n_omim: 6_000,
                n_interpro: 8_000,
                probesets_per_locus: 1.4,
                protein_fraction: 0.7,
            },
            n_satellites: 55, // + 10 core dialects = 65 sources
            satellite_objects: 30_000,
            satellite_links: 3,
            satellite_hubs: 4, // 2 mapping types x 4 hubs x 55 satellites -> 400+ mappings
            satellite_scored_fraction: 0.4,
        }
    }
}

/// The generated ecosystem: universe plus rendered dumps.
#[derive(Debug)]
pub struct Ecosystem {
    pub universe: Universe,
    pub dumps: Vec<SourceDump>,
}

impl Ecosystem {
    /// Generate the universe and render every source dump.
    pub fn generate(params: EcosystemParams) -> Ecosystem {
        let universe = Universe::generate(params.universe.clone());
        let mut dumps = Vec::with_capacity(10 + params.n_satellites);
        type Generator = fn(&Universe) -> String;
        let core: [(&str, Dialect, Generator); 10] = [
            (names::LOCUSLINK, Dialect::LocusLink, dialects::locuslink::generate),
            (names::GO, Dialect::Go, dialects::go::generate),
            (names::UNIGENE, Dialect::Unigene, dialects::unigene::generate),
            (names::ENZYME, Dialect::Enzyme, dialects::enzyme::generate),
            (names::HUGO, Dialect::Hugo, dialects::hugo::generate),
            (names::OMIM, Dialect::Omim, dialects::omim::generate),
            (names::NETAFFX, Dialect::NetAffx, dialects::netaffx::generate),
            (names::SWISSPROT, Dialect::SwissProt, dialects::swissprot::generate),
            (names::INTERPRO, Dialect::InterPro, dialects::interpro::generate),
            (names::GENEMAP, Dialect::GeneMap, dialects::genemap::generate),
        ];
        for (name, dialect, gen) in core {
            dumps.push(SourceDump {
                name: name.to_owned(),
                dialect,
                text: gen(&universe),
            });
        }
        let families = ["PathwayDB", "MarkerSet", "CloneLib", "ExprStudy"];
        let n_hubs = params.satellite_hubs.clamp(1, 4);
        for i in 0..params.n_satellites {
            // rotate the hub window so satellites differ in their hub mix
            let hubs: Vec<Hub> = (0..n_hubs).map(|j| Hub::all()[(i + j) % 4]).collect();
            let family = families[i % families.len()];
            let spec = SatelliteSpec {
                name: format!("{family}{:02}", i + 1),
                hubs,
                n_objects: params.satellite_objects,
                links_per_object: params.satellite_links,
                scored_fraction: params.satellite_scored_fraction,
                seed: params.universe.seed ^ (0x5A7E_0000 + i as u64),
            };
            dumps.push(SourceDump {
                name: spec.name.clone(),
                dialect: Dialect::Satellite,
                text: dialects::satellite::generate(&universe, &spec),
            });
        }
        Ecosystem { universe, dumps }
    }

    /// Parse every dump (the per-source `Parse` step), in dump order.
    pub fn parse_all(&self) -> Result<Vec<EavBatch>, ParseError> {
        self.dumps.iter().map(SourceDump::parse).collect()
    }

    /// Total bytes of generated dump text.
    pub fn dump_bytes(&self) -> usize {
        self.dumps.iter().map(|d| d.text.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_ecosystem_generates_and_parses() {
        let eco = Ecosystem::generate(EcosystemParams::demo(21));
        assert_eq!(eco.dumps.len(), 14);
        let batches = eco.parse_all().unwrap();
        assert_eq!(batches.len(), 14);
        // dump names match batch names
        for (dump, batch) in eco.dumps.iter().zip(&batches) {
            assert_eq!(dump.name, batch.meta.name);
        }
        // satellites rotate through 2-hub windows over the 4 hubs
        let sat_targets: Vec<Vec<&str>> = batches[10..]
            .iter()
            .map(|b| b.referenced_targets())
            .collect();
        assert_eq!(sat_targets[0], vec!["LocusLink", "Unigene"]);
        assert_eq!(sat_targets[1], vec!["SwissProt", "Unigene"]);
        assert_eq!(sat_targets[2], vec!["GO", "SwissProt"]);
        assert_eq!(sat_targets[3], vec!["GO", "LocusLink"]);
        assert!(eco.dump_bytes() > 10_000);
    }

    #[test]
    fn ecosystem_is_deterministic() {
        let a = Ecosystem::generate(EcosystemParams::demo(5));
        let b = Ecosystem::generate(EcosystemParams::demo(5));
        assert_eq!(a.universe, b.universe);
        for (da, db) in a.dumps.iter().zip(&b.dumps) {
            assert_eq!(da.text, db.text);
        }
    }

    #[test]
    fn lenient_parse_quarantines_bad_lines_within_budget() {
        let eco = Ecosystem::generate(EcosystemParams::demo(7));
        let clean = eco.dumps[0].parse().unwrap();
        // Corrupt two field lines of the LocusLink dump (empty value and a
        // colon-less field), leaving the rest intact.
        let mut lines: Vec<String> = eco.dumps[0].text.lines().map(str::to_owned).collect();
        let bad_a = lines
            .iter()
            .position(|l| l.starts_with("SYMBOL:"))
            .unwrap();
        lines[bad_a] = "SYMBOL:".to_owned(); // empty field value
        let bad_b = lines.iter().rposition(|l| l.starts_with("CHR:")).unwrap();
        lines[bad_b] = "CHR broken without colon".to_owned();
        let dump = SourceDump {
            name: eco.dumps[0].name.clone(),
            dialect: eco.dumps[0].dialect,
            text: lines.join("\n") + "\n",
        };

        // Strict parse fails; zero budget behaves like strict.
        assert!(dump.parse().is_err());
        assert!(dump.parse_lenient(0).is_err());
        // Budget of one is exhausted by the first bad line.
        assert!(dump.parse_lenient(1).is_err());

        let lenient = dump.parse_lenient(5).unwrap();
        assert_eq!(lenient.quarantined.len(), 2);
        let mut qlines: Vec<usize> = lenient.quarantined.iter().map(|q| q.line).collect();
        qlines.sort_unstable();
        assert_eq!(qlines, vec![bad_a + 1, bad_b + 1]);
        for q in &lenient.quarantined {
            assert!(!q.snippet.is_empty());
            assert!(!q.reason.is_empty());
        }
        // Only the two corrupted records are lost relative to a clean parse.
        assert_eq!(lenient.batch.records.len(), clean.records.len() - 2);
    }

    #[test]
    fn lenient_parse_of_clean_dump_quarantines_nothing() {
        let eco = Ecosystem::generate(EcosystemParams::demo(3));
        for dump in &eco.dumps {
            let strict = dump.parse().unwrap();
            let lenient = dump.parse_lenient(8).unwrap();
            assert!(lenient.quarantined.is_empty());
            assert_eq!(lenient.batch.records.len(), strict.records.len());
        }
    }

    #[test]
    fn paper_scale_params_reach_sixty_sources() {
        let p = EcosystemParams::paper_scale(1);
        assert!(p.n_satellites + 10 >= 60);
        assert_eq!(p.universe.n_loci, 40_000);
    }
}
