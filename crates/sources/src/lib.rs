//! `sources` — a synthetic molecular-biological source ecosystem.
//!
//! The paper integrates live public sources (LocusLink, GO, UniGene,
//! Enzyme, OMIM, Hugo, NetAffx, SwissProt, InterPro, genome locations, and
//! ~50 more). Those dumps are not available offline, so this crate builds
//! the closest synthetic equivalent (see DESIGN.md §2):
//!
//! 1. a deterministic, seeded [`Universe`] of loci,
//!    genes, proteins, taxonomy terms and their cross-references — the
//!    ground truth shared by every source, so cross-references between
//!    generated dumps actually line up the way curated web-links do;
//! 2. one module per source that **renders** the universe into that
//!    source's native flat-file dialect (`generate`) and **parses** the
//!    dialect back into an [`eav::EavBatch`] (`parse`), exactly the
//!    source-specific `Parse` step of the paper's §4.1;
//! 3. an [`ecosystem`] builder that produces the whole source collection
//!    at a chosen scale — including generic "satellite" sources — to reach
//!    the paper's deployment numbers (60+ sources, ~2 M objects, ~5 M
//!    associations, 500+ mappings).
//!
//! Each parser is intentionally small ("Parse represents a small portion
//! of source-specific code"), while everything downstream of the EAV
//! staging format is generic.

pub mod dialects;
pub mod ecosystem;
pub mod universe;

pub use ecosystem::{Ecosystem, EcosystemParams, LenientParse};
pub use universe::{Universe, UniverseParams};

/// Error raised by source parsers.
#[derive(Debug)]
pub struct ParseError {
    /// Source dialect that failed.
    pub dialect: &'static str,
    /// 1-based line number, when known.
    pub line: Option<usize>,
    /// Description of the problem.
    pub reason: String,
}

impl ParseError {
    pub(crate) fn at(dialect: &'static str, line: usize, reason: impl Into<String>) -> Self {
        ParseError {
            dialect,
            line: Some(line),
            reason: reason.into(),
        }
    }

    pub(crate) fn general(dialect: &'static str, reason: impl Into<String>) -> Self {
        ParseError {
            dialect,
            line: None,
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.line {
            Some(line) => write!(f, "{} parse error at line {line}: {}", self.dialect, self.reason),
            None => write!(f, "{} parse error: {}", self.dialect, self.reason),
        }
    }
}

impl std::error::Error for ParseError {}

/// One input line removed from a dump by lenient parsing.
///
/// Produced by [`ecosystem::SourceDump::parse_lenient`]: instead of failing
/// the whole dump on a malformed record, the offending line is quarantined
/// (up to a caller-chosen budget) and parsing continues without it. The
/// original 1-based line number and a snippet are kept so the operator can
/// locate the record in the raw dump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedLine {
    /// 1-based line number in the *original* dump text.
    pub line: usize,
    /// First characters of the offending line (for the report).
    pub snippet: String,
    /// Parser's description of the problem.
    pub reason: String,
}
