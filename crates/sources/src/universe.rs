//! The shared ground truth from which every synthetic source is rendered.
//!
//! All cross-references in the generated dumps (a LocusLink record's GO
//! terms, a SwissProt entry's LocusLink link, a NetAffx probe set's UniGene
//! cluster, ...) are drawn from one [`Universe`], so that — as with the
//! curated web-links the paper exploits — links in different sources agree
//! and compose transitively. Generation is fully deterministic in the seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Size and shape parameters of the universe.
#[derive(Debug, Clone, PartialEq)]
pub struct UniverseParams {
    /// RNG seed; equal seeds give byte-identical universes.
    pub seed: u64,
    /// Number of genetic loci (LocusLink entries). The paper's deployment
    /// handles ~40 000 genes on microarrays.
    pub n_loci: usize,
    /// Number of GO terms across the three namespaces.
    pub n_go_terms: usize,
    /// Number of Enzyme classification leaf entries.
    pub n_enzymes: usize,
    /// Number of OMIM disease entries.
    pub n_omim: usize,
    /// Number of InterPro domain entries.
    pub n_interpro: usize,
    /// Probe sets per locus on the microarray (NetAffx).
    pub probesets_per_locus: f64,
    /// Fraction of loci with a SwissProt protein product.
    pub protein_fraction: f64,
}

impl Default for UniverseParams {
    fn default() -> Self {
        UniverseParams {
            seed: 42,
            n_loci: 2_000,
            n_go_terms: 600,
            n_enzymes: 120,
            n_omim: 300,
            n_interpro: 250,
            probesets_per_locus: 1.4,
            protein_fraction: 0.7,
        }
    }
}

impl UniverseParams {
    /// A small universe for unit tests.
    pub fn tiny(seed: u64) -> Self {
        UniverseParams {
            seed,
            n_loci: 120,
            n_go_terms: 60,
            n_enzymes: 25,
            n_omim: 30,
            n_interpro: 40,
            probesets_per_locus: 1.3,
            protein_fraction: 0.7,
        }
    }

    /// Scale every cardinality by `factor` (used by the scale benches).
    pub fn scaled(mut self, factor: f64) -> Self {
        let scale = |n: usize| ((n as f64 * factor).round() as usize).max(8);
        self.n_loci = scale(self.n_loci);
        self.n_go_terms = scale(self.n_go_terms);
        self.n_enzymes = scale(self.n_enzymes);
        self.n_omim = scale(self.n_omim);
        self.n_interpro = scale(self.n_interpro);
        self
    }
}

/// One GO term.
#[derive(Debug, Clone, PartialEq)]
pub struct GoTerm {
    /// Accession, e.g. `GO:0009116`.
    pub acc: String,
    /// Term name.
    pub name: String,
    /// Namespace index: 0 = biological_process, 1 = molecular_function,
    /// 2 = cellular_component.
    pub namespace: usize,
    /// Indices of `is_a` parents within the same namespace (empty for the
    /// namespace root).
    pub parents: Vec<usize>,
}

/// GO namespace names in canonical order.
pub const GO_NAMESPACES: [&str; 3] = [
    "biological_process",
    "molecular_function",
    "cellular_component",
];

/// GO partition (sub-taxonomy) display names, as used for `Contains`
/// relationships (paper §3).
pub const GO_PARTITIONS: [&str; 3] = ["BiologicalProcess", "MolecularFunction", "CellularComponent"];

/// One Enzyme Commission entry. Internal nodes of the EC hierarchy are
/// materialized so IS_A edges are complete.
#[derive(Debug, Clone, PartialEq)]
pub struct Enzyme {
    /// EC number, e.g. `2.4.2.7` (leaves) or `2.4.2` (internal).
    pub ec: String,
    /// Description.
    pub name: String,
    /// Index of the parent class, `None` for top-level classes.
    pub parent: Option<usize>,
    /// True for 4-component leaf entries that loci may reference.
    pub is_leaf: bool,
}

/// One InterPro domain.
#[derive(Debug, Clone, PartialEq)]
pub struct InterProDomain {
    /// Accession, e.g. `IPR000312`.
    pub acc: String,
    /// Domain name.
    pub name: String,
    /// Parent domain (InterPro maintains a parent/child hierarchy).
    pub parent: Option<usize>,
}

/// One OMIM entry.
#[derive(Debug, Clone, PartialEq)]
pub struct OmimEntry {
    /// OMIM number, e.g. `102600`.
    pub id: u32,
    /// Title.
    pub title: String,
    /// Indices of associated loci.
    pub loci: Vec<usize>,
}

/// One UniGene cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct UnigeneCluster {
    /// Accession, e.g. `Hs.28914`.
    pub acc: String,
    /// Cluster title.
    pub title: String,
    /// Indices of member loci (usually one).
    pub loci: Vec<usize>,
}

/// One SwissProt protein.
#[derive(Debug, Clone, PartialEq)]
pub struct Protein {
    /// Primary accession, e.g. `P07741`.
    pub acc: String,
    /// Entry name, e.g. `APRT_HUMAN`.
    pub entry_name: String,
    /// Index of the encoding locus.
    pub locus: usize,
    /// Indices of InterPro domains.
    pub domains: Vec<usize>,
}

/// One Affymetrix probe set (NetAffx).
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeSet {
    /// Accession, e.g. `31353_at`.
    pub acc: String,
    /// Index of the targeted UniGene cluster.
    pub unigene: usize,
    /// Index of the locus, when NetAffx publishes it directly (it often
    /// does not, which is exactly why composed mappings matter).
    pub locus: Option<usize>,
}

/// One genetic locus (LocusLink entry) — the hub object most sources
/// cross-reference (paper Figure 1).
#[derive(Debug, Clone, PartialEq)]
pub struct Locus {
    /// Numeric LocusLink accession, e.g. `353`.
    pub id: u32,
    /// Official Hugo gene symbol, e.g. `APRT`.
    pub symbol: String,
    /// Gene name, e.g. `adenine phosphoribosyltransferase`.
    pub name: String,
    /// Chromosome, `1`..`22`, `X`, `Y`.
    pub chromosome: String,
    /// Cytogenetic location, e.g. `16q24`.
    pub location: String,
    /// Genomic start coordinate (basepairs) on the chromosome.
    pub position: u64,
    /// Index of the enzyme entry, for enzyme-coding genes.
    pub enzyme: Option<usize>,
    /// Indices of annotated GO terms.
    pub go_terms: Vec<usize>,
    /// Indices of associated OMIM entries.
    pub omim: Vec<usize>,
    /// Index of the UniGene cluster containing this locus.
    pub unigene: usize,
}

/// The complete ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct Universe {
    pub params: UniverseParams,
    pub go_terms: Vec<GoTerm>,
    pub enzymes: Vec<Enzyme>,
    pub interpro: Vec<InterProDomain>,
    pub omim: Vec<OmimEntry>,
    pub unigene: Vec<UnigeneCluster>,
    pub loci: Vec<Locus>,
    pub proteins: Vec<Protein>,
    pub probesets: Vec<ProbeSet>,
}

/// Syllables used to fabricate pronounceable names deterministically.
const SYLLABLES: [&str; 16] = [
    "ade", "nin", "phos", "pho", "ribo", "syl", "trans", "fer", "ase", "kin",
    "gen", "lac", "mut", "oxi", "dehy", "cyt",
];

fn fab_name(rng: &mut SmallRng, min_syl: usize, max_syl: usize) -> String {
    let n = rng.gen_range(min_syl..=max_syl);
    let mut s = String::new();
    for _ in 0..n {
        s.push_str(SYLLABLES[rng.gen_range(0..SYLLABLES.len())]);
    }
    s
}

fn fab_symbol(rng: &mut SmallRng, index: usize) -> String {
    let letters: Vec<char> = "ABCDEFGHKLMNPRSTUVWXYZ".chars().collect();
    let a = letters[rng.gen_range(0..letters.len())];
    let b = letters[rng.gen_range(0..letters.len())];
    let c = letters[rng.gen_range(0..letters.len())];
    format!("{a}{b}{c}{index}")
}

impl Universe {
    /// Generate a universe from parameters. Deterministic in
    /// `params.seed`.
    pub fn generate(params: UniverseParams) -> Universe {
        let mut rng = SmallRng::seed_from_u64(params.seed);
        let go_terms = gen_go(&mut rng, params.n_go_terms);
        let enzymes = gen_enzymes(&mut rng, params.n_enzymes);
        let interpro = gen_interpro(&mut rng, params.n_interpro);
        let (loci, unigene, omim) = gen_loci(&mut rng, &params, &go_terms, &enzymes);
        let proteins = gen_proteins(&mut rng, &params, &loci, &interpro);
        let probesets = gen_probesets(&mut rng, &params, &loci);
        Universe {
            params,
            go_terms,
            enzymes,
            interpro,
            omim,
            unigene,
            loci,
            proteins,
            probesets,
        }
    }

    /// The locus the paper uses as its running example (Figure 1 / Table
    /// 1): accession 353, symbol APRT. The generator pins locus index 0 to
    /// these values so examples and tests can reproduce the paper's rows.
    pub fn locus_353(&self) -> &Locus {
        &self.loci[0]
    }

    /// Indices of the GO namespace roots.
    pub fn go_roots(&self) -> [usize; 3] {
        [0, 1, 2]
    }
}

fn gen_go(rng: &mut SmallRng, n: usize) -> Vec<GoTerm> {
    let n = n.max(6);
    let mut terms: Vec<GoTerm> = Vec::with_capacity(n);
    // Terms 0..3 are the namespace roots.
    let root_names = ["biological_process", "molecular_function", "cellular_component"];
    for (ns, name) in root_names.iter().enumerate() {
        terms.push(GoTerm {
            acc: format!("GO:{:07}", 8150 + ns),
            name: (*name).to_owned(),
            namespace: ns,
            parents: Vec::new(),
        });
    }
    // Pin the paper's example term GO:0009116 "nucleoside metabolism" as a
    // biological_process child of the root.
    terms.push(GoTerm {
        acc: "GO:0009116".to_owned(),
        name: "nucleoside metabolism".to_owned(),
        namespace: 0,
        parents: vec![0],
    });
    for i in terms.len()..n {
        let namespace = rng.gen_range(0..3);
        // candidate parents: earlier terms of the same namespace
        let candidates: Vec<usize> = (0..i)
            .filter(|&j| terms[j].namespace == namespace)
            .collect();
        let mut parents = Vec::new();
        let n_parents = if candidates.len() > 1 && rng.gen_bool(0.15) {
            2
        } else {
            1
        };
        while parents.len() < n_parents {
            let p = candidates[rng.gen_range(0..candidates.len())];
            if !parents.contains(&p) {
                parents.push(p);
            }
        }
        terms.push(GoTerm {
            acc: format!("GO:{:07}", 10_000 + i),
            name: format!("{} {}", fab_name(rng, 2, 3), fab_name(rng, 2, 3)),
            namespace,
            parents,
        });
    }
    terms
}

fn gen_enzymes(rng: &mut SmallRng, n_leaves: usize) -> Vec<Enzyme> {
    // EC hierarchy: class.subclass.subsubclass.serial. Materialize the
    // internal nodes on demand.
    let mut enzymes: Vec<Enzyme> = Vec::new();
    let mut index: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    let ensure = |enzymes: &mut Vec<Enzyme>,
                      index: &mut std::collections::HashMap<String, usize>,
                      ec: String,
                      name: String,
                      parent: Option<usize>,
                      is_leaf: bool| {
        if let Some(&i) = index.get(&ec) {
            return i;
        }
        let i = enzymes.len();
        enzymes.push(Enzyme {
            ec: ec.clone(),
            name,
            parent,
            is_leaf,
        });
        index.insert(ec, i);
        i
    };
    // Pin the paper's 2.4.2.7 (adenine phosphoribosyltransferase).
    let c2 = ensure(&mut enzymes, &mut index, "2".into(), "Transferases".into(), None, false);
    let c24 = ensure(&mut enzymes, &mut index, "2.4".into(), "Glycosyltransferases".into(), Some(c2), false);
    let c242 = ensure(&mut enzymes, &mut index, "2.4.2".into(), "Pentosyltransferases".into(), Some(c24), false);
    ensure(
        &mut enzymes,
        &mut index,
        "2.4.2.7".into(),
        "adenine phosphoribosyltransferase".into(),
        Some(c242),
        true,
    );
    let mut serial = 1u32;
    while enzymes.iter().filter(|e| e.is_leaf).count() < n_leaves {
        let class = rng.gen_range(1..=6u32);
        let sub = rng.gen_range(1..=9u32);
        let subsub = rng.gen_range(1..=9u32);
        serial += 1;
        let class_name = match class {
            1 => "Oxidoreductases",
            2 => "Transferases",
            3 => "Hydrolases",
            4 => "Lyases",
            5 => "Isomerases",
            _ => "Ligases",
        };
        let ci = ensure(&mut enzymes, &mut index, class.to_string(), class_name.into(), None, false);
        let si = ensure(
            &mut enzymes,
            &mut index,
            format!("{class}.{sub}"),
            format!("{class_name} subclass {sub}"),
            Some(ci),
            false,
        );
        let ssi = ensure(
            &mut enzymes,
            &mut index,
            format!("{class}.{sub}.{subsub}"),
            format!("{class_name} sub-subclass {sub}.{subsub}"),
            Some(si),
            false,
        );
        let name = format!("{} {}", fab_name(rng, 2, 3), "ase");
        ensure(
            &mut enzymes,
            &mut index,
            format!("{class}.{sub}.{subsub}.{serial}"),
            name,
            Some(ssi),
            true,
        );
    }
    enzymes
}

fn gen_interpro(rng: &mut SmallRng, n: usize) -> Vec<InterProDomain> {
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let parent = if i > 0 && rng.gen_bool(0.3) {
            Some(rng.gen_range(0..i))
        } else {
            None
        };
        out.push(InterProDomain {
            acc: format!("IPR{:06}", 312 + i),
            name: format!("{} domain", fab_name(rng, 2, 4)),
            parent,
        });
    }
    out
}

fn gen_loci(
    rng: &mut SmallRng,
    params: &UniverseParams,
    go_terms: &[GoTerm],
    enzymes: &[Enzyme],
) -> (Vec<Locus>, Vec<UnigeneCluster>, Vec<OmimEntry>) {
    let chromosomes: Vec<String> = (1..=22u8)
        .map(|c| c.to_string())
        .chain(["X".to_owned(), "Y".to_owned()])
        .collect();
    let leaf_enzymes: Vec<usize> = enzymes
        .iter()
        .enumerate()
        .filter(|(_, e)| e.is_leaf)
        .map(|(i, _)| i)
        .collect();
    let ec_2427 = enzymes.iter().position(|e| e.ec == "2.4.2.7").unwrap();
    let go_9116 = go_terms.iter().position(|t| t.acc == "GO:0009116").unwrap();

    let mut loci = Vec::with_capacity(params.n_loci);
    let mut clusters: Vec<UnigeneCluster> = Vec::new();
    for i in 0..params.n_loci {
        let (id, symbol, name, chromosome, location) = if i == 0 {
            // the paper's running example, pinned
            (
                353,
                "APRT".to_owned(),
                "adenine phosphoribosyltransferase".to_owned(),
                "16".to_owned(),
                "16q24".to_owned(),
            )
        } else {
            let chrom = chromosomes[rng.gen_range(0..chromosomes.len())].clone();
            let arm = if rng.gen_bool(0.5) { 'p' } else { 'q' };
            let band = rng.gen_range(11..37);
            (
                1000 + i as u32 * 3 + rng.gen_range(0..2) as u32,
                fab_symbol(rng, i),
                format!("{} {}", fab_name(rng, 3, 5), fab_name(rng, 2, 4)),
                chrom.clone(),
                format!("{chrom}{arm}{band}"),
            )
        };
        let enzyme = if i == 0 {
            Some(ec_2427)
        } else if !leaf_enzymes.is_empty() && rng.gen_bool(0.15) {
            Some(leaf_enzymes[rng.gen_range(0..leaf_enzymes.len())])
        } else {
            None
        };
        let mut gos = Vec::new();
        if i == 0 {
            gos.push(go_9116);
        }
        let n_go = rng.gen_range(1..=5usize);
        // skip namespace roots (indices 0..3) as direct annotations
        while gos.len() < n_go && go_terms.len() > 4 {
            let t = rng.gen_range(3..go_terms.len());
            if !gos.contains(&t) {
                gos.push(t);
            }
        }
        // UniGene cluster: mostly 1:1, occasionally merge into previous
        let unigene = if i > 0 && rng.gen_bool(0.05) {
            let c = clusters.len() - 1;
            clusters[c].loci.push(i);
            c
        } else {
            clusters.push(UnigeneCluster {
                acc: format!("Hs.{}", 10_000 + clusters.len() * 7 + rng.gen_range(0..5)),
                title: name.clone(),
                loci: vec![i],
            });
            clusters.len() - 1
        };
        loci.push(Locus {
            id,
            symbol,
            name,
            chromosome,
            location,
            position: rng.gen_range(1_000_000..240_000_000),
            enzyme,
            go_terms: gos,
            omim: Vec::new(),
            unigene,
        });
    }

    // OMIM entries attach to loci afterwards so each entry knows its loci.
    let mut omim = Vec::with_capacity(params.n_omim);
    for j in 0..params.n_omim {
        let id = if j == 0 { 102_600 } else { 100_000 + j as u32 * 13 };
        let n_loci = rng.gen_range(1..=2usize);
        let mut entry_loci = Vec::new();
        if j == 0 {
            entry_loci.push(0); // APRT deficiency -> locus 353
        }
        while entry_loci.len() < n_loci {
            let l = rng.gen_range(0..loci.len());
            if !entry_loci.contains(&l) {
                entry_loci.push(l);
            }
        }
        for &l in &entry_loci {
            loci[l].omim.push(j);
        }
        omim.push(OmimEntry {
            id,
            title: format!("{} deficiency", fab_name(rng, 3, 4).to_uppercase()),
            loci: entry_loci,
        });
    }
    (loci, clusters, omim)
}

fn gen_proteins(
    rng: &mut SmallRng,
    params: &UniverseParams,
    loci: &[Locus],
    interpro: &[InterProDomain],
) -> Vec<Protein> {
    let mut out = Vec::new();
    for (i, locus) in loci.iter().enumerate() {
        let has_protein = i == 0 || rng.gen_bool(params.protein_fraction);
        if !has_protein {
            continue;
        }
        let acc = if i == 0 {
            "P07741".to_owned() // real APRT_HUMAN accession
        } else {
            format!("P{:05}", 10_000 + i * 3 + rng.gen_range(0..3))
        };
        let mut domains = Vec::new();
        if !interpro.is_empty() {
            let n = rng.gen_range(1..=3usize);
            while domains.len() < n {
                let d = rng.gen_range(0..interpro.len());
                if !domains.contains(&d) {
                    domains.push(d);
                }
            }
        }
        out.push(Protein {
            acc,
            entry_name: format!("{}_HUMAN", locus.symbol),
            locus: i,
            domains,
        });
    }
    out
}

fn gen_probesets(rng: &mut SmallRng, params: &UniverseParams, loci: &[Locus]) -> Vec<ProbeSet> {
    let mut out = Vec::new();
    let mut serial = 1000u32;
    for (i, locus) in loci.iter().enumerate() {
        let mut n = params.probesets_per_locus.floor() as usize;
        if rng.gen_bool(params.probesets_per_locus.fract()) {
            n += 1;
        }
        let n = n.max(usize::from(i == 0)); // locus 353 always on the chip
        for _ in 0..n {
            serial += rng.gen_range(1..5);
            out.push(ProbeSet {
                acc: format!("{serial}_at"),
                unigene: locus.unigene,
                // NetAffx publishes the locus link for ~60% of probe sets
                locus: rng.gen_bool(0.6).then_some(i),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Universe {
        Universe::generate(UniverseParams::tiny(7))
    }

    #[test]
    fn deterministic_in_seed() {
        let a = Universe::generate(UniverseParams::tiny(7));
        let b = Universe::generate(UniverseParams::tiny(7));
        assert_eq!(a, b);
        let c = Universe::generate(UniverseParams::tiny(8));
        assert_ne!(a, c);
    }

    #[test]
    fn paper_running_example_is_pinned() {
        let u = tiny();
        let l = u.locus_353();
        assert_eq!(l.id, 353);
        assert_eq!(l.symbol, "APRT");
        assert_eq!(l.name, "adenine phosphoribosyltransferase");
        assert_eq!(l.location, "16q24");
        assert_eq!(u.enzymes[l.enzyme.unwrap()].ec, "2.4.2.7");
        let go_accs: Vec<&str> = l.go_terms.iter().map(|&t| u.go_terms[t].acc.as_str()).collect();
        assert!(go_accs.contains(&"GO:0009116"));
        assert!(u.omim[0].loci.contains(&0));
        assert_eq!(u.omim[0].id, 102_600);
        assert!(u.proteins.iter().any(|p| p.acc == "P07741" && p.locus == 0));
        assert!(u.probesets.iter().any(|p| p.locus == Some(0) || u.unigene[p.unigene].loci.contains(&0)));
    }

    #[test]
    fn go_taxonomy_is_acyclic_with_namespace_roots() {
        let u = tiny();
        assert!(u.go_terms.len() >= 60);
        for (i, t) in u.go_terms.iter().enumerate() {
            for &p in &t.parents {
                assert!(p < i, "parents precede children: term {i} -> {p}");
                assert_eq!(u.go_terms[p].namespace, t.namespace);
            }
        }
        // exactly the three roots have no parents
        let roots: Vec<usize> = u
            .go_terms
            .iter()
            .enumerate()
            .filter(|(_, t)| t.parents.is_empty())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(roots, vec![0, 1, 2]);
    }

    #[test]
    fn enzyme_hierarchy_is_consistent() {
        let u = tiny();
        let leaves = u.enzymes.iter().filter(|e| e.is_leaf).count();
        assert!(leaves >= 25);
        for e in &u.enzymes {
            let dots = e.ec.matches('.').count();
            assert_eq!(e.is_leaf, dots == 3, "{} leaf flag", e.ec);
            match e.parent {
                Some(p) => {
                    let parent = &u.enzymes[p];
                    assert!(e.ec.starts_with(&format!("{}.", parent.ec)));
                }
                None => assert_eq!(dots, 0, "only top classes lack parents"),
            }
        }
        // no duplicate EC numbers
        let mut ecs: Vec<&str> = u.enzymes.iter().map(|e| e.ec.as_str()).collect();
        ecs.sort_unstable();
        let before = ecs.len();
        ecs.dedup();
        assert_eq!(before, ecs.len());
    }

    #[test]
    fn cross_references_are_in_range() {
        let u = tiny();
        for l in &u.loci {
            assert!(l.unigene < u.unigene.len());
            for &g in &l.go_terms {
                assert!(g < u.go_terms.len());
            }
            for &o in &l.omim {
                assert!(o < u.omim.len());
            }
            if let Some(e) = l.enzyme {
                assert!(u.enzymes[e].is_leaf);
            }
        }
        for p in &u.proteins {
            assert!(p.locus < u.loci.len());
            for &d in &p.domains {
                assert!(d < u.interpro.len());
            }
        }
        for ps in &u.probesets {
            assert!(ps.unigene < u.unigene.len());
            if let Some(l) = ps.locus {
                // the probe set's locus must live in the probe set's cluster
                assert!(u.unigene[ps.unigene].loci.contains(&l));
            }
        }
        // unigene membership is bidirectional
        for (ci, c) in u.unigene.iter().enumerate() {
            for &l in &c.loci {
                assert_eq!(u.loci[l].unigene, ci);
            }
        }
        // omim membership is bidirectional
        for (oi, o) in u.omim.iter().enumerate() {
            for &l in &o.loci {
                assert!(u.loci[l].omim.contains(&oi));
            }
        }
    }

    #[test]
    fn accessions_are_unique_per_collection() {
        let u = tiny();
        fn assert_unique<'a>(items: impl Iterator<Item = &'a str>, what: &str) {
            let mut v: Vec<&str> = items.collect();
            let before = v.len();
            v.sort_unstable();
            v.dedup();
            assert_eq!(before, v.len(), "{what} accessions unique");
        }
        assert_unique(u.go_terms.iter().map(|t| t.acc.as_str()), "GO");
        assert_unique(u.unigene.iter().map(|c| c.acc.as_str()), "UniGene");
        assert_unique(u.proteins.iter().map(|p| p.acc.as_str()), "SwissProt");
        assert_unique(u.probesets.iter().map(|p| p.acc.as_str()), "NetAffx");
        assert_unique(u.interpro.iter().map(|d| d.acc.as_str()), "InterPro");
        let mut ids: Vec<u32> = u.loci.iter().map(|l| l.id).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(before, ids.len(), "locus ids unique");
        let mut oids: Vec<u32> = u.omim.iter().map(|o| o.id).collect();
        oids.sort_unstable();
        let obefore = oids.len();
        oids.dedup();
        assert_eq!(obefore, oids.len(), "omim ids unique");
    }

    #[test]
    fn scaled_params() {
        let p = UniverseParams::default().scaled(2.0);
        assert_eq!(p.n_loci, 4_000);
        let p = UniverseParams::default().scaled(0.001);
        assert!(p.n_loci >= 8, "floor prevents degenerate universes");
    }
}
