//! Property-based crash testing: arbitrary workload shapes (batch sizes,
//! checkpoint cadence, group commit) crossed with arbitrary power-cut
//! points must always recover to a consistent committed prefix and
//! converge on resume.

use proptest::prelude::*;
use relstore::schema::{Column, Schema};
use relstore::value::{Value, ValueType};
use relstore::vfs::{FaultPlan, FaultVfs, Vfs};
use relstore::{Database, PoolConfig};
use std::path::Path;
use std::sync::Arc;

fn schema() -> Schema {
    Schema::builder("t")
        .column(Column::new("id", ValueType::Int))
        .primary_key(&["id"])
        .build()
        .unwrap()
}

fn open(vfs: &FaultVfs) -> relstore::error::StoreResult<Database> {
    let arc: Arc<dyn Vfs> = Arc::new(vfs.clone());
    let mut db = Database::open_with_vfs(arc, Path::new("/db"))?;
    db.ensure_table(schema())?;
    Ok(db)
}

/// Paged open with 128-byte pages so even tiny workloads span page
/// boundaries; `pool_pages` down to 1 forces an eviction writeback on
/// nearly every touch.
fn open_paged(vfs: &FaultVfs, pool_pages: usize) -> relstore::error::StoreResult<Database> {
    let arc: Arc<dyn Vfs> = Arc::new(vfs.clone());
    let config = PoolConfig {
        page_bytes: 128,
        pool_pages,
    };
    let mut db = Database::open_paged_with_vfs(arc, Path::new("/db"), config)?;
    db.ensure_table(schema())?;
    Ok(db)
}

/// One crash-and-converge check: run the workload with a power cut at
/// `crash_at`, reboot, and verify the committed-prefix and convergence
/// invariants. `open` decides resident vs paged (and the pool size).
fn check_crash_and_converge(
    open: &dyn Fn(&FaultVfs) -> relstore::error::StoreResult<Database>,
    batches: &[usize],
    ckpt_every: usize,
    group_commit: bool,
    crash_at: u64,
    torn_seed: u64,
) {
    let vfs = FaultVfs::new();
    vfs.set_plan(FaultPlan {
        crash_at: Some(crash_at),
        fail_at: None,
        torn_seed,
    });
    let outcome = open(&vfs).and_then(|mut db| run(&mut db, batches, ckpt_every, group_commit));
    assert!(outcome.is_err(), "crash_at {crash_at} did not fire");
    vfs.reboot();

    let db = open(&vfs)
        .unwrap_or_else(|e| panic!("crash_at {crash_at}: reopen failed: {e}"));
    let got = sorted_ids(&db);
    assert_eq!(
        got,
        (0..got.len() as i64).collect::<Vec<_>>(),
        "crash_at {crash_at}: not a contiguous prefix"
    );
    let boundaries = prefix_sums(batches);
    if !group_commit {
        assert!(
            boundaries.contains(&got.len()),
            "crash_at {crash_at}: {} rows is not a batch boundary of {batches:?}",
            got.len()
        );
    } else {
        assert!(got.len() <= *boundaries.last().unwrap());
    }
    drop(db);

    let expected: Vec<i64> = (0..*boundaries.last().unwrap() as i64).collect();
    let mut db = open(&vfs).unwrap();
    run(&mut db, batches, ckpt_every, group_commit).unwrap();
    drop(db);
    let db = open(&vfs).unwrap();
    assert_eq!(sorted_ids(&db), expected, "crash_at {crash_at}: did not converge");
}

/// Run the workload described by `batches` (sizes of consecutive committed
/// transactions over ids 0..sum) from wherever the store currently is,
/// checkpointing after every `ckpt_every`-th batch.
fn run(
    db: &mut Database,
    batches: &[usize],
    ckpt_every: usize,
    group_commit: bool,
) -> relstore::error::StoreResult<()> {
    db.set_sync_on_commit(!group_commit);
    let mut next = db.table("t")?.len() as i64;
    let boundaries = prefix_sums(batches);
    for i in 0..batches.len() {
        let end = boundaries[i + 1] as i64;
        if next >= end {
            continue; // batch already recovered
        }
        db.with_txn(|txn| {
            for id in next..end {
                txn.insert("t", vec![Value::Int(id)])?;
            }
            Ok(())
        })?;
        next = end;
        if group_commit {
            db.sync_wal()?;
        }
        if (i + 1) % ckpt_every == 0 {
            db.checkpoint()?;
        }
    }
    db.checkpoint()?;
    Ok(())
}

fn prefix_sums(batches: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(batches.len() + 1);
    let mut acc = 0;
    out.push(0);
    for &b in batches {
        acc += b;
        out.push(acc);
    }
    out
}

fn sorted_ids(db: &Database) -> Vec<i64> {
    let mut out: Vec<i64> = db
        .table("t")
        .unwrap()
        .scan()
        .map(|(_, row)| match row.get(0) {
            Value::Int(i) => *i,
            other => panic!("unexpected value {other:?}"),
        })
        .collect();
    out.sort_unstable();
    out
}

/// Deterministic spot-check of the same property over a fixed grid, so the
/// invariant is exercised even where proptest shrinks its case count.
#[test]
fn fixed_grid_crash_points_recover_and_converge() {
    let configs: &[(&[usize], usize, bool)] = &[
        (&[3, 1, 5, 2], 2, false),
        (&[1, 1, 1, 1, 1, 1], 3, true),
        (&[7, 2], 1, true),
        (&[4], 4, false),
    ];
    for &(batches, ckpt_every, group_commit) in configs {
        let reference = FaultVfs::new();
        {
            let mut db = open(&reference).unwrap();
            run(&mut db, batches, ckpt_every, group_commit).unwrap();
        }
        let total_ops = reference.op_count();
        let expected: Vec<i64> =
            (0..*prefix_sums(batches).last().unwrap() as i64).collect();
        for crash_at in (1..=total_ops).step_by(2) {
            let vfs = FaultVfs::new();
            vfs.set_plan(FaultPlan {
                crash_at: Some(crash_at),
                fail_at: None,
                torn_seed: crash_at ^ 0xdead_beef,
            });
            let outcome =
                open(&vfs).and_then(|mut db| run(&mut db, batches, ckpt_every, group_commit));
            assert!(outcome.is_err(), "crash_at {crash_at} did not fire");
            vfs.reboot();

            let db = open(&vfs).unwrap();
            let got = sorted_ids(&db);
            assert_eq!(got, (0..got.len() as i64).collect::<Vec<_>>());
            if !group_commit {
                assert!(
                    prefix_sums(batches).contains(&got.len()),
                    "crash_at {crash_at}: {} rows is not a batch boundary of {batches:?}",
                    got.len()
                );
            }
            drop(db);

            let mut db = open(&vfs).unwrap();
            run(&mut db, batches, ckpt_every, group_commit).unwrap();
            drop(db);
            let db = open(&vfs).unwrap();
            assert_eq!(sorted_ids(&db), expected, "crash_at {crash_at}");
        }
    }
}

/// The fixed grid against paged storage: every crash point now lands
/// among heap appends, eviction writebacks, and page-directory swaps, and
/// the single-page pool configurations force writeback on nearly every
/// page touch.
#[test]
fn fixed_grid_crash_points_recover_and_converge_paged() {
    let configs: &[(&[usize], usize, bool, usize)] = &[
        (&[3, 1, 5, 2], 2, false, 1),
        (&[1, 1, 1, 1, 1, 1], 3, true, 2),
        (&[7, 2], 1, true, 8),
        (&[4], 4, false, 1),
    ];
    for &(batches, ckpt_every, group_commit, pool_pages) in configs {
        let reference = FaultVfs::new();
        {
            let mut db = open_paged(&reference, pool_pages).unwrap();
            run(&mut db, batches, ckpt_every, group_commit).unwrap();
        }
        let total_ops = reference.op_count();
        let opener =
            |vfs: &FaultVfs| -> relstore::error::StoreResult<Database> { open_paged(vfs, pool_pages) };
        // Paged I/O multiplies the op count; sample evenly instead of
        // sweeping every point so the grid stays fast.
        let step = (total_ops / 48).max(1) as usize;
        for crash_at in (1..=total_ops).step_by(step) {
            check_crash_and_converge(
                &opener,
                batches,
                ckpt_every,
                group_commit,
                crash_at,
                crash_at ^ 0xdead_beef,
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_crash_points_recover_and_converge(
        batches in proptest::collection::vec(1usize..8, 1..10),
        ckpt_every in 1usize..5,
        group_commit in any::<bool>(),
        crash_frac in 0.0f64..1.0,
        torn_seed in any::<u64>(),
    ) {
        // Fault-free run to learn the op count and reference state.
        let reference = FaultVfs::new();
        {
            let mut db = open(&reference).unwrap();
            run(&mut db, &batches, ckpt_every, group_commit).unwrap();
        }
        let total_ops = reference.op_count();
        let expected: Vec<i64> =
            (0..*prefix_sums(&batches).last().unwrap() as i64).collect();

        // Map the fraction onto a concrete op index.
        let crash_at = 1 + (crash_frac * (total_ops - 1) as f64) as u64;
        let vfs = FaultVfs::new();
        vfs.set_plan(FaultPlan {
            crash_at: Some(crash_at),
            fail_at: None,
            torn_seed,
        });
        let outcome = open(&vfs).and_then(|mut db| run(&mut db, &batches, ckpt_every, group_commit));
        prop_assert!(outcome.is_err());
        vfs.reboot();

        // Committed prefix: whatever survived is ids 0..n where n is a
        // batch boundary (with per-commit sync) or at most the full set
        // (group commit may persist several batches per sync).
        let db = open(&vfs).unwrap();
        let got = sorted_ids(&db);
        prop_assert_eq!(&got, &(0..got.len() as i64).collect::<Vec<_>>());
        let boundaries = prefix_sums(&batches);
        if !group_commit {
            prop_assert!(
                boundaries.contains(&got.len()),
                "{} rows is not a batch boundary of {:?}", got.len(), batches
            );
        } else {
            prop_assert!(got.len() <= *boundaries.last().unwrap());
        }
        drop(db);

        // Convergence: resume and compare against the fault-free state.
        let mut db = open(&vfs).unwrap();
        run(&mut db, &batches, ckpt_every, group_commit).unwrap();
        drop(db);
        let db = open(&vfs).unwrap();
        prop_assert_eq!(sorted_ids(&db), expected);
    }

    /// The same property over paged storage with a random pool size,
    /// including a single-page pool (maximal eviction pressure — every
    /// page touch can force an unsynced writeback that the power cut then
    /// tears).
    #[test]
    fn random_crash_points_recover_and_converge_paged(
        batches in proptest::collection::vec(1usize..8, 1..10),
        ckpt_every in 1usize..5,
        group_commit in any::<bool>(),
        crash_frac in 0.0f64..1.0,
        torn_seed in any::<u64>(),
        pool_pages in proptest::sample::select(vec![1usize, 2, 8]),
    ) {
        let reference = FaultVfs::new();
        {
            let mut db = open_paged(&reference, pool_pages).unwrap();
            run(&mut db, &batches, ckpt_every, group_commit).unwrap();
        }
        let total_ops = reference.op_count();
        let crash_at = 1 + (crash_frac * (total_ops - 1) as f64) as u64;
        let opener = |vfs: &FaultVfs| -> relstore::error::StoreResult<Database> {
            open_paged(vfs, pool_pages)
        };
        check_crash_and_converge(
            &opener,
            &batches,
            ckpt_every,
            group_commit,
            crash_at,
            torn_seed,
        );
    }
}
