//! Recovery-degradation matrix: damaged snapshot and WAL files must never
//! prevent `Database::open` from producing a consistent state. Open falls
//! back to the newest *valid* snapshot plus the valid committed WAL
//! prefix, and the [`RecoveryReport`](relstore::RecoveryReport) records
//! every degradation it performed.

use relstore::db::{SNAPSHOT_FILE, SNAPSHOT_PREV_FILE, WAL_FILE};
use relstore::schema::{Column, Schema};
use relstore::value::{Value, ValueType};
use relstore::{Database, SnapshotSource};
use std::fs;
use std::path::PathBuf;

fn schema() -> Schema {
    Schema::builder("t")
        .column(Column::new("id", ValueType::Int))
        .primary_key(&["id"])
        .build()
        .unwrap()
}

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("relstore-recovery-tests")
        .join(format!("{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn insert_range(db: &mut Database, range: std::ops::Range<i64>) {
    db.with_txn(|txn| {
        for i in range.clone() {
            txn.insert("t", vec![Value::Int(i)])?;
        }
        Ok(())
    })
    .unwrap();
}

fn ids(db: &Database) -> Vec<i64> {
    let mut out: Vec<i64> = db
        .table("t")
        .unwrap()
        .scan()
        .map(|(_, row)| match row.get(0) {
            Value::Int(i) => *i,
            other => panic!("unexpected value {other:?}"),
        })
        .collect();
    out.sort_unstable();
    out
}

/// Build a directory with two checkpoints and a live WAL tail:
/// `snapshot.prev` holds 0..10 (epoch 1), `snapshot.bin` holds 0..20
/// (epoch 2), and the WAL (epoch 2) commits 20..30.
fn seeded_dir(name: &str) -> PathBuf {
    let dir = test_dir(name);
    let mut db = Database::open(&dir).unwrap();
    db.create_table(schema()).unwrap();
    insert_range(&mut db, 0..10);
    db.checkpoint().unwrap();
    insert_range(&mut db, 10..20);
    db.checkpoint().unwrap();
    insert_range(&mut db, 20..30);
    drop(db);
    assert!(dir.join(SNAPSHOT_PREV_FILE).exists());
    dir
}

/// Every way of damaging the primary snapshot must degrade identically:
/// fall back to `snapshot.prev`. The live WAL belongs to the newer epoch,
/// so it is recognized as inconsistent with the fallback and discarded —
/// recovery yields the consistent epoch-1 state rather than an error.
#[test]
fn corrupt_primary_snapshot_falls_back_to_previous() {
    type Corruptor = fn(&mut Vec<u8>);
    let cases: [(&str, Corruptor); 4] = [
        ("truncated-body", |data| data.truncate(data.len() / 2)),
        ("flipped-crc", |data| data[8] ^= 0xff),
        ("bad-magic", |data| data[0] = b'X'),
        ("bad-version", |data| data[4] = 99),
    ];
    for (name, corrupt) in cases {
        let dir = seeded_dir(&format!("snap-{name}"));
        let path = dir.join(SNAPSHOT_FILE);
        let mut data = fs::read(&path).unwrap();
        corrupt(&mut data);
        fs::write(&path, &data).unwrap();

        let db = Database::open(&dir).unwrap();
        let report = db.recovery_report().unwrap().clone();
        assert_eq!(report.snapshot, SnapshotSource::Fallback, "case {name}");
        assert_eq!(report.epoch, 1, "case {name}");
        assert!(report.wal_stale, "case {name}");
        assert_eq!(ids(&db), (0..10).collect::<Vec<_>>(), "case {name}");
        drop(db);

        // The degraded open repaired the directory: a second open is clean.
        let db = Database::open(&dir).unwrap();
        let report = db.recovery_report().unwrap();
        assert!(!report.wal_stale, "case {name} reopen");
        assert_eq!(ids(&db), (0..10).collect::<Vec<_>>(), "case {name} reopen");
        let _ = fs::remove_dir_all(&dir);
    }
}

/// With both snapshot copies damaged the database still opens — as empty,
/// the only consistent state left — instead of erroring out.
#[test]
fn both_snapshots_corrupt_degrades_to_empty() {
    let dir = seeded_dir("both-bad");
    for file in [SNAPSHOT_FILE, SNAPSHOT_PREV_FILE] {
        let path = dir.join(file);
        let mut data = fs::read(&path).unwrap();
        let n = data.len();
        data[n / 2] ^= 0xff;
        fs::write(&path, &data).unwrap();
    }
    let db = Database::open(&dir).unwrap();
    let report = db.recovery_report().unwrap();
    assert_eq!(report.snapshot, SnapshotSource::None);
    assert_eq!(report.epoch, 0);
    assert!(report.wal_stale);
    assert!(db.table("t").is_err(), "no table survives a total wipe");
    let _ = fs::remove_dir_all(&dir);
}

/// Crash window of the checkpoint protocol: after `snapshot.bin` was
/// renamed to `snapshot.prev` but before the new snapshot landed. The
/// primary is missing, the WAL still carries the fallback's epoch, so its
/// committed transactions replay on top of the fallback — nothing is lost.
#[test]
fn missing_primary_replays_wal_onto_fallback() {
    let dir = test_dir("missing-primary");
    let mut db = Database::open(&dir).unwrap();
    db.create_table(schema()).unwrap();
    insert_range(&mut db, 0..10);
    db.checkpoint().unwrap(); // epoch 1
    insert_range(&mut db, 10..20); // WAL, epoch 1
    drop(db);
    // Simulate the interrupted second checkpoint.
    fs::rename(dir.join(SNAPSHOT_FILE), dir.join(SNAPSHOT_PREV_FILE)).unwrap();

    let db = Database::open(&dir).unwrap();
    let report = db.recovery_report().unwrap();
    assert_eq!(report.snapshot, SnapshotSource::Fallback);
    assert_eq!(report.epoch, 1);
    assert!(!report.wal_stale);
    assert!(report.wal_txns >= 1);
    assert_eq!(ids(&db), (0..20).collect::<Vec<_>>());
    let _ = fs::remove_dir_all(&dir);
}

/// The same crash window combined with a torn WAL tail: the committed
/// prefix replays, the torn suffix is truncated and reported.
#[test]
fn fallback_snapshot_with_torn_wal_keeps_committed_prefix() {
    let dir = test_dir("fallback-torn");
    let mut db = Database::open(&dir).unwrap();
    db.create_table(schema()).unwrap();
    insert_range(&mut db, 0..10);
    db.checkpoint().unwrap(); // epoch 1
    insert_range(&mut db, 10..20); // committed, epoch 1
    insert_range(&mut db, 20..30); // committed, epoch 1 — will be torn
    drop(db);
    fs::rename(dir.join(SNAPSHOT_FILE), dir.join(SNAPSHOT_PREV_FILE)).unwrap();
    let wal_path = dir.join(WAL_FILE);
    let mut wal = fs::read(&wal_path).unwrap();
    wal.truncate(wal.len() - 5); // tear the final commit frame
    fs::write(&wal_path, &wal).unwrap();

    let db = Database::open(&dir).unwrap();
    let report = db.recovery_report().unwrap();
    assert_eq!(report.snapshot, SnapshotSource::Fallback);
    assert!(!report.wal_stale);
    assert!(report.wal_torn_at.is_some());
    // txn 20..30 lost its commit marker: committed prefix only.
    assert_eq!(ids(&db), (0..20).collect::<Vec<_>>());
    let _ = fs::remove_dir_all(&dir);
}

/// Random byte flips anywhere in the WAL never break open: recovery keeps
/// a prefix of the committed transactions (the CRC catches the damage) and
/// the store stays internally consistent.
#[test]
fn wal_bitflips_degrade_to_a_committed_prefix() {
    for seed in 0..8u64 {
        let dir = test_dir(&format!("wal-flip-{seed}"));
        let mut db = Database::open(&dir).unwrap();
        db.create_table(schema()).unwrap();
        db.checkpoint().unwrap(); // table creation is durable via snapshot
        for batch in 0..6 {
            insert_range(&mut db, batch * 5..(batch + 1) * 5);
        }
        drop(db);
        let wal_path = dir.join(WAL_FILE);
        let mut wal = fs::read(&wal_path).unwrap();
        // deterministic pseudo-random flip position
        let pos = (seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(12345) as usize)
            % wal.len();
        wal[pos] ^= 0x40;
        fs::write(&wal_path, &wal).unwrap();

        let db = Database::open(&dir).unwrap();
        let report = db.recovery_report().unwrap();
        let got = ids(&db);
        // a prefix of whole batches: length divisible by 5, contiguous 0..n
        assert!(report.wal_txns <= 6, "seed {seed}");
        assert_eq!(got.len() % 5, 0, "seed {seed}: {got:?}");
        assert_eq!(got, (0..got.len() as i64).collect::<Vec<_>>(), "seed {seed}");
        let _ = fs::remove_dir_all(&dir);
    }
}
