//! Paged ≡ resident equivalence: a database whose tables live in slotted
//! heap pages behind a buffer pool must be observationally identical to a
//! resident one for any workload, any pool size (down to a single page),
//! any checkpoint cadence, and across reopen and compaction. Both sides
//! run over an in-memory [`FaultVfs`] with no faults planned, so the
//! comparison is deterministic and touches no real disk.

use proptest::prelude::*;
use relstore::predicate::Predicate;
use relstore::row::RowId;
use relstore::schema::{Column, Schema};
use relstore::value::{Value, ValueType};
use relstore::vfs::{FaultVfs, Vfs};
use relstore::{Database, PoolConfig};
use std::path::Path;
use std::sync::Arc;

fn schema() -> Schema {
    Schema::builder("t")
        .column(Column::new("id", ValueType::Int))
        .column(Column::new("grp", ValueType::Int))
        .column(Column::nullable("txt", ValueType::Text))
        .primary_key(&["id"])
        .index("by_grp", &["grp"])
        .build()
        .unwrap()
}

fn dyn_vfs(vfs: &FaultVfs) -> Arc<dyn Vfs> {
    Arc::new(vfs.clone())
}

fn open_resident(vfs: &FaultVfs) -> Database {
    let mut db = Database::open_with_vfs(dyn_vfs(vfs), Path::new("/db")).unwrap();
    db.ensure_table(schema()).unwrap();
    db
}

fn open_paged(vfs: &FaultVfs, pool_pages: usize) -> Database {
    let config = PoolConfig {
        page_bytes: 256,
        pool_pages,
    };
    let mut db = Database::open_paged_with_vfs(dyn_vfs(vfs), Path::new("/db"), config).unwrap();
    db.ensure_table(schema()).unwrap();
    db
}

/// One step of a randomized workload, applied to both databases.
#[derive(Debug, Clone)]
enum Op {
    Insert(i64, i64, Option<String>),
    Delete(usize),
    Update(usize, i64, Option<String>),
    Checkpoint,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<i64>(), 0i64..10, proptest::option::of("[a-z]{0,6}"))
            .prop_map(|(id, g, t)| Op::Insert(id, g, t)),
        1 => (0usize..64).prop_map(Op::Delete),
        2 => (0usize..64, 0i64..10, proptest::option::of("[a-z]{0,6}"))
            .prop_map(|(i, g, t)| Op::Update(i, g, t)),
        1 => Just(Op::Checkpoint),
    ]
}

/// Apply `ops` to both databases, asserting every step has the same
/// outcome (same row ids assigned, same errors surfaced).
fn apply_ops(resident: &mut Database, paged: &mut Database, ops: &[Op]) {
    let mut live: Vec<RowId> = Vec::new();
    for op in ops {
        match op {
            Op::Insert(id, g, t) => {
                let row = vec![
                    Value::Int(*id),
                    Value::Int(*g),
                    t.clone().map(Value::text).unwrap_or(Value::Null),
                ];
                let a = resident.with_txn(|txn| txn.insert("t", row.clone()));
                let b = paged.with_txn(|txn| txn.insert("t", row));
                match (a, b) {
                    (Ok(ra), Ok(rb)) => {
                        assert_eq!(ra, rb, "diverging row ids for insert {id}");
                        live.push(ra);
                    }
                    (Err(_), Err(_)) => {}
                    (a, b) => panic!("diverging insert outcome: {a:?} vs {b:?}"),
                }
            }
            Op::Delete(i) => {
                if !live.is_empty() {
                    let rid = live.remove(i % live.len());
                    resident.with_txn(|txn| txn.delete("t", rid)).unwrap();
                    paged.with_txn(|txn| txn.delete("t", rid)).unwrap();
                }
            }
            Op::Update(i, g, t) => {
                if !live.is_empty() {
                    let rid = live[i % live.len()];
                    let old_id = resident.table("t").unwrap().get(rid).unwrap().get(0).clone();
                    let row = vec![
                        old_id,
                        Value::Int(*g),
                        t.clone().map(Value::text).unwrap_or(Value::Null),
                    ];
                    resident
                        .with_txn(|txn| txn.update("t", rid, row.clone()))
                        .unwrap();
                    paged.with_txn(|txn| txn.update("t", rid, row)).unwrap();
                }
            }
            Op::Checkpoint => {
                resident.checkpoint().unwrap();
                paged.checkpoint().unwrap();
            }
        }
    }
}

/// Full observational comparison: row count, id allocation, every live
/// row by id, scan order, and index-served selects.
fn assert_same(resident: &Database, paged: &Database, context: &str) {
    let rt = resident.table("t").unwrap();
    let pt = paged.table("t").unwrap();
    assert_eq!(rt.len(), pt.len(), "{context}: row count");
    assert_eq!(rt.next_row_id(), pt.next_row_id(), "{context}: id allocation");
    let r_rows: Vec<_> = rt.scan().collect();
    let p_rows: Vec<_> = pt.scan().collect();
    assert_eq!(r_rows, p_rows, "{context}: scan");
    for (rid, row) in &r_rows {
        assert_eq!(
            &pt.get(*rid).unwrap(),
            row,
            "{context}: point lookup of {rid:?}"
        );
    }
    for g in 0..10 {
        let p = Predicate::eq("grp", Value::Int(g));
        assert_eq!(
            rt.select(&p).unwrap(),
            pt.select(&p).unwrap(),
            "{context}: index select grp={g}"
        );
    }
}

/// Run one equivalence case end-to-end: apply the workload to both
/// stores, compare, then checkpoint + reopen the paged side (possibly
/// with a different pool size) and compare again, then compact both and
/// compare a third time.
fn check_equivalence(ops: &[Op], pool_pages: usize, reopen_pool_pages: usize) {
    let r_vfs = FaultVfs::new();
    let p_vfs = FaultVfs::new();
    let mut resident = open_resident(&r_vfs);
    let mut paged = open_paged(&p_vfs, pool_pages);
    apply_ops(&mut resident, &mut paged, ops);
    assert_same(&resident, &paged, "after workload");

    // Durability round-trip: both sides checkpoint, reopen, and still
    // agree — the paged side possibly under a different pool size, which
    // must change performance only, never contents.
    resident.checkpoint().unwrap();
    paged.checkpoint().unwrap();
    drop(resident);
    drop(paged);
    let resident = open_resident(&r_vfs);
    let mut paged = open_paged(&p_vfs, reopen_pool_pages);
    assert_same(&resident, &paged, "after reopen");

    // Compaction rewrites the heap; contents must be untouched.
    paged.compact().unwrap();
    assert_same(&resident, &paged, "after compact");
}

/// Deterministic spot-check so the equivalence is exercised even where
/// proptest cannot run (the offline check environment stubs it out).
#[test]
fn fixed_workloads_paged_equals_resident() {
    let mut ops = Vec::new();
    for i in 0..120i64 {
        ops.push(Op::Insert(i, i % 10, (i % 3 == 0).then(|| format!("row-{i}"))));
        if i % 17 == 0 {
            ops.push(Op::Checkpoint);
        }
        if i % 5 == 0 {
            ops.push(Op::Update(i as usize / 2, (i + 3) % 10, Some("upd".into())));
        }
        if i % 7 == 0 {
            ops.push(Op::Delete(i as usize / 3));
        }
    }
    // duplicate-PK inserts must fail identically on both sides
    ops.push(Op::Insert(3, 0, None));
    for &(pool, reopen_pool) in &[(1usize, 1usize), (1, 8), (2, 2), (8, 1), (64, 64)] {
        check_equivalence(&ops, pool, reopen_pool);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random workloads, random pool sizes (including a single-page
    /// pool), random reopen pool size: paged and resident stores must
    /// stay observationally identical through workload, reopen, and
    /// compaction.
    #[test]
    fn random_workloads_paged_equals_resident(
        ops in proptest::collection::vec(arb_op(), 0..120),
        pool_pages in proptest::sample::select(vec![1usize, 2, 8]),
        reopen_pool_pages in proptest::sample::select(vec![1usize, 2, 8]),
    ) {
        check_equivalence(&ops, pool_pages, reopen_pool_pages);
    }
}
