//! Property-based tests for the storage engine: codec round-trips,
//! index/scan equivalence, join-operator agreement, and durability.

use proptest::prelude::*;
use relstore::codec;
use relstore::db::Database;
use relstore::join::{hash_join, left_outer_hash_join, merge_join};
use relstore::predicate::Predicate;
use relstore::row::Row;
use relstore::schema::{Column, Schema};
use relstore::table::Table;
use relstore::value::{Value, ValueType};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        "[a-zA-Z0-9:_.-]{0,24}".prop_map(Value::Text),
        proptest::collection::vec(any::<u8>(), 0..32).prop_map(Value::Bytes),
    ]
}

fn arb_row() -> impl Strategy<Value = Vec<Value>> {
    proptest::collection::vec(arb_value(), 0..8)
}

proptest! {
    #[test]
    fn codec_value_roundtrip(v in arb_value()) {
        let mut buf = bytes::BytesMut::new();
        codec::put_value(&mut buf, &v);
        let mut b = buf.freeze();
        let back = codec::get_value(&mut b).unwrap();
        prop_assert_eq!(back, v);
        prop_assert_eq!(b.len(), 0);
    }

    #[test]
    fn codec_row_roundtrip(row in arb_row()) {
        let mut buf = bytes::BytesMut::new();
        codec::put_row(&mut buf, &row);
        let mut b = buf.freeze();
        let back = codec::get_row(&mut b).unwrap();
        prop_assert_eq!(back, row);
    }

    #[test]
    fn codec_rejects_random_garbage_without_panicking(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        // must never panic; errors are fine
        let mut b = bytes::Bytes::from(data);
        let _ = codec::get_row(&mut b);
    }

    #[test]
    fn value_ordering_is_total_and_consistent(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering;
        // antisymmetry
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        // transitivity (spot form): if a<=b and b<=c then a<=c
        if a.cmp(&b) != Ordering::Greater && b.cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.cmp(&c), Ordering::Greater);
        }
    }
}

fn test_schema() -> Schema {
    Schema::builder("t")
        .column(Column::new("id", ValueType::Int))
        .column(Column::new("grp", ValueType::Int))
        .column(Column::nullable("txt", ValueType::Text))
        .primary_key(&["id"])
        .index("by_grp", &["grp"])
        .build()
        .unwrap()
}

/// A randomized op sequence applied both to a Table and a Vec mirror.
#[derive(Debug, Clone)]
enum Op {
    Insert(i64, i64, Option<String>),
    Delete(usize),
    Update(usize, i64, Option<String>),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<i64>(), 0i64..10, proptest::option::of("[a-z]{0,6}"))
            .prop_map(|(id, g, t)| Op::Insert(id, g, t)),
        (0usize..64).prop_map(Op::Delete),
        (0usize..64, 0i64..10, proptest::option::of("[a-z]{0,6}"))
            .prop_map(|(i, g, t)| Op::Update(i, g, t)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After any op sequence, an index-served select returns exactly the
    /// rows a full scan filter would.
    #[test]
    fn index_select_equals_scan(ops in proptest::collection::vec(arb_op(), 0..80)) {
        let mut table = Table::new(test_schema());
        let mut live: Vec<relstore::row::RowId> = Vec::new();
        for op in ops {
            match op {
                Op::Insert(id, g, t) => {
                    let row = vec![
                        Value::Int(id),
                        Value::Int(g),
                        t.map(Value::text).unwrap_or(Value::Null),
                    ];
                    if let Ok(rid) = table.insert(row) {
                        live.push(rid);
                    }
                }
                Op::Delete(i) => {
                    if !live.is_empty() {
                        let rid = live.remove(i % live.len());
                        table.delete(rid).unwrap();
                    }
                }
                Op::Update(i, g, t) => {
                    if !live.is_empty() {
                        let rid = live[i % live.len()];
                        let old_id = table.get(rid).unwrap().get(0).clone();
                        let row = vec![
                            old_id,
                            Value::Int(g),
                            t.map(Value::text).unwrap_or(Value::Null),
                        ];
                        table.update(rid, row).unwrap();
                    }
                }
            }
        }
        for g in 0..10 {
            let p = Predicate::eq("grp", Value::Int(g));
            let via_index = table.select(&p).unwrap();
            let bound = p.bind(table.schema()).unwrap();
            let via_scan: Vec<Row> = table
                .scan()
                .filter(|(_, r)| bound.matches(r.values()))
                .map(|(_, r)| r.clone())
                .collect();
            prop_assert_eq!(via_index, via_scan);
        }
    }

    /// Range predicates served by an ordered index agree with a full scan
    /// for arbitrary data and arbitrary bounds.
    #[test]
    fn range_select_equals_scan(
        rows in proptest::collection::vec((any::<i64>(), -50i64..50), 0..120),
        lo in -60i64..60,
        width in 0i64..80,
    ) {
        let schema = Schema::builder("r")
            .column(Column::new("id", ValueType::Int))
            .column(Column::new("v", ValueType::Int))
            .primary_key(&["id"])
            .index("by_v", &["v"])
            .build()
            .unwrap();
        let mut table = Table::new(schema);
        for (i, (_, v)) in rows.iter().enumerate() {
            table.insert(vec![Value::Int(i as i64), Value::Int(*v)]).unwrap();
        }
        let hi = lo + width;
        use relstore::predicate::CmpOp;
        let p = Predicate::cmp("v", CmpOp::Ge, Value::Int(lo))
            .and(Predicate::cmp("v", CmpOp::Lt, Value::Int(hi)));
        let via_index = table.select(&p).unwrap();
        let bound = p.bind(table.schema()).unwrap();
        let via_scan: Vec<Row> = table
            .scan()
            .filter(|(_, r)| bound.matches(r.values()))
            .map(|(_, r)| r.clone())
            .collect();
        prop_assert_eq!(via_index, via_scan);
    }

    /// Snapshot encode/decode preserves live rows, ids, and index behaviour.
    #[test]
    fn snapshot_roundtrip(ops in proptest::collection::vec(arb_op(), 0..60)) {
        let mut table = Table::new(test_schema());
        let mut live: Vec<relstore::row::RowId> = Vec::new();
        for op in ops {
            if let Op::Insert(id, g, t) = op {
                let row = vec![
                    Value::Int(id),
                    Value::Int(g),
                    t.map(Value::text).unwrap_or(Value::Null),
                ];
                if let Ok(rid) = table.insert(row) {
                    live.push(rid);
                }
            } else if let Op::Delete(i) = op {
                if !live.is_empty() {
                    let rid = live.remove(i % live.len());
                    table.delete(rid).unwrap();
                }
            }
        }
        let data = relstore::snapshot::encode_snapshot(std::iter::once(&table), 0).unwrap();
        let back = relstore::snapshot::decode_snapshot(&data).unwrap().0.pop().unwrap();
        prop_assert_eq!(back.len(), table.len());
        prop_assert_eq!(back.next_row_id(), table.next_row_id());
        for (rid, row) in table.scan() {
            prop_assert_eq!(back.get(rid).unwrap(), row);
        }
    }

    /// hash_join and merge_join agree on arbitrary inputs (up to order).
    #[test]
    fn joins_agree(
        left in proptest::collection::vec((0i64..20, any::<i64>()), 0..40),
        right in proptest::collection::vec((0i64..20, any::<i64>()), 0..40),
    ) {
        let l: Vec<Row> = left
            .iter()
            .map(|(k, v)| Row::new(vec![Value::Int(*k), Value::Int(*v)]))
            .collect();
        let r: Vec<Row> = right
            .iter()
            .map(|(k, v)| Row::new(vec![Value::Int(*k), Value::Int(*v)]))
            .collect();
        let mut h = hash_join(&l, &[0], &r, &[0]);
        let mut m = merge_join(&l, &[0], &r, &[0]);
        h.sort_by_key(|row| row.values().to_vec());
        m.sort_by_key(|row| row.values().to_vec());
        prop_assert_eq!(h, m);
    }

    /// A left outer join contains the inner join plus NULL-padded leftovers,
    /// and covers every left row at least once.
    #[test]
    fn outer_join_covers_left(
        left in proptest::collection::vec((0i64..10, any::<i64>()), 0..30),
        right in proptest::collection::vec((0i64..10, any::<i64>()), 0..30),
    ) {
        let l: Vec<Row> = left
            .iter()
            .map(|(k, v)| Row::new(vec![Value::Int(*k), Value::Int(*v)]))
            .collect();
        let r: Vec<Row> = right
            .iter()
            .map(|(k, v)| Row::new(vec![Value::Int(*k), Value::Int(*v)]))
            .collect();
        let inner = hash_join(&l, &[0], &r, &[0]);
        let outer = left_outer_hash_join(&l, &[0], &r, &[0], 2);
        prop_assert!(outer.len() >= l.len().max(inner.len()));
        // every left row appears as a prefix of some output row
        for lr in &l {
            prop_assert!(outer.iter().any(|o| &o.values()[..2] == lr.values()));
        }
        // inner results all appear in outer
        for ir in &inner {
            prop_assert!(outer.contains(ir));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Committed transactions survive reopen; the WAL replay reconstructs
    /// exactly the committed state.
    #[test]
    fn durability_replay_equals_memory(batches in proptest::collection::vec(
        proptest::collection::vec((any::<i64>(), 0i64..5), 1..10), 1..5))
    {
        let dir = std::env::temp_dir()
            .join("relstore-prop")
            .join(format!("case-{}", std::process::id()))
            .join(format!("{:x}", rand_suffix(&batches)));
        let _ = std::fs::remove_dir_all(&dir);

        let mut expected: Vec<(i64, i64)> = Vec::new();
        {
            let mut db = Database::open(&dir).unwrap();
            db.create_table(test_schema()).unwrap();
            db.checkpoint().unwrap();
            for batch in &batches {
                let mut txn = db.begin();
                let mut ok = true;
                let mut staged = Vec::new();
                for (id, g) in batch {
                    match txn.insert("t", vec![Value::Int(*id), Value::Int(*g), Value::Null]) {
                        Ok(_) => staged.push((*id, *g)),
                        Err(_) => { ok = false; break; }
                    }
                }
                if ok {
                    txn.commit().unwrap();
                    expected.extend(staged);
                } else {
                    txn.rollback().unwrap();
                }
            }
        }
        {
            let db = Database::open(&dir).unwrap();
            let t = db.table("t").unwrap();
            prop_assert_eq!(t.len(), expected.len());
            for (id, g) in &expected {
                let hit = t.lookup_unique("pk", &[Value::Int(*id)]).unwrap().unwrap();
                prop_assert_eq!(hit.get(1), &Value::Int(*g));
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Cheap deterministic hash so parallel proptest cases use distinct dirs.
fn rand_suffix(batches: &[Vec<(i64, i64)>]) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    batches.hash(&mut h);
    h.finish()
}
