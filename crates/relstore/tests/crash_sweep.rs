//! Exhaustive crash-point sweep over the storage engine.
//!
//! One deterministic workload (32 committed batches with periodic
//! checkpoints) runs against the in-memory [`FaultVfs`], once fault-free
//! to learn its total I/O operation count, then once per operation with a
//! simulated power cut at exactly that operation. After every cut the
//! filesystem collapses to its durable image, the database is reopened,
//! and three invariants are checked:
//!
//! 1. **Committed prefix** — the surviving rows are exactly the first `n`
//!    whole batches for some `n`: no torn transaction, no hole, no
//!    reordering.
//! 2. **Reopen never fails** — recovery degrades (fallback snapshot,
//!    truncated WAL tail, discarded stale WAL) instead of erroring.
//! 3. **Convergence** — resuming the workload after recovery reaches a
//!    state identical to the fault-free run.

use relstore::schema::{Column, Schema};
use relstore::value::{Value, ValueType};
use relstore::vfs::{FaultPlan, FaultVfs, Vfs};
use relstore::{Database, PoolConfig};
use std::path::Path;
use std::sync::Arc;

const BATCHES: i64 = 32;
const BATCH_ROWS: i64 = 5;
const CHECKPOINT_EVERY: i64 = 4;

fn schema() -> Schema {
    Schema::builder("t")
        .column(Column::new("id", ValueType::Int))
        .column(Column::new("payload", ValueType::Text))
        .primary_key(&["id"])
        .build()
        .unwrap()
}

fn dyn_vfs(vfs: &FaultVfs) -> Arc<dyn Vfs> {
    Arc::new(vfs.clone())
}

fn open(vfs: &FaultVfs) -> relstore::error::StoreResult<Database> {
    let mut db = Database::open_with_vfs(dyn_vfs(vfs), Path::new("/db"))?;
    db.ensure_table(schema())?;
    Ok(db)
}

/// Paged open with pages small enough that the workload spans many pages
/// and a pool tiny enough that evictions (and their unsynced writebacks)
/// happen mid-workload — so power cuts land inside page-granular I/O and
/// the torn-write generator garbles partial page images.
fn open_paged(vfs: &FaultVfs) -> relstore::error::StoreResult<Database> {
    let config = PoolConfig {
        page_bytes: 256,
        pool_pages: 2,
    };
    let mut db = Database::open_paged_with_vfs(dyn_vfs(vfs), Path::new("/db"), config)?;
    db.ensure_table(schema())?;
    Ok(db)
}

fn insert_batch(db: &mut Database, batch: i64) -> relstore::error::StoreResult<()> {
    db.with_txn(|txn| {
        for i in 0..BATCH_ROWS {
            let id = batch * BATCH_ROWS + i;
            txn.insert("t", vec![Value::Int(id), Value::text(format!("row-{id}"))])?;
        }
        Ok(())
    })
}

/// Run (or resume) the workload to completion, checkpointing periodically.
/// `db` may already hold a recovered prefix of whole batches.
fn run_to_completion(db: &mut Database) -> relstore::error::StoreResult<()> {
    let have = db.table("t")?.len() as i64;
    assert_eq!(have % BATCH_ROWS, 0, "recovered a torn batch");
    for batch in have / BATCH_ROWS..BATCHES {
        insert_batch(db, batch)?;
        if (batch + 1) % CHECKPOINT_EVERY == 0 {
            db.checkpoint()?;
        }
    }
    db.checkpoint()?;
    Ok(())
}

fn sorted_ids(db: &Database) -> Vec<i64> {
    let mut out: Vec<i64> = db
        .table("t")
        .unwrap()
        .scan()
        .map(|(_, row)| match row.get(0) {
            Value::Int(i) => *i,
            other => panic!("unexpected value {other:?}"),
        })
        .collect();
    out.sort_unstable();
    out
}

#[test]
fn every_crash_point_recovers_and_converges() {
    // Fault-free reference run: learn the op count and final state.
    let reference = FaultVfs::new();
    {
        let mut db = open(&reference).unwrap();
        run_to_completion(&mut db).unwrap();
    }
    let total_ops = reference.op_count();
    let expected: Vec<i64> = (0..BATCHES * BATCH_ROWS).collect();
    {
        let db = open(&reference).unwrap();
        assert_eq!(sorted_ids(&db), expected, "reference state");
    }
    assert!(
        total_ops >= 100,
        "sweep needs >=100 distinct crash points, workload only has {total_ops}"
    );

    let mut crash_points = 0u64;
    for crash_at in 1..=total_ops {
        let vfs = FaultVfs::new();
        vfs.set_plan(FaultPlan {
            crash_at: Some(crash_at),
            fail_at: None,
            torn_seed: crash_at.wrapping_mul(0x2545_f491_4f6c_dd1d),
        });
        let outcome = open(&vfs).and_then(|mut db| run_to_completion(&mut db));
        assert!(
            outcome.is_err() && vfs.crashed(),
            "op {crash_at}: power cut did not fire (of {total_ops})"
        );
        crash_points += 1;

        // Power is restored: unsynced state is gone, plan cleared.
        vfs.reboot();

        // Invariants 1+2: reopen succeeds on the durable image alone and
        // yields a whole-batch prefix of the workload.
        let db = open(&vfs).unwrap_or_else(|e| panic!("op {crash_at}: reopen failed: {e}"));
        let ids = sorted_ids(&db);
        assert_eq!(
            ids.len() as i64 % BATCH_ROWS,
            0,
            "op {crash_at}: torn batch survived: {} rows",
            ids.len()
        );
        assert_eq!(
            ids,
            (0..ids.len() as i64).collect::<Vec<_>>(),
            "op {crash_at}: recovered rows are not a contiguous prefix"
        );
        drop(db);

        // Invariant 3: resuming the workload converges to the reference.
        let mut db = open(&vfs).unwrap();
        run_to_completion(&mut db).unwrap();
        drop(db);
        let db = open(&vfs).unwrap();
        assert_eq!(sorted_ids(&db), expected, "op {crash_at}: did not converge");
    }
    assert!(
        crash_points >= 100,
        "only {crash_points} crash points exercised"
    );
}

/// The crash-point sweep against paged storage: heap appends, eviction
/// writebacks, page-directory swaps, and compaction-free checkpoints all
/// become distinct crash points, and a cut mid-page must never surface a
/// torn page (the per-page CRC plus the sync-heap-before-directory
/// ordering make partially-written images unreachable).
#[test]
fn every_crash_point_recovers_and_converges_paged_tiny_pool() {
    let reference = FaultVfs::new();
    {
        let mut db = open_paged(&reference).unwrap();
        run_to_completion(&mut db).unwrap();
    }
    let total_ops = reference.op_count();
    let expected: Vec<i64> = (0..BATCHES * BATCH_ROWS).collect();
    {
        let db = open_paged(&reference).unwrap();
        assert_eq!(sorted_ids(&db), expected, "paged reference state");
    }

    // Page writebacks multiply the op count well past the resident run's;
    // sample crash points evenly to keep the quadratic sweep bounded while
    // still hitting every phase of the workload.
    let step = (total_ops / 160).max(1) as usize;
    let mut crash_points = 0u64;
    for crash_at in (1..=total_ops).step_by(step) {
        let vfs = FaultVfs::new();
        vfs.set_plan(FaultPlan {
            crash_at: Some(crash_at),
            fail_at: None,
            torn_seed: crash_at.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        });
        let outcome = open_paged(&vfs).and_then(|mut db| run_to_completion(&mut db));
        assert!(
            outcome.is_err() && vfs.crashed(),
            "op {crash_at}: power cut did not fire (of {total_ops})"
        );
        crash_points += 1;
        vfs.reboot();

        let db =
            open_paged(&vfs).unwrap_or_else(|e| panic!("op {crash_at}: paged reopen failed: {e}"));
        let ids = sorted_ids(&db);
        assert_eq!(
            ids.len() as i64 % BATCH_ROWS,
            0,
            "op {crash_at}: torn batch survived: {} rows",
            ids.len()
        );
        assert_eq!(
            ids,
            (0..ids.len() as i64).collect::<Vec<_>>(),
            "op {crash_at}: recovered rows are not a contiguous prefix"
        );
        drop(db);

        let mut db = open_paged(&vfs).unwrap();
        run_to_completion(&mut db).unwrap();
        drop(db);
        let db = open_paged(&vfs).unwrap();
        assert_eq!(sorted_ids(&db), expected, "op {crash_at}: did not converge");
    }
    assert!(
        crash_points >= 100,
        "only {crash_points} paged crash points exercised"
    );
}

/// The same sweep with injected I/O *errors* instead of power cuts: the
/// failed operation surfaces as an error to the caller, but nothing is
/// silently lost — reopening on the same (non-rebooted) filesystem and
/// resuming still converges.
#[test]
fn every_failed_io_op_leaves_a_recoverable_store() {
    let reference = FaultVfs::new();
    {
        let mut db = open(&reference).unwrap();
        run_to_completion(&mut db).unwrap();
    }
    let total_ops = reference.op_count();
    let expected: Vec<i64> = (0..BATCHES * BATCH_ROWS).collect();

    // Sample every third op to keep the quadratic sweep fast; power-cut
    // coverage above is exhaustive.
    for fail_at in (1..=total_ops).step_by(3) {
        let vfs = FaultVfs::new();
        vfs.set_plan(FaultPlan {
            crash_at: None,
            fail_at: Some(fail_at),
            torn_seed: fail_at,
        });
        let outcome = open(&vfs).and_then(|mut db| run_to_completion(&mut db));
        assert!(outcome.is_err(), "op {fail_at}: injected error vanished");
        // clear the plan but keep the filesystem (no power cut happened)
        vfs.set_plan(FaultPlan::default());

        let mut db = open(&vfs)
            .unwrap_or_else(|e| panic!("op {fail_at}: reopen after I/O error failed: {e}"));
        let ids = sorted_ids(&db);
        assert_eq!(ids.len() as i64 % BATCH_ROWS, 0, "op {fail_at}: torn batch");
        run_to_completion(&mut db).unwrap();
        drop(db);
        let db = open(&vfs).unwrap();
        assert_eq!(sorted_ids(&db), expected, "op {fail_at}: did not converge");
    }
}
