//! Rows and row identifiers.

use crate::value::Value;
use std::fmt;

/// Identifier of a row slot within a table. Row ids are assigned
/// monotonically per table and never reused, so they are stable handles for
/// indexes and the write-ahead log.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct RowId(pub u64);

impl fmt::Display for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// An owned row: a boxed slice of cell values matching some table schema.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Row {
    values: Box<[Value]>,
}

impl Row {
    /// Build a row from values.
    pub fn new(values: Vec<Value>) -> Self {
        Row {
            values: values.into_boxed_slice(),
        }
    }

    /// Cell at ordinal `i`. Panics if out of range (callers obtain ordinals
    /// from the schema, which bounds them).
    pub fn get(&self, i: usize) -> &Value {
        &self.values[i]
    }

    /// All cells.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Number of cells.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Project the row onto the given column ordinals (used to form index
    /// keys and join keys).
    pub fn project(&self, ordinals: &[usize]) -> Vec<Value> {
        ordinals.iter().map(|&i| self.values[i].clone()).collect()
    }

    /// Consume the row, yielding its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values.into_vec()
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row::new(values)
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_and_access() {
        let r = Row::new(vec![Value::Int(1), Value::text("GO"), Value::Null]);
        assert_eq!(r.arity(), 3);
        assert_eq!(r.get(1), &Value::text("GO"));
        assert_eq!(r.project(&[2, 0]), vec![Value::Null, Value::Int(1)]);
        assert_eq!(r.to_string(), "(1, GO, NULL)");
    }

    #[test]
    fn row_id_display() {
        assert_eq!(RowId(42).to_string(), "#42");
    }
}
