//! Database statistics, mirroring the deployment numbers GenMapper reports
//! (§5: "2 million objects of over 60 data sources, and 5 million object
//! associations organized in over 500 different mappings").

use std::fmt;

/// Per-table statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableStats {
    pub name: String,
    pub rows: usize,
    /// (index name, entry count) pairs.
    pub indexes: Vec<(String, usize)>,
}

/// Whole-database statistics.
#[derive(Debug, Clone, Default)]
pub struct DbStats {
    pub tables: Vec<TableStats>,
    /// Bytes appended to the WAL since open/last checkpoint.
    pub wal_bytes: u64,
}

impl DbStats {
    /// Row count for a table, 0 if absent.
    pub fn rows(&self, table: &str) -> usize {
        self.tables
            .iter()
            .find(|t| t.name == table)
            .map(|t| t.rows)
            .unwrap_or(0)
    }

    /// Total rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(|t| t.rows).sum()
    }
}

impl fmt::Display for DbStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "database: {} tables, {} rows", self.tables.len(), self.total_rows())?;
        for t in &self.tables {
            writeln!(f, "  {:<16} {:>10} rows, {} indexes", t.name, t.rows, t.indexes.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_and_display() {
        let stats = DbStats {
            tables: vec![
                TableStats {
                    name: "object".into(),
                    rows: 100,
                    indexes: vec![("pk".into(), 100)],
                },
                TableStats {
                    name: "source".into(),
                    rows: 5,
                    indexes: vec![],
                },
            ],
            wal_bytes: 0,
        };
        assert_eq!(stats.rows("object"), 100);
        assert_eq!(stats.rows("missing"), 0);
        assert_eq!(stats.total_rows(), 105);
        let text = stats.to_string();
        assert!(text.contains("2 tables"));
        assert!(text.contains("object"));
    }
}
