//! Database statistics, mirroring the deployment numbers GenMapper reports
//! (§5: "2 million objects of over 60 data sources, and 5 million object
//! associations organized in over 500 different mappings").

use std::fmt;

/// Per-table statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableStats {
    pub name: String,
    pub rows: usize,
    /// (index name, entry count) pairs.
    pub indexes: Vec<(String, usize)>,
}

/// Buffer-pool metrics for paged databases (see [`crate::pager`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Configured page size in bytes.
    pub page_bytes: usize,
    /// Configured pool capacity in pages.
    pub pool_pages: usize,
    /// Pages currently resident in the pool.
    pub resident: usize,
    /// Resident pages with a nonzero pin count.
    pub pinned: usize,
    /// Resident pages whose in-pool contents differ from disk.
    pub dirty: usize,
    /// Pages evicted since open.
    pub evictions: u64,
    /// Page requests served from the pool.
    pub hits: u64,
    /// Page requests that had to read the heap file.
    pub misses: u64,
    /// Pages written back by eviction (copy-on-write appends).
    pub writeback_pages: u64,
    /// Bytes written back by eviction.
    pub writeback_bytes: u64,
    /// Dirty pages flushed by checkpoints.
    pub checkpoint_pages: u64,
    /// Bytes flushed by checkpoints.
    pub checkpoint_bytes: u64,
    /// Current heap file extent in bytes (live pages + superseded images).
    pub heap_bytes: u64,
}

impl PoolStats {
    /// Fraction of page requests served without heap I/O (1.0 when no
    /// requests have happened yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl fmt::Display for PoolStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pool: {}/{} pages resident ({} pinned, {} dirty), {:.1}% hit rate, \
             {} evictions, {} writeback pages, {} checkpoint pages, heap {} bytes",
            self.resident,
            self.pool_pages,
            self.pinned,
            self.dirty,
            self.hit_rate() * 100.0,
            self.evictions,
            self.writeback_pages,
            self.checkpoint_pages,
            self.heap_bytes,
        )
    }
}

/// Whole-database statistics.
#[derive(Debug, Clone, Default)]
pub struct DbStats {
    pub tables: Vec<TableStats>,
    /// Bytes appended to the WAL since open/last checkpoint.
    pub wal_bytes: u64,
    /// Buffer-pool metrics; `None` for resident (non-paged) databases.
    pub pool: Option<PoolStats>,
}

impl DbStats {
    /// Row count for a table, 0 if absent.
    pub fn rows(&self, table: &str) -> usize {
        self.tables
            .iter()
            .find(|t| t.name == table)
            .map(|t| t.rows)
            .unwrap_or(0)
    }

    /// Total rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(|t| t.rows).sum()
    }
}

impl fmt::Display for DbStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "database: {} tables, {} rows", self.tables.len(), self.total_rows())?;
        for t in &self.tables {
            writeln!(f, "  {:<16} {:>10} rows, {} indexes", t.name, t.rows, t.indexes.len())?;
        }
        if let Some(pool) = &self.pool {
            writeln!(f, "  {pool}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_and_display() {
        let stats = DbStats {
            tables: vec![
                TableStats {
                    name: "object".into(),
                    rows: 100,
                    indexes: vec![("pk".into(), 100)],
                },
                TableStats {
                    name: "source".into(),
                    rows: 5,
                    indexes: vec![],
                },
            ],
            wal_bytes: 0,
            pool: None,
        };
        assert_eq!(stats.rows("object"), 100);
        assert_eq!(stats.rows("missing"), 0);
        assert_eq!(stats.total_rows(), 105);
        let text = stats.to_string();
        assert!(text.contains("2 tables"));
        assert!(text.contains("object"));
        assert!(!text.contains("pool:"));
    }

    #[test]
    fn pool_stats_hit_rate_and_display() {
        let mut pool = PoolStats {
            page_bytes: 4096,
            pool_pages: 8,
            resident: 6,
            pinned: 1,
            dirty: 2,
            evictions: 10,
            hits: 75,
            misses: 25,
            ..PoolStats::default()
        };
        assert!((pool.hit_rate() - 0.75).abs() < 1e-9);
        let text = pool.to_string();
        assert!(text.contains("6/8 pages resident"));
        assert!(text.contains("75.0% hit rate"));
        pool.hits = 0;
        pool.misses = 0;
        assert_eq!(pool.hit_rate(), 1.0);
        let stats = DbStats {
            tables: vec![],
            wal_bytes: 0,
            pool: Some(pool),
        };
        assert!(stats.to_string().contains("pool:"));
    }
}
