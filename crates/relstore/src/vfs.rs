//! Pluggable I/O backends: the real filesystem and a fault-injecting
//! simulator.
//!
//! Every durability-relevant operation the storage engine performs — file
//! writes, fsyncs, renames, truncations, directory syncs — goes through the
//! [`Vfs`] trait. Production code uses [`RealVfs`] (a thin `std::fs`
//! shim); crash tests use [`FaultVfs`], an in-memory filesystem that
//! models what a power cut can actually do:
//!
//! * file content written but not fsynced may survive only as an arbitrary
//!   prefix (a *torn tail*, chosen deterministically from a seed),
//! * directory entries created or renamed but not followed by a directory
//!   sync revert to their last synced state,
//! * a crash freezes the durable image; every handle opened before the
//!   crash returns errors until [`FaultVfs::reboot`] is called.
//!
//! Faults are scheduled with a [`FaultPlan`] counting operations: fail the
//! Nth op with an injected error (short write included), or power-cut at
//! the Nth op. Because the op counter is deterministic for a deterministic
//! workload, a harness can run once fault-free to learn the op count and
//! then sweep a crash through every single point.

use crate::error::{StoreError, StoreResult};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// An open file handle.
pub trait VfsFile: Send + Sync {
    /// Append/write the full buffer (buffered by the OS; durable only after
    /// [`sync`](Self::sync)).
    fn write_all(&mut self, data: &[u8]) -> StoreResult<()>;
    /// Flush file content to stable storage (fsync / fdatasync).
    fn sync(&mut self) -> StoreResult<()>;
}

/// A filesystem backend.
pub trait Vfs: Send + Sync {
    /// Open a file for appending, creating it if absent.
    fn open_append(&self, path: &Path) -> StoreResult<Box<dyn VfsFile>>;
    /// Create (or truncate) a file for writing.
    fn create(&self, path: &Path) -> StoreResult<Box<dyn VfsFile>>;
    /// Read a whole file; `None` if it does not exist.
    fn read(&self, path: &Path) -> StoreResult<Option<Vec<u8>>>;
    /// Read up to `len` bytes starting at `offset`; `None` if the file does
    /// not exist. Fewer bytes than requested means the range ran past the
    /// end of the file — callers validate lengths (pages are CRC-framed).
    /// Like [`read`](Self::read), reads are not fault-charged.
    fn read_at(&self, path: &Path, offset: u64, len: usize) -> StoreResult<Option<Vec<u8>>>;
    /// Remove a file. The entry's disappearance is durable only after
    /// [`sync_dir`](Self::sync_dir). Removing a missing file is an error.
    fn remove(&self, path: &Path) -> StoreResult<()>;
    /// Current length of a file in bytes; `None` if it does not exist.
    /// Not fault-charged (a metadata read).
    fn file_len(&self, path: &Path) -> StoreResult<Option<u64>>;
    /// Atomically rename `from` to `to` (replacing `to`). The new directory
    /// entry is durable only after [`sync_dir`](Self::sync_dir).
    fn rename(&self, from: &Path, to: &Path) -> StoreResult<()>;
    /// Truncate a file to `len` bytes.
    fn truncate(&self, path: &Path, len: u64) -> StoreResult<()>;
    /// Whether a file currently exists.
    fn exists(&self, path: &Path) -> bool;
    /// Fsync a directory, making entry creations/renames/removals durable.
    fn sync_dir(&self, dir: &Path) -> StoreResult<()>;
    /// Create a directory (and parents). Idempotent.
    fn create_dir_all(&self, dir: &Path) -> StoreResult<()>;
}

// ---------------------------------------------------------------------------
// Real filesystem
// ---------------------------------------------------------------------------

/// The production backend: delegates to `std::fs`.
#[derive(Debug, Clone, Default)]
pub struct RealVfs;

struct RealFile(fs::File);

impl VfsFile for RealFile {
    fn write_all(&mut self, data: &[u8]) -> StoreResult<()> {
        self.0.write_all(data)?;
        Ok(())
    }

    fn sync(&mut self) -> StoreResult<()> {
        self.0.sync_data()?;
        Ok(())
    }
}

impl Vfs for RealVfs {
    fn open_append(&self, path: &Path) -> StoreResult<Box<dyn VfsFile>> {
        let file = fs::OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Box::new(RealFile(file)))
    }

    fn create(&self, path: &Path) -> StoreResult<Box<dyn VfsFile>> {
        Ok(Box::new(RealFile(fs::File::create(path)?)))
    }

    fn read(&self, path: &Path) -> StoreResult<Option<Vec<u8>>> {
        match fs::read(path) {
            Ok(data) => Ok(Some(data)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn read_at(&self, path: &Path, offset: u64, len: usize) -> StoreResult<Option<Vec<u8>>> {
        use std::io::{Read, Seek, SeekFrom};
        let mut file = match fs::File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        file.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len];
        let mut filled = 0;
        while filled < len {
            let n = file.read(&mut buf[filled..])?;
            if n == 0 {
                break;
            }
            filled += n;
        }
        buf.truncate(filled);
        Ok(Some(buf))
    }

    fn remove(&self, path: &Path) -> StoreResult<()> {
        fs::remove_file(path)?;
        Ok(())
    }

    fn file_len(&self, path: &Path) -> StoreResult<Option<u64>> {
        match fs::metadata(path) {
            Ok(m) => Ok(Some(m.len())),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> StoreResult<()> {
        fs::rename(from, to)?;
        Ok(())
    }

    fn truncate(&self, path: &Path, len: u64) -> StoreResult<()> {
        let file = fs::OpenOptions::new().write(true).open(path)?;
        file.set_len(len)?;
        file.sync_data()?;
        Ok(())
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn sync_dir(&self, dir: &Path) -> StoreResult<()> {
        // Opening a directory read-only and fsyncing it is the POSIX idiom
        // for making entry renames durable. Some filesystems refuse the
        // sync on a directory handle; treat that as a no-op rather than an
        // error, matching what production databases do.
        match fs::File::open(dir) {
            Ok(f) => {
                let _ = f.sync_all();
                Ok(())
            }
            Err(e) => Err(e.into()),
        }
    }

    fn create_dir_all(&self, dir: &Path) -> StoreResult<()> {
        fs::create_dir_all(dir)?;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Fault-injecting filesystem
// ---------------------------------------------------------------------------

/// A deterministic fault schedule, counted in vfs operations (writes,
/// syncs, renames, truncations, directory syncs — reads are free).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Simulate a power cut at the Nth operation (1-based): the operation
    /// does not take effect, the durable image freezes, and every
    /// subsequent operation fails until [`FaultVfs::reboot`].
    pub crash_at: Option<u64>,
    /// Fail the Nth operation (1-based) with an injected I/O error. A
    /// failing write applies a seeded *prefix* of its buffer first (a
    /// short write), so callers see data partially on disk.
    pub fail_at: Option<u64>,
    /// Seed for torn-tail lengths and short-write prefixes.
    pub torn_seed: u64,
}

/// One simulated inode: the current (page-cache) content and the content
/// as of the last file sync.
#[derive(Debug, Clone, Default)]
struct Inode {
    current: Vec<u8>,
    synced: Vec<u8>,
}

#[derive(Default)]
struct FaultState {
    inodes: Vec<Inode>,
    /// Directory as seen by running code.
    live: HashMap<PathBuf, usize>,
    /// Directory as of the last `sync_dir` — what survives a power cut.
    durable: HashMap<PathBuf, usize>,
    plan: FaultPlan,
    ops: u64,
    crashed: bool,
    /// Bumped on every reboot; stale handles refuse to operate.
    generation: u64,
}

/// An in-memory filesystem with injectable faults and power-cut
/// simulation. Cloning shares the underlying state, so a test can keep a
/// handle while the store owns another.
#[derive(Clone, Default)]
pub struct FaultVfs {
    state: std::sync::Arc<Mutex<FaultState>>,
}

fn xorshift(mut x: u64) -> u64 {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

fn injected_err(what: &str, op: u64) -> StoreError {
    StoreError::Io(std::io::Error::other(format!("injected fault: {what} (op {op})")))
}

fn power_cut_err() -> StoreError {
    StoreError::Io(std::io::Error::other("simulated power failure"))
}

impl FaultState {
    /// Account one fault-eligible operation. Returns `Ok(op_number)` if the
    /// operation should proceed normally.
    fn charge(&mut self, what: &str) -> StoreResult<u64> {
        if self.crashed {
            return Err(power_cut_err());
        }
        self.ops += 1;
        if self.plan.crash_at == Some(self.ops) {
            self.crashed = true;
            return Err(power_cut_err());
        }
        if self.plan.fail_at == Some(self.ops) {
            return Err(injected_err(what, self.ops));
        }
        Ok(self.ops)
    }

    /// What an inode's content collapses to on power cut: the synced image
    /// plus, if the unsynced content merely appends to it, a seeded prefix
    /// of the appended tail (the part of the page cache the kernel happened
    /// to flush).
    fn crash_content(&self, idx: usize) -> Vec<u8> {
        let inode = &self.inodes[idx];
        let synced_len = inode.synced.len();
        if inode.current.len() >= synced_len && inode.current[..synced_len] == inode.synced[..] {
            let extra = inode.current.len() - synced_len;
            let keep = if extra == 0 {
                0
            } else {
                let seed =
                    (self.plan.torn_seed ^ self.ops ^ (idx as u64).wrapping_mul(0x9e37_79b9)) | 1;
                (xorshift(seed) as usize) % (extra + 1)
            };
            inode.current[..synced_len + keep].to_vec()
        } else {
            // Non-append rewrite (e.g. an unsynced truncate): all-or-nothing
            // at the granularity we model — revert to the synced image.
            inode.synced.clone()
        }
    }
}

impl FaultVfs {
    /// A fresh, empty, fault-free filesystem.
    pub fn new() -> Self {
        FaultVfs::default()
    }

    /// Install a fault plan. Op counting continues from the current count.
    pub fn set_plan(&self, plan: FaultPlan) {
        self.state.lock().plan = plan;
    }

    /// Operations performed so far (the sweep domain for crash points).
    pub fn op_count(&self) -> u64 {
        self.state.lock().ops
    }

    /// Whether a simulated power cut has occurred.
    pub fn crashed(&self) -> bool {
        self.state.lock().crashed
    }

    /// Simulate an immediate power cut (outside any planned fault).
    pub fn crash_now(&self) {
        self.state.lock().crashed = true;
    }

    /// "Power back on": collapse every file to its durable image (synced
    /// directory entries, synced content plus a seeded torn tail of
    /// unsynced appends), invalidate all pre-crash handles, and clear the
    /// fault plan so recovery runs fault-free.
    pub fn reboot(&self) {
        let mut s = self.state.lock();
        let contents: Vec<(usize, Vec<u8>)> = s
            .durable
            .values()
            .map(|&idx| (idx, s.crash_content(idx)))
            .collect();
        for (idx, content) in contents {
            s.inodes[idx].current = content.clone();
            s.inodes[idx].synced = content;
        }
        s.live = s.durable.clone();
        s.crashed = false;
        s.plan = FaultPlan::default();
        s.generation += 1;
    }

    /// Current content of a live file (test helper).
    pub fn peek(&self, path: &Path) -> Option<Vec<u8>> {
        let s = self.state.lock();
        s.live.get(path).map(|&idx| s.inodes[idx].current.clone())
    }
}

struct FaultFile {
    vfs: FaultVfs,
    inode: usize,
    generation: u64,
}

impl FaultFile {
    fn with_state<T>(
        &mut self,
        f: impl FnOnce(&mut FaultState, usize) -> StoreResult<T>,
    ) -> StoreResult<T> {
        let mut s = self.vfs.state.lock();
        if s.generation != self.generation {
            return Err(StoreError::Io(std::io::Error::other(
                "stale file handle (opened before reboot)",
            )));
        }
        let inode = self.inode;
        f(&mut s, inode)
    }
}

impl VfsFile for FaultFile {
    fn write_all(&mut self, data: &[u8]) -> StoreResult<()> {
        self.with_state(|s, inode| {
            match s.charge("write") {
                Ok(_) => {
                    s.inodes[inode].current.extend_from_slice(data);
                    Ok(())
                }
                Err(e) => {
                    if !s.crashed && !data.is_empty() {
                        // Injected failure mid-write: a seeded prefix made it
                        // into the page cache (short write).
                        let keep = (xorshift((s.plan.torn_seed ^ s.ops) | 1) as usize)
                            % (data.len() + 1);
                        let prefix = data[..keep].to_vec();
                        s.inodes[inode].current.extend_from_slice(&prefix);
                    }
                    Err(e)
                }
            }
        })
    }

    fn sync(&mut self) -> StoreResult<()> {
        self.with_state(|s, inode| {
            s.charge("fsync")?;
            let current = s.inodes[inode].current.clone();
            s.inodes[inode].synced = current;
            Ok(())
        })
    }
}

impl Vfs for FaultVfs {
    fn open_append(&self, path: &Path) -> StoreResult<Box<dyn VfsFile>> {
        let mut s = self.state.lock();
        if s.crashed {
            return Err(power_cut_err());
        }
        let inode = match s.live.get(path) {
            Some(&idx) => idx,
            None => {
                // Creating a directory entry is fault-eligible.
                s.charge("create")?;
                s.inodes.push(Inode::default());
                let idx = s.inodes.len() - 1;
                s.live.insert(path.to_owned(), idx);
                idx
            }
        };
        let generation = s.generation;
        drop(s);
        Ok(Box::new(FaultFile {
            vfs: self.clone(),
            inode,
            generation,
        }))
    }

    fn create(&self, path: &Path) -> StoreResult<Box<dyn VfsFile>> {
        let mut s = self.state.lock();
        if s.crashed {
            return Err(power_cut_err());
        }
        s.charge("create")?;
        // Truncating create always gets a fresh inode: if the old entry was
        // durable it survives a crash untouched until the next sync_dir.
        s.inodes.push(Inode::default());
        let idx = s.inodes.len() - 1;
        s.live.insert(path.to_owned(), idx);
        let generation = s.generation;
        drop(s);
        Ok(Box::new(FaultFile {
            vfs: self.clone(),
            inode: idx,
            generation,
        }))
    }

    fn read(&self, path: &Path) -> StoreResult<Option<Vec<u8>>> {
        let s = self.state.lock();
        if s.crashed {
            return Err(power_cut_err());
        }
        Ok(s.live.get(path).map(|&idx| s.inodes[idx].current.clone()))
    }

    fn read_at(&self, path: &Path, offset: u64, len: usize) -> StoreResult<Option<Vec<u8>>> {
        let s = self.state.lock();
        if s.crashed {
            return Err(power_cut_err());
        }
        Ok(s.live.get(path).map(|&idx| {
            let data = &s.inodes[idx].current;
            let start = (offset as usize).min(data.len());
            let end = start.saturating_add(len).min(data.len());
            data[start..end].to_vec()
        }))
    }

    fn file_len(&self, path: &Path) -> StoreResult<Option<u64>> {
        let s = self.state.lock();
        if s.crashed {
            return Err(power_cut_err());
        }
        Ok(s.live.get(path).map(|&idx| s.inodes[idx].current.len() as u64))
    }

    fn remove(&self, path: &Path) -> StoreResult<()> {
        let mut s = self.state.lock();
        s.charge("remove")?;
        if s.live.remove(path).is_none() {
            return Err(StoreError::Io(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("remove target missing: {}", path.display()),
            )));
        }
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> StoreResult<()> {
        let mut s = self.state.lock();
        s.charge("rename")?;
        let Some(idx) = s.live.remove(from) else {
            return Err(StoreError::Io(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("rename source missing: {}", from.display()),
            )));
        };
        s.live.insert(to.to_owned(), idx);
        Ok(())
    }

    fn truncate(&self, path: &Path, len: u64) -> StoreResult<()> {
        let mut s = self.state.lock();
        s.charge("truncate")?;
        let Some(&idx) = s.live.get(path) else {
            return Err(StoreError::Io(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("truncate target missing: {}", path.display()),
            )));
        };
        s.inodes[idx].current.truncate(len as usize);
        Ok(())
    }

    fn exists(&self, path: &Path) -> bool {
        self.state.lock().live.contains_key(path)
    }

    fn sync_dir(&self, dir: &Path) -> StoreResult<()> {
        let mut s = self.state.lock();
        s.charge("sync_dir")?;
        // Make the live entries of `dir` durable and drop durable entries
        // that no longer exist live (renamed or replaced).
        let in_dir =
            |p: &Path| p.parent().map(|parent| parent == dir).unwrap_or(false);
        let updates: Vec<(PathBuf, usize)> = s
            .live
            .iter()
            .filter(|(p, _)| in_dir(p))
            .map(|(p, &i)| (p.clone(), i))
            .collect();
        let removals: Vec<PathBuf> = s
            .durable
            .keys()
            .filter(|p| in_dir(p) && !s.live.contains_key(*p))
            .cloned()
            .collect();
        for (p, i) in updates {
            s.durable.insert(p, i);
        }
        for p in removals {
            s.durable.remove(&p);
        }
        Ok(())
    }

    fn create_dir_all(&self, _dir: &Path) -> StoreResult<()> {
        let s = self.state.lock();
        if s.crashed {
            return Err(power_cut_err());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn p(name: &str) -> PathBuf {
        PathBuf::from("/db").join(name)
    }

    #[test]
    fn real_vfs_roundtrip() {
        let dir = std::env::temp_dir().join("relstore-vfs-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let vfs = RealVfs;
        let path = dir.join("real.bin");
        let _ = std::fs::remove_file(&path);
        let mut f = vfs.create(&path).unwrap();
        f.write_all(b"hello ").unwrap();
        f.write_all(b"world").unwrap();
        f.sync().unwrap();
        drop(f);
        assert_eq!(vfs.read(&path).unwrap().unwrap(), b"hello world");
        vfs.truncate(&path, 5).unwrap();
        assert_eq!(vfs.read(&path).unwrap().unwrap(), b"hello");
        let renamed = dir.join("real2.bin");
        vfs.rename(&path, &renamed).unwrap();
        assert!(!vfs.exists(&path));
        assert!(vfs.exists(&renamed));
        vfs.sync_dir(&dir).unwrap();
        assert!(vfs.read(&dir.join("never")).unwrap().is_none());
    }

    #[test]
    fn fault_vfs_basic_io() {
        let vfs = FaultVfs::new();
        let mut f = vfs.open_append(&p("a")).unwrap();
        f.write_all(b"abc").unwrap();
        f.sync().unwrap();
        assert_eq!(vfs.read(&p("a")).unwrap().unwrap(), b"abc");
        // append handle on an existing file continues at the end
        let mut g = vfs.open_append(&p("a")).unwrap();
        g.write_all(b"def").unwrap();
        assert_eq!(vfs.read(&p("a")).unwrap().unwrap(), b"abcdef");
        assert!(vfs.exists(&p("a")));
        assert!(!vfs.exists(&p("b")));
    }

    #[test]
    fn unsynced_appends_survive_only_as_torn_prefix() {
        for seed in 0..16 {
            let vfs = FaultVfs::new();
            let mut f = vfs.open_append(&p("wal")).unwrap();
            f.write_all(b"durable!").unwrap();
            f.sync().unwrap();
            vfs.sync_dir(Path::new("/db")).unwrap();
            f.write_all(b"0123456789").unwrap(); // never synced
            vfs.set_plan(FaultPlan {
                torn_seed: seed,
                ..FaultPlan::default()
            });
            vfs.crash_now();
            vfs.reboot();
            let data = vfs.read(&p("wal")).unwrap().unwrap();
            assert!(data.len() >= 8 && data.len() <= 18, "len {}", data.len());
            assert_eq!(&data[..8], b"durable!");
            assert_eq!(&data[8..], &b"0123456789"[..data.len() - 8]);
        }
    }

    #[test]
    fn entry_not_durable_without_dir_sync() {
        let vfs = FaultVfs::new();
        let mut f = vfs.open_append(&p("a")).unwrap();
        f.write_all(b"abc").unwrap();
        f.sync().unwrap(); // file content synced, entry never synced
        vfs.crash_now();
        vfs.reboot();
        assert!(!vfs.exists(&p("a")), "entry must vanish without sync_dir");
    }

    #[test]
    fn rename_without_dir_sync_reverts_on_crash() {
        let vfs = FaultVfs::new();
        let dir = Path::new("/db");
        let mut f = vfs.create(&p("old")).unwrap();
        f.write_all(b"v1").unwrap();
        f.sync().unwrap();
        vfs.sync_dir(dir).unwrap();
        // overwrite via tmp + rename, but never sync the dir
        let mut t = vfs.create(&p("tmp")).unwrap();
        t.write_all(b"v2").unwrap();
        t.sync().unwrap();
        vfs.rename(&p("tmp"), &p("old")).unwrap();
        assert_eq!(vfs.read(&p("old")).unwrap().unwrap(), b"v2");
        vfs.crash_now();
        vfs.reboot();
        assert_eq!(vfs.read(&p("old")).unwrap().unwrap(), b"v1");
        // with the dir sync the rename sticks
        let mut t = vfs.create(&p("tmp")).unwrap();
        t.write_all(b"v3").unwrap();
        t.sync().unwrap();
        vfs.rename(&p("tmp"), &p("old")).unwrap();
        vfs.sync_dir(dir).unwrap();
        vfs.crash_now();
        vfs.reboot();
        assert_eq!(vfs.read(&p("old")).unwrap().unwrap(), b"v3");
    }

    #[test]
    fn unsynced_truncate_reverts_on_crash() {
        let vfs = FaultVfs::new();
        let mut f = vfs.open_append(&p("wal")).unwrap();
        f.write_all(b"0123456789").unwrap();
        f.sync().unwrap();
        vfs.sync_dir(Path::new("/db")).unwrap();
        vfs.truncate(&p("wal"), 4).unwrap(); // never synced
        vfs.crash_now();
        vfs.reboot();
        assert_eq!(vfs.read(&p("wal")).unwrap().unwrap(), b"0123456789");
    }

    #[test]
    fn crash_at_op_freezes_and_stale_handles_fail() {
        let vfs = FaultVfs::new();
        let mut f = vfs.open_append(&p("a")).unwrap();
        f.write_all(b"one").unwrap();
        f.sync().unwrap();
        vfs.sync_dir(Path::new("/db")).unwrap();
        let at = vfs.op_count() + 1;
        vfs.set_plan(FaultPlan {
            crash_at: Some(at),
            ..FaultPlan::default()
        });
        assert!(f.write_all(b"two").is_err(), "crash op must fail");
        assert!(vfs.crashed());
        assert!(f.sync().is_err(), "post-crash ops must fail");
        assert!(vfs.read(&p("a")).is_err());
        vfs.reboot();
        assert_eq!(vfs.read(&p("a")).unwrap().unwrap(), b"one");
        // the pre-crash handle is stale after reboot
        assert!(f.write_all(b"x").is_err());
        // a fresh handle works
        let mut g = vfs.open_append(&p("a")).unwrap();
        g.write_all(b"!").unwrap();
        assert_eq!(vfs.read(&p("a")).unwrap().unwrap(), b"one!");
    }

    #[test]
    fn fail_at_injects_error_including_short_write() {
        let vfs = FaultVfs::new();
        let mut f = vfs.open_append(&p("a")).unwrap();
        f.write_all(b"ok").unwrap();
        let at = vfs.op_count() + 1;
        vfs.set_plan(FaultPlan {
            fail_at: Some(at),
            torn_seed: 7,
            ..FaultPlan::default()
        });
        let err = f.write_all(b"0123456789").unwrap_err();
        assert!(err.to_string().contains("injected fault"), "{err}");
        // a prefix of the failed write may be present, never the whole tail
        // plus more; subsequent ops succeed (not a crash)
        let data = vfs.read(&p("a")).unwrap().unwrap();
        assert!(data.starts_with(b"ok"));
        assert!(data.len() <= 12);
        f.write_all(b"z").unwrap();
    }

    #[test]
    fn read_at_slices_and_clamps() {
        let vfs = FaultVfs::new();
        let mut f = vfs.open_append(&p("heap")).unwrap();
        f.write_all(b"0123456789").unwrap();
        assert_eq!(vfs.read_at(&p("heap"), 2, 4).unwrap().unwrap(), b"2345");
        // past-EOF ranges clamp rather than error
        assert_eq!(vfs.read_at(&p("heap"), 8, 10).unwrap().unwrap(), b"89");
        assert_eq!(vfs.read_at(&p("heap"), 99, 4).unwrap().unwrap(), b"");
        assert!(vfs.read_at(&p("nope"), 0, 1).unwrap().is_none());
        // reads are free: only the create + write were charged
        assert_eq!(vfs.op_count(), 2);

        let dir = std::env::temp_dir().join("relstore-vfs-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let real = RealVfs;
        let path = dir.join("read_at.bin");
        let mut f = real.create(&path).unwrap();
        f.write_all(b"0123456789").unwrap();
        drop(f);
        assert_eq!(real.read_at(&path, 2, 4).unwrap().unwrap(), b"2345");
        assert_eq!(real.read_at(&path, 8, 10).unwrap().unwrap(), b"89");
        assert!(real.read_at(&dir.join("never"), 0, 1).unwrap().is_none());
    }

    #[test]
    fn remove_is_durable_only_after_dir_sync() {
        let vfs = FaultVfs::new();
        let dir = Path::new("/db");
        let mut f = vfs.create(&p("old")).unwrap();
        f.write_all(b"v1").unwrap();
        f.sync().unwrap();
        vfs.sync_dir(dir).unwrap();
        // unsynced removal reverts on crash
        vfs.remove(&p("old")).unwrap();
        assert!(!vfs.exists(&p("old")));
        vfs.crash_now();
        vfs.reboot();
        assert_eq!(vfs.read(&p("old")).unwrap().unwrap(), b"v1");
        // synced removal sticks
        vfs.remove(&p("old")).unwrap();
        vfs.sync_dir(dir).unwrap();
        vfs.crash_now();
        vfs.reboot();
        assert!(!vfs.exists(&p("old")));
        assert!(vfs.remove(&p("old")).is_err());
    }

    #[test]
    fn op_count_is_deterministic() {
        let run = || {
            let vfs = FaultVfs::new();
            let mut f = vfs.open_append(&p("a")).unwrap();
            for i in 0..10 {
                f.write_all(format!("rec{i}").as_bytes()).unwrap();
                if i % 3 == 0 {
                    f.sync().unwrap();
                }
            }
            vfs.sync_dir(Path::new("/db")).unwrap();
            vfs.op_count()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn trait_object_usable_through_arc() {
        let fault = FaultVfs::new();
        let vfs: Arc<dyn Vfs> = Arc::new(fault.clone());
        let mut f = vfs.open_append(&p("a")).unwrap();
        f.write_all(b"via dyn").unwrap();
        f.sync().unwrap();
        assert_eq!(fault.peek(&p("a")).unwrap(), b"via dyn");
    }
}
