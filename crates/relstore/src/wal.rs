//! Write-ahead log.
//!
//! Every committed transaction appends its operations followed by a commit
//! marker. Each record is framed as `[len u32][crc32 u32][payload]`; a
//! checksum or length mismatch marks the end of the valid prefix (a torn
//! tail from a crash), and recovery ignores everything after it. Operations
//! whose commit marker is missing (the transaction was mid-commit at crash
//! time) are likewise discarded, giving atomic, durable transactions.
//!
//! After a checkpoint the log is reset and stamped with an *epoch* record
//! matching the snapshot it now extends. Recovery replays a log only onto
//! the snapshot of the same epoch; a mismatch means a crash interrupted the
//! snapshot-rename/log-reset sequence, and the stale log is discarded (its
//! contents are already folded into the newer snapshot). Logs from before
//! epochs were introduced carry no epoch record and replay as epoch 0.
//!
//! All I/O goes through a [`Vfs`] backend so crash tests can substitute the
//! fault-injecting simulator in [`crate::vfs`].

use crate::codec::{crc32, get_row, get_str, get_varint, put_row, put_str, put_varint};
use crate::error::{StoreError, StoreResult};
use crate::row::RowId;
use crate::value::Value;
use crate::vfs::{Vfs, VfsFile};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const OP_INSERT: u8 = 1;
const OP_DELETE: u8 = 2;
const OP_UPDATE: u8 = 3;
const OP_COMMIT: u8 = 4;
const OP_EPOCH: u8 = 5;
const OP_CREATE: u8 = 6;

/// Flush the in-process buffer to the backend once it grows past this, so
/// large group-commit batches reach the page cache incrementally (as the
/// old `BufWriter` did) instead of accumulating unboundedly.
const FLUSH_THRESHOLD: usize = 64 * 1024;

/// A single log record.
#[derive(Debug, Clone, PartialEq)]
pub enum LogRecord {
    Insert {
        table: String,
        row_id: RowId,
        values: Vec<Value>,
    },
    Delete {
        table: String,
        row_id: RowId,
    },
    Update {
        table: String,
        row_id: RowId,
        values: Vec<Value>,
    },
    /// Commit marker for transaction `txid`; makes all preceding records of
    /// that transaction durable.
    Commit { txid: u64 },
    /// Written as the first record after a reset: this log extends the
    /// snapshot of the given epoch and must not be replayed onto any other.
    Epoch { epoch: u64 },
    /// A table created since the last checkpoint. Logged outside any
    /// transaction and immediately durable — without it, committed row
    /// operations on a never-checkpointed table would be unreplayable.
    CreateTable { schema: crate::schema::Schema },
}

impl LogRecord {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            LogRecord::Insert {
                table,
                row_id,
                values,
            } => {
                buf.put_u8(OP_INSERT);
                put_str(buf, table);
                put_varint(buf, row_id.0);
                put_row(buf, values);
            }
            LogRecord::Delete { table, row_id } => {
                buf.put_u8(OP_DELETE);
                put_str(buf, table);
                put_varint(buf, row_id.0);
            }
            LogRecord::Update {
                table,
                row_id,
                values,
            } => {
                buf.put_u8(OP_UPDATE);
                put_str(buf, table);
                put_varint(buf, row_id.0);
                put_row(buf, values);
            }
            LogRecord::Commit { txid } => {
                buf.put_u8(OP_COMMIT);
                put_varint(buf, *txid);
            }
            LogRecord::Epoch { epoch } => {
                buf.put_u8(OP_EPOCH);
                put_varint(buf, *epoch);
            }
            LogRecord::CreateTable { schema } => {
                buf.put_u8(OP_CREATE);
                crate::snapshot::put_schema(buf, schema);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> StoreResult<LogRecord> {
        if !buf.has_remaining() {
            return Err(StoreError::Corrupt("empty log record".into()));
        }
        let tag = buf.get_u8();
        Ok(match tag {
            OP_INSERT => LogRecord::Insert {
                table: get_str(buf)?,
                row_id: RowId(get_varint(buf)?),
                values: get_row(buf)?,
            },
            OP_DELETE => LogRecord::Delete {
                table: get_str(buf)?,
                row_id: RowId(get_varint(buf)?),
            },
            OP_UPDATE => LogRecord::Update {
                table: get_str(buf)?,
                row_id: RowId(get_varint(buf)?),
                values: get_row(buf)?,
            },
            OP_COMMIT => LogRecord::Commit {
                txid: get_varint(buf)?,
            },
            OP_EPOCH => LogRecord::Epoch {
                epoch: get_varint(buf)?,
            },
            OP_CREATE => LogRecord::CreateTable {
                schema: crate::snapshot::get_schema(buf)?,
            },
            other => return Err(StoreError::Corrupt(format!("unknown log tag {other}"))),
        })
    }
}

fn encode_frames(records: &[LogRecord], frames: &mut Vec<u8>) {
    let mut payload = BytesMut::with_capacity(64);
    for record in records {
        payload.clear();
        record.encode(&mut payload);
        frames.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frames.extend_from_slice(&crc32(&payload).to_le_bytes());
        frames.extend_from_slice(&payload);
    }
}

/// Appender over a WAL file.
pub struct WalWriter {
    path: PathBuf,
    vfs: Arc<dyn Vfs>,
    file: Box<dyn VfsFile>,
    /// Frames appended but not yet handed to the backend.
    buf: Vec<u8>,
    /// Bytes appended since opening (for stats).
    bytes_written: u64,
}

impl std::fmt::Debug for WalWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalWriter")
            .field("path", &self.path)
            .field("bytes_written", &self.bytes_written)
            .finish()
    }
}

impl WalWriter {
    /// Open (creating if absent) a WAL for appending. The file is first
    /// truncated back to its last commit (or epoch) marker: appending
    /// behind a torn frame would hide every later record from recovery,
    /// and appending behind the trailing ops of a never-committed
    /// transaction would let the *next* commit marker wrongly adopt them.
    pub fn open(vfs: Arc<dyn Vfs>, path: &Path) -> StoreResult<Self> {
        if let Some(data) = vfs.read(path)? {
            let recovery = scan_wal(&data);
            if recovery.committed_bytes < data.len() as u64 {
                vfs.truncate(path, recovery.committed_bytes)?;
            }
        }
        let file = vfs.open_append(path)?;
        Ok(WalWriter {
            path: path.to_owned(),
            vfs,
            file,
            buf: Vec::new(),
            bytes_written: 0,
        })
    }

    /// Append one record (buffered; call [`sync`](Self::sync) to make it
    /// durable).
    pub fn append(&mut self, record: &LogRecord) -> StoreResult<()> {
        self.append_batch(std::slice::from_ref(record))
    }

    /// Append many records as one buffered write. Framing is identical to
    /// per-record [`append`](Self::append) — the batch is an encoding
    /// convenience, not a recovery unit — so readers cannot tell the two
    /// apart. Durability still requires [`sync`](Self::sync); group commit
    /// appends every transaction of an import batch and syncs once.
    pub fn append_batch(&mut self, records: &[LogRecord]) -> StoreResult<()> {
        let before = self.buf.len();
        encode_frames(records, &mut self.buf);
        self.bytes_written += (self.buf.len() - before) as u64;
        if self.buf.len() >= FLUSH_THRESHOLD {
            self.flush()?;
        }
        Ok(())
    }

    fn flush(&mut self) -> StoreResult<()> {
        if !self.buf.is_empty() {
            self.file.write_all(&self.buf)?;
            self.buf.clear();
        }
        Ok(())
    }

    /// Flush buffers and fsync the file.
    pub fn sync(&mut self) -> StoreResult<()> {
        self.flush()?;
        self.file.sync()
    }

    /// Truncate the log to zero length (after a snapshot makes it obsolete)
    /// and stamp it with the epoch of that snapshot. The new epoch record
    /// is synced, and so is the parent directory, before returning.
    pub fn reset(&mut self, epoch: u64) -> StoreResult<()> {
        self.buf.clear();
        self.vfs.truncate(&self.path, 0)?;
        self.file = self.vfs.open_append(&self.path)?;
        let mut frame = Vec::new();
        encode_frames(std::slice::from_ref(&LogRecord::Epoch { epoch }), &mut frame);
        self.file.write_all(&frame)?;
        self.file.sync()?;
        if let Some(parent) = self.path.parent() {
            self.vfs.sync_dir(parent)?;
        }
        // The epoch stamp is bookkeeping, not payload: report zero so
        // "bytes since reset" keeps meaning what callers expect.
        self.bytes_written = 0;
        Ok(())
    }

    /// Bytes appended by this writer since it was opened or reset.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }
}

/// Result of reading a WAL: the records of every *committed* transaction, in
/// commit order, plus diagnostics about discarded data.
#[derive(Debug, Default)]
pub struct WalRecovery {
    /// Operations belonging to committed transactions, in log order.
    pub committed_ops: Vec<LogRecord>,
    /// Number of committed transactions found.
    pub committed_txns: u64,
    /// Operations discarded because their commit marker was missing.
    pub discarded_ops: usize,
    /// If the file ended with a torn/corrupt record, the byte offset of the
    /// valid prefix.
    pub torn_at: Option<u64>,
    /// Length of the valid frame prefix (the whole file when nothing is
    /// torn).
    pub valid_bytes: u64,
    /// Length of the prefix recovery actually keeps: up to and including
    /// the last commit (or epoch) marker. Trailing ops without a marker
    /// and any torn tail lie beyond this.
    pub committed_bytes: u64,
    /// Epoch stamped into the log, if any. Pre-epoch logs report `None`
    /// and are treated as epoch 0.
    pub epoch: Option<u64>,
}

/// Scan an in-memory WAL image and classify its records.
pub fn scan_wal(data: &[u8]) -> WalRecovery {
    let mut recovery = WalRecovery::default();
    let mut offset = 0usize;
    let mut pending: Vec<LogRecord> = Vec::new();
    while offset < data.len() {
        if data.len() - offset < 8 {
            recovery.torn_at = Some(offset as u64);
            break;
        }
        let len = u32::from_le_bytes([
            data[offset],
            data[offset + 1],
            data[offset + 2],
            data[offset + 3],
        ]) as usize;
        let crc = u32::from_le_bytes([
            data[offset + 4],
            data[offset + 5],
            data[offset + 6],
            data[offset + 7],
        ]);
        let body_start = offset + 8;
        if data.len() - body_start < len {
            recovery.torn_at = Some(offset as u64);
            break;
        }
        let payload = &data[body_start..body_start + len];
        if crc32(payload) != crc {
            recovery.torn_at = Some(offset as u64);
            break;
        }
        let mut buf = Bytes::copy_from_slice(payload);
        let record = match LogRecord::decode(&mut buf) {
            Ok(r) => r,
            Err(_) => {
                recovery.torn_at = Some(offset as u64);
                break;
            }
        };
        offset = body_start + len;
        match record {
            LogRecord::Commit { .. } => {
                recovery.committed_txns += 1;
                recovery.committed_ops.append(&mut pending);
                recovery.committed_bytes = offset as u64;
            }
            LogRecord::Epoch { epoch } => {
                recovery.epoch = Some(epoch);
                recovery.committed_bytes = offset as u64;
            }
            // Table creation is logged outside any transaction (the
            // single-writer API cannot interleave it with one), so it is
            // committed the moment it is durable.
            create @ LogRecord::CreateTable { .. } => {
                recovery.committed_ops.push(create);
                recovery.committed_bytes = offset as u64;
            }
            op => pending.push(op),
        }
    }
    recovery.valid_bytes = recovery.torn_at.unwrap_or(data.len() as u64);
    recovery.discarded_ops = pending.len();
    recovery
}

/// Read a WAL file and classify its records.
pub fn read_wal(vfs: &dyn Vfs, path: &Path) -> StoreResult<WalRecovery> {
    match vfs.read(path)? {
        Some(data) => Ok(scan_wal(&data)),
        None => Ok(WalRecovery::default()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::RealVfs;
    use std::fs;

    fn vfs() -> Arc<dyn Vfs> {
        Arc::new(RealVfs)
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("relstore-wal-tests");
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        let _ = fs::remove_file(&p);
        p
    }

    fn ins(table: &str, id: u64, v: i64) -> LogRecord {
        LogRecord::Insert {
            table: table.into(),
            row_id: RowId(id),
            values: vec![Value::Int(v)],
        }
    }

    #[test]
    fn roundtrip_committed_transactions() {
        let path = tmp("roundtrip.wal");
        let mut w = WalWriter::open(vfs(), &path).unwrap();
        w.append(&ins("t", 0, 1)).unwrap();
        w.append(&ins("t", 1, 2)).unwrap();
        w.append(&LogRecord::Commit { txid: 1 }).unwrap();
        w.append(&LogRecord::Delete {
            table: "t".into(),
            row_id: RowId(0),
        })
        .unwrap();
        w.append(&LogRecord::Commit { txid: 2 }).unwrap();
        w.sync().unwrap();

        let r = read_wal(&RealVfs, &path).unwrap();
        assert_eq!(r.committed_txns, 2);
        assert_eq!(r.committed_ops.len(), 3);
        assert_eq!(r.discarded_ops, 0);
        assert!(r.torn_at.is_none());
        assert_eq!(r.valid_bytes, fs::metadata(&path).unwrap().len());
        assert_eq!(r.committed_ops[0], ins("t", 0, 1));
    }

    #[test]
    fn append_batch_is_frame_identical_to_per_record_appends() {
        let one = tmp("batch-one.wal");
        let many = tmp("batch-many.wal");
        let records = vec![
            ins("t", 0, 1),
            ins("t", 1, 2),
            LogRecord::Commit { txid: 1 },
            ins("t", 2, 3),
            LogRecord::Commit { txid: 2 },
        ];
        let mut w1 = WalWriter::open(vfs(), &one).unwrap();
        for r in &records {
            w1.append(r).unwrap();
        }
        w1.sync().unwrap();
        let mut w2 = WalWriter::open(vfs(), &many).unwrap();
        w2.append_batch(&records).unwrap();
        w2.sync().unwrap();
        assert_eq!(w1.bytes_written(), w2.bytes_written());
        assert_eq!(fs::read(&one).unwrap(), fs::read(&many).unwrap());
        let r = read_wal(&RealVfs, &many).unwrap();
        assert_eq!(r.committed_txns, 2);
        assert_eq!(r.committed_ops.len(), 3);
    }

    #[test]
    fn uncommitted_tail_is_discarded() {
        let path = tmp("uncommitted.wal");
        let mut w = WalWriter::open(vfs(), &path).unwrap();
        w.append(&ins("t", 0, 1)).unwrap();
        w.append(&LogRecord::Commit { txid: 1 }).unwrap();
        w.append(&ins("t", 1, 2)).unwrap(); // never committed
        w.sync().unwrap();

        let r = read_wal(&RealVfs, &path).unwrap();
        assert_eq!(r.committed_ops.len(), 1);
        assert_eq!(r.discarded_ops, 1);
    }

    #[test]
    fn torn_record_ends_recovery() {
        let path = tmp("torn.wal");
        let mut w = WalWriter::open(vfs(), &path).unwrap();
        w.append(&ins("t", 0, 1)).unwrap();
        w.append(&LogRecord::Commit { txid: 1 }).unwrap();
        w.append(&ins("t", 1, 2)).unwrap();
        w.append(&LogRecord::Commit { txid: 2 }).unwrap();
        w.sync().unwrap();

        // chop off the last 3 bytes to tear the final frame
        let data = fs::read(&path).unwrap();
        fs::write(&path, &data[..data.len() - 3]).unwrap();

        let r = read_wal(&RealVfs, &path).unwrap();
        assert_eq!(r.committed_txns, 1);
        assert_eq!(r.committed_ops.len(), 1);
        assert!(r.torn_at.is_some());
        assert_eq!(r.valid_bytes, r.torn_at.unwrap());
        // the torn tail contained the second txn's op, now discarded
        assert_eq!(r.discarded_ops, 1);
    }

    #[test]
    fn reopen_truncates_torn_tail_so_new_records_are_recoverable() {
        // Regression: append-after-torn-tail used to bury every later
        // record behind the corrupt frame, where recovery never looks.
        let path = tmp("reopen-torn.wal");
        let mut w = WalWriter::open(vfs(), &path).unwrap();
        w.append(&ins("t", 0, 1)).unwrap();
        w.append(&LogRecord::Commit { txid: 1 }).unwrap();
        w.append(&ins("t", 1, 2)).unwrap();
        w.append(&LogRecord::Commit { txid: 2 }).unwrap();
        w.sync().unwrap();
        drop(w);
        let data = fs::read(&path).unwrap();
        fs::write(&path, &data[..data.len() - 3]).unwrap();

        let mut w = WalWriter::open(vfs(), &path).unwrap();
        w.append(&ins("t", 2, 9)).unwrap();
        w.append(&LogRecord::Commit { txid: 3 }).unwrap();
        w.sync().unwrap();

        let r = read_wal(&RealVfs, &path).unwrap();
        assert!(r.torn_at.is_none(), "torn tail must be gone after reopen");
        assert_eq!(r.committed_txns, 2);
        assert_eq!(r.committed_ops.len(), 2);
        assert_eq!(r.committed_ops[1], ins("t", 2, 9));
        assert_eq!(r.discarded_ops, 0);
    }

    #[test]
    fn corrupted_crc_ends_recovery() {
        let path = tmp("badcrc.wal");
        let mut w = WalWriter::open(vfs(), &path).unwrap();
        w.append(&ins("t", 0, 1)).unwrap();
        w.append(&LogRecord::Commit { txid: 1 }).unwrap();
        w.sync().unwrap();
        let mut data = fs::read(&path).unwrap();
        // flip a payload byte of the first record
        let victim = 9;
        data[victim] ^= 0xff;
        fs::write(&path, &data).unwrap();

        let r = read_wal(&RealVfs, &path).unwrap();
        assert_eq!(r.committed_txns, 0);
        assert_eq!(r.torn_at, Some(0));
    }

    #[test]
    fn missing_file_is_empty_recovery() {
        let r = read_wal(&RealVfs, Path::new("/nonexistent/dir/never.wal")).unwrap();
        assert_eq!(r.committed_ops.len(), 0);
        assert!(r.torn_at.is_none());
        assert!(r.epoch.is_none());
    }

    #[test]
    fn reset_truncates_and_stamps_epoch() {
        let path = tmp("reset.wal");
        let mut w = WalWriter::open(vfs(), &path).unwrap();
        w.append(&ins("t", 0, 1)).unwrap();
        w.append(&LogRecord::Commit { txid: 1 }).unwrap();
        w.sync().unwrap();
        w.reset(7).unwrap();
        assert_eq!(w.bytes_written(), 0);
        // writer still usable after reset
        w.append(&ins("t", 0, 9)).unwrap();
        w.append(&LogRecord::Commit { txid: 2 }).unwrap();
        w.sync().unwrap();
        let r = read_wal(&RealVfs, &path).unwrap();
        assert_eq!(r.epoch, Some(7));
        assert_eq!(r.committed_ops.len(), 1);
        assert_eq!(r.committed_ops[0], ins("t", 0, 9));
    }

    #[test]
    fn pre_epoch_logs_report_no_epoch() {
        let path = tmp("no-epoch.wal");
        let mut w = WalWriter::open(vfs(), &path).unwrap();
        w.append(&ins("t", 0, 1)).unwrap();
        w.append(&LogRecord::Commit { txid: 1 }).unwrap();
        w.sync().unwrap();
        let r = read_wal(&RealVfs, &path).unwrap();
        assert!(r.epoch.is_none());
        assert_eq!(r.committed_txns, 1);
    }

    #[test]
    fn large_batch_spills_before_sync() {
        // More than FLUSH_THRESHOLD of frames must not accumulate in the
        // writer; spilled bytes appear in the file even before sync.
        let path = tmp("spill.wal");
        let mut w = WalWriter::open(vfs(), &path).unwrap();
        let big: Vec<LogRecord> = (0..4096).map(|i| ins("table_name", i, i as i64)).collect();
        w.append_batch(&big).unwrap();
        assert!(w.bytes_written() as usize > FLUSH_THRESHOLD);
        assert!(fs::metadata(&path).unwrap().len() > 0);
        w.append(&LogRecord::Commit { txid: 1 }).unwrap();
        w.sync().unwrap();
        let r = read_wal(&RealVfs, &path).unwrap();
        assert_eq!(r.committed_ops.len(), 4096);
    }
}
