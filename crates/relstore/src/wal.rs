//! Write-ahead log.
//!
//! Every committed transaction appends its operations followed by a commit
//! marker. Each record is framed as `[len u32][crc32 u32][payload]`; a
//! checksum or length mismatch marks the end of the valid prefix (a torn
//! tail from a crash), and recovery ignores everything after it. Operations
//! whose commit marker is missing (the transaction was mid-commit at crash
//! time) are likewise discarded, giving atomic, durable transactions.

use crate::codec::{crc32, get_row, get_str, get_varint, put_row, put_str, put_varint};
use crate::error::{StoreError, StoreResult};
use crate::row::RowId;
use crate::value::Value;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

const OP_INSERT: u8 = 1;
const OP_DELETE: u8 = 2;
const OP_UPDATE: u8 = 3;
const OP_COMMIT: u8 = 4;

/// A single log record.
#[derive(Debug, Clone, PartialEq)]
pub enum LogRecord {
    Insert {
        table: String,
        row_id: RowId,
        values: Vec<Value>,
    },
    Delete {
        table: String,
        row_id: RowId,
    },
    Update {
        table: String,
        row_id: RowId,
        values: Vec<Value>,
    },
    /// Commit marker for transaction `txid`; makes all preceding records of
    /// that transaction durable.
    Commit { txid: u64 },
}

impl LogRecord {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            LogRecord::Insert {
                table,
                row_id,
                values,
            } => {
                buf.put_u8(OP_INSERT);
                put_str(buf, table);
                put_varint(buf, row_id.0);
                put_row(buf, values);
            }
            LogRecord::Delete { table, row_id } => {
                buf.put_u8(OP_DELETE);
                put_str(buf, table);
                put_varint(buf, row_id.0);
            }
            LogRecord::Update {
                table,
                row_id,
                values,
            } => {
                buf.put_u8(OP_UPDATE);
                put_str(buf, table);
                put_varint(buf, row_id.0);
                put_row(buf, values);
            }
            LogRecord::Commit { txid } => {
                buf.put_u8(OP_COMMIT);
                put_varint(buf, *txid);
            }
        }
    }

    fn decode(buf: &mut Bytes) -> StoreResult<LogRecord> {
        if !buf.has_remaining() {
            return Err(StoreError::Corrupt("empty log record".into()));
        }
        let tag = buf.get_u8();
        Ok(match tag {
            OP_INSERT => LogRecord::Insert {
                table: get_str(buf)?,
                row_id: RowId(get_varint(buf)?),
                values: get_row(buf)?,
            },
            OP_DELETE => LogRecord::Delete {
                table: get_str(buf)?,
                row_id: RowId(get_varint(buf)?),
            },
            OP_UPDATE => LogRecord::Update {
                table: get_str(buf)?,
                row_id: RowId(get_varint(buf)?),
                values: get_row(buf)?,
            },
            OP_COMMIT => LogRecord::Commit {
                txid: get_varint(buf)?,
            },
            other => return Err(StoreError::Corrupt(format!("unknown log tag {other}"))),
        })
    }
}

/// Appender over a WAL file.
#[derive(Debug)]
pub struct WalWriter {
    path: PathBuf,
    writer: BufWriter<File>,
    /// Bytes appended since opening (for stats).
    bytes_written: u64,
}

impl WalWriter {
    /// Open (creating if absent) a WAL for appending.
    pub fn open(path: &Path) -> StoreResult<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(WalWriter {
            path: path.to_owned(),
            writer: BufWriter::new(file),
            bytes_written: 0,
        })
    }

    /// Append one record (buffered; call [`sync`](Self::sync) to make it
    /// durable).
    pub fn append(&mut self, record: &LogRecord) -> StoreResult<()> {
        self.append_batch(std::slice::from_ref(record))
    }

    /// Append many records as one buffered write. Framing is identical to
    /// per-record [`append`](Self::append) — the batch is an encoding
    /// convenience, not a recovery unit — so readers cannot tell the two
    /// apart. Durability still requires [`sync`](Self::sync); group commit
    /// appends every transaction of an import batch and syncs once.
    pub fn append_batch(&mut self, records: &[LogRecord]) -> StoreResult<()> {
        let mut payload = BytesMut::with_capacity(64);
        let mut frames = BytesMut::with_capacity(records.len() * 72);
        for record in records {
            payload.clear();
            record.encode(&mut payload);
            frames.put_u32_le(payload.len() as u32);
            frames.put_u32_le(crc32(&payload));
            frames.extend_from_slice(&payload);
        }
        self.writer.write_all(&frames)?;
        self.bytes_written += frames.len() as u64;
        Ok(())
    }

    /// Flush buffers and fsync the file.
    pub fn sync(&mut self) -> StoreResult<()> {
        self.writer.flush()?;
        self.writer.get_ref().sync_data()?;
        Ok(())
    }

    /// Truncate the log to zero length (after a snapshot makes it obsolete).
    pub fn reset(&mut self) -> StoreResult<()> {
        self.writer.flush()?;
        let file = OpenOptions::new().write(true).open(&self.path)?;
        file.set_len(0)?;
        file.sync_data()?;
        // Reopen in append mode so subsequent writes start at offset 0.
        let file = OpenOptions::new().append(true).open(&self.path)?;
        self.writer = BufWriter::new(file);
        self.bytes_written = 0;
        Ok(())
    }

    /// Bytes appended by this writer since it was opened or reset.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }
}

/// Result of reading a WAL: the records of every *committed* transaction, in
/// commit order, plus diagnostics about discarded data.
#[derive(Debug, Default)]
pub struct WalRecovery {
    /// Operations belonging to committed transactions, in log order.
    pub committed_ops: Vec<LogRecord>,
    /// Number of committed transactions found.
    pub committed_txns: u64,
    /// Operations discarded because their commit marker was missing.
    pub discarded_ops: usize,
    /// If the file ended with a torn/corrupt record, the byte offset of the
    /// valid prefix.
    pub torn_at: Option<u64>,
}

/// Read a WAL file and classify its records.
pub fn read_wal(path: &Path) -> StoreResult<WalRecovery> {
    let mut recovery = WalRecovery::default();
    let mut data = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut data)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(recovery),
        Err(e) => return Err(e.into()),
    }

    let mut offset = 0usize;
    let mut pending: Vec<LogRecord> = Vec::new();
    while offset < data.len() {
        if data.len() - offset < 8 {
            recovery.torn_at = Some(offset as u64);
            break;
        }
        let len = u32::from_le_bytes(data[offset..offset + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(data[offset + 4..offset + 8].try_into().unwrap());
        let body_start = offset + 8;
        if data.len() - body_start < len {
            recovery.torn_at = Some(offset as u64);
            break;
        }
        let payload = &data[body_start..body_start + len];
        if crc32(payload) != crc {
            recovery.torn_at = Some(offset as u64);
            break;
        }
        let mut buf = Bytes::copy_from_slice(payload);
        let record = match LogRecord::decode(&mut buf) {
            Ok(r) => r,
            Err(_) => {
                recovery.torn_at = Some(offset as u64);
                break;
            }
        };
        offset = body_start + len;
        match record {
            LogRecord::Commit { .. } => {
                recovery.committed_txns += 1;
                recovery.committed_ops.append(&mut pending);
            }
            op => pending.push(op),
        }
    }
    recovery.discarded_ops = pending.len();
    Ok(recovery)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("relstore-wal-tests");
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        let _ = fs::remove_file(&p);
        p
    }

    fn ins(table: &str, id: u64, v: i64) -> LogRecord {
        LogRecord::Insert {
            table: table.into(),
            row_id: RowId(id),
            values: vec![Value::Int(v)],
        }
    }

    #[test]
    fn roundtrip_committed_transactions() {
        let path = tmp("roundtrip.wal");
        let mut w = WalWriter::open(&path).unwrap();
        w.append(&ins("t", 0, 1)).unwrap();
        w.append(&ins("t", 1, 2)).unwrap();
        w.append(&LogRecord::Commit { txid: 1 }).unwrap();
        w.append(&LogRecord::Delete {
            table: "t".into(),
            row_id: RowId(0),
        })
        .unwrap();
        w.append(&LogRecord::Commit { txid: 2 }).unwrap();
        w.sync().unwrap();

        let r = read_wal(&path).unwrap();
        assert_eq!(r.committed_txns, 2);
        assert_eq!(r.committed_ops.len(), 3);
        assert_eq!(r.discarded_ops, 0);
        assert!(r.torn_at.is_none());
        assert_eq!(r.committed_ops[0], ins("t", 0, 1));
    }

    #[test]
    fn append_batch_is_frame_identical_to_per_record_appends() {
        let one = tmp("batch-one.wal");
        let many = tmp("batch-many.wal");
        let records = vec![
            ins("t", 0, 1),
            ins("t", 1, 2),
            LogRecord::Commit { txid: 1 },
            ins("t", 2, 3),
            LogRecord::Commit { txid: 2 },
        ];
        let mut w1 = WalWriter::open(&one).unwrap();
        for r in &records {
            w1.append(r).unwrap();
        }
        w1.sync().unwrap();
        let mut w2 = WalWriter::open(&many).unwrap();
        w2.append_batch(&records).unwrap();
        w2.sync().unwrap();
        assert_eq!(w1.bytes_written(), w2.bytes_written());
        assert_eq!(fs::read(&one).unwrap(), fs::read(&many).unwrap());
        let r = read_wal(&many).unwrap();
        assert_eq!(r.committed_txns, 2);
        assert_eq!(r.committed_ops.len(), 3);
    }

    #[test]
    fn uncommitted_tail_is_discarded() {
        let path = tmp("uncommitted.wal");
        let mut w = WalWriter::open(&path).unwrap();
        w.append(&ins("t", 0, 1)).unwrap();
        w.append(&LogRecord::Commit { txid: 1 }).unwrap();
        w.append(&ins("t", 1, 2)).unwrap(); // never committed
        w.sync().unwrap();

        let r = read_wal(&path).unwrap();
        assert_eq!(r.committed_ops.len(), 1);
        assert_eq!(r.discarded_ops, 1);
    }

    #[test]
    fn torn_record_ends_recovery() {
        let path = tmp("torn.wal");
        let mut w = WalWriter::open(&path).unwrap();
        w.append(&ins("t", 0, 1)).unwrap();
        w.append(&LogRecord::Commit { txid: 1 }).unwrap();
        w.append(&ins("t", 1, 2)).unwrap();
        w.append(&LogRecord::Commit { txid: 2 }).unwrap();
        w.sync().unwrap();

        // chop off the last 3 bytes to tear the final frame
        let data = fs::read(&path).unwrap();
        fs::write(&path, &data[..data.len() - 3]).unwrap();

        let r = read_wal(&path).unwrap();
        assert_eq!(r.committed_txns, 1);
        assert_eq!(r.committed_ops.len(), 1);
        assert!(r.torn_at.is_some());
        // the torn tail contained the second txn's op, now discarded
        assert_eq!(r.discarded_ops, 1);
    }

    #[test]
    fn corrupted_crc_ends_recovery() {
        let path = tmp("badcrc.wal");
        let mut w = WalWriter::open(&path).unwrap();
        w.append(&ins("t", 0, 1)).unwrap();
        w.append(&LogRecord::Commit { txid: 1 }).unwrap();
        w.sync().unwrap();
        let mut data = fs::read(&path).unwrap();
        // flip a payload byte of the first record
        let victim = 9;
        data[victim] ^= 0xff;
        fs::write(&path, &data).unwrap();

        let r = read_wal(&path).unwrap();
        assert_eq!(r.committed_txns, 0);
        assert_eq!(r.torn_at, Some(0));
    }

    #[test]
    fn missing_file_is_empty_recovery() {
        let r = read_wal(Path::new("/nonexistent/dir/never.wal")).unwrap();
        assert_eq!(r.committed_ops.len(), 0);
        assert!(r.torn_at.is_none());
    }

    #[test]
    fn reset_truncates() {
        let path = tmp("reset.wal");
        let mut w = WalWriter::open(&path).unwrap();
        w.append(&ins("t", 0, 1)).unwrap();
        w.append(&LogRecord::Commit { txid: 1 }).unwrap();
        w.sync().unwrap();
        w.reset().unwrap();
        assert_eq!(fs::metadata(&path).unwrap().len(), 0);
        // writer still usable after reset
        w.append(&ins("t", 0, 9)).unwrap();
        w.append(&LogRecord::Commit { txid: 2 }).unwrap();
        w.sync().unwrap();
        let r = read_wal(&path).unwrap();
        assert_eq!(r.committed_ops.len(), 1);
        assert_eq!(r.committed_ops[0], ins("t", 0, 9));
    }
}
