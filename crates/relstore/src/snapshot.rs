//! Full-database snapshots.
//!
//! A snapshot is a single self-contained file:
//! `[magic "RSSN"][version u32][crc32 u32][body]`, where the body starts
//! with the checkpoint *epoch* (version ≥ 2) and then encodes every table
//! (schema, high-water row id, live rows). The CRC covers the body, so
//! partially-written snapshots are detected and rejected; callers write to
//! a temp file, rename, and sync the directory for atomicity (see
//! [`Database::checkpoint`](crate::db::Database::checkpoint)). The epoch
//! ties a snapshot to the write-ahead log that extends it: recovery replays
//! a log only when the epochs match. Version-1 snapshots (no epoch field)
//! decode as epoch 0.

use crate::codec::{crc32, get_row, get_str, get_varint, put_row, put_str, put_varint};
use crate::error::{StoreError, StoreResult};
use crate::row::RowId;
use crate::schema::{Column, Schema};
use crate::table::Table;
use crate::value::ValueType;
use crate::vfs::Vfs;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::path::Path;

const MAGIC: &[u8; 4] = b"RSSN";
const VERSION: u32 = 2;

fn type_tag(ty: ValueType) -> u8 {
    match ty {
        ValueType::Int => 0,
        ValueType::Float => 1,
        ValueType::Text => 2,
        ValueType::Bytes => 3,
    }
}

fn type_from_tag(tag: u8) -> StoreResult<ValueType> {
    Ok(match tag {
        0 => ValueType::Int,
        1 => ValueType::Float,
        2 => ValueType::Text,
        3 => ValueType::Bytes,
        other => return Err(StoreError::Corrupt(format!("unknown type tag {other}"))),
    })
}

pub(crate) fn put_schema(buf: &mut BytesMut, schema: &Schema) {
    put_str(buf, schema.name());
    put_varint(buf, schema.columns().len() as u64);
    for c in schema.columns() {
        put_str(buf, &c.name);
        buf.put_u8(type_tag(c.ty));
        buf.put_u8(u8::from(c.nullable));
    }
    put_varint(buf, schema.primary_key().len() as u64);
    for &o in schema.primary_key() {
        put_varint(buf, o as u64);
    }
    // secondary indexes (skip the synthesized "pk" entry)
    let secondary: Vec<_> = schema.indexes().iter().filter(|i| i.name != "pk").collect();
    put_varint(buf, secondary.len() as u64);
    for ix in secondary {
        put_str(buf, &ix.name);
        buf.put_u8(u8::from(ix.unique));
        put_varint(buf, ix.columns.len() as u64);
        for &o in &ix.columns {
            put_varint(buf, o as u64);
        }
    }
}

pub(crate) fn get_schema(buf: &mut Bytes) -> StoreResult<Schema> {
    let name = get_str(buf)?;
    let ncols = get_varint(buf)? as usize;
    if ncols > 1 << 16 {
        return Err(StoreError::Corrupt(format!("implausible column count {ncols}")));
    }
    let mut builder = Schema::builder(&name);
    let mut col_names = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let cname = get_str(buf)?;
        if !buf.has_remaining() {
            return Err(StoreError::Corrupt("schema truncated".into()));
        }
        let ty = type_from_tag(buf.get_u8())?;
        if !buf.has_remaining() {
            return Err(StoreError::Corrupt("schema truncated".into()));
        }
        let nullable = buf.get_u8() != 0;
        col_names.push(cname.clone());
        builder = builder.column(if nullable {
            Column::nullable(cname, ty)
        } else {
            Column::new(cname, ty)
        });
    }
    let resolve = |buf: &mut Bytes, col_names: &[String]| -> StoreResult<Vec<String>> {
        let n = get_varint(buf)? as usize;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let o = get_varint(buf)? as usize;
            let name = col_names
                .get(o)
                .ok_or_else(|| StoreError::Corrupt(format!("ordinal {o} out of range")))?;
            out.push(name.clone());
        }
        Ok(out)
    };
    let pk = resolve(buf, &col_names)?;
    if !pk.is_empty() {
        let refs: Vec<&str> = pk.iter().map(String::as_str).collect();
        builder = builder.primary_key(&refs);
    }
    let nix = get_varint(buf)? as usize;
    for _ in 0..nix {
        let iname = get_str(buf)?;
        if !buf.has_remaining() {
            return Err(StoreError::Corrupt("schema truncated".into()));
        }
        let unique = buf.get_u8() != 0;
        let cols = resolve(buf, &col_names)?;
        let refs: Vec<&str> = cols.iter().map(String::as_str).collect();
        builder = if unique {
            builder.unique_index(&iname, &refs)
        } else {
            builder.index(&iname, &refs)
        };
    }
    builder.build()
}

/// Encode tables into a snapshot byte buffer stamped with `epoch`. Rows
/// stream through [`Table::for_each_row`], so paged tables are encoded
/// without materializing them (and their page-fault I/O errors propagate).
pub fn encode_snapshot<'a>(
    tables: impl Iterator<Item = &'a Table>,
    epoch: u64,
) -> StoreResult<Vec<u8>> {
    let mut body = BytesMut::new();
    put_varint(&mut body, epoch);
    let tables: Vec<&Table> = tables.collect();
    put_varint(&mut body, tables.len() as u64);
    for t in tables {
        put_schema(&mut body, t.schema());
        put_varint(&mut body, t.next_row_id().0);
        put_varint(&mut body, t.len() as u64);
        t.for_each_row(|row_id, row| {
            put_varint(&mut body, row_id.0);
            put_row(&mut body, row.values());
            Ok(())
        })?;
    }
    let mut out = Vec::with_capacity(body.len() + 12);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);
    Ok(out)
}

/// Decode a snapshot byte buffer into fully-indexed tables plus the epoch
/// it was written at (0 for version-1 files).
pub fn decode_snapshot(data: &[u8]) -> StoreResult<(Vec<Table>, u64)> {
    if data.len() < 12 {
        return Err(StoreError::Corrupt("snapshot too short".into()));
    }
    if &data[0..4] != MAGIC {
        return Err(StoreError::Corrupt("bad snapshot magic".into()));
    }
    let version = u32::from_le_bytes([data[4], data[5], data[6], data[7]]);
    if version == 0 || version > VERSION {
        return Err(StoreError::Corrupt(format!(
            "unsupported snapshot version {version}"
        )));
    }
    let crc = u32::from_le_bytes([data[8], data[9], data[10], data[11]]);
    let body = &data[12..];
    if crc32(body) != crc {
        return Err(StoreError::Corrupt("snapshot checksum mismatch".into()));
    }
    let mut buf = Bytes::copy_from_slice(body);
    let epoch = if version >= 2 { get_varint(&mut buf)? } else { 0 };
    let ntables = get_varint(&mut buf)? as usize;
    if ntables > 1 << 16 {
        return Err(StoreError::Corrupt(format!("implausible table count {ntables}")));
    }
    let mut tables = Vec::with_capacity(ntables);
    for _ in 0..ntables {
        let schema = get_schema(&mut buf)?;
        let high_water = get_varint(&mut buf)?;
        let nrows = get_varint(&mut buf)? as usize;
        let mut table = Table::new(schema);
        for _ in 0..nrows {
            let row_id = RowId(get_varint(&mut buf)?);
            let values = get_row(&mut buf)?;
            table.insert_at(row_id, values)?;
        }
        if table.next_row_id().0 > high_water {
            return Err(StoreError::Corrupt(
                "snapshot rows exceed recorded high-water mark".into(),
            ));
        }
        // Re-align the high-water mark for tables whose last rows were
        // deleted before the snapshot.
        while table.next_row_id().0 < high_water {
            let filler = RowId(table.next_row_id().0);
            // insert_at with an id just past the end, then delete, to bump
            // the mark without leaving data. Build a minimal valid row.
            let row: Vec<_> = table
                .schema()
                .columns()
                .iter()
                .map(|c| {
                    if c.nullable {
                        crate::value::Value::Null
                    } else {
                        match c.ty {
                            ValueType::Int => crate::value::Value::Int(i64::MIN + filler.0 as i64),
                            ValueType::Float => crate::value::Value::Float(f64::MIN),
                            ValueType::Text => {
                                crate::value::Value::Text(format!("\u{0}hw{}", filler.0))
                            }
                            ValueType::Bytes => {
                                crate::value::Value::Bytes(filler.0.to_le_bytes().to_vec())
                            }
                        }
                    }
                })
                .collect();
            table.insert_at(filler, row)?;
            table.delete(filler)?;
        }
        tables.push(table);
    }
    Ok((tables, epoch))
}

/// Write a snapshot atomically: temp file + fsync + rename + directory
/// sync. Without the final directory sync a power cut can silently undo
/// the rename itself.
pub fn write_snapshot_file<'a>(
    vfs: &dyn Vfs,
    path: &Path,
    tables: impl Iterator<Item = &'a Table>,
    epoch: u64,
) -> StoreResult<()> {
    let data = encode_snapshot(tables, epoch)?;
    let tmp = path.with_extension("tmp");
    {
        let mut f = vfs.create(&tmp)?;
        f.write_all(&data)?;
        f.sync()?;
    }
    vfs.rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        vfs.sync_dir(parent)?;
    }
    Ok(())
}

/// Read and decode a snapshot file. `None` if the file does not exist (a
/// corrupt file is an error, so callers can fall back to an older copy).
pub fn read_snapshot_file(vfs: &dyn Vfs, path: &Path) -> StoreResult<Option<(Vec<Table>, u64)>> {
    match vfs.read(path)? {
        Some(data) => decode_snapshot(&data).map(Some),
        None => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use crate::value::Value;

    fn sample_table() -> Table {
        let schema = Schema::builder("object")
            .column(Column::new("id", ValueType::Int))
            .column(Column::new("acc", ValueType::Text))
            .column(Column::nullable("score", ValueType::Float))
            .primary_key(&["id"])
            .unique_index("by_acc", &["acc"])
            .index("by_score", &["score"])
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for i in 0..20 {
            t.insert(vec![
                Value::Int(i),
                Value::text(format!("ACC{i}")),
                if i % 3 == 0 { Value::Null } else { Value::Float(i as f64 / 2.0) },
            ])
            .unwrap();
        }
        // create holes
        t.delete(RowId(5)).unwrap();
        t.delete(RowId(19)).unwrap(); // tail deletion exercises high-water fixup
        t
    }

    #[test]
    fn roundtrip_preserves_rows_ids_and_indexes() {
        let t = sample_table();
        let data = encode_snapshot(std::iter::once(&t), 3).unwrap();
        let (tables, epoch) = decode_snapshot(&data).unwrap();
        assert_eq!(epoch, 3);
        assert_eq!(tables.len(), 1);
        let back = &tables[0];
        assert_eq!(back.len(), t.len());
        assert_eq!(back.next_row_id(), t.next_row_id());
        // same rows at same ids
        for (id, row) in t.scan() {
            assert_eq!(back.get(id).unwrap(), row);
        }
        // indexes functional
        let hit = back
            .lookup_unique("by_acc", &[Value::text("ACC7")])
            .unwrap()
            .unwrap();
        assert_eq!(hit.get(0), &Value::Int(7));
        // deleted row is gone
        assert!(back.get(RowId(5)).is_err());
        // select equivalence
        let p = Predicate::eq("acc", Value::text("ACC3"));
        assert_eq!(back.select(&p).unwrap(), t.select(&p).unwrap());
    }

    #[test]
    fn high_water_mark_respected_after_restore() {
        let t = sample_table();
        let data = encode_snapshot(std::iter::once(&t), 0).unwrap();
        let mut back = decode_snapshot(&data).unwrap().0.pop().unwrap();
        // next insert must not collide with the deleted tail id 19
        let id = back
            .insert(vec![Value::Int(100), Value::text("NEW"), Value::Null])
            .unwrap();
        assert_eq!(id, RowId(20));
    }

    #[test]
    fn corruption_detected() {
        let t = sample_table();
        let mut data = encode_snapshot(std::iter::once(&t), 1).unwrap();
        // bad magic
        let mut bad = data.clone();
        bad[0] = b'X';
        assert!(decode_snapshot(&bad).is_err());
        // bad version
        let mut bad = data.clone();
        bad[4] = 99;
        assert!(decode_snapshot(&bad).is_err());
        let mut bad = data.clone();
        bad[4] = 0;
        assert!(decode_snapshot(&bad).is_err());
        // flipped body byte
        let n = data.len();
        data[n - 1] ^= 0xff;
        assert!(decode_snapshot(&data).is_err());
        // short file
        assert!(decode_snapshot(&[1, 2, 3]).is_err());
    }

    #[test]
    fn file_roundtrip_and_missing_file() {
        let vfs = crate::vfs::RealVfs;
        let dir = std::env::temp_dir().join("relstore-snap-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.bin");
        let t = sample_table();
        write_snapshot_file(&vfs, &path, std::iter::once(&t), 5).unwrap();
        let (tables, epoch) = read_snapshot_file(&vfs, &path).unwrap().unwrap();
        assert_eq!(epoch, 5);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), t.len());
        let missing = read_snapshot_file(&vfs, &dir.join("never.bin")).unwrap();
        assert!(missing.is_none());
    }

    #[test]
    fn version1_snapshot_decodes_as_epoch_zero() {
        // Hand-build a version-1 image: same body, no leading epoch varint.
        let t = sample_table();
        let v2 = encode_snapshot(std::iter::once(&t), 0).unwrap();
        let body = &v2[13..]; // epoch 0 encodes as one varint byte
        let mut v1 = Vec::new();
        v1.extend_from_slice(MAGIC);
        v1.extend_from_slice(&1u32.to_le_bytes());
        v1.extend_from_slice(&crc32(body).to_le_bytes());
        v1.extend_from_slice(body);
        let (tables, epoch) = decode_snapshot(&v1).unwrap();
        assert_eq!(epoch, 0);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), t.len());
    }

    #[test]
    fn multiple_tables() {
        let t1 = sample_table();
        let schema2 = Schema::builder("source")
            .column(Column::new("id", ValueType::Int))
            .primary_key(&["id"])
            .build()
            .unwrap();
        let mut t2 = Table::new(schema2);
        t2.insert(vec![Value::Int(1)]).unwrap();
        let data = encode_snapshot([&t1, &t2].into_iter(), 0).unwrap();
        let (tables, _) = decode_snapshot(&data).unwrap();
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].name(), "object");
        assert_eq!(tables[1].name(), "source");
        assert_eq!(tables[1].len(), 1);
    }
}
