//! Heap tables with slotted storage and index maintenance.
//!
//! A [`Table`] owns its rows either *resident* (a slot vector addressed by
//! [`RowId`]) or *paged*: sealed slotted pages behind the buffer pool
//! ([`crate::pager`]) plus an open in-memory tail page. Row ids are
//! monotonically assigned and never reused; deleting a row tombstones its
//! slot. Every declared index (including the primary key, named `"pk"`) is
//! maintained on insert/update/delete and kept resident in both modes —
//! only row bodies page out, so indexed point lookups pin exactly the
//! pages they touch.
//!
//! Reads go through [`Table::select`], which performs simple access-path
//! selection: if the predicate's top-level conjunction pins every column of
//! some index with equality, the index serves the lookup and the residual
//! predicate filters the candidates; otherwise a full scan runs.

use std::sync::Arc;

use crate::error::{StoreError, StoreResult};
use crate::index::{format_key, IndexKey, IndexStore};
use crate::page::{encoded_row_len, PageId, MAX_PAGE_SLOTS};
use crate::pager::{PageDirEntry, PagedTableMeta, Pager, PinnedPage};
use crate::predicate::Predicate;
use crate::row::{Row, RowId};
use crate::schema::Schema;
use crate::value::Value;

/// One block of a batched columnar scan
/// ([`Table::scan_prefix_columnar`]): the requested columns decoded into
/// parallel buffers for `len` rows. Buffers are reused across blocks — a
/// sink must not hold on to them past its call.
#[derive(Debug)]
pub struct ColumnarBlock {
    len: usize,
    /// One buffer per requested int column, in request order.
    pub ints: Vec<Vec<i64>>,
    /// One buffer per requested float column, in request order.
    pub floats: Vec<Vec<Option<f64>>>,
}

impl ColumnarBlock {
    /// Rows in this block.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the block holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// A sealed page of a paged table: `slots` consecutive row ids starting at
/// `base`, owned by the buffer pool under
/// `PageId { table_id, page_no: <position in the page list> }`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SealedPage {
    pub(crate) base: u64,
    pub(crate) slots: u32,
}

/// Paged row storage: a contiguous list of sealed pages covering row ids
/// `[0, tail_base)` plus the open tail page covering `[tail_base, ..)`.
#[derive(Debug)]
struct PagedRows {
    pager: Arc<Pager>,
    table_id: u32,
    pages: Vec<SealedPage>,
    tail: Vec<Option<Row>>,
    tail_base: u64,
    /// Encoded bytes of the live tail rows — the page-fill trigger.
    tail_bytes: usize,
}

/// Where a row id lives in a paged store.
enum Loc {
    /// Open tail page, at this offset.
    Tail(usize),
    /// Sealed page `pages[i]`, slot `j`.
    Page(usize, usize),
    /// At or beyond the high-water mark.
    Beyond,
}

impl PagedRows {
    fn page_id(&self, idx: usize) -> PageId {
        PageId {
            table_id: self.table_id,
            page_no: idx as u32,
        }
    }

    fn high_water(&self) -> u64 {
        self.tail_base + self.tail.len() as u64
    }

    fn locate(&self, id: u64) -> Loc {
        if id >= self.tail_base {
            let off = (id - self.tail_base) as usize;
            if off < self.tail.len() {
                Loc::Tail(off)
            } else {
                Loc::Beyond
            }
        } else {
            // Sealed pages tile [0, tail_base) contiguously; find the page
            // whose base is the greatest one <= id.
            let idx = match self.pages.binary_search_by(|p| p.base.cmp(&id)) {
                Ok(i) => i,
                Err(0) => return Loc::Beyond,
                Err(i) => i - 1,
            };
            let slot = (id - self.pages[idx].base) as usize;
            if slot < self.pages[idx].slots as usize {
                Loc::Page(idx, slot)
            } else {
                Loc::Beyond
            }
        }
    }

    /// Seal the open tail into the buffer pool when it is full (by bytes
    /// against the configured page size, or by the slot cap). The tail is
    /// recorded in `pages` *before* the pool install, so an eviction error
    /// inside `install` (which still leaves the new frame resident and
    /// dirty) keeps table and pool consistent.
    fn maybe_seal(&mut self) -> StoreResult<()> {
        while !self.tail.is_empty()
            && (self.tail.len() >= MAX_PAGE_SLOTS
                || self.tail_bytes >= self.pager.config().page_bytes)
        {
            self.seal_tail()?;
        }
        Ok(())
    }

    fn seal_tail(&mut self) -> StoreResult<()> {
        if self.tail.is_empty() {
            return Ok(());
        }
        let rows = std::mem::take(&mut self.tail);
        let base = self.tail_base;
        let page_no = self.pages.len() as u32;
        self.pages.push(SealedPage {
            base,
            slots: rows.len() as u32,
        });
        self.tail_base = base + rows.len() as u64;
        self.tail_bytes = 0;
        self.pager.install(
            PageId {
                table_id: self.table_id,
                page_no,
            },
            base,
            rows,
        )
    }
}

/// Row storage behind a [`Table`]: fully resident, or paged through the
/// buffer pool.
#[derive(Debug)]
enum RowStore {
    Resident(Vec<Option<Row>>),
    Paged(PagedRows),
}

impl RowStore {
    /// One past the highest assigned row id.
    fn high_water(&self) -> u64 {
        match self {
            RowStore::Resident(slots) => slots.len() as u64,
            RowStore::Paged(p) => p.high_water(),
        }
    }

    /// Append a slot without running the seal check (infallible, so callers
    /// can order it after index maintenance and stay consistent).
    fn push_raw(&mut self, row: Option<Row>) {
        match self {
            RowStore::Resident(slots) => slots.push(row),
            RowStore::Paged(p) => {
                if let Some(r) = &row {
                    p.tail_bytes += encoded_row_len(r.values());
                }
                p.tail.push(row);
            }
        }
    }

    /// Run the deferred seal check after one or more `push_raw` calls. An
    /// error leaves every pushed row stored (in the tail or in a resident
    /// pool frame) — only the page-out I/O failed.
    fn settle(&mut self) -> StoreResult<()> {
        match self {
            RowStore::Resident(_) => Ok(()),
            RowStore::Paged(p) => p.maybe_seal(),
        }
    }

    /// Extend with tombstones until the high-water mark reaches `target`
    /// (gap fill for replayed sparse row ids).
    fn fill_gap_to(&mut self, target: u64) -> StoreResult<()> {
        match self {
            RowStore::Resident(slots) => {
                slots.resize(target as usize, None);
                Ok(())
            }
            RowStore::Paged(p) => {
                while p.high_water() < target {
                    p.tail.push(None);
                    // Tombstones are zero encoded bytes; only the slot cap
                    // can trigger a seal here, and it must, or a huge gap
                    // would grow one page without bound.
                    if p.tail.len() >= MAX_PAGE_SLOTS {
                        p.maybe_seal()?;
                    }
                }
                Ok(())
            }
        }
    }

    /// Clone out the row at `id`; `Ok(None)` for tombstones and ids beyond
    /// the high-water mark.
    fn get_owned(&self, id: u64) -> StoreResult<Option<Row>> {
        self.with_row(id, Row::clone)
    }

    /// Apply `f` to the row at `id` without cloning it; `Ok(None)` for
    /// tombstones and out-of-range ids. Paged stores pin the page for the
    /// duration of the call.
    fn with_row<T>(&self, id: u64, f: impl FnOnce(&Row) -> T) -> StoreResult<Option<T>> {
        match self {
            RowStore::Resident(slots) => Ok(slots.get(id as usize).and_then(|s| s.as_ref()).map(f)),
            RowStore::Paged(p) => match p.locate(id) {
                Loc::Beyond => Ok(None),
                Loc::Tail(off) => Ok(p.tail[off].as_ref().map(f)),
                Loc::Page(idx, slot) => {
                    let pin = p.pager.pin(p.page_id(idx))?;
                    Ok(pin.rows().get(slot).and_then(|s| s.as_ref()).map(f))
                }
            },
        }
    }

    /// Swap the slot at `id` (which must be below the high-water mark) for
    /// `row`, returning the previous contents. For paged stores the page
    /// mutation is copy-on-write through the pool and marks the page dirty;
    /// an I/O error means the mutation was *not* applied.
    fn replace(&mut self, id: u64, row: Option<Row>) -> StoreResult<Option<Row>> {
        match self {
            RowStore::Resident(slots) => match slots.get_mut(id as usize) {
                Some(slot) => Ok(std::mem::replace(slot, row)),
                None => Err(StoreError::Corrupt(format!(
                    "slot write at {id} beyond high-water mark {}",
                    slots.len()
                ))),
            },
            RowStore::Paged(p) => match p.locate(id) {
                Loc::Beyond => Err(StoreError::Corrupt(format!(
                    "slot write at {id} beyond high-water mark {}",
                    p.high_water()
                ))),
                Loc::Tail(off) => {
                    if let Some(r) = &row {
                        p.tail_bytes += encoded_row_len(r.values());
                    }
                    let old = std::mem::replace(&mut p.tail[off], row);
                    if let Some(r) = &old {
                        p.tail_bytes = p.tail_bytes.saturating_sub(encoded_row_len(r.values()));
                    }
                    Ok(old)
                }
                Loc::Page(idx, slot) => {
                    let pid = p.page_id(idx);
                    p.pager.mutate(pid, move |rows| match rows.get_mut(slot) {
                        Some(s) => Ok(std::mem::replace(s, row)),
                        None => Err(StoreError::Corrupt(format!(
                            "page {pid:?} shorter than its directory entry"
                        ))),
                    })?
                }
            },
        }
    }

    /// Visit every live row in row-id order, propagating sink errors and
    /// page-fault I/O errors. Paged stores pin each sealed page exactly
    /// once for the duration of its slice.
    fn for_each(&self, f: &mut dyn FnMut(RowId, &Row) -> StoreResult<()>) -> StoreResult<()> {
        match self {
            RowStore::Resident(slots) => {
                for (i, slot) in slots.iter().enumerate() {
                    if let Some(row) = slot {
                        f(RowId(i as u64), row)?;
                    }
                }
                Ok(())
            }
            RowStore::Paged(p) => {
                for (idx, sp) in p.pages.iter().enumerate() {
                    let pin = p.pager.pin(p.page_id(idx))?;
                    for (i, slot) in pin.rows().iter().enumerate() {
                        if let Some(row) = slot {
                            f(RowId(sp.base + i as u64), row)?;
                        }
                    }
                }
                for (i, slot) in p.tail.iter().enumerate() {
                    if let Some(row) = slot {
                        f(RowId(p.tail_base + i as u64), row)?;
                    }
                }
                Ok(())
            }
        }
    }
}

/// A read cursor over a [`RowStore`] that caches the last pinned page, so
/// index-driven loops that touch several rows of the same page fault it in
/// once instead of per row.
struct RowCursor<'a> {
    store: &'a RowStore,
    cached: Option<(u32, PinnedPage)>,
}

impl<'a> RowCursor<'a> {
    fn new(store: &'a RowStore) -> Self {
        RowCursor {
            store,
            cached: None,
        }
    }

    /// Apply `f` to the live row at `id`; `Ok(None)` for tombstones and
    /// out-of-range ids.
    fn with<T>(&mut self, id: RowId, f: impl FnOnce(&Row) -> T) -> StoreResult<Option<T>> {
        let p = match self.store {
            RowStore::Resident(slots) => {
                return Ok(slots.get(id.0 as usize).and_then(|s| s.as_ref()).map(f));
            }
            RowStore::Paged(p) => p,
        };
        match p.locate(id.0) {
            Loc::Beyond => Ok(None),
            Loc::Tail(off) => Ok(p.tail[off].as_ref().map(f)),
            Loc::Page(idx, slot) => {
                let page_no = idx as u32;
                if !matches!(&self.cached, Some((no, _)) if *no == page_no) {
                    let pin = p.pager.pin(p.page_id(idx))?;
                    self.cached = Some((page_no, pin));
                }
                let rows = match &self.cached {
                    Some((_, pin)) => pin.rows(),
                    // unreachable: the cache was just filled above
                    None => {
                        return Err(StoreError::Corrupt(
                            "row cursor lost its pinned page".into(),
                        ))
                    }
                };
                Ok(rows.get(slot).and_then(|s| s.as_ref()).map(f))
            }
        }
    }
}

/// An index entry pointed at a dead or out-of-range slot: indexes and row
/// storage have diverged — surfaced as corruption instead of a panic.
fn dead_index_ref(table: &str, id: RowId) -> StoreError {
    StoreError::Corrupt(format!(
        "index references dead row {} in table {table}",
        id.0
    ))
}

/// Owning iterator over a table's live rows in row-id order (see
/// [`Table::scan`]).
///
/// Paged stores fault pages in through the buffer pool as the iterator
/// advances; a page-fault I/O error ends the iteration early (an
/// `Iterator` cannot yield a `Result` without changing every call site).
/// Paths that must distinguish "end of data" from "I/O error" use
/// [`Table::for_each_row`] instead.
pub struct Scan<'a> {
    cursor: RowCursor<'a>,
    next_id: u64,
    high: u64,
    failed: bool,
}

impl Iterator for Scan<'_> {
    type Item = (RowId, Row);

    fn next(&mut self) -> Option<(RowId, Row)> {
        while !self.failed && self.next_id < self.high {
            let id = RowId(self.next_id);
            self.next_id += 1;
            match self.cursor.with(id, Row::clone) {
                Ok(Some(row)) => return Some((id, row)),
                Ok(None) => continue,
                Err(_) => self.failed = true,
            }
        }
        None
    }
}

/// A table: schema, row storage, and indexes.
#[derive(Debug)]
pub struct Table {
    schema: Schema,
    /// Row slots; resident vector or pool-backed pages. A slot is `None`
    /// for deleted rows.
    store: RowStore,
    live: usize,
    indexes: Vec<IndexStore>,
}

impl Table {
    /// Create an empty resident table for `schema`.
    pub fn new(schema: Schema) -> Self {
        let indexes = schema
            .indexes()
            .iter()
            .map(|d| IndexStore::new(d.unique))
            .collect();
        Table {
            schema,
            store: RowStore::Resident(Vec::new()),
            live: 0,
            indexes,
        }
    }

    /// Create an empty paged table whose row bodies live behind `pager`
    /// under `table_id`.
    pub(crate) fn new_paged(schema: Schema, pager: Arc<Pager>, table_id: u32) -> Self {
        let indexes = schema
            .indexes()
            .iter()
            .map(|d| IndexStore::new(d.unique))
            .collect();
        Table {
            schema,
            store: RowStore::Paged(PagedRows {
                pager,
                table_id,
                pages: Vec::new(),
                tail: Vec::new(),
                tail_base: 0,
                tail_bytes: 0,
            }),
            live: 0,
            indexes,
        }
    }

    /// Rebuild a paged table from recovered page-directory metadata. The
    /// sealed pages must tile `[0, tail_base)` contiguously (anything else
    /// is a corrupt directory); indexes and the live count are rebuilt by
    /// streaming every page through the pool once.
    pub(crate) fn new_paged_recovered(
        schema: Schema,
        pager: Arc<Pager>,
        table_id: u32,
        pages: Vec<SealedPage>,
        tail_base: u64,
        tail: Vec<Option<Row>>,
    ) -> StoreResult<Table> {
        let mut expect = 0u64;
        for (i, p) in pages.iter().enumerate() {
            if p.base != expect {
                return Err(StoreError::Corrupt(format!(
                    "page directory of table {}: page {i} starts at {} but previous pages end at {expect}",
                    schema.name(),
                    p.base
                )));
            }
            expect += p.slots as u64;
        }
        if expect != tail_base {
            return Err(StoreError::Corrupt(format!(
                "page directory of table {}: sealed pages end at {expect} but tail starts at {tail_base}",
                schema.name()
            )));
        }
        let tail_bytes = tail
            .iter()
            .flatten()
            .map(|r| encoded_row_len(r.values()))
            .sum();
        let store = RowStore::Paged(PagedRows {
            pager,
            table_id,
            pages,
            tail,
            tail_base,
            tail_bytes,
        });
        let mut indexes: Vec<IndexStore> = schema
            .indexes()
            .iter()
            .map(|d| IndexStore::new(d.unique))
            .collect();
        let mut live = 0usize;
        store.for_each(&mut |id, row| {
            live += 1;
            for (def, ix) in schema.indexes().iter().zip(indexes.iter_mut()) {
                ix.insert(row.project(&def.columns), id).map_err(|e| match e {
                    StoreError::UniqueViolation { key, index, .. } => {
                        StoreError::UniqueViolation {
                            table: schema.name().to_owned(),
                            index,
                            key,
                        }
                    }
                    e => e,
                })?;
            }
            Ok(())
        })?;
        Ok(Table {
            schema,
            store,
            live,
            indexes,
        })
    }

    /// Page ids of all sealed pages (empty for resident tables).
    pub(crate) fn page_ids(&self) -> Vec<PageId> {
        match &self.store {
            RowStore::Resident(_) => Vec::new(),
            RowStore::Paged(p) => (0..p.pages.len()).map(|i| p.page_id(i)).collect(),
        }
    }

    /// Checkpoint metadata for a paged table: every sealed page's heap
    /// location (valid only after the pool has flushed — a page without a
    /// location is corruption) plus the inline tail. `None` for resident
    /// tables.
    pub(crate) fn to_paged_meta(&self) -> StoreResult<Option<PagedTableMeta>> {
        let p = match &self.store {
            RowStore::Resident(_) => return Ok(None),
            RowStore::Paged(p) => p,
        };
        let mut pages = Vec::with_capacity(p.pages.len());
        for (i, sp) in p.pages.iter().enumerate() {
            let loc = p.pager.directory_loc(p.page_id(i)).ok_or_else(|| {
                StoreError::Corrupt(format!(
                    "page {i} of table {} has no heap location at checkpoint",
                    self.schema.name()
                ))
            })?;
            pages.push(PageDirEntry {
                base: sp.base,
                slots: sp.slots,
                loc,
            });
        }
        Ok(Some(PagedTableMeta {
            schema: self.schema.clone(),
            table_id: p.table_id,
            live: self.live as u64,
            pages,
            tail_base: p.tail_base,
            tail: p.tail.clone(),
        }))
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The table name (delegates to the schema).
    pub fn name(&self) -> &str {
        self.schema.name()
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if the table holds no live rows.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The row id the next insert will receive.
    pub fn next_row_id(&self) -> RowId {
        RowId(self.store.high_water())
    }

    /// Insert a row, returning its new row id.
    pub fn insert(&mut self, values: Vec<Value>) -> StoreResult<RowId> {
        self.schema.check_row(&values)?;
        let row = Row::new(values);
        // Check unique constraints before mutating anything.
        for (def, ix) in self.schema.indexes().iter().zip(&self.indexes) {
            if def.unique {
                let key = row.project(&def.columns);
                if ix.would_conflict(&key) {
                    return Err(StoreError::UniqueViolation {
                        table: self.name().to_owned(),
                        index: def.name.clone(),
                        key: format_key(&key),
                    });
                }
            }
        }
        let row_id = RowId(self.store.high_water());
        for (def, ix) in self.schema.indexes().iter().zip(self.indexes.iter_mut()) {
            let key = row.project(&def.columns);
            ix.insert(key, row_id)?;
        }
        self.store.push_raw(Some(row));
        self.live += 1;
        // The row is fully inserted and indexed at this point; a seal
        // (page-out) error leaves the table consistent and is retried on
        // the next insert.
        self.store.settle()?;
        Ok(row_id)
    }

    /// Insert many rows at once, returning their new ids in input order.
    ///
    /// All-or-nothing: every row is schema-checked and every unique index is
    /// probed — against existing keys *and* for duplicates within the batch
    /// — before anything mutates, so an error leaves the table untouched.
    /// Rows then land in contiguous slots and each index is extended bulk
    /// from a key-sorted run of the batch (ascending-key B-tree inserts)
    /// rather than maintained per row.
    pub fn insert_batch(&mut self, rows: Vec<Vec<Value>>) -> StoreResult<Vec<RowId>> {
        if rows.len() <= 1 {
            // trivial batch: the per-row path is already optimal
            return rows.into_iter().map(|r| self.insert(r)).collect();
        }
        let new_rows: Vec<Row> = rows
            .into_iter()
            .map(|values| {
                self.schema.check_row(&values)?;
                Ok(Row::new(values))
            })
            .collect::<StoreResult<_>>()?;
        // Unique pre-checks for the whole batch before any mutation.
        for (def, ix) in self.schema.indexes().iter().zip(&self.indexes) {
            if !def.unique {
                continue;
            }
            let mut keys: Vec<IndexKey> =
                new_rows.iter().map(|row| row.project(&def.columns)).collect();
            keys.sort_unstable();
            for pair in keys.windows(2) {
                if pair[0] == pair[1] {
                    return Err(StoreError::UniqueViolation {
                        table: self.name().to_owned(),
                        index: def.name.clone(),
                        key: format_key(&pair[0]),
                    });
                }
            }
            for key in &keys {
                if ix.would_conflict(key) {
                    return Err(StoreError::UniqueViolation {
                        table: self.name().to_owned(),
                        index: def.name.clone(),
                        key: format_key(key),
                    });
                }
            }
        }
        let first = self.store.high_water();
        let row_ids: Vec<RowId> = (0..new_rows.len() as u64).map(|i| RowId(first + i)).collect();
        // Bulk index build: one key-sorted run per index, inserted in
        // ascending key order.
        for (def, ix) in self.schema.indexes().iter().zip(self.indexes.iter_mut()) {
            let mut entries: Vec<(IndexKey, RowId)> = new_rows
                .iter()
                .zip(&row_ids)
                .map(|(row, id)| (row.project(&def.columns), *id))
                .collect();
            entries.sort_unstable();
            for (key, id) in entries {
                ix.insert(key, id)?;
            }
        }
        for row in new_rows {
            self.store.push_raw(Some(row));
        }
        self.live += row_ids.len();
        self.store.settle()?;
        Ok(row_ids)
    }

    /// Re-insert a row at a specific id, used by snapshot/WAL recovery. The
    /// id must be at or beyond the current high-water mark; the gap (if any)
    /// is filled with tombstones so later replayed ids stay aligned.
    pub(crate) fn insert_at(&mut self, row_id: RowId, values: Vec<Value>) -> StoreResult<()> {
        self.schema.check_row(&values)?;
        if row_id.0 < self.store.high_water() {
            return Err(StoreError::Corrupt(format!(
                "replayed insert at {row_id} below high-water mark {}",
                self.store.high_water()
            )));
        }
        self.store.fill_gap_to(row_id.0)?;
        let row = Row::new(values);
        for (def, ix) in self.schema.indexes().iter().zip(self.indexes.iter_mut()) {
            let key = row.project(&def.columns);
            ix.insert(key, row_id).map_err(|e| match e {
                StoreError::UniqueViolation { key, index, .. } => StoreError::UniqueViolation {
                    table: self.schema.name().to_owned(),
                    index,
                    key,
                },
                e => e,
            })?;
        }
        self.store.push_raw(Some(row));
        self.live += 1;
        self.store.settle()
    }

    /// Restore a previously-deleted row into its original (tombstoned)
    /// slot, re-entering it into all indexes. Used by transaction rollback
    /// to undo deletes.
    pub(crate) fn restore(&mut self, row_id: RowId, values: Vec<Value>) -> StoreResult<()> {
        self.schema.check_row(&values)?;
        let in_range = row_id.0 < self.store.high_water();
        let occupied = in_range && self.store.with_row(row_id.0, |_| ())?.is_some();
        if !in_range || occupied {
            return Err(StoreError::Corrupt(format!(
                "restore target {row_id} is not a tombstone"
            )));
        }
        let row = Row::new(values);
        for (def, ix) in self.schema.indexes().iter().zip(&self.indexes) {
            if def.unique {
                let key = row.project(&def.columns);
                if ix.would_conflict(&key) {
                    return Err(StoreError::UniqueViolation {
                        table: self.schema.name().to_owned(),
                        index: def.name.clone(),
                        key: format_key(&key),
                    });
                }
            }
        }
        // Fallible page I/O first: if the slot write fails nothing has
        // changed; the index inserts after it cannot conflict (pre-checked).
        self.store.replace(row_id.0, Some(row.clone()))?;
        for (def, ix) in self.schema.indexes().iter().zip(self.indexes.iter_mut()) {
            let key = row.project(&def.columns);
            ix.insert(key, row_id)?;
        }
        self.live += 1;
        Ok(())
    }

    /// Fetch a live row by id.
    pub fn get(&self, row_id: RowId) -> StoreResult<Row> {
        self.store
            .get_owned(row_id.0)?
            .ok_or_else(|| StoreError::NoSuchRow {
                table: self.name().to_owned(),
                row_id: row_id.0,
            })
    }

    /// Delete a row by id, returning the removed row.
    pub fn delete(&mut self, row_id: RowId) -> StoreResult<Row> {
        let old = if row_id.0 < self.store.high_water() {
            self.store.replace(row_id.0, None)?
        } else {
            None
        };
        let row = old.ok_or_else(|| StoreError::NoSuchRow {
            table: self.schema.name().to_owned(),
            row_id: row_id.0,
        })?;
        for (def, ix) in self.schema.indexes().iter().zip(self.indexes.iter_mut()) {
            let key = row.project(&def.columns);
            ix.remove(&key, row_id);
        }
        self.live -= 1;
        Ok(row)
    }

    /// Replace the row at `row_id` with new values (index-maintained).
    pub fn update(&mut self, row_id: RowId, values: Vec<Value>) -> StoreResult<()> {
        self.schema.check_row(&values)?;
        let old = self.get(row_id)?;
        let new = Row::new(values);
        // unique pre-check, ignoring this row's own entries
        for (def, ix) in self.schema.indexes().iter().zip(&self.indexes) {
            if def.unique {
                let new_key = new.project(&def.columns);
                let old_key = old.project(&def.columns);
                if new_key != old_key && ix.would_conflict(&new_key) {
                    return Err(StoreError::UniqueViolation {
                        table: self.name().to_owned(),
                        index: def.name.clone(),
                        key: format_key(&new_key),
                    });
                }
            }
        }
        // Fallible page I/O first (an error means the slot was not
        // written), then the pre-checked index delta.
        self.store.replace(row_id.0, Some(new.clone()))?;
        for (def, ix) in self.schema.indexes().iter().zip(self.indexes.iter_mut()) {
            let old_key = old.project(&def.columns);
            let new_key = new.project(&def.columns);
            if old_key != new_key {
                ix.remove(&old_key, row_id);
                ix.insert(new_key, row_id)?;
            }
        }
        Ok(())
    }

    /// Iterate live rows in row-id order, yielding owned rows.
    ///
    /// On a paged table this faults pages in through the buffer pool; an
    /// I/O error ends the iteration early. Internal paths that must
    /// propagate errors use [`for_each_row`](Self::for_each_row).
    pub fn scan(&self) -> Scan<'_> {
        Scan {
            cursor: RowCursor::new(&self.store),
            next_id: 0,
            high: self.store.high_water(),
            failed: false,
        }
    }

    /// Visit every live row in row-id order without cloning, propagating
    /// sink errors and page-fault I/O errors. This is the streaming
    /// substrate for snapshots, reindexing, and aggregate scans.
    pub fn for_each_row(
        &self,
        mut f: impl FnMut(RowId, &Row) -> StoreResult<()>,
    ) -> StoreResult<()> {
        self.store.for_each(&mut f)
    }

    /// Exact-key lookup on a named index.
    pub fn lookup(&self, index: &str, key: &[Value]) -> StoreResult<Vec<Row>> {
        let pos = self.index_position(index)?;
        let ids = self.indexes[pos].lookup(&key.to_vec());
        let mut cursor = RowCursor::new(&self.store);
        let mut out = Vec::with_capacity(ids.len());
        for id in ids {
            let row = cursor
                .with(id, Row::clone)?
                .ok_or_else(|| dead_index_ref(self.schema.name(), id))?;
            out.push(row);
        }
        Ok(out)
    }

    /// Prefix lookup on a composite index (pins the first `prefix.len()`
    /// key columns).
    pub fn lookup_prefix(&self, index: &str, prefix: &[Value]) -> StoreResult<Vec<Row>> {
        let pos = self.index_position(index)?;
        let ids = self.indexes[pos].prefix_lookup(prefix);
        let mut cursor = RowCursor::new(&self.store);
        let mut out = Vec::with_capacity(ids.len());
        for id in ids {
            let row = cursor
                .with(id, Row::clone)?
                .ok_or_else(|| dead_index_ref(self.schema.name(), id))?;
            out.push(row);
        }
        Ok(out)
    }

    /// Unique-index point lookup returning at most one row.
    pub fn lookup_unique(&self, index: &str, key: &[Value]) -> StoreResult<Option<Row>> {
        let mut rows = self.lookup(index, key)?;
        Ok(if rows.is_empty() {
            None
        } else {
            Some(rows.swap_remove(0))
        })
    }

    /// Exact-key lookup streamed row by row, without materializing a
    /// `Vec<Row>` of candidates first.
    pub fn for_each_lookup(
        &self,
        index: &str,
        key: &[Value],
        mut f: impl FnMut(&Row),
    ) -> StoreResult<()> {
        let pos = self.index_position(index)?;
        let mut cursor = RowCursor::new(&self.store);
        let mut first_err = None;
        self.indexes[pos].for_each(&key.to_vec(), |id| {
            if first_err.is_some() {
                return;
            }
            match cursor.with(id, &mut f) {
                Ok(Some(())) => {}
                Ok(None) => first_err = Some(dead_index_ref(self.schema.name(), id)),
                Err(e) => first_err = Some(e),
            }
        });
        first_err.map_or(Ok(()), Err)
    }

    /// Stream `(index key, row)` entries of a named index whose key lies in
    /// `[lo, hi]` (inclusive), in key order. This is the substrate for
    /// batched key resolution: the caller merges its sorted probe keys
    /// against this single ordered pass instead of issuing one
    /// [`lookup_unique`](Self::lookup_unique) per probe.
    pub fn for_each_index_range(
        &self,
        index: &str,
        lo: &[Value],
        hi: &[Value],
        mut f: impl FnMut(&[Value], &Row),
    ) -> StoreResult<()> {
        let pos = self.index_position(index)?;
        let mut cursor = RowCursor::new(&self.store);
        let mut first_err = None;
        self.indexes[pos].range_entries_for_each(&lo.to_vec(), &hi.to_vec(), |key, id| {
            if first_err.is_some() {
                return;
            }
            match cursor.with(id, |row| f(key, row)) {
                Ok(Some(())) => {}
                Ok(None) => first_err = Some(dead_index_ref(self.schema.name(), id)),
                Err(e) => first_err = Some(e),
            }
        });
        first_err.map_or(Ok(()), Err)
    }

    /// Row ids under an exact key of a named index, in key/row order.
    pub fn lookup_row_ids(&self, index: &str, key: &[Value]) -> StoreResult<Vec<RowId>> {
        let pos = self.index_position(index)?;
        Ok(self.indexes[pos].lookup(&key.to_vec()))
    }

    /// Number of rows under an exact key (no row materialization at all).
    pub fn index_lookup_count(&self, index: &str, key: &[Value]) -> StoreResult<usize> {
        let pos = self.index_position(index)?;
        Ok(self.indexes[pos].lookup_count(&key.to_vec()))
    }

    /// Number of rows under a key prefix of a composite index.
    pub fn index_prefix_count(&self, index: &str, prefix: &[Value]) -> StoreResult<usize> {
        let pos = self.index_position(index)?;
        Ok(self.indexes[pos].prefix_count(prefix))
    }

    /// Batched columnar scan over an index prefix: rows are visited in index
    /// key order and decoded straight into per-column buffers that are
    /// handed to `sink` one block at a time. Compared to
    /// [`lookup_prefix`](Self::lookup_prefix) this never materializes the
    /// candidate row-id/row vectors and touches only the requested
    /// columns, which is what bulk loaders (e.g. mapping-index construction
    /// over `OBJECT_REL`) want. On a paged table each page is pinned only
    /// while its rows are being decoded. Returns the total number of rows
    /// visited.
    ///
    /// `int_cols` decode with [`Value::as_int`] semantics (non-int values
    /// become 0); `float_cols` decode with [`Value::as_float`] semantics
    /// (NULL and non-float values become `None`).
    pub fn scan_prefix_columnar(
        &self,
        index: &str,
        prefix: &[Value],
        int_cols: &[&str],
        float_cols: &[&str],
        block_rows: usize,
        mut sink: impl FnMut(&ColumnarBlock),
    ) -> StoreResult<usize> {
        let pos = self.index_position(index)?;
        let int_ords: Vec<usize> = int_cols
            .iter()
            .map(|c| self.schema.column_index(c))
            .collect::<StoreResult<_>>()?;
        let float_ords: Vec<usize> = float_cols
            .iter()
            .map(|c| self.schema.column_index(c))
            .collect::<StoreResult<_>>()?;
        let block_rows = block_rows.max(1);
        let mut block = ColumnarBlock {
            len: 0,
            ints: vec![Vec::with_capacity(block_rows); int_ords.len()],
            floats: vec![Vec::with_capacity(block_rows); float_ords.len()],
        };
        let mut cursor = RowCursor::new(&self.store);
        let mut total = 0usize;
        let mut first_err = None;
        self.indexes[pos].prefix_for_each(prefix, |id| {
            if first_err.is_some() {
                return;
            }
            let visited = cursor.with(id, |row| {
                for (buf, &ord) in block.ints.iter_mut().zip(&int_ords) {
                    buf.push(row.get(ord).as_int().unwrap_or(0));
                }
                for (buf, &ord) in block.floats.iter_mut().zip(&float_ords) {
                    buf.push(row.get(ord).as_float());
                }
            });
            match visited {
                Ok(Some(())) => {
                    block.len += 1;
                    total += 1;
                    if block.len == block_rows {
                        sink(&block);
                        block.len = 0;
                        block.ints.iter_mut().for_each(Vec::clear);
                        block.floats.iter_mut().for_each(Vec::clear);
                    }
                }
                Ok(None) => first_err = Some(dead_index_ref(self.schema.name(), id)),
                Err(e) => first_err = Some(e),
            }
        });
        if let Some(e) = first_err {
            return Err(e);
        }
        if block.len > 0 {
            sink(&block);
        }
        Ok(total)
    }

    /// Adopt `schema`'s index list, keeping the table's columns and primary
    /// key as they are. The caller (`Database::ensure_table`) has already
    /// verified that name, columns and primary key match; this method builds
    /// any indexes present only in the new schema from the live rows, drops
    /// indexes no longer declared, and reuses unchanged ones. All new
    /// structures are built before anything is swapped, so a failure (e.g. a
    /// unique violation surfaced by existing data) leaves the table intact.
    pub(crate) fn reconcile_indexes(&mut self, schema: Schema) -> StoreResult<()> {
        let mut built: Vec<Option<IndexStore>> = Vec::with_capacity(schema.indexes().len());
        for def in schema.indexes() {
            let reusable = self
                .schema
                .indexes()
                .iter()
                .any(|old| old.name == def.name && old == def);
            if reusable {
                built.push(None);
                continue;
            }
            let mut ix = IndexStore::new(def.unique);
            self.for_each_row(|id, row| {
                ix.insert(row.project(&def.columns), id)
                    .map_err(|e| match e {
                        StoreError::UniqueViolation { key, .. } => StoreError::UniqueViolation {
                            table: schema.name().to_owned(),
                            index: def.name.clone(),
                            key,
                        },
                        e => e,
                    })
            })?;
            built.push(Some(ix));
        }
        let old_defs: Vec<String> =
            self.schema.indexes().iter().map(|d| d.name.clone()).collect();
        let mut new_indexes = Vec::with_capacity(built.len());
        for (def, b) in schema.indexes().iter().zip(built) {
            match b {
                Some(ix) => new_indexes.push(ix),
                None => {
                    let pos = old_defs
                        .iter()
                        .position(|n| *n == def.name)
                        .ok_or_else(|| {
                            StoreError::Corrupt(format!(
                                "index {} missing from old schema during reindex",
                                def.name
                            ))
                        })?;
                    new_indexes
                        .push(std::mem::replace(&mut self.indexes[pos], IndexStore::new(false)));
                }
            }
        }
        self.indexes = new_indexes;
        self.schema = schema;
        Ok(())
    }

    /// Serve a range scan from an ordered single-column index when the
    /// predicate carries range constraints on its key column. Returns the
    /// candidate row ids or `None` if no index applies.
    fn pick_range(&self, predicate: &Predicate) -> Option<Vec<RowId>> {
        use std::ops::Bound;
        let ranges = predicate.range_constraints();
        if ranges.is_empty() {
            return None;
        }
        for (pos, def) in self.schema.indexes().iter().enumerate() {
            if def.columns.len() != 1 {
                continue;
            }
            let key_col = &self.schema.columns()[def.columns[0]].name;
            let mut lo: Bound<Vec<Value>> = Bound::Unbounded;
            let mut hi: Bound<Vec<Value>> = Bound::Unbounded;
            let mut applies = false;
            for (col, op, value) in &ranges {
                if col != key_col {
                    continue;
                }
                applies = true;
                let key = vec![(*value).clone()];
                match op {
                    crate::predicate::CmpOp::Gt => lo = tighten_lo(lo, Bound::Excluded(key)),
                    crate::predicate::CmpOp::Ge => lo = tighten_lo(lo, Bound::Included(key)),
                    crate::predicate::CmpOp::Lt => hi = tighten_hi(hi, Bound::Excluded(key)),
                    crate::predicate::CmpOp::Le => hi = tighten_hi(hi, Bound::Included(key)),
                    // a non-range op here cannot tighten the bound; the
                    // residual predicate still filters, so skipping it is
                    // conservative (a wider scan), never wrong
                    _ => {}
                }
            }
            if applies {
                let lo_ref = match &lo {
                    Bound::Included(k) => Bound::Included(k),
                    Bound::Excluded(k) => Bound::Excluded(k),
                    Bound::Unbounded => Bound::Unbounded,
                };
                let hi_ref = match &hi {
                    Bound::Included(k) => Bound::Included(k),
                    Bound::Excluded(k) => Bound::Excluded(k),
                    Bound::Unbounded => Bound::Unbounded,
                };
                return Some(self.indexes[pos].range(lo_ref, hi_ref));
            }
        }
        None
    }

    /// Select rows matching `predicate`, using an index when the predicate's
    /// equality constraints cover one, otherwise a full scan.
    pub fn select(&self, predicate: &Predicate) -> StoreResult<Vec<Row>> {
        Ok(self
            .select_with_ids(predicate)?
            .into_iter()
            .map(|(_, r)| r)
            .collect())
    }

    /// Like [`select`](Self::select) but also yields row ids.
    pub fn select_with_ids(&self, predicate: &Predicate) -> StoreResult<Vec<(RowId, Row)>> {
        let bound = predicate.bind(&self.schema)?;
        // Access-path selection: find an index fully pinned by equality
        // constraints of the top-level conjunction.
        if let Some((pos, key)) = self.pick_index(predicate) {
            let ids = self.indexes[pos].lookup(&key);
            let mut cursor = RowCursor::new(&self.store);
            let mut out = Vec::with_capacity(ids.len());
            for id in ids {
                match cursor.with(id, |r| bound.matches(r.values()).then(|| r.clone()))? {
                    None => return Err(dead_index_ref(self.schema.name(), id)),
                    Some(Some(row)) => out.push((id, row)),
                    Some(None) => {}
                }
            }
            return Ok(out);
        }
        if let Some(ids) = self.pick_range(predicate) {
            let mut cursor = RowCursor::new(&self.store);
            let mut out = Vec::with_capacity(ids.len());
            for id in ids {
                match cursor.with(id, |r| bound.matches(r.values()).then(|| r.clone()))? {
                    None => return Err(dead_index_ref(self.schema.name(), id)),
                    Some(Some(row)) => out.push((id, row)),
                    Some(None) => {}
                }
            }
            // index range order is key order; normalize to row-id order to
            // match the full-scan result exactly
            out.sort_by_key(|(id, _)| *id);
            return Ok(out);
        }
        let mut out = Vec::new();
        self.for_each_row(|id, row| {
            if bound.matches(row.values()) {
                out.push((id, row.clone()));
            }
            Ok(())
        })?;
        Ok(out)
    }

    /// Count rows matching a predicate (no materialization beyond the scan).
    pub fn count(&self, predicate: &Predicate) -> StoreResult<usize> {
        let bound = predicate.bind(&self.schema)?;
        if let Some((pos, key)) = self.pick_index(predicate) {
            let ids = self.indexes[pos].lookup(&key);
            let mut cursor = RowCursor::new(&self.store);
            let mut n = 0;
            for id in ids {
                match cursor.with(id, |r| bound.matches(r.values()))? {
                    None => return Err(dead_index_ref(self.schema.name(), id)),
                    Some(true) => n += 1,
                    Some(false) => {}
                }
            }
            return Ok(n);
        }
        let mut n = 0;
        self.for_each_row(|_, row| {
            if bound.matches(row.values()) {
                n += 1;
            }
            Ok(())
        })?;
        Ok(n)
    }

    /// Pick the first index whose every column is pinned by an equality
    /// constraint; returns (index position, lookup key).
    fn pick_index(&self, predicate: &Predicate) -> Option<(usize, Vec<Value>)> {
        let constraints = predicate.equality_constraints();
        if constraints.is_empty() {
            return None;
        }
        'outer: for (pos, def) in self.schema.indexes().iter().enumerate() {
            let mut key = Vec::with_capacity(def.columns.len());
            for &col in &def.columns {
                let name = &self.schema.columns()[col].name;
                match constraints.iter().find(|(c, _)| c == name) {
                    Some((_, v)) => key.push((*v).clone()),
                    None => continue 'outer,
                }
            }
            return Some((pos, key));
        }
        None
    }

    /// Position of a named index.
    fn index_position(&self, name: &str) -> StoreResult<usize> {
        self.schema
            .indexes()
            .iter()
            .position(|d| d.name == name)
            .ok_or_else(|| StoreError::NoSuchIndex {
                table: self.name().to_owned(),
                index: name.to_owned(),
            })
    }

    /// Entry count of a named index (for stats).
    pub fn index_entries(&self, name: &str) -> StoreResult<usize> {
        Ok(self.indexes[self.index_position(name)?].entry_count())
    }

    /// `SELECT column, COUNT(*) GROUP BY column`: live-row counts per
    /// distinct value of a column, in value order.
    pub fn group_count(&self, column: &str) -> StoreResult<Vec<(Value, usize)>> {
        let ordinal = self.schema.column_index(column)?;
        let mut counts: std::collections::BTreeMap<Value, usize> =
            std::collections::BTreeMap::new();
        self.for_each_row(|_, row| {
            *counts.entry(row.get(ordinal).clone()).or_default() += 1;
            Ok(())
        })?;
        Ok(counts.into_iter().collect())
    }

    /// `SELECT DISTINCT column`: distinct live values of a column, sorted.
    pub fn distinct_values(&self, column: &str) -> StoreResult<Vec<Value>> {
        Ok(self
            .group_count(column)?
            .into_iter()
            .map(|(v, _)| v)
            .collect())
    }
}

/// Keep the tighter of two lower bounds.
fn tighten_lo(
    current: std::ops::Bound<Vec<Value>>,
    candidate: std::ops::Bound<Vec<Value>>,
) -> std::ops::Bound<Vec<Value>> {
    use std::ops::Bound::*;
    match (&current, &candidate) {
        (Unbounded, _) => candidate,
        (_, Unbounded) => current,
        (Included(a) | Excluded(a), Included(b) | Excluded(b)) => {
            if b > a {
                candidate
            } else if a > b {
                current
            } else {
                // equal keys: Excluded is tighter
                if matches!(current, Excluded(_)) {
                    current
                } else {
                    candidate
                }
            }
        }
    }
}

/// Keep the tighter of two upper bounds.
fn tighten_hi(
    current: std::ops::Bound<Vec<Value>>,
    candidate: std::ops::Bound<Vec<Value>>,
) -> std::ops::Bound<Vec<Value>> {
    use std::ops::Bound::*;
    match (&current, &candidate) {
        (Unbounded, _) => candidate,
        (_, Unbounded) => current,
        (Included(a) | Excluded(a), Included(b) | Excluded(b)) => {
            if b < a {
                candidate
            } else if a < b {
                current
            } else {
                if matches!(current, Excluded(_)) {
                    current
                } else {
                    candidate
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::PoolConfig;
    use crate::predicate::CmpOp;
    use crate::schema::Column;
    use crate::value::ValueType;
    use crate::vfs::FaultVfs;
    use std::path::PathBuf;

    fn object_schema() -> Schema {
        Schema::builder("object")
            .column(Column::new("object_id", ValueType::Int))
            .column(Column::new("source_id", ValueType::Int))
            .column(Column::new("accession", ValueType::Text))
            .column(Column::nullable("text", ValueType::Text))
            .primary_key(&["object_id"])
            .unique_index("by_acc", &["source_id", "accession"])
            .index("by_source", &["source_id"])
            .build()
            .unwrap()
    }

    fn object_table() -> Table {
        Table::new(object_schema())
    }

    /// A paged object table over a fresh in-memory fault VFS. Tiny pages
    /// (`page_bytes`) force frequent seals; a small pool forces eviction.
    fn paged_object_table(pool_pages: usize, page_bytes: usize) -> Table {
        let vfs = FaultVfs::new();
        let pager = Arc::new(Pager::new(
            Arc::new(vfs),
            PathBuf::from("/db/heap.1.bin"),
            PoolConfig {
                page_bytes,
                pool_pages,
            },
        ));
        Table::new_paged(object_schema(), pager, 1)
    }

    fn obj(id: i64, src: i64, acc: &str) -> Vec<Value> {
        vec![
            Value::Int(id),
            Value::Int(src),
            Value::text(acc),
            Value::Null,
        ]
    }

    #[test]
    fn insert_get_scan() {
        let mut t = object_table();
        let r0 = t.insert(obj(1, 10, "A")).unwrap();
        let r1 = t.insert(obj(2, 10, "B")).unwrap();
        assert_eq!(r0, RowId(0));
        assert_eq!(r1, RowId(1));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(r1).unwrap().get(2), &Value::text("B"));
        let all: Vec<_> = t.scan().map(|(id, _)| id).collect();
        assert_eq!(all, vec![RowId(0), RowId(1)]);
    }

    #[test]
    fn insert_batch_matches_per_row_inserts() {
        let mut a = object_table();
        let mut b = object_table();
        let rows: Vec<Vec<Value>> = vec![
            obj(3, 1, "zz"),
            obj(1, 1, "aa"),
            obj(2, 2, "aa"),
            obj(4, 1, "mm"),
        ];
        let batch_ids = a.insert_batch(rows.clone()).unwrap();
        let row_ids: Vec<RowId> = rows.into_iter().map(|r| b.insert(r).unwrap()).collect();
        assert_eq!(batch_ids, row_ids);
        assert_eq!(a.len(), b.len());
        for id in &batch_ids {
            assert_eq!(a.get(*id).unwrap(), b.get(*id).unwrap());
        }
        // indexes answer identically
        for key in [&[Value::Int(1)][..], &[Value::Int(2)][..]] {
            assert_eq!(
                a.lookup_prefix("by_acc", key).unwrap(),
                b.lookup_prefix("by_acc", key).unwrap()
            );
        }
    }

    #[test]
    fn insert_batch_rejects_conflicts_without_mutating() {
        let mut t = object_table();
        t.insert(obj(1, 1, "aa")).unwrap();
        // conflict against existing rows
        let err = t.insert_batch(vec![obj(2, 1, "bb"), obj(3, 1, "aa")]);
        assert!(matches!(err, Err(StoreError::UniqueViolation { .. })));
        assert_eq!(t.len(), 1, "nothing inserted on conflict");
        // duplicate within the batch itself
        let err = t.insert_batch(vec![obj(2, 1, "bb"), obj(3, 1, "bb")]);
        assert!(matches!(err, Err(StoreError::UniqueViolation { .. })));
        assert_eq!(t.len(), 1);
        // a clean batch still works afterwards
        let ids = t.insert_batch(vec![obj(2, 1, "bb"), obj(3, 1, "cc")]).unwrap();
        assert_eq!(ids, vec![RowId(1), RowId(2)]);
    }

    #[test]
    fn index_range_streams_entries_in_key_order() {
        let mut t = object_table();
        for (id, acc) in [(1, "b"), (2, "d"), (3, "a"), (4, "f")] {
            t.insert(obj(id, 1, acc)).unwrap();
        }
        t.insert(obj(5, 2, "c")).unwrap();
        let lo = [Value::Int(1), Value::text("b")];
        let hi = [Value::Int(1), Value::text("e")];
        let mut seen = Vec::new();
        t.for_each_index_range("by_acc", &lo, &hi, |key, row| {
            seen.push((
                key[1].as_text().unwrap().to_owned(),
                row.get(0).as_int().unwrap(),
            ));
        })
        .unwrap();
        assert_eq!(seen, vec![("b".to_owned(), 1), ("d".to_owned(), 2)]);
    }

    #[test]
    fn unique_constraints_enforced_atomically() {
        let mut t = object_table();
        t.insert(obj(1, 10, "A")).unwrap();
        // duplicate pk
        let err = t.insert(obj(1, 11, "B")).unwrap_err();
        assert!(matches!(err, StoreError::UniqueViolation { ref index, .. } if index == "pk"));
        // duplicate composite unique key
        let err = t.insert(obj(2, 10, "A")).unwrap_err();
        assert!(matches!(err, StoreError::UniqueViolation { ref index, .. } if index == "by_acc"));
        // failed inserts must not have touched any index
        assert_eq!(t.len(), 1);
        t.insert(obj(2, 10, "B")).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn delete_frees_keys_but_not_ids() {
        let mut t = object_table();
        let r = t.insert(obj(1, 10, "A")).unwrap();
        t.delete(r).unwrap();
        assert_eq!(t.len(), 0);
        assert!(t.get(r).is_err());
        assert!(t.delete(r).is_err());
        // key is reusable, id is not
        let r2 = t.insert(obj(1, 10, "A")).unwrap();
        assert_eq!(r2, RowId(1));
    }

    #[test]
    fn update_maintains_indexes() {
        let mut t = object_table();
        let r = t.insert(obj(1, 10, "A")).unwrap();
        t.insert(obj(2, 10, "B")).unwrap();
        t.update(r, obj(1, 11, "C")).unwrap();
        assert!(t.lookup("by_acc", &[Value::Int(10), Value::text("A")]).unwrap().is_empty());
        assert_eq!(
            t.lookup("by_acc", &[Value::Int(11), Value::text("C")]).unwrap().len(),
            1
        );
        // update into an existing unique key fails and leaves state intact
        let err = t.update(r, obj(1, 10, "B")).unwrap_err();
        assert!(matches!(err, StoreError::UniqueViolation { .. }));
        assert_eq!(t.get(r).unwrap().get(2), &Value::text("C"));
    }

    #[test]
    fn select_uses_index_and_residual_filter() {
        let mut t = object_table();
        for i in 0..100 {
            t.insert(obj(i, i % 5, &format!("ACC{i}"))).unwrap();
        }
        // fully pinned secondary index
        let hits = t
            .select(&Predicate::eq("source_id", Value::Int(3)))
            .unwrap();
        assert_eq!(hits.len(), 20);
        assert!(hits.iter().all(|r| r.get(1) == &Value::Int(3)));
        // index lookup + residual range filter
        let p = Predicate::eq("source_id", Value::Int(3))
            .and(Predicate::cmp("object_id", CmpOp::Lt, Value::Int(50)));
        let hits = t.select(&p).unwrap();
        assert_eq!(hits.len(), 10);
        assert_eq!(t.count(&p).unwrap(), 10);
        // no usable index: full scan
        let hits = t
            .select(&Predicate::cmp("object_id", CmpOp::Ge, Value::Int(90)))
            .unwrap();
        assert_eq!(hits.len(), 10);
    }

    #[test]
    fn select_equals_scan_semantics() {
        let mut t = object_table();
        for i in 0..50 {
            t.insert(obj(i, i % 7, &format!("A{i}"))).unwrap();
        }
        let p = Predicate::eq("source_id", Value::Int(2));
        let via_index = t.select(&p).unwrap();
        let bound = p.bind(t.schema()).unwrap();
        let via_scan: Vec<Row> = t
            .scan()
            .filter(|(_, r)| bound.matches(r.values()))
            .map(|(_, r)| r)
            .collect();
        assert_eq!(via_index, via_scan);
    }

    #[test]
    fn prefix_lookup() {
        let mut t = object_table();
        t.insert(obj(1, 10, "A")).unwrap();
        t.insert(obj(2, 10, "B")).unwrap();
        t.insert(obj(3, 11, "A")).unwrap();
        let hits = t.lookup_prefix("by_acc", &[Value::Int(10)]).unwrap();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn insert_at_replay_semantics() {
        let mut t = object_table();
        t.insert_at(RowId(3), obj(1, 10, "A")).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.next_row_id(), RowId(4));
        // below high-water mark is corrupt
        assert!(t.insert_at(RowId(2), obj(2, 10, "B")).is_err());
        // normal insert continues above
        assert_eq!(t.insert(obj(2, 10, "B")).unwrap(), RowId(4));
    }

    #[test]
    fn range_scan_served_by_index_matches_full_scan() {
        let mut t = Table::new(
            Schema::builder("pos")
                .column(Column::new("id", ValueType::Int))
                .column(Column::new("start", ValueType::Float))
                .primary_key(&["id"])
                .index("by_start", &["start"])
                .build()
                .unwrap(),
        );
        for i in 0..200i64 {
            t.insert(vec![Value::Int(i), Value::Float((i * 7 % 199) as f64)])
                .unwrap();
        }
        let p = Predicate::cmp("start", CmpOp::Ge, Value::Float(50.0))
            .and(Predicate::cmp("start", CmpOp::Lt, Value::Float(100.0)));
        // the planner must produce exactly what a full scan produces
        let via_index = t.select_with_ids(&p).unwrap();
        let bound = p.bind(t.schema()).unwrap();
        let via_scan: Vec<(RowId, Row)> = t
            .scan()
            .filter(|(_, r)| bound.matches(r.values()))
            .collect();
        assert_eq!(via_index, via_scan);
        assert_eq!(via_index.len(), 50);
        // open-ended ranges too
        let p = Predicate::cmp("start", CmpOp::Gt, Value::Float(190.0));
        assert_eq!(t.select(&p).unwrap().len(), 8);
        // residues 0..=3, with 0 occurring twice (i = 0 and i = 199)
        let p = Predicate::cmp("start", CmpOp::Le, Value::Float(3.0));
        assert_eq!(t.select(&p).unwrap().len(), 5);
    }

    #[test]
    fn group_count_and_distinct() {
        let mut t = object_table();
        for i in 0..10 {
            t.insert(obj(i, i % 3, &format!("A{i}"))).unwrap();
        }
        t.delete(RowId(0)).unwrap(); // deleted rows excluded
        let counts = t.group_count("source_id").unwrap();
        assert_eq!(
            counts,
            vec![
                (Value::Int(0), 3), // 0,3,6,9 minus deleted row 0
                (Value::Int(1), 3),
                (Value::Int(2), 3),
            ]
        );
        assert_eq!(
            t.distinct_values("source_id").unwrap(),
            vec![Value::Int(0), Value::Int(1), Value::Int(2)]
        );
        assert!(t.group_count("nope").is_err());
    }

    #[test]
    fn columnar_prefix_scan_matches_row_lookup() {
        let mut t = Table::new(
            Schema::builder("obj_rel")
                .column(Column::new("id", ValueType::Int))
                .column(Column::new("rel", ValueType::Int))
                .column(Column::new("o1", ValueType::Int))
                .column(Column::new("o2", ValueType::Int))
                .column(Column::nullable("evidence", ValueType::Float))
                .primary_key(&["id"])
                .unique_index("by_pair", &["rel", "o1", "o2"])
                .build()
                .unwrap(),
        );
        for i in 0..100i64 {
            let ev = if i % 3 == 0 {
                Value::Null
            } else {
                Value::Float(i as f64 / 100.0)
            };
            t.insert(vec![
                Value::Int(i),
                Value::Int(i % 2),
                Value::Int(i / 2),
                Value::Int(1000 + i),
                ev,
            ])
            .unwrap();
        }
        // reference: row-at-a-time decode through lookup_prefix
        let reference: Vec<(i64, i64, Option<f64>)> = t
            .lookup_prefix("by_pair", &[Value::Int(1)])
            .unwrap()
            .into_iter()
            .map(|r| {
                (
                    r.get(2).as_int().unwrap(),
                    r.get(3).as_int().unwrap(),
                    r.get(4).as_float(),
                )
            })
            .collect();
        // columnar scan with a small block size to exercise block reuse
        let mut got = Vec::new();
        let visited = t
            .scan_prefix_columnar(
                "by_pair",
                &[Value::Int(1)],
                &["o1", "o2"],
                &["evidence"],
                7,
                |block| {
                    for i in 0..block.len() {
                        got.push((block.ints[0][i], block.ints[1][i], block.floats[0][i]));
                    }
                },
            )
            .unwrap();
        assert_eq!(visited, 50);
        assert_eq!(got, reference);
        assert_eq!(t.index_prefix_count("by_pair", &[Value::Int(1)]).unwrap(), 50);
        assert_eq!(t.index_prefix_count("by_pair", &[Value::Int(9)]).unwrap(), 0);
        assert!(t
            .scan_prefix_columnar("by_pair", &[], &["nope"], &[], 8, |_| {})
            .is_err());
    }

    #[test]
    fn streaming_lookup_and_counts_match_lookup() {
        let mut t = object_table();
        for i in 0..30 {
            t.insert(obj(i, i % 3, &format!("A{i}"))).unwrap();
        }
        let key = [Value::Int(2)];
        let reference: Vec<Row> = t.lookup("by_source", &key).unwrap();
        let mut streamed = Vec::new();
        t.for_each_lookup("by_source", &key, |r| streamed.push(r.clone()))
            .unwrap();
        assert_eq!(streamed, reference);
        assert_eq!(t.index_lookup_count("by_source", &key).unwrap(), reference.len());
        assert_eq!(
            t.lookup_row_ids("by_source", &key).unwrap().len(),
            reference.len()
        );
        assert_eq!(t.index_lookup_count("by_source", &[Value::Int(99)]).unwrap(), 0);
    }

    #[test]
    fn reconcile_indexes_builds_and_drops() {
        let mut t = object_table();
        for i in 0..20 {
            t.insert(obj(i, i % 4, &format!("A{i}"))).unwrap();
        }
        // new schema: same columns/pk, one extra index, one dropped
        let schema2 = Schema::builder("object")
            .column(Column::new("object_id", ValueType::Int))
            .column(Column::new("source_id", ValueType::Int))
            .column(Column::new("accession", ValueType::Text))
            .column(Column::nullable("text", ValueType::Text))
            .primary_key(&["object_id"])
            .unique_index("by_acc", &["source_id", "accession"])
            .index("by_accession", &["accession"])
            .build()
            .unwrap();
        t.reconcile_indexes(schema2).unwrap();
        // the new index serves lookups over pre-existing rows
        assert_eq!(
            t.lookup("by_accession", &[Value::text("A7")]).unwrap().len(),
            1
        );
        // the dropped index is gone, reused ones still work
        assert!(t.lookup("by_source", &[Value::Int(1)]).is_err());
        assert_eq!(
            t.lookup("by_acc", &[Value::Int(1), Value::text("A5")]).unwrap().len(),
            1
        );
        // index maintenance continues on the reconciled set
        t.insert(obj(100, 9, "Z")).unwrap();
        assert_eq!(t.lookup("by_accession", &[Value::text("Z")]).unwrap().len(), 1);
    }

    #[test]
    fn reconcile_unique_violation_leaves_table_intact() {
        let mut t = object_table();
        t.insert(obj(1, 10, "A")).unwrap();
        t.insert(obj(2, 11, "A")).unwrap(); // same accession, different source
        let bad = Schema::builder("object")
            .column(Column::new("object_id", ValueType::Int))
            .column(Column::new("source_id", ValueType::Int))
            .column(Column::new("accession", ValueType::Text))
            .column(Column::nullable("text", ValueType::Text))
            .primary_key(&["object_id"])
            .unique_index("by_acc", &["source_id", "accession"])
            .unique_index("uniq_accession", &["accession"])
            .build()
            .unwrap();
        let err = t.reconcile_indexes(bad).unwrap_err();
        assert!(matches!(err, StoreError::UniqueViolation { ref index, .. } if index == "uniq_accession"));
        // old index set still live and consistent
        assert_eq!(t.lookup("by_source", &[Value::Int(10)]).unwrap().len(), 1);
    }

    #[test]
    fn lookup_unique_and_missing_index() {
        let mut t = object_table();
        t.insert(obj(1, 10, "A")).unwrap();
        let hit = t
            .lookup_unique("pk", &[Value::Int(1)])
            .unwrap()
            .expect("row exists");
        assert_eq!(hit.get(2), &Value::text("A"));
        assert!(t.lookup_unique("pk", &[Value::Int(9)]).unwrap().is_none());
        assert!(matches!(
            t.lookup("nope", &[Value::Int(1)]),
            Err(StoreError::NoSuchIndex { .. })
        ));
    }

    // ---- paged storage ----

    /// Drive the same operation sequence against a resident table and a
    /// paged one, then demand identical answers from every read path.
    fn assert_tables_equal(a: &Table, b: &Table) {
        assert_eq!(a.len(), b.len());
        assert_eq!(a.next_row_id(), b.next_row_id());
        let sa: Vec<_> = a.scan().collect();
        let sb: Vec<_> = b.scan().collect();
        assert_eq!(sa, sb);
        let mut via_stream = Vec::new();
        b.for_each_row(|id, row| {
            via_stream.push((id, row.clone()));
            Ok(())
        })
        .unwrap();
        assert_eq!(sa, via_stream);
        for src in 0..5i64 {
            assert_eq!(
                a.lookup("by_source", &[Value::Int(src)]).unwrap(),
                b.lookup("by_source", &[Value::Int(src)]).unwrap()
            );
        }
        assert_eq!(
            a.select(&Predicate::cmp("object_id", CmpOp::Ge, Value::Int(0))).unwrap(),
            b.select(&Predicate::cmp("object_id", CmpOp::Ge, Value::Int(0))).unwrap()
        );
    }

    #[test]
    fn paged_matches_resident_under_mixed_workload() {
        for pool_pages in [1usize, 2, 8] {
            let mut resident = object_table();
            let mut paged = paged_object_table(pool_pages, 128);
            for i in 0..120i64 {
                let row = obj(i, i % 5, &format!("ACC{i}"));
                resident.insert(row.clone()).unwrap();
                paged.insert(row).unwrap();
            }
            for i in (0..120u64).step_by(7) {
                resident.delete(RowId(i)).unwrap();
                paged.delete(RowId(i)).unwrap();
            }
            for i in (1..120u64).step_by(11) {
                if i % 7 == 0 {
                    continue; // already deleted
                }
                let row = obj(i as i64, (i as i64 % 5) + 10, &format!("UPD{i}"));
                resident.update(RowId(i), row.clone()).unwrap();
                paged.update(RowId(i), row).unwrap();
            }
            assert_tables_equal(&resident, &paged);
            assert!(
                !paged.page_ids().is_empty(),
                "tiny pages must have sealed (pool={pool_pages})"
            );
        }
    }

    #[test]
    fn paged_get_faults_pages_through_tiny_pool() {
        let mut t = paged_object_table(1, 128);
        for i in 0..80i64 {
            t.insert(obj(i, i % 3, &format!("ACC{i}"))).unwrap();
        }
        // point lookups across the whole id space with a one-page pool:
        // every sealed-page hit may evict the previous page
        for i in 0..80u64 {
            assert_eq!(t.get(RowId(i)).unwrap().get(0), &Value::Int(i as i64));
        }
        assert!(t.page_ids().len() >= 2, "expected several sealed pages");
    }

    #[test]
    fn paged_insert_at_and_restore_semantics() {
        let mut t = paged_object_table(2, 128);
        t.insert_at(RowId(3), obj(1, 10, "A")).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.next_row_id(), RowId(4));
        assert!(t.insert_at(RowId(2), obj(2, 10, "B")).is_err());
        assert_eq!(t.insert(obj(2, 10, "B")).unwrap(), RowId(4));
        // delete + restore round-trips through the paged slot
        let row = t.delete(RowId(3)).unwrap();
        assert_eq!(t.len(), 1);
        t.restore(RowId(3), row.values().to_vec()).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(RowId(3)).unwrap().get(0), &Value::Int(1));
    }

    #[test]
    fn paged_recovery_rebuilds_indexes_from_pages() {
        let vfs = FaultVfs::new();
        let heap = PathBuf::from("/db/heap.1.bin");
        let config = PoolConfig {
            page_bytes: 128,
            pool_pages: 2,
        };
        let pager = Arc::new(Pager::new(Arc::new(vfs.clone()), heap.clone(), config));
        let mut t = Table::new_paged(object_schema(), pager.clone(), 1);
        for i in 0..60i64 {
            t.insert(obj(i, i % 4, &format!("ACC{i}"))).unwrap();
        }
        t.delete(RowId(5)).unwrap();
        // checkpoint: flush dirty pages so every sealed page has a location
        pager.flush_and_sync().unwrap();
        let meta = t.to_paged_meta().unwrap().expect("paged table");
        assert_eq!(meta.live, 59);
        // rebuild on a fresh pager over the same heap file, as recovery does
        let pager2 = Arc::new(Pager::new(Arc::new(vfs), heap, config));
        for (i, entry) in meta.pages.iter().enumerate() {
            pager2.register(
                PageId {
                    table_id: meta.table_id,
                    page_no: i as u32,
                },
                entry.loc,
            );
        }
        let pages: Vec<SealedPage> = meta
            .pages
            .iter()
            .map(|e| SealedPage {
                base: e.base,
                slots: e.slots,
            })
            .collect();
        let t2 = Table::new_paged_recovered(
            meta.schema,
            pager2,
            meta.table_id,
            pages,
            meta.tail_base,
            meta.tail,
        )
        .unwrap();
        assert_eq!(t2.len(), 59);
        let a: Vec<_> = t.scan().collect();
        let b: Vec<_> = t2.scan().collect();
        assert_eq!(a, b);
        assert_eq!(
            t2.lookup("by_source", &[Value::Int(2)]).unwrap(),
            t.lookup("by_source", &[Value::Int(2)]).unwrap()
        );
        // contiguity violations are rejected
        let err = Table::new_paged_recovered(
            object_schema(),
            Arc::new(Pager::new(
                Arc::new(FaultVfs::new()),
                PathBuf::from("/db/h.bin"),
                config,
            )),
            1,
            vec![SealedPage { base: 5, slots: 3 }],
            8,
            Vec::new(),
        );
        assert!(matches!(err, Err(StoreError::Corrupt(_))));
    }
}
