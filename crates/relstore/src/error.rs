//! Error type shared by every storage-engine operation.

use std::fmt;
use std::io;

/// Convenience alias used throughout the crate.
pub type StoreResult<T> = Result<T, StoreError>;

/// Errors produced by the storage engine.
#[derive(Debug)]
pub enum StoreError {
    /// A table name was not found in the catalog.
    NoSuchTable(String),
    /// A table with this name already exists.
    TableExists(String),
    /// A column name was not found in a schema.
    NoSuchColumn { table: String, column: String },
    /// An index name was not found on a table.
    NoSuchIndex { table: String, index: String },
    /// A row did not match the schema (arity or column type).
    SchemaViolation(String),
    /// Inserting the row would duplicate a key in a unique index.
    UniqueViolation {
        table: String,
        index: String,
        key: String,
    },
    /// A row id did not resolve to a live row.
    NoSuchRow { table: String, row_id: u64 },
    /// A schema could not be constructed (duplicate column, empty key, ...).
    InvalidSchema(String),
    /// The binary codec met malformed input.
    Corrupt(String),
    /// The write-ahead log ended mid-record; the trailing suffix is ignored
    /// during recovery but reported so callers can log it.
    TruncatedWal { valid_bytes: u64 },
    /// Underlying I/O failure.
    Io(io::Error),
    /// A transaction was used after commit/rollback.
    TransactionClosed,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NoSuchTable(name) => write!(f, "no such table: {name}"),
            StoreError::TableExists(name) => write!(f, "table already exists: {name}"),
            StoreError::NoSuchColumn { table, column } => {
                write!(f, "no column {column} in table {table}")
            }
            StoreError::NoSuchIndex { table, index } => {
                write!(f, "no index {index} on table {table}")
            }
            StoreError::SchemaViolation(msg) => write!(f, "schema violation: {msg}"),
            StoreError::UniqueViolation { table, index, key } => {
                write!(f, "unique violation on {table}.{index} for key {key}")
            }
            StoreError::NoSuchRow { table, row_id } => {
                write!(f, "no live row {row_id} in table {table}")
            }
            StoreError::InvalidSchema(msg) => write!(f, "invalid schema: {msg}"),
            StoreError::Corrupt(msg) => write!(f, "corrupt storage: {msg}"),
            StoreError::TruncatedWal { valid_bytes } => {
                write!(f, "write-ahead log truncated after {valid_bytes} bytes")
            }
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::TransactionClosed => write!(f, "transaction already closed"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StoreError::NoSuchTable("object".into());
        assert_eq!(e.to_string(), "no such table: object");
        let e = StoreError::UniqueViolation {
            table: "source".into(),
            index: "by_name".into(),
            key: "(GO)".into(),
        };
        assert!(e.to_string().contains("source.by_name"));
        assert!(e.to_string().contains("(GO)"));
    }

    #[test]
    fn io_error_converts_and_chains() {
        let e: StoreError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(e, StoreError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
