//! Binary codec for values, rows, and log/snapshot records.
//!
//! A compact self-describing format: each value is a 1-byte tag followed by
//! a fixed- or length-prefixed payload. Integers use zig-zag varint
//! encoding; lengths use plain varints. The same primitives serve the
//! write-ahead log and the snapshot file, so corruption detection (bad tags,
//! short buffers) is shared.

use crate::error::{StoreError, StoreResult};
use crate::value::Value;
use bytes::{Buf, BufMut, Bytes, BytesMut};

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_TEXT: u8 = 3;
const TAG_BYTES: u8 = 4;

/// Append a varint-encoded u64.
pub fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Read a varint-encoded u64.
pub fn get_varint(buf: &mut Bytes) -> StoreResult<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(StoreError::Corrupt("varint ran off end of buffer".into()));
        }
        let byte = buf.get_u8();
        if shift >= 64 {
            return Err(StoreError::Corrupt("varint longer than 64 bits".into()));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Encode one value.
pub fn put_value(buf: &mut BytesMut, value: &Value) {
    match value {
        Value::Null => buf.put_u8(TAG_NULL),
        Value::Int(v) => {
            buf.put_u8(TAG_INT);
            put_varint(buf, zigzag(*v));
        }
        Value::Float(v) => {
            buf.put_u8(TAG_FLOAT);
            buf.put_u64_le(v.to_bits());
        }
        Value::Text(s) => {
            buf.put_u8(TAG_TEXT);
            put_varint(buf, s.len() as u64);
            buf.put_slice(s.as_bytes());
        }
        Value::Bytes(b) => {
            buf.put_u8(TAG_BYTES);
            put_varint(buf, b.len() as u64);
            buf.put_slice(b);
        }
    }
}

/// Decode one value.
pub fn get_value(buf: &mut Bytes) -> StoreResult<Value> {
    if !buf.has_remaining() {
        return Err(StoreError::Corrupt("value tag ran off end of buffer".into()));
    }
    let tag = buf.get_u8();
    Ok(match tag {
        TAG_NULL => Value::Null,
        TAG_INT => Value::Int(unzigzag(get_varint(buf)?)),
        TAG_FLOAT => {
            if buf.remaining() < 8 {
                return Err(StoreError::Corrupt("float payload truncated".into()));
            }
            Value::Float(f64::from_bits(buf.get_u64_le()))
        }
        TAG_TEXT => {
            let len = get_varint(buf)? as usize;
            if buf.remaining() < len {
                return Err(StoreError::Corrupt("text payload truncated".into()));
            }
            let raw = buf.copy_to_bytes(len);
            let s = std::str::from_utf8(&raw)
                .map_err(|_| StoreError::Corrupt("text payload is not UTF-8".into()))?;
            Value::Text(s.to_owned())
        }
        TAG_BYTES => {
            let len = get_varint(buf)? as usize;
            if buf.remaining() < len {
                return Err(StoreError::Corrupt("bytes payload truncated".into()));
            }
            Value::Bytes(buf.copy_to_bytes(len).to_vec())
        }
        other => {
            return Err(StoreError::Corrupt(format!("unknown value tag {other}")));
        }
    })
}

/// Encode a row (arity-prefixed value list).
pub fn put_row(buf: &mut BytesMut, values: &[Value]) {
    put_varint(buf, values.len() as u64);
    for v in values {
        put_value(buf, v);
    }
}

/// Decode a row.
pub fn get_row(buf: &mut Bytes) -> StoreResult<Vec<Value>> {
    let arity = get_varint(buf)? as usize;
    if arity > 1 << 20 {
        return Err(StoreError::Corrupt(format!("implausible row arity {arity}")));
    }
    let mut values = Vec::with_capacity(arity);
    for _ in 0..arity {
        values.push(get_value(buf)?);
    }
    Ok(values)
}

/// Encode a length-prefixed string.
pub fn put_str(buf: &mut BytesMut, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.put_slice(s.as_bytes());
}

/// Decode a length-prefixed string.
pub fn get_str(buf: &mut Bytes) -> StoreResult<String> {
    let len = get_varint(buf)? as usize;
    if buf.remaining() < len {
        return Err(StoreError::Corrupt("string payload truncated".into()));
    }
    let raw = buf.copy_to_bytes(len);
    String::from_utf8(raw.to_vec()).map_err(|_| StoreError::Corrupt("string is not UTF-8".into()))
}

/// CRC-32 (IEEE 802.3, reflected) over a byte slice. Used to frame WAL
/// records and to checksum snapshots; implemented locally to keep the
/// dependency set minimal.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xffff_ffff;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: Value) -> Value {
        let mut buf = BytesMut::new();
        put_value(&mut buf, &v);
        let mut b = buf.freeze();
        let out = get_value(&mut b).unwrap();
        assert!(!b.has_remaining(), "codec consumed whole buffer");
        out
    }

    #[test]
    fn value_roundtrips() {
        for v in [
            Value::Null,
            Value::Int(0),
            Value::Int(1),
            Value::Int(-1),
            Value::Int(i64::MAX),
            Value::Int(i64::MIN),
            Value::Float(0.0),
            Value::Float(-0.0),
            Value::Float(f64::NAN),
            Value::Float(f64::INFINITY),
            Value::text(""),
            Value::text("GO:0009116 nucleoside metabolism"),
            Value::bytes(vec![]),
            Value::bytes(vec![0, 255, 128]),
        ] {
            let back = roundtrip(v.clone());
            // Value's Eq uses total ordering so NaN == NaN here.
            assert_eq!(back, v);
        }
    }

    #[test]
    fn row_roundtrip() {
        let row = vec![
            Value::Int(353),
            Value::text("APRT"),
            Value::Null,
            Value::Float(0.97),
        ];
        let mut buf = BytesMut::new();
        put_row(&mut buf, &row);
        let mut b = buf.freeze();
        assert_eq!(get_row(&mut b).unwrap(), row);
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u64::MAX] {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            let mut b = buf.freeze();
            assert_eq!(get_varint(&mut b).unwrap(), v);
        }
    }

    #[test]
    fn corrupt_input_is_detected_not_panicking() {
        // empty buffer
        assert!(get_value(&mut Bytes::new()).is_err());
        // unknown tag
        assert!(get_value(&mut Bytes::from_static(&[9])).is_err());
        // truncated text
        let mut buf = BytesMut::new();
        put_value(&mut buf, &Value::text("hello"));
        let b = buf.freeze();
        let mut short = b.slice(0..b.len() - 2);
        assert!(get_value(&mut short).is_err());
        // invalid utf-8
        let mut buf = BytesMut::new();
        buf.put_u8(TAG_TEXT);
        put_varint(&mut buf, 2);
        buf.put_slice(&[0xff, 0xfe]);
        assert!(get_value(&mut buf.freeze()).is_err());
        // overlong varint
        let mut buf = BytesMut::new();
        buf.put_slice(&[0x80u8; 11]);
        assert!(get_varint(&mut buf.freeze()).is_err());
    }

    #[test]
    fn crc32_known_vector() {
        // standard test vector: "123456789" -> 0xCBF43926
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn string_codec() {
        let mut buf = BytesMut::new();
        put_str(&mut buf, "locuslink");
        let mut b = buf.freeze();
        assert_eq!(get_str(&mut b).unwrap(), "locuslink");
    }
}
