//! The database: a catalog of tables with transactions and durability.
//!
//! * [`Database::in_memory`] gives a volatile database.
//! * [`Database::open`] attaches a directory: state is the last
//!   [checkpoint](Database::checkpoint) snapshot plus a replay of the
//!   write-ahead log's committed transactions.
//!
//! Transactions are single-writer (the `&mut self` receiver enforces it at
//! compile time). A [`Transaction`] applies changes eagerly — reads through
//! the transaction see its own writes — while recording redo records for
//! the WAL and undo records for rollback. Dropping a transaction without
//! committing rolls it back.

use crate::error::{StoreError, StoreResult};
use crate::page::PageId;
use crate::pager::{
    decode_page_directory, encode_page_directory, PagedCatalog, Pager, PoolConfig,
};
use crate::row::RowId;
use crate::schema::Schema;
use crate::stats::{DbStats, TableStats};
use crate::table::{SealedPage, Table};
use crate::value::Value;
use crate::vfs::{RealVfs, Vfs};
use crate::wal::{read_wal, LogRecord, WalWriter};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Primary snapshot file name inside a database directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";
/// Previous snapshot, kept as a fallback until the next checkpoint.
pub const SNAPSHOT_PREV_FILE: &str = "snapshot.prev";
/// Write-ahead log file name.
pub const WAL_FILE: &str = "wal.log";
/// Primary page-directory file name (paged databases).
pub const PAGEDIR_FILE: &str = "pagedir.bin";
/// Previous page directory, kept as a fallback until the next checkpoint.
pub const PAGEDIR_PREV_FILE: &str = "pagedir.prev";

/// Heap file for a given generation. Compaction bumps the generation and
/// rewrites live pages into the new file; the page directory names which
/// generation is current.
pub fn heap_file_name(generation: u64) -> String {
    format!("heap.{generation}.bin")
}

struct Durability {
    dir: PathBuf,
    vfs: Arc<dyn Vfs>,
    wal: WalWriter,
    /// Epoch of the snapshot the current WAL extends.
    epoch: u64,
}

/// Paged-storage state: the shared buffer pool plus the catalog numbers
/// that go into the page directory at checkpoint.
struct PagedState {
    pager: Arc<Pager>,
    heap_gen: u64,
    next_table_id: u32,
}

/// Which snapshot file recovery loaded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotSource {
    /// `snapshot.bin` was present and valid.
    Primary,
    /// `snapshot.bin` was missing or corrupt; `snapshot.prev` was used.
    Fallback,
    /// No valid snapshot existed (fresh database, or both copies bad).
    None,
}

/// What [`Database::open`] found and did. Recovery *degrades* instead of
/// failing: a corrupt primary snapshot falls back to the previous one, a
/// stale WAL (epoch mismatch after an interrupted checkpoint) is
/// discarded, a torn WAL tail is truncated. This report makes those
/// decisions observable so callers can log them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Which snapshot file was loaded.
    pub snapshot: SnapshotSource,
    /// Epoch of the recovered state.
    pub epoch: u64,
    /// Committed transactions replayed from the WAL.
    pub wal_txns: u64,
    /// WAL operations discarded for lack of a commit marker.
    pub wal_discarded_ops: usize,
    /// Byte offset of a torn WAL tail, if one was truncated away.
    pub wal_torn_at: Option<u64>,
    /// True if the whole WAL was discarded because its epoch did not match
    /// the snapshot (a checkpoint was interrupted between the snapshot
    /// rename and the log reset; the log's contents live in the snapshot).
    pub wal_stale: bool,
}

/// An embedded relational database.
pub struct Database {
    tables: BTreeMap<String, Table>,
    durability: Option<Durability>,
    /// `Some` when tables page their rows through a buffer pool
    /// ([`Database::open_paged`]).
    paged: Option<PagedState>,
    next_txid: u64,
    /// When `true` (the default) every commit fsyncs the WAL. Group commit
    /// ([`set_sync_on_commit`](Self::set_sync_on_commit)) turns this off so
    /// a bulk loader can commit many transactions and pay one
    /// [`sync_wal`](Self::sync_wal) at the end of the batch.
    sync_on_commit: bool,
    /// What recovery found when this database was opened (durable only).
    recovery: Option<RecoveryReport>,
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("tables", &self.tables.keys().collect::<Vec<_>>())
            .field("durable", &self.durability.is_some())
            .finish()
    }
}

impl Database {
    /// A volatile in-memory database.
    pub fn in_memory() -> Self {
        Database {
            tables: BTreeMap::new(),
            durability: None,
            paged: None,
            next_txid: 1,
            sync_on_commit: true,
            recovery: None,
        }
    }

    /// Open (or create) a durable database in `dir`: load the snapshot,
    /// replay committed WAL records, and keep the WAL open for appends.
    pub fn open(dir: &Path) -> StoreResult<Self> {
        Self::open_with_vfs(Arc::new(RealVfs), dir)
    }

    /// [`open`](Self::open) against an explicit I/O backend (crash tests
    /// substitute [`FaultVfs`](crate::vfs::FaultVfs)).
    ///
    /// Recovery degrades rather than errors on storage-level damage:
    ///
    /// 1. Load `snapshot.bin`; if missing or corrupt, fall back to
    ///    `snapshot.prev`; if neither is valid, start from an empty
    ///    catalog. (A crash can only corrupt the snapshot *being written*,
    ///    which the checkpoint protocol keeps separate from the last good
    ///    one, so the fallback is always at most one checkpoint old.)
    /// 2. Read the WAL. Replay its committed transactions only if its
    ///    epoch matches the snapshot's; a mismatch means the WAL is stale
    ///    (interrupted checkpoint) and it is discarded — its effects are
    ///    already inside the newer snapshot.
    /// 3. Truncate any torn WAL tail and, if the WAL was stale, reset it
    ///    to the snapshot's epoch, completing the interrupted checkpoint.
    ///
    /// What recovery did is available from
    /// [`recovery_report`](Self::recovery_report).
    pub fn open_with_vfs(vfs: Arc<dyn Vfs>, dir: &Path) -> StoreResult<Self> {
        vfs.create_dir_all(dir)?;
        let primary = dir.join(SNAPSHOT_FILE);
        let fallback = dir.join(SNAPSHOT_PREV_FILE);
        let (tables, epoch, source) =
            match crate::snapshot::read_snapshot_file(vfs.as_ref(), &primary) {
                Ok(Some((tables, epoch))) => (tables, epoch, SnapshotSource::Primary),
                Ok(None) | Err(StoreError::Corrupt(_)) => {
                    match crate::snapshot::read_snapshot_file(vfs.as_ref(), &fallback) {
                        Ok(Some((tables, epoch))) => (tables, epoch, SnapshotSource::Fallback),
                        Ok(None) | Err(StoreError::Corrupt(_)) => {
                            (Vec::new(), 0, SnapshotSource::None)
                        }
                        Err(e) => return Err(e),
                    }
                }
                Err(e) => return Err(e),
            };
        let mut db = Database {
            tables: tables.into_iter().map(|t| (t.name().to_owned(), t)).collect(),
            durability: None,
            paged: None,
            next_txid: 1,
            sync_on_commit: true,
            recovery: None,
        };
        db.attach_wal(vfs, dir, epoch, source)?;
        Ok(db)
    }

    /// Open (or create) a paged durable database in `dir`: row bodies live
    /// in slotted heap pages behind a buffer pool of `config.pool_pages`
    /// pages, so datasets far larger than the pool still serve indexed
    /// lookups with bounded resident memory. Recovery loads the page
    /// *directory* (not the pages), registers every page's heap location,
    /// streams the pages once to rebuild indexes, then replays the WAL
    /// exactly as [`open`](Self::open) does.
    pub fn open_paged(dir: &Path, config: PoolConfig) -> StoreResult<Self> {
        Self::open_paged_with_vfs(Arc::new(RealVfs), dir, config)
    }

    /// [`open_paged`](Self::open_paged) against an explicit I/O backend.
    pub fn open_paged_with_vfs(
        vfs: Arc<dyn Vfs>,
        dir: &Path,
        config: PoolConfig,
    ) -> StoreResult<Self> {
        vfs.create_dir_all(dir)?;
        let read_dir_file = |path: &Path| -> StoreResult<Option<PagedCatalog>> {
            match vfs.read(path)? {
                Some(data) => decode_page_directory(&data).map(Some),
                None => Ok(None),
            }
        };
        let primary = dir.join(PAGEDIR_FILE);
        let fallback = dir.join(PAGEDIR_PREV_FILE);
        let (catalog, source) = match read_dir_file(&primary) {
            Ok(Some(c)) => (c, SnapshotSource::Primary),
            Ok(None) | Err(StoreError::Corrupt(_)) => match read_dir_file(&fallback) {
                Ok(Some(c)) => (c, SnapshotSource::Fallback),
                Ok(None) | Err(StoreError::Corrupt(_)) => (
                    PagedCatalog {
                        epoch: 0,
                        heap_gen: 1,
                        next_table_id: 1,
                        tables: Vec::new(),
                    },
                    SnapshotSource::None,
                ),
                Err(e) => return Err(e),
            },
            Err(e) => return Err(e),
        };
        let heap_path = dir.join(heap_file_name(catalog.heap_gen));
        let pager = Arc::new(Pager::new(vfs.clone(), heap_path, config));
        let mut tables = BTreeMap::new();
        for meta in catalog.tables {
            for (i, entry) in meta.pages.iter().enumerate() {
                pager.register(
                    PageId {
                        table_id: meta.table_id,
                        page_no: i as u32,
                    },
                    entry.loc,
                );
            }
            let pages: Vec<SealedPage> = meta
                .pages
                .iter()
                .map(|e| SealedPage {
                    base: e.base,
                    slots: e.slots,
                })
                .collect();
            let table = Table::new_paged_recovered(
                meta.schema,
                pager.clone(),
                meta.table_id,
                pages,
                meta.tail_base,
                meta.tail,
            )?;
            if table.len() as u64 != meta.live {
                return Err(StoreError::Corrupt(format!(
                    "table {}: page directory records {} live rows but pages hold {}",
                    table.name(),
                    meta.live,
                    table.len()
                )));
            }
            tables.insert(table.name().to_owned(), table);
        }
        // A compaction that crashed between publishing the new directory
        // and unlinking the old heap leaks the previous generation; finish
        // the job here.
        if catalog.heap_gen > 1 {
            let prev_heap = dir.join(heap_file_name(catalog.heap_gen - 1));
            if vfs.exists(&prev_heap) {
                vfs.remove(&prev_heap)?;
                vfs.sync_dir(dir)?;
            }
        }
        let mut db = Database {
            tables,
            durability: None,
            paged: Some(PagedState {
                pager,
                heap_gen: catalog.heap_gen,
                next_table_id: catalog.next_table_id,
            }),
            next_txid: 1,
            sync_on_commit: true,
            recovery: None,
        };
        db.attach_wal(vfs, dir, catalog.epoch, source)?;
        Ok(db)
    }

    /// Shared tail of both open paths: read the WAL, replay its committed
    /// transactions over the recovered tables when its epoch matches
    /// `epoch`, reset it when stale (completing an interrupted
    /// checkpoint), and leave it open for appends.
    fn attach_wal(
        &mut self,
        vfs: Arc<dyn Vfs>,
        dir: &Path,
        epoch: u64,
        source: SnapshotSource,
    ) -> StoreResult<()> {
        let wal_path = dir.join(WAL_FILE);
        let recovery = read_wal(vfs.as_ref(), &wal_path)?;
        let wal_epoch = recovery.epoch.unwrap_or(0);
        let wal_has_content = recovery.committed_txns > 0
            || recovery.discarded_ops > 0
            || recovery.epoch.is_some()
            || !recovery.committed_ops.is_empty();
        let stale = wal_has_content && wal_epoch != epoch;
        let mut report = RecoveryReport {
            snapshot: source,
            epoch,
            wal_txns: 0,
            wal_discarded_ops: 0,
            wal_torn_at: recovery.torn_at,
            wal_stale: stale,
        };
        if !stale {
            report.wal_txns = recovery.committed_txns;
            report.wal_discarded_ops = recovery.discarded_ops;
            for op in recovery.committed_ops {
                self.apply_replayed(op)?;
            }
            self.next_txid = recovery.committed_txns + 1;
        }
        let mut wal = WalWriter::open(vfs.clone(), &wal_path)?;
        if stale {
            // Complete the interrupted checkpoint: the snapshot already
            // holds this WAL's effects, so clear it and stamp the epoch.
            wal.reset(epoch)?;
        }
        // The WAL file (and the directory itself) may have just been
        // created; sync the directory so the entries survive a power cut.
        vfs.sync_dir(dir)?;
        self.durability = Some(Durability {
            dir: dir.to_owned(),
            vfs,
            wal,
            epoch,
        });
        self.recovery = Some(report);
        Ok(())
    }

    /// What recovery found when this database was opened (`None` for
    /// in-memory databases).
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// The VFS this database's durable state goes through, so callers
    /// staging auxiliary files next to the store share its fault model.
    /// In-memory databases have no VFS of their own and get [`RealVfs`].
    pub fn vfs(&self) -> Arc<dyn Vfs> {
        match &self.durability {
            Some(d) => d.vfs.clone(),
            None => Arc::new(RealVfs),
        }
    }

    /// Construct a table appropriate for this database's storage mode:
    /// paged databases allocate a table id and page rows through the
    /// shared buffer pool, resident databases keep rows in memory.
    fn make_table(&mut self, schema: Schema) -> Table {
        match &mut self.paged {
            Some(p) => {
                let id = p.next_table_id;
                p.next_table_id += 1;
                Table::new_paged(schema, p.pager.clone(), id)
            }
            None => Table::new(schema),
        }
    }

    fn apply_replayed(&mut self, op: LogRecord) -> StoreResult<()> {
        match op {
            LogRecord::Insert {
                table,
                row_id,
                values,
            } => self.table_mut_internal(&table)?.insert_at(row_id, values),
            LogRecord::Delete { table, row_id } => {
                self.table_mut_internal(&table)?.delete(row_id).map(|_| ())
            }
            LogRecord::Update {
                table,
                row_id,
                values,
            } => self.table_mut_internal(&table)?.update(row_id, values),
            LogRecord::Commit { .. } | LogRecord::Epoch { .. } => Ok(()),
            LogRecord::CreateTable { schema } => {
                // The snapshot may already contain the table if the WAL
                // predates it (it cannot on the normal checkpoint path, but
                // degraded recovery tolerates it); the snapshot wins.
                if !self.tables.contains_key(schema.name()) {
                    let table = self.make_table(schema);
                    self.tables.insert(table.name().to_owned(), table);
                }
                Ok(())
            }
        }
    }

    /// Create a table. On durable databases the schema is WAL-logged and
    /// synced immediately: committed rows may land in this table before the
    /// next checkpoint, and replaying them requires the table to exist.
    pub fn create_table(&mut self, schema: Schema) -> StoreResult<()> {
        let name = schema.name().to_owned();
        if self.tables.contains_key(&name) {
            return Err(StoreError::TableExists(name));
        }
        if let Some(durability) = &mut self.durability {
            durability.wal.append(&LogRecord::CreateTable {
                schema: schema.clone(),
            })?;
            durability.wal.sync()?;
        }
        let table = self.make_table(schema);
        self.tables.insert(name, table);
        Ok(())
    }

    /// Create a table if it does not already exist. An existing table must
    /// have identical columns and primary key; a difference confined to the
    /// secondary-index list is reconciled in place (missing indexes are
    /// built from the live rows, extra ones dropped), so adding an index to
    /// a schema does not invalidate previously-persisted databases.
    pub fn ensure_table(&mut self, schema: Schema) -> StoreResult<()> {
        if let Some(existing) = self.tables.get_mut(schema.name()) {
            if existing.schema() == &schema {
                return Ok(());
            }
            let same_core = existing.schema().columns() == schema.columns()
                && existing.schema().primary_key() == schema.primary_key();
            if same_core {
                return existing.reconcile_indexes(schema);
            }
            return Err(StoreError::InvalidSchema(format!(
                "table {} exists with a different schema",
                schema.name()
            )));
        }
        self.create_table(schema)
    }

    /// Read access to a table.
    pub fn table(&self, name: &str) -> StoreResult<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| StoreError::NoSuchTable(name.to_owned()))
    }

    fn table_mut_internal(&mut self, name: &str) -> StoreResult<&mut Table> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| StoreError::NoSuchTable(name.to_owned()))
    }

    /// Names of all tables (sorted).
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Begin a transaction. Only one can exist at a time (enforced by the
    /// mutable borrow).
    pub fn begin(&mut self) -> Transaction<'_> {
        let txid = self.next_txid;
        self.next_txid += 1;
        Transaction {
            db: self,
            txid,
            redo: Vec::new(),
            undo: Vec::new(),
            closed: false,
        }
    }

    /// Convenience: run `f` inside a transaction and commit, rolling back on
    /// error.
    pub fn with_txn<T>(
        &mut self,
        f: impl FnOnce(&mut Transaction<'_>) -> StoreResult<T>,
    ) -> StoreResult<T> {
        let mut txn = self.begin();
        match f(&mut txn) {
            Ok(v) => {
                txn.commit()?;
                Ok(v)
            }
            Err(e) => {
                txn.rollback()?;
                Err(e)
            }
        }
    }

    /// Toggle per-commit WAL fsync (group commit). With syncing off,
    /// committed transactions are appended to the WAL (buffered) but only
    /// become durable at the next [`sync_wal`](Self::sync_wal) /
    /// [`checkpoint`](Self::checkpoint) or when syncing is re-enabled and a
    /// commit runs. Atomicity is unaffected: commit markers still delimit
    /// transactions, so a crash loses at most the unsynced *suffix* of
    /// commits, never a partial transaction.
    pub fn set_sync_on_commit(&mut self, sync: bool) {
        self.sync_on_commit = sync;
    }

    /// Whether commits currently fsync the WAL.
    pub fn sync_on_commit(&self) -> bool {
        self.sync_on_commit
    }

    /// Flush and fsync the WAL, making every committed transaction durable.
    /// No-op (Ok) for in-memory databases.
    pub fn sync_wal(&mut self) -> StoreResult<()> {
        if let Some(durability) = &mut self.durability {
            durability.wal.sync()?;
        }
        Ok(())
    }

    /// Write a snapshot of the current state and truncate the WAL.
    /// No-op (Ok) for in-memory databases.
    ///
    /// The sequence is crash-safe at every step:
    ///
    /// 1. write + fsync the new snapshot (epoch N+1) to a temp file,
    /// 2. rename the current snapshot to `snapshot.prev`,
    /// 3. rename the temp file to `snapshot.bin`,
    /// 4. fsync the directory (the renames are not durable before this),
    /// 5. reset the WAL, stamping it with epoch N+1.
    ///
    /// A crash before step 4 recovers from the old snapshot + old WAL
    /// (possibly via `snapshot.prev`); a crash after it recovers from the
    /// new snapshot, discarding the now-stale WAL by its epoch mismatch.
    pub fn checkpoint(&mut self) -> StoreResult<()> {
        if self.paged.is_some() {
            return self.checkpoint_paged();
        }
        let data = {
            let Some(durability) = &self.durability else {
                return Ok(());
            };
            crate::snapshot::encode_snapshot(self.tables.values(), durability.epoch + 1)?
        };
        let Some(durability) = &mut self.durability else {
            return Ok(());
        };
        let new_epoch = durability.epoch + 1;
        let vfs = durability.vfs.as_ref();
        let primary = durability.dir.join(SNAPSHOT_FILE);
        let tmp = primary.with_extension("tmp");
        {
            let mut f = vfs.create(&tmp)?;
            f.write_all(&data)?;
            f.sync()?;
        }
        if vfs.exists(&primary) {
            vfs.rename(&primary, &durability.dir.join(SNAPSHOT_PREV_FILE))?;
        }
        vfs.rename(&tmp, &primary)?;
        vfs.sync_dir(&durability.dir)?;
        durability.wal.reset(new_epoch)?;
        durability.epoch = new_epoch;
        Ok(())
    }

    /// Paged checkpoint: write **only dirty pages** (plus unsealed tails)
    /// to the heap, sync it, then publish a small page directory naming
    /// every page's heap location. The directory swap follows the same
    /// tmp → prev → primary → dir-sync → WAL-reset bracket as the
    /// resident snapshot, so every crash window recovers to either the
    /// old or the new checkpoint. Because the heap is synced *before* the
    /// directory is written, a durable directory only ever references
    /// fully-synced page images.
    fn checkpoint_paged(&mut self) -> StoreResult<()> {
        let Some(paged) = &self.paged else {
            return Ok(());
        };
        let Some(durability) = &self.durability else {
            return Ok(());
        };
        let new_epoch = durability.epoch + 1;
        paged.pager.flush_and_sync()?;
        let mut tables_meta = Vec::with_capacity(self.tables.len());
        for t in self.tables.values() {
            match t.to_paged_meta()? {
                Some(m) => tables_meta.push(m),
                None => {
                    return Err(StoreError::Corrupt(format!(
                        "resident table {} inside a paged database",
                        t.name()
                    )))
                }
            }
        }
        let catalog = PagedCatalog {
            epoch: new_epoch,
            heap_gen: paged.heap_gen,
            next_table_id: paged.next_table_id,
            tables: tables_meta,
        };
        let data = encode_page_directory(&catalog);
        let Some(durability) = &mut self.durability else {
            return Ok(());
        };
        let vfs = durability.vfs.as_ref();
        let primary = durability.dir.join(PAGEDIR_FILE);
        let tmp = primary.with_extension("tmp");
        {
            let mut f = vfs.create(&tmp)?;
            f.write_all(&data)?;
            f.sync()?;
        }
        if vfs.exists(&primary) {
            vfs.rename(&primary, &durability.dir.join(PAGEDIR_PREV_FILE))?;
        }
        vfs.rename(&tmp, &primary)?;
        vfs.sync_dir(&durability.dir)?;
        durability.wal.reset(new_epoch)?;
        durability.epoch = new_epoch;
        Ok(())
    }

    /// Rewrite the heap keeping only live pages, then checkpoint. Paged
    /// heaps are copy-on-write — a mutated page is appended at a new
    /// offset, orphaning its old image — so a long-lived database
    /// accumulates dead bytes that only compaction reclaims. The new
    /// generation's heap is fully written and synced before the directory
    /// that references it is published; the old generation is unlinked
    /// last (a crash in between leaks it until the next
    /// [`open_paged`](Self::open_paged) cleans up). On resident databases
    /// this is just [`checkpoint`](Self::checkpoint), whose snapshot
    /// rewrite is already a full compaction.
    pub fn compact(&mut self) -> StoreResult<()> {
        if self.paged.is_none() {
            return self.checkpoint();
        }
        let (old_path, new_path, pids) = {
            let Some(durability) = &self.durability else {
                return Ok(());
            };
            let Some(paged) = &self.paged else {
                return Ok(());
            };
            let old = durability.dir.join(heap_file_name(paged.heap_gen));
            let new = durability.dir.join(heap_file_name(paged.heap_gen + 1));
            let pids: Vec<PageId> =
                self.tables.values().flat_map(|t| t.page_ids()).collect();
            (old, new, pids)
        };
        {
            let Some(paged) = &mut self.paged else {
                return Ok(());
            };
            paged.pager.compact_into(&new_path, &pids)?;
            paged.heap_gen += 1;
        }
        self.checkpoint()?;
        if let Some(durability) = &self.durability {
            durability.vfs.remove(&old_path)?;
            durability.vfs.sync_dir(&durability.dir)?;
        }
        Ok(())
    }

    /// Gather statistics. Fails if an index lookup fails — silently
    /// reporting zero would mask a corrupted catalog.
    pub fn stats(&self) -> StoreResult<DbStats> {
        let mut tables = Vec::with_capacity(self.tables.len());
        for t in self.tables.values() {
            let mut indexes = Vec::new();
            for d in t.schema().indexes() {
                indexes.push((d.name.clone(), t.index_entries(&d.name)?));
            }
            tables.push(TableStats {
                name: t.name().to_owned(),
                rows: t.len(),
                indexes,
            });
        }
        Ok(DbStats {
            tables,
            wal_bytes: self
                .durability
                .as_ref()
                .map(|d| d.wal.bytes_written())
                .unwrap_or(0),
            pool: self.paged.as_ref().map(|p| p.pager.stats()),
        })
    }
}

/// Undo information for rollback.
enum Undo {
    Insert { table: String, row_id: RowId },
    Delete { table: String, row_id: RowId, values: Vec<Value> },
    Update { table: String, row_id: RowId, old: Vec<Value> },
}

/// An open transaction. Writes are applied eagerly (read-your-writes) and
/// made durable on [`commit`](Transaction::commit);
/// [`rollback`](Transaction::rollback) or drop undoes them.
pub struct Transaction<'db> {
    db: &'db mut Database,
    txid: u64,
    redo: Vec<LogRecord>,
    undo: Vec<Undo>,
    closed: bool,
}

impl<'db> Transaction<'db> {
    fn check_open(&self) -> StoreResult<()> {
        if self.closed {
            Err(StoreError::TransactionClosed)
        } else {
            Ok(())
        }
    }

    /// The transaction id (reflected in the WAL commit marker).
    pub fn txid(&self) -> u64 {
        self.txid
    }

    /// Read access to a table, seeing this transaction's own writes.
    pub fn table(&self, name: &str) -> StoreResult<&Table> {
        self.db.table(name)
    }

    /// Insert a row.
    pub fn insert(&mut self, table: &str, values: Vec<Value>) -> StoreResult<RowId> {
        self.check_open()?;
        let t = self.db.table_mut_internal(table)?;
        let row_id = t.insert(values.clone())?;
        self.redo.push(LogRecord::Insert {
            table: table.to_owned(),
            row_id,
            values,
        });
        self.undo.push(Undo::Insert {
            table: table.to_owned(),
            row_id,
        });
        Ok(row_id)
    }

    /// Insert many rows at once. Unique constraints are pre-checked for the
    /// whole batch (against existing rows and within the batch), rows land
    /// in contiguous slots, and each secondary index is rebuilt bulk from
    /// the key-sorted batch instead of being maintained per row. On error
    /// nothing is inserted. Semantically identical to a loop of
    /// [`insert`](Self::insert) calls that all succeed.
    pub fn insert_batch(
        &mut self,
        table: &str,
        rows: Vec<Vec<Value>>,
    ) -> StoreResult<Vec<RowId>> {
        self.check_open()?;
        let t = self.db.table_mut_internal(table)?;
        let redo_rows = rows.clone();
        let row_ids = t.insert_batch(rows)?;
        self.redo.reserve(row_ids.len());
        self.undo.reserve(row_ids.len());
        for (row_id, values) in row_ids.iter().zip(redo_rows) {
            self.redo.push(LogRecord::Insert {
                table: table.to_owned(),
                row_id: *row_id,
                values,
            });
            self.undo.push(Undo::Insert {
                table: table.to_owned(),
                row_id: *row_id,
            });
        }
        Ok(row_ids)
    }

    /// Delete a row by id.
    pub fn delete(&mut self, table: &str, row_id: RowId) -> StoreResult<()> {
        self.check_open()?;
        let t = self.db.table_mut_internal(table)?;
        let old = t.delete(row_id)?;
        self.redo.push(LogRecord::Delete {
            table: table.to_owned(),
            row_id,
        });
        self.undo.push(Undo::Delete {
            table: table.to_owned(),
            row_id,
            values: old.into_values(),
        });
        Ok(())
    }

    /// Update a row in place.
    pub fn update(&mut self, table: &str, row_id: RowId, values: Vec<Value>) -> StoreResult<()> {
        self.check_open()?;
        let t = self.db.table_mut_internal(table)?;
        let old = t.get(row_id)?;
        t.update(row_id, values.clone())?;
        self.redo.push(LogRecord::Update {
            table: table.to_owned(),
            row_id,
            values,
        });
        self.undo.push(Undo::Update {
            table: table.to_owned(),
            row_id,
            old: old.into_values(),
        });
        Ok(())
    }

    /// Commit: append redo records and a commit marker to the WAL in one
    /// buffered write, then sync — unless the database is in group-commit
    /// mode ([`Database::set_sync_on_commit`]), where the sync is deferred.
    pub fn commit(mut self) -> StoreResult<()> {
        self.check_open()?;
        self.closed = true;
        if let Some(durability) = &mut self.db.durability {
            self.redo.push(LogRecord::Commit { txid: self.txid });
            durability.wal.append_batch(&self.redo)?;
            if self.db.sync_on_commit {
                durability.wal.sync()?;
            }
        }
        Ok(())
    }

    /// Roll back every applied change, in reverse order.
    pub fn rollback(mut self) -> StoreResult<()> {
        self.check_open()?;
        self.rollback_inner()
    }

    fn rollback_inner(&mut self) -> StoreResult<()> {
        self.closed = true;
        while let Some(undo) = self.undo.pop() {
            match undo {
                Undo::Insert { table, row_id } => {
                    self.db.table_mut_internal(&table)?.delete(row_id)?;
                }
                Undo::Delete {
                    table,
                    row_id,
                    values,
                } => {
                    self.db.table_mut_internal(&table)?.restore(row_id, values)?;
                }
                Undo::Update {
                    table,
                    row_id,
                    old,
                } => {
                    self.db.table_mut_internal(&table)?.update(row_id, old)?;
                }
            }
        }
        self.redo.clear();
        Ok(())
    }
}

impl Drop for Transaction<'_> {
    fn drop(&mut self) {
        if !self.closed {
            // Best-effort rollback; failures here indicate internal
            // inconsistency and surface in debug builds.
            let result = self.rollback_inner();
            debug_assert!(result.is_ok(), "rollback on drop failed: {result:?}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use crate::schema::Column;
    use crate::value::ValueType;

    fn schema(name: &str) -> Schema {
        Schema::builder(name)
            .column(Column::new("id", ValueType::Int))
            .column(Column::new("name", ValueType::Text))
            .primary_key(&["id"])
            .build()
            .unwrap()
    }

    use std::fs;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("relstore-db-tests").join(name);
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn create_and_catalog() {
        let mut db = Database::in_memory();
        db.create_table(schema("a")).unwrap();
        db.create_table(schema("b")).unwrap();
        assert!(matches!(
            db.create_table(schema("a")),
            Err(StoreError::TableExists(_))
        ));
        assert_eq!(db.table_names(), vec!["a", "b"]);
        assert!(db.table("c").is_err());
        // ensure_table tolerates identical schema, rejects different
        db.ensure_table(schema("a")).unwrap();
        let other = Schema::builder("a")
            .column(Column::new("x", ValueType::Int))
            .build()
            .unwrap();
        assert!(db.ensure_table(other).is_err());
    }

    #[test]
    fn ensure_table_reconciles_index_only_differences() {
        let dir = tmpdir("index-evolution");
        let with_index = || {
            Schema::builder("t")
                .column(Column::new("id", ValueType::Int))
                .column(Column::new("name", ValueType::Text))
                .primary_key(&["id"])
                .index("by_name", &["name"])
                .build()
                .unwrap()
        };
        {
            // v1 of the schema: no secondary index
            let mut db = Database::open(&dir).unwrap();
            db.ensure_table(schema("t")).unwrap();
            db.with_txn(|txn| {
                txn.insert("t", vec![Value::Int(1), Value::text("x")])?;
                txn.insert("t", vec![Value::Int(2), Value::text("x")])?;
                Ok(())
            })
            .unwrap();
            db.checkpoint().unwrap(); // snapshot persists the v1 schema
        }
        {
            // v2 adds by_name: reopen must backfill it from existing rows
            let mut db = Database::open(&dir).unwrap();
            db.ensure_table(with_index()).unwrap();
            let t = db.table("t").unwrap();
            assert_eq!(t.lookup("by_name", &[Value::text("x")]).unwrap().len(), 2);
            // maintenance continues through transactions
            db.with_txn(|txn| {
                txn.insert("t", vec![Value::Int(3), Value::text("x")])?;
                Ok(())
            })
            .unwrap();
            assert_eq!(
                db.table("t").unwrap().lookup("by_name", &[Value::text("x")]).unwrap().len(),
                3
            );
        }
        // column differences are still rejected
        let mut db = Database::in_memory();
        db.ensure_table(schema("t")).unwrap();
        let other = Schema::builder("t")
            .column(Column::new("x", ValueType::Int))
            .build()
            .unwrap();
        assert!(matches!(
            db.ensure_table(other),
            Err(StoreError::InvalidSchema(_))
        ));
    }

    #[test]
    fn transaction_commit_and_read_your_writes() {
        let mut db = Database::in_memory();
        db.create_table(schema("t")).unwrap();
        let mut txn = db.begin();
        txn.insert("t", vec![Value::Int(1), Value::text("x")]).unwrap();
        // read-your-writes
        assert_eq!(txn.table("t").unwrap().len(), 1);
        txn.commit().unwrap();
        assert_eq!(db.table("t").unwrap().len(), 1);
    }

    #[test]
    fn rollback_undoes_everything_in_order() {
        let mut db = Database::in_memory();
        db.create_table(schema("t")).unwrap();
        db.with_txn(|txn| {
            txn.insert("t", vec![Value::Int(1), Value::text("a")])?;
            txn.insert("t", vec![Value::Int(2), Value::text("b")])?;
            Ok(())
        })
        .unwrap();

        let mut txn = db.begin();
        let r3 = txn.insert("t", vec![Value::Int(3), Value::text("c")]).unwrap();
        txn.update("t", RowId(0), vec![Value::Int(1), Value::text("a2")]).unwrap();
        txn.delete("t", RowId(1)).unwrap();
        assert_eq!(txn.table("t").unwrap().len(), 2);
        let _ = r3;
        txn.rollback().unwrap();

        let t = db.table("t").unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(RowId(0)).unwrap().get(1), &Value::text("a"));
        assert_eq!(t.get(RowId(1)).unwrap().get(1), &Value::text("b"));
        assert!(t.get(RowId(2)).is_err());
        // unique key of rolled-back insert is free again
        db.with_txn(|txn| {
            txn.insert("t", vec![Value::Int(3), Value::text("c")])?;
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn drop_without_commit_rolls_back() {
        let mut db = Database::in_memory();
        db.create_table(schema("t")).unwrap();
        {
            let mut txn = db.begin();
            txn.insert("t", vec![Value::Int(1), Value::text("x")]).unwrap();
            // dropped here
        }
        assert_eq!(db.table("t").unwrap().len(), 0);
    }

    #[test]
    fn with_txn_rolls_back_on_error() {
        let mut db = Database::in_memory();
        db.create_table(schema("t")).unwrap();
        let err = db.with_txn(|txn| {
            txn.insert("t", vec![Value::Int(1), Value::text("x")])?;
            txn.insert("t", vec![Value::Int(1), Value::text("dup")])?; // pk violation
            Ok(())
        });
        assert!(err.is_err());
        assert_eq!(db.table("t").unwrap().len(), 0);
    }

    #[test]
    fn durable_roundtrip_via_wal_only() {
        let dir = tmpdir("wal-only");
        {
            let mut db = Database::open(&dir).unwrap();
            db.create_table(schema("t")).unwrap();
            db.with_txn(|txn| {
                txn.insert("t", vec![Value::Int(1), Value::text("x")])?;
                txn.insert("t", vec![Value::Int(2), Value::text("y")])?;
                Ok(())
            })
            .unwrap();
        } // drop without checkpoint: state only in WAL
        {
            // the WAL-logged CreateTable record lets replay rebuild the
            // table even though no snapshot was ever written
            let db = Database::open(&dir).unwrap();
            let t = db.table("t").unwrap();
            assert_eq!(t.len(), 2);
            assert_eq!(
                t.lookup_unique("pk", &[Value::Int(2)]).unwrap().unwrap().get(1),
                &Value::text("y")
            );
        }
    }

    #[test]
    fn durable_roundtrip_with_checkpoint_then_wal() {
        let dir = tmpdir("checkpoint-wal");
        {
            let mut db = Database::open(&dir).unwrap();
            db.create_table(schema("t")).unwrap();
            db.with_txn(|txn| {
                txn.insert("t", vec![Value::Int(1), Value::text("x")])?;
                Ok(())
            })
            .unwrap();
            db.checkpoint().unwrap(); // snapshot captures schema + row 1
            db.with_txn(|txn| {
                txn.insert("t", vec![Value::Int(2), Value::text("y")])?;
                txn.update("t", RowId(0), vec![Value::Int(1), Value::text("x2")])?;
                Ok(())
            })
            .unwrap();
            // no checkpoint: second txn lives only in the WAL
        }
        {
            let db = Database::open(&dir).unwrap();
            let t = db.table("t").unwrap();
            assert_eq!(t.len(), 2);
            assert_eq!(t.get(RowId(0)).unwrap().get(1), &Value::text("x2"));
            assert_eq!(t.get(RowId(1)).unwrap().get(1), &Value::text("y"));
        }
    }

    #[test]
    fn group_commit_defers_sync_but_preserves_commits() {
        let dir = tmpdir("group-commit");
        {
            let mut db = Database::open(&dir).unwrap();
            db.create_table(schema("t")).unwrap();
            db.checkpoint().unwrap();
            db.set_sync_on_commit(false);
            assert!(!db.sync_on_commit());
            for i in 0..3 {
                db.with_txn(|txn| {
                    txn.insert("t", vec![Value::Int(i), Value::text("x")])?;
                    Ok(())
                })
                .unwrap();
            }
            db.sync_wal().unwrap();
            db.set_sync_on_commit(true);
        }
        {
            let db = Database::open(&dir).unwrap();
            assert_eq!(db.table("t").unwrap().len(), 3);
        }
    }

    #[test]
    fn insert_batch_commits_and_rolls_back_like_per_row_inserts() {
        let dir = tmpdir("insert-batch");
        {
            let mut db = Database::open(&dir).unwrap();
            db.create_table(schema("t")).unwrap();
            db.checkpoint().unwrap();
            db.with_txn(|txn| {
                let ids = txn.insert_batch(
                    "t",
                    vec![
                        vec![Value::Int(1), Value::text("a")],
                        vec![Value::Int(2), Value::text("b")],
                    ],
                )?;
                assert_eq!(ids, vec![RowId(0), RowId(1)]);
                Ok(())
            })
            .unwrap();
            // rollback undoes a batch insert row by row
            let mut txn = db.begin();
            txn.insert_batch("t", vec![vec![Value::Int(3), Value::text("c")]])
                .unwrap();
            txn.rollback().unwrap();
            assert_eq!(db.table("t").unwrap().len(), 2);
        }
        {
            // WAL replay restores the batch rows (redo records are per row)
            let db = Database::open(&dir).unwrap();
            let t = db.table("t").unwrap();
            assert_eq!(t.len(), 2);
            assert_eq!(t.get(RowId(1)).unwrap().get(1), &Value::text("b"));
        }
    }

    #[test]
    fn uncommitted_txn_is_not_recovered() {
        let dir = tmpdir("uncommitted");
        {
            let mut db = Database::open(&dir).unwrap();
            db.create_table(schema("t")).unwrap();
            db.checkpoint().unwrap();
            db.with_txn(|txn| {
                txn.insert("t", vec![Value::Int(1), Value::text("keep")])?;
                Ok(())
            })
            .unwrap();
            let mut txn = db.begin();
            txn.insert("t", vec![Value::Int(2), Value::text("lost")]).unwrap();
            // txn dropped without commit: rolled back locally, nothing in WAL
        }
        {
            let db = Database::open(&dir).unwrap();
            let t = db.table("t").unwrap();
            assert_eq!(t.len(), 1);
            let rows = t
                .select(&Predicate::eq("name", Value::text("keep")))
                .unwrap();
            assert_eq!(rows.len(), 1);
        }
    }

    #[test]
    fn checkpoint_resets_wal_and_stats_report() {
        let dir = tmpdir("stats");
        let mut db = Database::open(&dir).unwrap();
        db.create_table(schema("t")).unwrap();
        db.with_txn(|txn| {
            txn.insert("t", vec![Value::Int(1), Value::text("x")])?;
            Ok(())
        })
        .unwrap();
        assert!(db.stats().unwrap().wal_bytes > 0);
        db.checkpoint().unwrap();
        assert_eq!(db.stats().unwrap().wal_bytes, 0);
        let stats = db.stats().unwrap();
        assert_eq!(stats.rows("t"), 1);
        assert_eq!(stats.tables[0].indexes[0].0, "pk");
    }

    #[test]
    fn recovery_report_reflects_clean_and_replayed_opens() {
        let dir = tmpdir("recovery-report");
        {
            let mut db = Database::open(&dir).unwrap();
            let report = db.recovery_report().unwrap();
            assert_eq!(report.snapshot, SnapshotSource::None);
            assert_eq!(report.epoch, 0);
            assert_eq!(report.wal_txns, 0);
            db.create_table(schema("t")).unwrap();
            db.checkpoint().unwrap();
            db.with_txn(|txn| {
                txn.insert("t", vec![Value::Int(1), Value::text("x")])?;
                Ok(())
            })
            .unwrap();
        }
        {
            let db = Database::open(&dir).unwrap();
            let report = db.recovery_report().unwrap();
            assert_eq!(report.snapshot, SnapshotSource::Primary);
            assert_eq!(report.epoch, 1);
            assert_eq!(report.wal_txns, 1);
            assert!(!report.wal_stale);
            assert!(report.wal_torn_at.is_none());
        }
        assert!(Database::in_memory().recovery_report().is_none());
    }

    fn paged_config() -> PoolConfig {
        PoolConfig {
            page_bytes: 256,
            pool_pages: 2,
        }
    }

    #[test]
    fn paged_roundtrip_checkpoint_then_wal() {
        use crate::vfs::FaultVfs;
        let vfs = FaultVfs::new();
        let dir = Path::new("/db");
        {
            let mut db =
                Database::open_paged_with_vfs(Arc::new(vfs.clone()), dir, paged_config()).unwrap();
            db.create_table(schema("t")).unwrap();
            db.with_txn(|txn| {
                for i in 0..50 {
                    txn.insert("t", vec![Value::Int(i), Value::text(format!("r{i}"))])?;
                }
                Ok(())
            })
            .unwrap();
            db.checkpoint().unwrap();
            // post-checkpoint writes live only in the WAL
            db.with_txn(|txn| {
                txn.insert("t", vec![Value::Int(50), Value::text("wal")])?;
                txn.update("t", RowId(3), vec![Value::Int(3), Value::text("upd")])?;
                txn.delete("t", RowId(7))?;
                Ok(())
            })
            .unwrap();
        }
        {
            let db =
                Database::open_paged_with_vfs(Arc::new(vfs.clone()), dir, paged_config()).unwrap();
            let report = db.recovery_report().unwrap();
            assert_eq!(report.snapshot, SnapshotSource::Primary);
            assert_eq!(report.wal_txns, 1);
            let t = db.table("t").unwrap();
            assert_eq!(t.len(), 50);
            assert_eq!(t.get(RowId(3)).unwrap().get(1), &Value::text("upd"));
            assert_eq!(t.get(RowId(50)).unwrap().get(1), &Value::text("wal"));
            assert!(t.get(RowId(7)).is_err());
            // indexed lookup through the pool
            assert_eq!(
                t.lookup_unique("pk", &[Value::Int(42)]).unwrap().unwrap().get(1),
                &Value::text("r42")
            );
            let stats = db.stats().unwrap();
            let pool = stats.pool.expect("paged db reports pool stats");
            assert!(pool.resident <= 2, "pool capacity bounds residency");
        }
    }

    #[test]
    fn paged_wal_only_roundtrip_creates_paged_tables() {
        use crate::vfs::FaultVfs;
        let vfs = FaultVfs::new();
        let dir = Path::new("/db");
        {
            let mut db =
                Database::open_paged_with_vfs(Arc::new(vfs.clone()), dir, paged_config()).unwrap();
            db.create_table(schema("t")).unwrap();
            db.with_txn(|txn| {
                txn.insert("t", vec![Value::Int(1), Value::text("x")])?;
                Ok(())
            })
            .unwrap();
            // no checkpoint: everything lives in the WAL
        }
        {
            let db =
                Database::open_paged_with_vfs(Arc::new(vfs.clone()), dir, paged_config()).unwrap();
            let t = db.table("t").unwrap();
            assert_eq!(t.len(), 1);
            // the replayed CreateTable made a *paged* table, so a second
            // checkpoint can describe it in the page directory
            let mut db = db;
            db.checkpoint().unwrap();
        }
    }

    #[test]
    fn paged_compact_reclaims_dead_heap_bytes() {
        use crate::vfs::FaultVfs;
        let vfs = FaultVfs::new();
        let dir = Path::new("/db");
        let mut db =
            Database::open_paged_with_vfs(Arc::new(vfs.clone()), dir, paged_config()).unwrap();
        db.create_table(schema("t")).unwrap();
        db.with_txn(|txn| {
            for i in 0..80 {
                txn.insert("t", vec![Value::Int(i), Value::text(format!("v{i}"))])?;
            }
            Ok(())
        })
        .unwrap();
        db.checkpoint().unwrap();
        // churn: copy-on-write updates orphan old page images in gen 1
        for round in 0..4 {
            db.with_txn(|txn| {
                for i in 0..80 {
                    txn.update(
                        "t",
                        RowId(i),
                        vec![Value::Int(i as i64), Value::text(format!("u{round}-{i}"))],
                    )?;
                }
                Ok(())
            })
            .unwrap();
            db.checkpoint().unwrap();
        }
        let bloated = vfs
            .peek(&dir.join(heap_file_name(1)))
            .expect("gen-1 heap exists")
            .len();
        db.compact().unwrap();
        assert!(!vfs.exists(&dir.join(heap_file_name(1))), "old heap unlinked");
        let compacted = vfs
            .peek(&dir.join(heap_file_name(2)))
            .expect("gen-2 heap exists")
            .len();
        assert!(
            compacted < bloated,
            "compaction must shrink the heap ({compacted} vs {bloated})"
        );
        // data intact, and the compacted generation reopens cleanly
        assert_eq!(db.table("t").unwrap().get(RowId(5)).unwrap().get(1), &Value::text("u3-5"));
        drop(db);
        let db =
            Database::open_paged_with_vfs(Arc::new(vfs.clone()), dir, paged_config()).unwrap();
        let t = db.table("t").unwrap();
        assert_eq!(t.len(), 80);
        assert_eq!(t.get(RowId(5)).unwrap().get(1), &Value::text("u3-5"));
    }

    #[test]
    fn paged_checkpoint_writes_only_dirty_pages() {
        use crate::vfs::FaultVfs;
        let vfs = FaultVfs::new();
        let dir = Path::new("/db");
        let mut db =
            Database::open_paged_with_vfs(Arc::new(vfs.clone()), dir, paged_config()).unwrap();
        db.create_table(schema("t")).unwrap();
        db.with_txn(|txn| {
            for i in 0..400 {
                txn.insert("t", vec![Value::Int(i), Value::text(format!("v{i}"))])?;
            }
            Ok(())
        })
        .unwrap();
        db.checkpoint().unwrap();
        let full = vfs.peek(&dir.join(heap_file_name(1))).unwrap().len();
        // touch a single row: the next checkpoint appends only the page(s)
        // holding it, not the whole table
        db.with_txn(|txn| {
            txn.update("t", RowId(0), vec![Value::Int(0), Value::text("dirty")])?;
            Ok(())
        })
        .unwrap();
        db.checkpoint().unwrap();
        let after = vfs.peek(&dir.join(heap_file_name(1))).unwrap().len();
        let delta = after - full;
        assert!(delta > 0, "the dirty page must be rewritten");
        assert!(
            delta < full / 4,
            "one dirty row must not rewrite the whole heap ({delta} of {full})"
        );
    }

    #[test]
    fn crash_between_snapshot_rename_and_wal_reset_discards_stale_wal() {
        // Simulate the checkpoint protocol interrupted after step 4: the
        // new snapshot is in place but the WAL still holds the pre-
        // checkpoint transactions. Replaying them would double-apply.
        let dir = tmpdir("stale-wal");
        let wal_backup;
        {
            let mut db = Database::open(&dir).unwrap();
            db.create_table(schema("t")).unwrap();
            db.checkpoint().unwrap();
            db.with_txn(|txn| {
                txn.insert("t", vec![Value::Int(1), Value::text("x")])?;
                Ok(())
            })
            .unwrap();
            wal_backup = fs::read(dir.join(WAL_FILE)).unwrap();
            db.checkpoint().unwrap(); // epoch 2, WAL reset
        }
        // put the stale (epoch 1) WAL back, as if the reset never ran
        fs::write(dir.join(WAL_FILE), &wal_backup).unwrap();
        {
            let db = Database::open(&dir).unwrap();
            let report = db.recovery_report().unwrap();
            assert!(report.wal_stale, "stale WAL must be detected");
            assert_eq!(report.epoch, 2);
            // the row exists exactly once (from the snapshot, not replay)
            assert_eq!(db.table("t").unwrap().len(), 1);
        }
        // the stale WAL was reset on open: reopening is clean
        {
            let db = Database::open(&dir).unwrap();
            assert!(!db.recovery_report().unwrap().wal_stale);
            assert_eq!(db.table("t").unwrap().len(), 1);
        }
    }
}
