//! The database: a catalog of tables with transactions and durability.
//!
//! * [`Database::in_memory`] gives a volatile database.
//! * [`Database::open`] attaches a directory: state is the last
//!   [checkpoint](Database::checkpoint) snapshot plus a replay of the
//!   write-ahead log's committed transactions.
//!
//! Transactions are single-writer (the `&mut self` receiver enforces it at
//! compile time). A [`Transaction`] applies changes eagerly — reads through
//! the transaction see its own writes — while recording redo records for
//! the WAL and undo records for rollback. Dropping a transaction without
//! committing rolls it back.

use crate::error::{StoreError, StoreResult};
use crate::row::RowId;
use crate::schema::Schema;
use crate::stats::{DbStats, TableStats};
use crate::table::Table;
use crate::value::Value;
use crate::vfs::{RealVfs, Vfs};
use crate::wal::{read_wal, LogRecord, WalWriter};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Primary snapshot file name inside a database directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";
/// Previous snapshot, kept as a fallback until the next checkpoint.
pub const SNAPSHOT_PREV_FILE: &str = "snapshot.prev";
/// Write-ahead log file name.
pub const WAL_FILE: &str = "wal.log";

struct Durability {
    dir: PathBuf,
    vfs: Arc<dyn Vfs>,
    wal: WalWriter,
    /// Epoch of the snapshot the current WAL extends.
    epoch: u64,
}

/// Which snapshot file recovery loaded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotSource {
    /// `snapshot.bin` was present and valid.
    Primary,
    /// `snapshot.bin` was missing or corrupt; `snapshot.prev` was used.
    Fallback,
    /// No valid snapshot existed (fresh database, or both copies bad).
    None,
}

/// What [`Database::open`] found and did. Recovery *degrades* instead of
/// failing: a corrupt primary snapshot falls back to the previous one, a
/// stale WAL (epoch mismatch after an interrupted checkpoint) is
/// discarded, a torn WAL tail is truncated. This report makes those
/// decisions observable so callers can log them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Which snapshot file was loaded.
    pub snapshot: SnapshotSource,
    /// Epoch of the recovered state.
    pub epoch: u64,
    /// Committed transactions replayed from the WAL.
    pub wal_txns: u64,
    /// WAL operations discarded for lack of a commit marker.
    pub wal_discarded_ops: usize,
    /// Byte offset of a torn WAL tail, if one was truncated away.
    pub wal_torn_at: Option<u64>,
    /// True if the whole WAL was discarded because its epoch did not match
    /// the snapshot (a checkpoint was interrupted between the snapshot
    /// rename and the log reset; the log's contents live in the snapshot).
    pub wal_stale: bool,
}

/// An embedded relational database.
pub struct Database {
    tables: BTreeMap<String, Table>,
    durability: Option<Durability>,
    next_txid: u64,
    /// When `true` (the default) every commit fsyncs the WAL. Group commit
    /// ([`set_sync_on_commit`](Self::set_sync_on_commit)) turns this off so
    /// a bulk loader can commit many transactions and pay one
    /// [`sync_wal`](Self::sync_wal) at the end of the batch.
    sync_on_commit: bool,
    /// What recovery found when this database was opened (durable only).
    recovery: Option<RecoveryReport>,
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("tables", &self.tables.keys().collect::<Vec<_>>())
            .field("durable", &self.durability.is_some())
            .finish()
    }
}

impl Database {
    /// A volatile in-memory database.
    pub fn in_memory() -> Self {
        Database {
            tables: BTreeMap::new(),
            durability: None,
            next_txid: 1,
            sync_on_commit: true,
            recovery: None,
        }
    }

    /// Open (or create) a durable database in `dir`: load the snapshot,
    /// replay committed WAL records, and keep the WAL open for appends.
    pub fn open(dir: &Path) -> StoreResult<Self> {
        Self::open_with_vfs(Arc::new(RealVfs), dir)
    }

    /// [`open`](Self::open) against an explicit I/O backend (crash tests
    /// substitute [`FaultVfs`](crate::vfs::FaultVfs)).
    ///
    /// Recovery degrades rather than errors on storage-level damage:
    ///
    /// 1. Load `snapshot.bin`; if missing or corrupt, fall back to
    ///    `snapshot.prev`; if neither is valid, start from an empty
    ///    catalog. (A crash can only corrupt the snapshot *being written*,
    ///    which the checkpoint protocol keeps separate from the last good
    ///    one, so the fallback is always at most one checkpoint old.)
    /// 2. Read the WAL. Replay its committed transactions only if its
    ///    epoch matches the snapshot's; a mismatch means the WAL is stale
    ///    (interrupted checkpoint) and it is discarded — its effects are
    ///    already inside the newer snapshot.
    /// 3. Truncate any torn WAL tail and, if the WAL was stale, reset it
    ///    to the snapshot's epoch, completing the interrupted checkpoint.
    ///
    /// What recovery did is available from
    /// [`recovery_report`](Self::recovery_report).
    pub fn open_with_vfs(vfs: Arc<dyn Vfs>, dir: &Path) -> StoreResult<Self> {
        vfs.create_dir_all(dir)?;
        let primary = dir.join(SNAPSHOT_FILE);
        let fallback = dir.join(SNAPSHOT_PREV_FILE);
        let (tables, epoch, source) =
            match crate::snapshot::read_snapshot_file(vfs.as_ref(), &primary) {
                Ok(Some((tables, epoch))) => (tables, epoch, SnapshotSource::Primary),
                Ok(None) | Err(StoreError::Corrupt(_)) => {
                    match crate::snapshot::read_snapshot_file(vfs.as_ref(), &fallback) {
                        Ok(Some((tables, epoch))) => (tables, epoch, SnapshotSource::Fallback),
                        Ok(None) | Err(StoreError::Corrupt(_)) => {
                            (Vec::new(), 0, SnapshotSource::None)
                        }
                        Err(e) => return Err(e),
                    }
                }
                Err(e) => return Err(e),
            };
        let mut db = Database {
            tables: tables.into_iter().map(|t| (t.name().to_owned(), t)).collect(),
            durability: None,
            next_txid: 1,
            sync_on_commit: true,
            recovery: None,
        };
        let wal_path = dir.join(WAL_FILE);
        let recovery = read_wal(vfs.as_ref(), &wal_path)?;
        let wal_epoch = recovery.epoch.unwrap_or(0);
        let wal_has_content = recovery.committed_txns > 0
            || recovery.discarded_ops > 0
            || recovery.epoch.is_some()
            || !recovery.committed_ops.is_empty();
        let stale = wal_has_content && wal_epoch != epoch;
        let mut report = RecoveryReport {
            snapshot: source,
            epoch,
            wal_txns: 0,
            wal_discarded_ops: 0,
            wal_torn_at: recovery.torn_at,
            wal_stale: stale,
        };
        if !stale {
            report.wal_txns = recovery.committed_txns;
            report.wal_discarded_ops = recovery.discarded_ops;
            for op in recovery.committed_ops {
                db.apply_replayed(op)?;
            }
            db.next_txid = recovery.committed_txns + 1;
        }
        let mut wal = WalWriter::open(vfs.clone(), &wal_path)?;
        if stale {
            // Complete the interrupted checkpoint: the snapshot already
            // holds this WAL's effects, so clear it and stamp the epoch.
            wal.reset(epoch)?;
        }
        // The WAL file (and the directory itself) may have just been
        // created; sync the directory so the entries survive a power cut.
        vfs.sync_dir(dir)?;
        db.durability = Some(Durability {
            dir: dir.to_owned(),
            vfs,
            wal,
            epoch,
        });
        db.recovery = Some(report);
        Ok(db)
    }

    /// What recovery found when this database was opened (`None` for
    /// in-memory databases).
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// The VFS this database's durable state goes through, so callers
    /// staging auxiliary files next to the store share its fault model.
    /// In-memory databases have no VFS of their own and get [`RealVfs`].
    pub fn vfs(&self) -> Arc<dyn Vfs> {
        match &self.durability {
            Some(d) => d.vfs.clone(),
            None => Arc::new(RealVfs),
        }
    }

    fn apply_replayed(&mut self, op: LogRecord) -> StoreResult<()> {
        match op {
            LogRecord::Insert {
                table,
                row_id,
                values,
            } => self.table_mut_internal(&table)?.insert_at(row_id, values),
            LogRecord::Delete { table, row_id } => {
                self.table_mut_internal(&table)?.delete(row_id).map(|_| ())
            }
            LogRecord::Update {
                table,
                row_id,
                values,
            } => self.table_mut_internal(&table)?.update(row_id, values),
            LogRecord::Commit { .. } | LogRecord::Epoch { .. } => Ok(()),
            LogRecord::CreateTable { schema } => {
                // The snapshot may already contain the table if the WAL
                // predates it (it cannot on the normal checkpoint path, but
                // degraded recovery tolerates it); the snapshot wins.
                if !self.tables.contains_key(schema.name()) {
                    self.tables.insert(schema.name().to_owned(), Table::new(schema));
                }
                Ok(())
            }
        }
    }

    /// Create a table. On durable databases the schema is WAL-logged and
    /// synced immediately: committed rows may land in this table before the
    /// next checkpoint, and replaying them requires the table to exist.
    pub fn create_table(&mut self, schema: Schema) -> StoreResult<()> {
        let name = schema.name().to_owned();
        if self.tables.contains_key(&name) {
            return Err(StoreError::TableExists(name));
        }
        if let Some(durability) = &mut self.durability {
            durability.wal.append(&LogRecord::CreateTable {
                schema: schema.clone(),
            })?;
            durability.wal.sync()?;
        }
        self.tables.insert(name, Table::new(schema));
        Ok(())
    }

    /// Create a table if it does not already exist. An existing table must
    /// have identical columns and primary key; a difference confined to the
    /// secondary-index list is reconciled in place (missing indexes are
    /// built from the live rows, extra ones dropped), so adding an index to
    /// a schema does not invalidate previously-persisted databases.
    pub fn ensure_table(&mut self, schema: Schema) -> StoreResult<()> {
        if let Some(existing) = self.tables.get_mut(schema.name()) {
            if existing.schema() == &schema {
                return Ok(());
            }
            let same_core = existing.schema().columns() == schema.columns()
                && existing.schema().primary_key() == schema.primary_key();
            if same_core {
                return existing.reconcile_indexes(schema);
            }
            return Err(StoreError::InvalidSchema(format!(
                "table {} exists with a different schema",
                schema.name()
            )));
        }
        self.create_table(schema)
    }

    /// Read access to a table.
    pub fn table(&self, name: &str) -> StoreResult<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| StoreError::NoSuchTable(name.to_owned()))
    }

    fn table_mut_internal(&mut self, name: &str) -> StoreResult<&mut Table> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| StoreError::NoSuchTable(name.to_owned()))
    }

    /// Names of all tables (sorted).
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Begin a transaction. Only one can exist at a time (enforced by the
    /// mutable borrow).
    pub fn begin(&mut self) -> Transaction<'_> {
        let txid = self.next_txid;
        self.next_txid += 1;
        Transaction {
            db: self,
            txid,
            redo: Vec::new(),
            undo: Vec::new(),
            closed: false,
        }
    }

    /// Convenience: run `f` inside a transaction and commit, rolling back on
    /// error.
    pub fn with_txn<T>(
        &mut self,
        f: impl FnOnce(&mut Transaction<'_>) -> StoreResult<T>,
    ) -> StoreResult<T> {
        let mut txn = self.begin();
        match f(&mut txn) {
            Ok(v) => {
                txn.commit()?;
                Ok(v)
            }
            Err(e) => {
                txn.rollback()?;
                Err(e)
            }
        }
    }

    /// Toggle per-commit WAL fsync (group commit). With syncing off,
    /// committed transactions are appended to the WAL (buffered) but only
    /// become durable at the next [`sync_wal`](Self::sync_wal) /
    /// [`checkpoint`](Self::checkpoint) or when syncing is re-enabled and a
    /// commit runs. Atomicity is unaffected: commit markers still delimit
    /// transactions, so a crash loses at most the unsynced *suffix* of
    /// commits, never a partial transaction.
    pub fn set_sync_on_commit(&mut self, sync: bool) {
        self.sync_on_commit = sync;
    }

    /// Whether commits currently fsync the WAL.
    pub fn sync_on_commit(&self) -> bool {
        self.sync_on_commit
    }

    /// Flush and fsync the WAL, making every committed transaction durable.
    /// No-op (Ok) for in-memory databases.
    pub fn sync_wal(&mut self) -> StoreResult<()> {
        if let Some(durability) = &mut self.durability {
            durability.wal.sync()?;
        }
        Ok(())
    }

    /// Write a snapshot of the current state and truncate the WAL.
    /// No-op (Ok) for in-memory databases.
    ///
    /// The sequence is crash-safe at every step:
    ///
    /// 1. write + fsync the new snapshot (epoch N+1) to a temp file,
    /// 2. rename the current snapshot to `snapshot.prev`,
    /// 3. rename the temp file to `snapshot.bin`,
    /// 4. fsync the directory (the renames are not durable before this),
    /// 5. reset the WAL, stamping it with epoch N+1.
    ///
    /// A crash before step 4 recovers from the old snapshot + old WAL
    /// (possibly via `snapshot.prev`); a crash after it recovers from the
    /// new snapshot, discarding the now-stale WAL by its epoch mismatch.
    pub fn checkpoint(&mut self) -> StoreResult<()> {
        let Some(durability) = &mut self.durability else {
            return Ok(());
        };
        let new_epoch = durability.epoch + 1;
        let vfs = durability.vfs.as_ref();
        let primary = durability.dir.join(SNAPSHOT_FILE);
        let tmp = primary.with_extension("tmp");
        {
            let data = crate::snapshot::encode_snapshot(self.tables.values(), new_epoch);
            let mut f = vfs.create(&tmp)?;
            f.write_all(&data)?;
            f.sync()?;
        }
        if vfs.exists(&primary) {
            vfs.rename(&primary, &durability.dir.join(SNAPSHOT_PREV_FILE))?;
        }
        vfs.rename(&tmp, &primary)?;
        vfs.sync_dir(&durability.dir)?;
        durability.wal.reset(new_epoch)?;
        durability.epoch = new_epoch;
        Ok(())
    }

    /// Gather statistics. Fails if an index lookup fails — silently
    /// reporting zero would mask a corrupted catalog.
    pub fn stats(&self) -> StoreResult<DbStats> {
        let mut tables = Vec::with_capacity(self.tables.len());
        for t in self.tables.values() {
            let mut indexes = Vec::new();
            for d in t.schema().indexes() {
                indexes.push((d.name.clone(), t.index_entries(&d.name)?));
            }
            tables.push(TableStats {
                name: t.name().to_owned(),
                rows: t.len(),
                indexes,
            });
        }
        Ok(DbStats {
            tables,
            wal_bytes: self
                .durability
                .as_ref()
                .map(|d| d.wal.bytes_written())
                .unwrap_or(0),
        })
    }
}

/// Undo information for rollback.
enum Undo {
    Insert { table: String, row_id: RowId },
    Delete { table: String, row_id: RowId, values: Vec<Value> },
    Update { table: String, row_id: RowId, old: Vec<Value> },
}

/// An open transaction. Writes are applied eagerly (read-your-writes) and
/// made durable on [`commit`](Transaction::commit);
/// [`rollback`](Transaction::rollback) or drop undoes them.
pub struct Transaction<'db> {
    db: &'db mut Database,
    txid: u64,
    redo: Vec<LogRecord>,
    undo: Vec<Undo>,
    closed: bool,
}

impl<'db> Transaction<'db> {
    fn check_open(&self) -> StoreResult<()> {
        if self.closed {
            Err(StoreError::TransactionClosed)
        } else {
            Ok(())
        }
    }

    /// The transaction id (reflected in the WAL commit marker).
    pub fn txid(&self) -> u64 {
        self.txid
    }

    /// Read access to a table, seeing this transaction's own writes.
    pub fn table(&self, name: &str) -> StoreResult<&Table> {
        self.db.table(name)
    }

    /// Insert a row.
    pub fn insert(&mut self, table: &str, values: Vec<Value>) -> StoreResult<RowId> {
        self.check_open()?;
        let t = self.db.table_mut_internal(table)?;
        let row_id = t.insert(values.clone())?;
        self.redo.push(LogRecord::Insert {
            table: table.to_owned(),
            row_id,
            values,
        });
        self.undo.push(Undo::Insert {
            table: table.to_owned(),
            row_id,
        });
        Ok(row_id)
    }

    /// Insert many rows at once. Unique constraints are pre-checked for the
    /// whole batch (against existing rows and within the batch), rows land
    /// in contiguous slots, and each secondary index is rebuilt bulk from
    /// the key-sorted batch instead of being maintained per row. On error
    /// nothing is inserted. Semantically identical to a loop of
    /// [`insert`](Self::insert) calls that all succeed.
    pub fn insert_batch(
        &mut self,
        table: &str,
        rows: Vec<Vec<Value>>,
    ) -> StoreResult<Vec<RowId>> {
        self.check_open()?;
        let t = self.db.table_mut_internal(table)?;
        let redo_rows = rows.clone();
        let row_ids = t.insert_batch(rows)?;
        self.redo.reserve(row_ids.len());
        self.undo.reserve(row_ids.len());
        for (row_id, values) in row_ids.iter().zip(redo_rows) {
            self.redo.push(LogRecord::Insert {
                table: table.to_owned(),
                row_id: *row_id,
                values,
            });
            self.undo.push(Undo::Insert {
                table: table.to_owned(),
                row_id: *row_id,
            });
        }
        Ok(row_ids)
    }

    /// Delete a row by id.
    pub fn delete(&mut self, table: &str, row_id: RowId) -> StoreResult<()> {
        self.check_open()?;
        let t = self.db.table_mut_internal(table)?;
        let old = t.delete(row_id)?;
        self.redo.push(LogRecord::Delete {
            table: table.to_owned(),
            row_id,
        });
        self.undo.push(Undo::Delete {
            table: table.to_owned(),
            row_id,
            values: old.into_values(),
        });
        Ok(())
    }

    /// Update a row in place.
    pub fn update(&mut self, table: &str, row_id: RowId, values: Vec<Value>) -> StoreResult<()> {
        self.check_open()?;
        let t = self.db.table_mut_internal(table)?;
        let old = t.get(row_id)?.clone();
        t.update(row_id, values.clone())?;
        self.redo.push(LogRecord::Update {
            table: table.to_owned(),
            row_id,
            values,
        });
        self.undo.push(Undo::Update {
            table: table.to_owned(),
            row_id,
            old: old.into_values(),
        });
        Ok(())
    }

    /// Commit: append redo records and a commit marker to the WAL in one
    /// buffered write, then sync — unless the database is in group-commit
    /// mode ([`Database::set_sync_on_commit`]), where the sync is deferred.
    pub fn commit(mut self) -> StoreResult<()> {
        self.check_open()?;
        self.closed = true;
        if let Some(durability) = &mut self.db.durability {
            self.redo.push(LogRecord::Commit { txid: self.txid });
            durability.wal.append_batch(&self.redo)?;
            if self.db.sync_on_commit {
                durability.wal.sync()?;
            }
        }
        Ok(())
    }

    /// Roll back every applied change, in reverse order.
    pub fn rollback(mut self) -> StoreResult<()> {
        self.check_open()?;
        self.rollback_inner()
    }

    fn rollback_inner(&mut self) -> StoreResult<()> {
        self.closed = true;
        while let Some(undo) = self.undo.pop() {
            match undo {
                Undo::Insert { table, row_id } => {
                    self.db.table_mut_internal(&table)?.delete(row_id)?;
                }
                Undo::Delete {
                    table,
                    row_id,
                    values,
                } => {
                    self.db.table_mut_internal(&table)?.restore(row_id, values)?;
                }
                Undo::Update {
                    table,
                    row_id,
                    old,
                } => {
                    self.db.table_mut_internal(&table)?.update(row_id, old)?;
                }
            }
        }
        self.redo.clear();
        Ok(())
    }
}

impl Drop for Transaction<'_> {
    fn drop(&mut self) {
        if !self.closed {
            // Best-effort rollback; failures here indicate internal
            // inconsistency and surface in debug builds.
            let result = self.rollback_inner();
            debug_assert!(result.is_ok(), "rollback on drop failed: {result:?}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use crate::schema::Column;
    use crate::value::ValueType;

    fn schema(name: &str) -> Schema {
        Schema::builder(name)
            .column(Column::new("id", ValueType::Int))
            .column(Column::new("name", ValueType::Text))
            .primary_key(&["id"])
            .build()
            .unwrap()
    }

    use std::fs;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("relstore-db-tests").join(name);
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn create_and_catalog() {
        let mut db = Database::in_memory();
        db.create_table(schema("a")).unwrap();
        db.create_table(schema("b")).unwrap();
        assert!(matches!(
            db.create_table(schema("a")),
            Err(StoreError::TableExists(_))
        ));
        assert_eq!(db.table_names(), vec!["a", "b"]);
        assert!(db.table("c").is_err());
        // ensure_table tolerates identical schema, rejects different
        db.ensure_table(schema("a")).unwrap();
        let other = Schema::builder("a")
            .column(Column::new("x", ValueType::Int))
            .build()
            .unwrap();
        assert!(db.ensure_table(other).is_err());
    }

    #[test]
    fn ensure_table_reconciles_index_only_differences() {
        let dir = tmpdir("index-evolution");
        let with_index = || {
            Schema::builder("t")
                .column(Column::new("id", ValueType::Int))
                .column(Column::new("name", ValueType::Text))
                .primary_key(&["id"])
                .index("by_name", &["name"])
                .build()
                .unwrap()
        };
        {
            // v1 of the schema: no secondary index
            let mut db = Database::open(&dir).unwrap();
            db.ensure_table(schema("t")).unwrap();
            db.with_txn(|txn| {
                txn.insert("t", vec![Value::Int(1), Value::text("x")])?;
                txn.insert("t", vec![Value::Int(2), Value::text("x")])?;
                Ok(())
            })
            .unwrap();
            db.checkpoint().unwrap(); // snapshot persists the v1 schema
        }
        {
            // v2 adds by_name: reopen must backfill it from existing rows
            let mut db = Database::open(&dir).unwrap();
            db.ensure_table(with_index()).unwrap();
            let t = db.table("t").unwrap();
            assert_eq!(t.lookup("by_name", &[Value::text("x")]).unwrap().len(), 2);
            // maintenance continues through transactions
            db.with_txn(|txn| {
                txn.insert("t", vec![Value::Int(3), Value::text("x")])?;
                Ok(())
            })
            .unwrap();
            assert_eq!(
                db.table("t").unwrap().lookup("by_name", &[Value::text("x")]).unwrap().len(),
                3
            );
        }
        // column differences are still rejected
        let mut db = Database::in_memory();
        db.ensure_table(schema("t")).unwrap();
        let other = Schema::builder("t")
            .column(Column::new("x", ValueType::Int))
            .build()
            .unwrap();
        assert!(matches!(
            db.ensure_table(other),
            Err(StoreError::InvalidSchema(_))
        ));
    }

    #[test]
    fn transaction_commit_and_read_your_writes() {
        let mut db = Database::in_memory();
        db.create_table(schema("t")).unwrap();
        let mut txn = db.begin();
        txn.insert("t", vec![Value::Int(1), Value::text("x")]).unwrap();
        // read-your-writes
        assert_eq!(txn.table("t").unwrap().len(), 1);
        txn.commit().unwrap();
        assert_eq!(db.table("t").unwrap().len(), 1);
    }

    #[test]
    fn rollback_undoes_everything_in_order() {
        let mut db = Database::in_memory();
        db.create_table(schema("t")).unwrap();
        db.with_txn(|txn| {
            txn.insert("t", vec![Value::Int(1), Value::text("a")])?;
            txn.insert("t", vec![Value::Int(2), Value::text("b")])?;
            Ok(())
        })
        .unwrap();

        let mut txn = db.begin();
        let r3 = txn.insert("t", vec![Value::Int(3), Value::text("c")]).unwrap();
        txn.update("t", RowId(0), vec![Value::Int(1), Value::text("a2")]).unwrap();
        txn.delete("t", RowId(1)).unwrap();
        assert_eq!(txn.table("t").unwrap().len(), 2);
        let _ = r3;
        txn.rollback().unwrap();

        let t = db.table("t").unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(RowId(0)).unwrap().get(1), &Value::text("a"));
        assert_eq!(t.get(RowId(1)).unwrap().get(1), &Value::text("b"));
        assert!(t.get(RowId(2)).is_err());
        // unique key of rolled-back insert is free again
        db.with_txn(|txn| {
            txn.insert("t", vec![Value::Int(3), Value::text("c")])?;
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn drop_without_commit_rolls_back() {
        let mut db = Database::in_memory();
        db.create_table(schema("t")).unwrap();
        {
            let mut txn = db.begin();
            txn.insert("t", vec![Value::Int(1), Value::text("x")]).unwrap();
            // dropped here
        }
        assert_eq!(db.table("t").unwrap().len(), 0);
    }

    #[test]
    fn with_txn_rolls_back_on_error() {
        let mut db = Database::in_memory();
        db.create_table(schema("t")).unwrap();
        let err = db.with_txn(|txn| {
            txn.insert("t", vec![Value::Int(1), Value::text("x")])?;
            txn.insert("t", vec![Value::Int(1), Value::text("dup")])?; // pk violation
            Ok(())
        });
        assert!(err.is_err());
        assert_eq!(db.table("t").unwrap().len(), 0);
    }

    #[test]
    fn durable_roundtrip_via_wal_only() {
        let dir = tmpdir("wal-only");
        {
            let mut db = Database::open(&dir).unwrap();
            db.create_table(schema("t")).unwrap();
            db.with_txn(|txn| {
                txn.insert("t", vec![Value::Int(1), Value::text("x")])?;
                txn.insert("t", vec![Value::Int(2), Value::text("y")])?;
                Ok(())
            })
            .unwrap();
        } // drop without checkpoint: state only in WAL
        {
            // the WAL-logged CreateTable record lets replay rebuild the
            // table even though no snapshot was ever written
            let db = Database::open(&dir).unwrap();
            let t = db.table("t").unwrap();
            assert_eq!(t.len(), 2);
            assert_eq!(
                t.lookup_unique("pk", &[Value::Int(2)]).unwrap().unwrap().get(1),
                &Value::text("y")
            );
        }
    }

    #[test]
    fn durable_roundtrip_with_checkpoint_then_wal() {
        let dir = tmpdir("checkpoint-wal");
        {
            let mut db = Database::open(&dir).unwrap();
            db.create_table(schema("t")).unwrap();
            db.with_txn(|txn| {
                txn.insert("t", vec![Value::Int(1), Value::text("x")])?;
                Ok(())
            })
            .unwrap();
            db.checkpoint().unwrap(); // snapshot captures schema + row 1
            db.with_txn(|txn| {
                txn.insert("t", vec![Value::Int(2), Value::text("y")])?;
                txn.update("t", RowId(0), vec![Value::Int(1), Value::text("x2")])?;
                Ok(())
            })
            .unwrap();
            // no checkpoint: second txn lives only in the WAL
        }
        {
            let db = Database::open(&dir).unwrap();
            let t = db.table("t").unwrap();
            assert_eq!(t.len(), 2);
            assert_eq!(t.get(RowId(0)).unwrap().get(1), &Value::text("x2"));
            assert_eq!(t.get(RowId(1)).unwrap().get(1), &Value::text("y"));
        }
    }

    #[test]
    fn group_commit_defers_sync_but_preserves_commits() {
        let dir = tmpdir("group-commit");
        {
            let mut db = Database::open(&dir).unwrap();
            db.create_table(schema("t")).unwrap();
            db.checkpoint().unwrap();
            db.set_sync_on_commit(false);
            assert!(!db.sync_on_commit());
            for i in 0..3 {
                db.with_txn(|txn| {
                    txn.insert("t", vec![Value::Int(i), Value::text("x")])?;
                    Ok(())
                })
                .unwrap();
            }
            db.sync_wal().unwrap();
            db.set_sync_on_commit(true);
        }
        {
            let db = Database::open(&dir).unwrap();
            assert_eq!(db.table("t").unwrap().len(), 3);
        }
    }

    #[test]
    fn insert_batch_commits_and_rolls_back_like_per_row_inserts() {
        let dir = tmpdir("insert-batch");
        {
            let mut db = Database::open(&dir).unwrap();
            db.create_table(schema("t")).unwrap();
            db.checkpoint().unwrap();
            db.with_txn(|txn| {
                let ids = txn.insert_batch(
                    "t",
                    vec![
                        vec![Value::Int(1), Value::text("a")],
                        vec![Value::Int(2), Value::text("b")],
                    ],
                )?;
                assert_eq!(ids, vec![RowId(0), RowId(1)]);
                Ok(())
            })
            .unwrap();
            // rollback undoes a batch insert row by row
            let mut txn = db.begin();
            txn.insert_batch("t", vec![vec![Value::Int(3), Value::text("c")]])
                .unwrap();
            txn.rollback().unwrap();
            assert_eq!(db.table("t").unwrap().len(), 2);
        }
        {
            // WAL replay restores the batch rows (redo records are per row)
            let db = Database::open(&dir).unwrap();
            let t = db.table("t").unwrap();
            assert_eq!(t.len(), 2);
            assert_eq!(t.get(RowId(1)).unwrap().get(1), &Value::text("b"));
        }
    }

    #[test]
    fn uncommitted_txn_is_not_recovered() {
        let dir = tmpdir("uncommitted");
        {
            let mut db = Database::open(&dir).unwrap();
            db.create_table(schema("t")).unwrap();
            db.checkpoint().unwrap();
            db.with_txn(|txn| {
                txn.insert("t", vec![Value::Int(1), Value::text("keep")])?;
                Ok(())
            })
            .unwrap();
            let mut txn = db.begin();
            txn.insert("t", vec![Value::Int(2), Value::text("lost")]).unwrap();
            // txn dropped without commit: rolled back locally, nothing in WAL
        }
        {
            let db = Database::open(&dir).unwrap();
            let t = db.table("t").unwrap();
            assert_eq!(t.len(), 1);
            let rows = t
                .select(&Predicate::eq("name", Value::text("keep")))
                .unwrap();
            assert_eq!(rows.len(), 1);
        }
    }

    #[test]
    fn checkpoint_resets_wal_and_stats_report() {
        let dir = tmpdir("stats");
        let mut db = Database::open(&dir).unwrap();
        db.create_table(schema("t")).unwrap();
        db.with_txn(|txn| {
            txn.insert("t", vec![Value::Int(1), Value::text("x")])?;
            Ok(())
        })
        .unwrap();
        assert!(db.stats().unwrap().wal_bytes > 0);
        db.checkpoint().unwrap();
        assert_eq!(db.stats().unwrap().wal_bytes, 0);
        let stats = db.stats().unwrap();
        assert_eq!(stats.rows("t"), 1);
        assert_eq!(stats.tables[0].indexes[0].0, "pk");
    }

    #[test]
    fn recovery_report_reflects_clean_and_replayed_opens() {
        let dir = tmpdir("recovery-report");
        {
            let mut db = Database::open(&dir).unwrap();
            let report = db.recovery_report().unwrap();
            assert_eq!(report.snapshot, SnapshotSource::None);
            assert_eq!(report.epoch, 0);
            assert_eq!(report.wal_txns, 0);
            db.create_table(schema("t")).unwrap();
            db.checkpoint().unwrap();
            db.with_txn(|txn| {
                txn.insert("t", vec![Value::Int(1), Value::text("x")])?;
                Ok(())
            })
            .unwrap();
        }
        {
            let db = Database::open(&dir).unwrap();
            let report = db.recovery_report().unwrap();
            assert_eq!(report.snapshot, SnapshotSource::Primary);
            assert_eq!(report.epoch, 1);
            assert_eq!(report.wal_txns, 1);
            assert!(!report.wal_stale);
            assert!(report.wal_torn_at.is_none());
        }
        assert!(Database::in_memory().recovery_report().is_none());
    }

    #[test]
    fn crash_between_snapshot_rename_and_wal_reset_discards_stale_wal() {
        // Simulate the checkpoint protocol interrupted after step 4: the
        // new snapshot is in place but the WAL still holds the pre-
        // checkpoint transactions. Replaying them would double-apply.
        let dir = tmpdir("stale-wal");
        let wal_backup;
        {
            let mut db = Database::open(&dir).unwrap();
            db.create_table(schema("t")).unwrap();
            db.checkpoint().unwrap();
            db.with_txn(|txn| {
                txn.insert("t", vec![Value::Int(1), Value::text("x")])?;
                Ok(())
            })
            .unwrap();
            wal_backup = fs::read(dir.join(WAL_FILE)).unwrap();
            db.checkpoint().unwrap(); // epoch 2, WAL reset
        }
        // put the stale (epoch 1) WAL back, as if the reset never ran
        fs::write(dir.join(WAL_FILE), &wal_backup).unwrap();
        {
            let db = Database::open(&dir).unwrap();
            let report = db.recovery_report().unwrap();
            assert!(report.wal_stale, "stale WAL must be detected");
            assert_eq!(report.epoch, 2);
            // the row exists exactly once (from the snapshot, not replay)
            assert_eq!(db.table("t").unwrap().len(), 1);
        }
        // the stale WAL was reset on open: reopening is clean
        {
            let db = Database::open(&dir).unwrap();
            assert!(!db.recovery_report().unwrap().wal_stale);
            assert_eq!(db.table("t").unwrap().len(), 1);
        }
    }
}
