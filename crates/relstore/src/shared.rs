//! Concurrent access wrapper.
//!
//! GenMapper served many interactive users and analysis pipelines from one
//! central database. [`SharedDatabase`] provides the equivalent embedding:
//! a `parking_lot` read-write lock around a [`Database`], so any number of
//! concurrent readers (view generation, Map, statistics) proceed in
//! parallel while writers (imports, materializations) serialize.

use crate::db::Database;
use crate::error::StoreResult;
use parking_lot::{RwLock, RwLockReadGuard};
use std::sync::Arc;

/// A thread-shareable database handle (cheaply cloneable).
#[derive(Clone)]
pub struct SharedDatabase {
    inner: Arc<RwLock<Database>>,
}

impl SharedDatabase {
    /// Wrap a database for shared use.
    pub fn new(db: Database) -> Self {
        SharedDatabase {
            inner: Arc::new(RwLock::new(db)),
        }
    }

    /// Run a read-only closure under the shared lock. Many readers may be
    /// inside concurrently.
    pub fn read<T>(&self, f: impl FnOnce(&Database) -> T) -> T {
        f(&self.inner.read())
    }

    /// Acquire a read guard directly (for multi-statement reads).
    pub fn read_guard(&self) -> RwLockReadGuard<'_, Database> {
        self.inner.read()
    }

    /// Run a write closure under the exclusive lock.
    pub fn write<T>(&self, f: impl FnOnce(&mut Database) -> T) -> T {
        f(&mut self.inner.write())
    }

    /// Convenience: run a transaction under the exclusive lock.
    pub fn with_txn<T>(
        &self,
        f: impl FnOnce(&mut crate::db::Transaction<'_>) -> StoreResult<T>,
    ) -> StoreResult<T> {
        self.write(|db| db.with_txn(f))
    }
}

impl std::fmt::Debug for SharedDatabase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SharedDatabase")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Schema};
    use crate::value::{Value, ValueType};
    use crate::Predicate;

    fn shared() -> SharedDatabase {
        let mut db = Database::in_memory();
        db.create_table(
            Schema::builder("t")
                .column(Column::new("id", ValueType::Int))
                .column(Column::new("grp", ValueType::Int))
                .primary_key(&["id"])
                .index("by_grp", &["grp"])
                .build()
                .unwrap(),
        )
        .unwrap();
        SharedDatabase::new(db)
    }

    #[test]
    fn concurrent_readers_with_interleaved_writers() {
        let db = shared();
        const WRITERS: i64 = 4;
        const PER_WRITER: i64 = 250;
        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                let db = db.clone();
                scope.spawn(move || {
                    for i in 0..PER_WRITER {
                        let id = w * PER_WRITER + i;
                        db.with_txn(|txn| {
                            txn.insert("t", vec![Value::Int(id), Value::Int(id % 10)])?;
                            Ok(())
                        })
                        .unwrap();
                    }
                });
            }
            for _ in 0..4 {
                let db = db.clone();
                scope.spawn(move || {
                    // readers observe consistent states: counts only grow,
                    // and a group-select never exceeds the current total
                    let mut last_total = 0;
                    for _ in 0..200 {
                        let (total, grp) = db.read(|db| {
                            let t = db.table("t").unwrap();
                            (
                                t.len(),
                                t.select(&Predicate::eq("grp", Value::Int(3))).unwrap().len(),
                            )
                        });
                        assert!(total >= last_total, "row count is monotone");
                        assert!(grp <= total);
                        last_total = total;
                    }
                });
            }
        });
        let final_count = db.read(|db| db.table("t").unwrap().len());
        assert_eq!(final_count, (WRITERS * PER_WRITER) as usize);
        // every group has exactly its share
        let grp3 = db.read(|db| {
            db.table("t")
                .unwrap()
                .select(&Predicate::eq("grp", Value::Int(3)))
                .unwrap()
                .len()
        });
        assert_eq!(grp3, (WRITERS * PER_WRITER / 10) as usize);
    }

    #[test]
    fn failed_txn_rolls_back_under_lock() {
        let db = shared();
        db.with_txn(|txn| {
            txn.insert("t", vec![Value::Int(1), Value::Int(0)])?;
            Ok(())
        })
        .unwrap();
        let err = db.with_txn(|txn| {
            txn.insert("t", vec![Value::Int(2), Value::Int(0)])?;
            txn.insert("t", vec![Value::Int(1), Value::Int(0)])?; // dup pk
            Ok(())
        });
        assert!(err.is_err());
        assert_eq!(db.read(|db| db.table("t").unwrap().len()), 1);
    }

    #[test]
    fn read_guard_spans_multiple_statements() {
        let db = shared();
        db.with_txn(|txn| {
            txn.insert("t", vec![Value::Int(1), Value::Int(5)])?;
            Ok(())
        })
        .unwrap();
        let guard = db.read_guard();
        let t = guard.table("t").unwrap();
        let a = t.len();
        let b = t.select(&Predicate::True).unwrap().len();
        assert_eq!(a, b, "both reads see the same state");
    }
}
