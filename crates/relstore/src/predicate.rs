//! Row predicates for filtered scans.
//!
//! Predicates are small boolean expressions over named columns. They are
//! resolved against a [`Schema`] once (binding column
//! names to ordinals) and then evaluated per row. Table scans analyse
//! predicates to pick an index: a conjunction that pins every column of an
//! index with equality is served by an index lookup instead of a full scan.

use crate::error::StoreResult;
use crate::schema::Schema;
use crate::value::Value;

/// Comparison operators on a single column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// A boolean expression over row columns.
#[derive(Debug, Clone)]
pub enum Predicate {
    /// Always true (full scan).
    True,
    /// `column <op> literal`. Comparisons against NULL are false except for
    /// `IsNull`, mirroring SQL three-valued logic collapsed to two values.
    Cmp {
        column: String,
        op: CmpOp,
        value: Value,
    },
    /// `column IS NULL`.
    IsNull(String),
    /// `column IS NOT NULL`.
    IsNotNull(String),
    /// `column IN (set)`.
    InSet { column: String, values: Vec<Value> },
    /// Case-insensitive substring match on a text column (`column LIKE
    /// '%needle%'`). NULL and non-text cells never match.
    TextContains { column: String, needle: String },
    /// Conjunction.
    And(Vec<Predicate>),
    /// Disjunction.
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `column = value`.
    pub fn eq(column: impl Into<String>, value: Value) -> Self {
        Predicate::Cmp {
            column: column.into(),
            op: CmpOp::Eq,
            value,
        }
    }

    /// `column < value` / `<=` / `>` / `>=` / `!=` constructors.
    pub fn cmp(column: impl Into<String>, op: CmpOp, value: Value) -> Self {
        Predicate::Cmp {
            column: column.into(),
            op,
            value,
        }
    }

    /// `column IN (values)`.
    pub fn in_set(column: impl Into<String>, values: Vec<Value>) -> Self {
        Predicate::InSet {
            column: column.into(),
            values,
        }
    }

    /// Case-insensitive substring match on a text column.
    pub fn text_contains(column: impl Into<String>, needle: impl Into<String>) -> Self {
        Predicate::TextContains {
            column: column.into(),
            needle: needle.into(),
        }
    }

    /// Conjunction of two predicates.
    pub fn and(self, other: Predicate) -> Self {
        match self {
            Predicate::And(mut v) => {
                v.push(other);
                Predicate::And(v)
            }
            p => Predicate::And(vec![p, other]),
        }
    }

    /// Resolve column names to ordinals for fast evaluation.
    pub fn bind(&self, schema: &Schema) -> StoreResult<BoundPredicate> {
        Ok(match self {
            Predicate::True => BoundPredicate::True,
            Predicate::Cmp { column, op, value } => BoundPredicate::Cmp {
                ordinal: schema.column_index(column)?,
                op: *op,
                value: value.clone(),
            },
            Predicate::IsNull(column) => BoundPredicate::IsNull(schema.column_index(column)?),
            Predicate::IsNotNull(column) => {
                BoundPredicate::IsNotNull(schema.column_index(column)?)
            }
            Predicate::InSet { column, values } => {
                let mut sorted = values.clone();
                sorted.sort();
                sorted.dedup();
                BoundPredicate::InSet {
                    ordinal: schema.column_index(column)?,
                    values: sorted,
                }
            }
            Predicate::TextContains { column, needle } => BoundPredicate::TextContains {
                ordinal: schema.column_index(column)?,
                needle: needle.to_ascii_lowercase(),
            },
            Predicate::And(ps) => BoundPredicate::And(
                ps.iter().map(|p| p.bind(schema)).collect::<StoreResult<_>>()?,
            ),
            Predicate::Or(ps) => BoundPredicate::Or(
                ps.iter().map(|p| p.bind(schema)).collect::<StoreResult<_>>()?,
            ),
            Predicate::Not(p) => BoundPredicate::Not(Box::new(p.bind(schema)?)),
        })
    }

    /// Collect `column = literal` constraints from the top-level conjunction
    /// (a bare `Cmp` counts as a singleton conjunction). Used by the planner
    /// to match indexes.
    pub(crate) fn equality_constraints(&self) -> Vec<(&str, &Value)> {
        let mut out = Vec::new();
        self.collect_eq(&mut out);
        out
    }

    fn collect_eq<'a>(&'a self, out: &mut Vec<(&'a str, &'a Value)>) {
        match self {
            Predicate::Cmp {
                column,
                op: CmpOp::Eq,
                value,
            } => out.push((column.as_str(), value)),
            Predicate::And(ps) => {
                for p in ps {
                    p.collect_eq(out);
                }
            }
            _ => {}
        }
    }

    /// Collect range comparisons (`<`, `<=`, `>`, `>=`) from the top-level
    /// conjunction. Used by the planner to serve range scans from an
    /// ordered index.
    pub(crate) fn range_constraints(&self) -> Vec<(&str, CmpOp, &Value)> {
        let mut out = Vec::new();
        self.collect_ranges(&mut out);
        out
    }

    fn collect_ranges<'a>(&'a self, out: &mut Vec<(&'a str, CmpOp, &'a Value)>) {
        match self {
            Predicate::Cmp { column, op, value }
                if matches!(op, CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge) =>
            {
                out.push((column.as_str(), *op, value));
            }
            Predicate::And(ps) => {
                for p in ps {
                    p.collect_ranges(out);
                }
            }
            _ => {}
        }
    }
}

/// A predicate with column names resolved to ordinals.
#[derive(Debug, Clone)]
pub enum BoundPredicate {
    True,
    Cmp {
        ordinal: usize,
        op: CmpOp,
        value: Value,
    },
    IsNull(usize),
    IsNotNull(usize),
    InSet {
        ordinal: usize,
        values: Vec<Value>,
    },
    TextContains {
        ordinal: usize,
        /// Lower-cased needle; matching lower-cases the cell.
        needle: String,
    },
    And(Vec<BoundPredicate>),
    Or(Vec<BoundPredicate>),
    Not(Box<BoundPredicate>),
}

impl BoundPredicate {
    /// Evaluate against a row (as a value slice).
    pub fn matches(&self, row: &[Value]) -> bool {
        match self {
            BoundPredicate::True => true,
            BoundPredicate::Cmp { ordinal, op, value } => {
                let cell = &row[*ordinal];
                if cell.is_null() || value.is_null() {
                    return false;
                }
                let ord = cell.cmp(value);
                match op {
                    CmpOp::Eq => ord.is_eq(),
                    CmpOp::Ne => ord.is_ne(),
                    CmpOp::Lt => ord.is_lt(),
                    CmpOp::Le => ord.is_le(),
                    CmpOp::Gt => ord.is_gt(),
                    CmpOp::Ge => ord.is_ge(),
                }
            }
            BoundPredicate::IsNull(ordinal) => row[*ordinal].is_null(),
            BoundPredicate::IsNotNull(ordinal) => !row[*ordinal].is_null(),
            BoundPredicate::InSet { ordinal, values } => {
                let cell = &row[*ordinal];
                !cell.is_null() && values.binary_search(cell).is_ok()
            }
            BoundPredicate::TextContains { ordinal, needle } => match row[*ordinal].as_text() {
                Some(text) => text.to_ascii_lowercase().contains(needle.as_str()),
                None => false,
            },
            BoundPredicate::And(ps) => ps.iter().all(|p| p.matches(row)),
            BoundPredicate::Or(ps) => ps.iter().any(|p| p.matches(row)),
            BoundPredicate::Not(p) => !p.matches(row),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Schema};
    use crate::value::ValueType;

    fn schema() -> Schema {
        Schema::builder("t")
            .column(Column::new("a", ValueType::Int))
            .column(Column::nullable("b", ValueType::Text))
            .build()
            .unwrap()
    }

    fn row(a: i64, b: Option<&str>) -> Vec<Value> {
        vec![
            Value::Int(a),
            b.map(Value::text).unwrap_or(Value::Null),
        ]
    }

    #[test]
    fn comparisons() {
        let s = schema();
        let p = Predicate::cmp("a", CmpOp::Ge, Value::Int(5)).bind(&s).unwrap();
        assert!(p.matches(&row(5, None)));
        assert!(p.matches(&row(9, None)));
        assert!(!p.matches(&row(4, None)));
    }

    #[test]
    fn null_semantics() {
        let s = schema();
        // comparisons against NULL cells are false, even Ne
        let p = Predicate::cmp("b", CmpOp::Ne, Value::text("x")).bind(&s).unwrap();
        assert!(!p.matches(&row(1, None)));
        assert!(p.matches(&row(1, Some("y"))));
        let p = Predicate::IsNull("b".into()).bind(&s).unwrap();
        assert!(p.matches(&row(1, None)));
        assert!(!p.matches(&row(1, Some("y"))));
        let p = Predicate::IsNotNull("b".into()).bind(&s).unwrap();
        assert!(!p.matches(&row(1, None)));
    }

    #[test]
    fn boolean_combinators() {
        let s = schema();
        let p = Predicate::eq("a", Value::Int(1))
            .and(Predicate::eq("b", Value::text("x")))
            .bind(&s)
            .unwrap();
        assert!(p.matches(&row(1, Some("x"))));
        assert!(!p.matches(&row(1, Some("y"))));
        assert!(!p.matches(&row(2, Some("x"))));

        let p = Predicate::Or(vec![
            Predicate::eq("a", Value::Int(1)),
            Predicate::eq("a", Value::Int(2)),
        ])
        .bind(&s)
        .unwrap();
        assert!(p.matches(&row(2, None)));
        assert!(!p.matches(&row(3, None)));

        let p = Predicate::Not(Box::new(Predicate::eq("a", Value::Int(1))))
            .bind(&s)
            .unwrap();
        assert!(!p.matches(&row(1, None)));
        assert!(p.matches(&row(7, None)));
    }

    #[test]
    fn in_set_dedups_and_matches() {
        let s = schema();
        let p = Predicate::in_set(
            "a",
            vec![Value::Int(3), Value::Int(1), Value::Int(3)],
        )
        .bind(&s)
        .unwrap();
        assert!(p.matches(&row(1, None)));
        assert!(p.matches(&row(3, None)));
        assert!(!p.matches(&row(2, None)));
    }

    #[test]
    fn equality_constraint_extraction() {
        let p = Predicate::eq("a", Value::Int(1)).and(Predicate::eq("b", Value::text("x")));
        let cs = p.equality_constraints();
        assert_eq!(cs.len(), 2);
        assert_eq!(cs[0].0, "a");
        // non-equality and Or members are not extracted
        let p = Predicate::Or(vec![Predicate::eq("a", Value::Int(1))]);
        assert!(p.equality_constraints().is_empty());
    }

    #[test]
    fn text_contains_matching() {
        let s = schema();
        let p = Predicate::text_contains("b", "DeNiN").bind(&s).unwrap();
        assert!(p.matches(&row(1, Some("adenine phosphoribosyltransferase"))));
        assert!(!p.matches(&row(1, Some("other"))));
        assert!(!p.matches(&row(1, None)), "NULL never matches");
        // non-text column never matches
        let p = Predicate::text_contains("a", "1").bind(&s).unwrap();
        assert!(!p.matches(&row(1, None)));
    }

    #[test]
    fn binding_unknown_column_fails() {
        let s = schema();
        assert!(Predicate::eq("zzz", Value::Int(1)).bind(&s).is_err());
    }
}
