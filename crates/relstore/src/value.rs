//! Cell values and their types.
//!
//! `relstore` rows are vectors of [`Value`]s. The type system is small —
//! integers, floats, text, raw bytes, and NULL — which is all the GAM schema
//! (and most EAV-style generic schemas) needs.
//!
//! Values carry a **total order** (via [`Ord`]) so they can serve as B-tree
//! index keys. Floats are ordered with [`f64::total_cmp`], and NULL sorts
//! before everything else, mirroring `NULLS FIRST` semantics.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// The declared type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ValueType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 text.
    Text,
    /// Raw byte string.
    Bytes,
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueType::Int => "INT",
            ValueType::Float => "FLOAT",
            ValueType::Text => "TEXT",
            ValueType::Bytes => "BYTES",
        };
        f.write_str(s)
    }
}

/// A single cell value.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub enum Value {
    /// SQL-style NULL. Compares equal to itself here (unlike SQL) so that
    /// rows are hashable and indexable; predicate evaluation treats NULL
    /// comparisons explicitly.
    Null,
    Int(i64),
    Float(f64),
    Text(String),
    Bytes(Vec<u8>),
}

impl Value {
    /// Convenience constructor for text values.
    pub fn text(s: impl Into<String>) -> Self {
        Value::Text(s.into())
    }

    /// Convenience constructor for byte values.
    pub fn bytes(b: impl Into<Vec<u8>>) -> Self {
        Value::Bytes(b.into())
    }

    /// The runtime type of this value, or `None` for NULL.
    pub fn value_type(&self) -> Option<ValueType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(ValueType::Int),
            Value::Float(_) => Some(ValueType::Float),
            Value::Text(_) => Some(ValueType::Text),
            Value::Bytes(_) => Some(ValueType::Bytes),
        }
    }

    /// True if this value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// True if the value conforms to `ty` (NULL conforms to every type;
    /// nullability is checked separately by the schema).
    pub fn conforms_to(&self, ty: ValueType) -> bool {
        match self.value_type() {
            None => true,
            Some(t) => t == ty,
        }
    }

    /// Extract an integer, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Extract a float, if this is a `Float`.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Extract the text, if this is a `Text`.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Extract the bytes, if this is a `Bytes`.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Rank used to order values of different types: NULL < Int/Float < Text
    /// < Bytes. Int and Float share a rank and compare numerically.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) | Value::Float(_) => 1,
            Value::Text(_) => 2,
            Value::Bytes(_) => 3,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Text(s) => f.write_str(s),
            Value::Bytes(b) => write!(f, "x'{}'", hex(b)),
        }
    }
}

fn hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            // Mixed numeric comparison: compare as floats; ties broken so
            // that the ordering stays antisymmetric (Int sorts before Float
            // on exact numeric equality).
            (Int(a), Float(b)) => match (*a as f64).total_cmp(b) {
                Ordering::Equal => Ordering::Less,
                o => o,
            },
            (Float(a), Int(b)) => match a.total_cmp(&(*b as f64)) {
                Ordering::Equal => Ordering::Greater,
                o => o,
            },
            (Text(a), Text(b)) => a.cmp(b),
            (Bytes(a), Bytes(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Int(v) => {
                1u8.hash(state);
                v.hash(state);
            }
            Value::Float(v) => {
                2u8.hash(state);
                v.to_bits().hash(state);
            }
            Value::Text(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            Value::Bytes(b) => {
                4u8.hash(state);
                b.hash(state);
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_checks() {
        assert!(Value::Int(1).conforms_to(ValueType::Int));
        assert!(!Value::Int(1).conforms_to(ValueType::Text));
        assert!(Value::Null.conforms_to(ValueType::Int));
        assert!(Value::Null.conforms_to(ValueType::Bytes));
        assert_eq!(Value::text("x").value_type(), Some(ValueType::Text));
        assert_eq!(Value::Null.value_type(), None);
    }

    #[test]
    fn ordering_is_total_and_null_first() {
        let mut vals = [Value::text("b"),
            Value::Int(2),
            Value::Null,
            Value::Float(1.5),
            Value::text("a"),
            Value::Int(-1),
            Value::bytes(vec![0u8])];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        // numerics before text before bytes
        assert_eq!(vals[1], Value::Int(-1));
        assert_eq!(vals[2], Value::Float(1.5));
        assert_eq!(vals[3], Value::Int(2));
        assert_eq!(vals[4], Value::text("a"));
        assert_eq!(vals[6], Value::bytes(vec![0u8]));
    }

    #[test]
    fn mixed_numeric_ordering_is_antisymmetric() {
        let a = Value::Int(3);
        let b = Value::Float(3.0);
        assert_eq!(a.cmp(&b), Ordering::Less);
        assert_eq!(b.cmp(&a), Ordering::Greater);
        assert_ne!(a, b);
    }

    #[test]
    fn nan_is_ordered() {
        let nan = Value::Float(f64::NAN);
        let one = Value::Float(1.0);
        // total_cmp puts NaN above all numbers
        assert_eq!(nan.cmp(&one), Ordering::Greater);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
    }

    #[test]
    fn hash_agrees_with_eq_for_floats() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Value::Float(0.5));
        assert!(set.contains(&Value::Float(0.5)));
        // -0.0 and 0.0 differ under total_cmp, and must differ in the set
        set.insert(Value::Float(0.0));
        assert!(!set.contains(&Value::Float(-0.0)));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::text("go").as_text(), Some("go"));
        assert_eq!(Value::bytes(vec![1, 2]).as_bytes(), Some(&[1u8, 2][..]));
        assert_eq!(Value::Null.as_int(), None);
        assert_eq!(Value::Int(7).as_text(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::text("APRT").to_string(), "APRT");
        assert_eq!(Value::bytes(vec![0xab, 0x01]).to_string(), "x'ab01'");
    }
}
