//! Slotted heap pages: the on-disk unit of paged table storage.
//!
//! A page image is a self-contained byte string
//! `[magic "RSPG"][crc32 u32][body]` whose body carries the owning table,
//! the page number, the *base* row id of the page's slot range, a slot
//! directory, and a cell area. Slot `i` holds row id `base + i`; its
//! directory entry is `0` for a tombstone (deleted row) or `1 + offset`
//! of the row cell inside the cell area. Cells are encoded with the row
//! [`codec`](crate::codec), so pages share the WAL's and snapshot's value
//! encoding. The CRC covers the body: a torn or bit-flipped page image is
//! detected at fault-in and surfaces as [`StoreError::Corrupt`], never as
//! silently wrong rows.
//!
//! Pages are *immutable images*: the buffer pool ([`crate::pager`])
//! rewrites a whole page (copy-on-write append to the heap file) when any
//! of its rows change, so images are only ever appended and the fault
//! model for torn tails matches the WAL's.

use crate::codec::{crc32, get_row, get_varint, put_row, put_varint};
use crate::error::{StoreError, StoreResult};
use crate::row::Row;
use bytes::{Bytes, BytesMut};

/// Page image magic.
pub const PAGE_MAGIC: &[u8; 4] = b"RSPG";

/// Hard cap on slots per page, so gap-filled tombstone runs (replay of
/// sparse row ids) cannot grow one page's slot directory without bound.
pub(crate) const MAX_PAGE_SLOTS: usize = 4096;

/// Identity of a page: owning table and position in that table's page list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId {
    pub table_id: u32,
    pub page_no: u32,
}

/// A decoded page: its identity, base row id, and slot contents.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedPage {
    pub table_id: u32,
    pub page_no: u32,
    /// Row id of slot 0; slot `i` is row `base + i`.
    pub base: u64,
    /// Slot contents; `None` is a tombstone.
    pub rows: Vec<Option<Row>>,
}

/// Exact encoded size of one row cell (used for page-fill accounting).
pub(crate) fn encoded_row_len(values: &[crate::value::Value]) -> usize {
    let mut scratch = BytesMut::new();
    put_row(&mut scratch, values);
    scratch.len()
}

/// Encode a page image (header + CRC + slotted body).
pub fn encode_page(table_id: u32, page_no: u32, base: u64, rows: &[Option<Row>]) -> Vec<u8> {
    let mut cells = BytesMut::new();
    let mut directory: Vec<u64> = Vec::with_capacity(rows.len());
    for slot in rows {
        match slot {
            None => directory.push(0),
            Some(row) => {
                directory.push(1 + cells.len() as u64);
                put_row(&mut cells, row.values());
            }
        }
    }
    let mut body = BytesMut::new();
    put_varint(&mut body, table_id as u64);
    put_varint(&mut body, page_no as u64);
    put_varint(&mut body, base);
    put_varint(&mut body, rows.len() as u64);
    for entry in directory {
        put_varint(&mut body, entry);
    }
    body.extend_from_slice(&cells);
    let mut out = Vec::with_capacity(body.len() + 8);
    out.extend_from_slice(PAGE_MAGIC);
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Decode and CRC-verify a page image.
pub fn decode_page(data: &[u8]) -> StoreResult<DecodedPage> {
    if data.len() < 8 {
        return Err(StoreError::Corrupt("page image too short".into()));
    }
    if &data[0..4] != PAGE_MAGIC {
        return Err(StoreError::Corrupt("bad page magic".into()));
    }
    let crc = u32::from_le_bytes([data[4], data[5], data[6], data[7]]);
    let body = &data[8..];
    if crc32(body) != crc {
        return Err(StoreError::Corrupt("page checksum mismatch".into()));
    }
    let mut buf = Bytes::copy_from_slice(body);
    let table_id = get_varint(&mut buf)? as u32;
    let page_no = get_varint(&mut buf)? as u32;
    let base = get_varint(&mut buf)?;
    let nslots = get_varint(&mut buf)? as usize;
    if nslots > MAX_PAGE_SLOTS {
        return Err(StoreError::Corrupt(format!("implausible slot count {nslots}")));
    }
    let mut directory = Vec::with_capacity(nslots);
    for _ in 0..nslots {
        directory.push(get_varint(&mut buf)?);
    }
    // `buf` now holds the cell area. Cells were appended in slot order, so
    // decoding sequentially must land exactly on each directory offset.
    let cell_area_len = buf.len();
    let mut rows = Vec::with_capacity(nslots);
    for entry in directory {
        if entry == 0 {
            rows.push(None);
            continue;
        }
        let offset = (entry - 1) as usize;
        let consumed = cell_area_len - buf.len();
        if offset != consumed {
            return Err(StoreError::Corrupt(format!(
                "page slot offset {offset} disagrees with cell area position {consumed}"
            )));
        }
        rows.push(Some(Row::new(get_row(&mut buf)?)));
    }
    Ok(DecodedPage {
        table_id,
        page_no,
        base,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn row(i: i64) -> Row {
        Row::new(vec![Value::Int(i), Value::text(format!("r{i}")), Value::Null])
    }

    #[test]
    fn roundtrip_with_tombstones() {
        let rows = vec![Some(row(1)), None, Some(row(3)), None, None, Some(row(6))];
        let image = encode_page(7, 42, 1000, &rows);
        let page = decode_page(&image).unwrap();
        assert_eq!(page.table_id, 7);
        assert_eq!(page.page_no, 42);
        assert_eq!(page.base, 1000);
        assert_eq!(page.rows, rows);
    }

    #[test]
    fn empty_and_all_tombstone_pages() {
        let image = encode_page(0, 0, 0, &[]);
        assert_eq!(decode_page(&image).unwrap().rows, Vec::<Option<Row>>::new());
        let tombs = vec![None, None, None];
        let image = encode_page(1, 2, 3, &tombs);
        assert_eq!(decode_page(&image).unwrap().rows, tombs);
    }

    #[test]
    fn corruption_detected() {
        let rows = vec![Some(row(1)), Some(row(2))];
        let image = encode_page(1, 0, 0, &rows);
        // bad magic
        let mut bad = image.clone();
        bad[0] = b'X';
        assert!(decode_page(&bad).is_err());
        // flipped body byte
        let mut bad = image.clone();
        let n = bad.len();
        bad[n - 1] ^= 0xff;
        assert!(decode_page(&bad).is_err());
        // truncation (torn page)
        for cut in [0, 4, 8, image.len() - 1] {
            assert!(decode_page(&image[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn encoded_row_len_matches_codec() {
        let r = row(9);
        let mut buf = bytes::BytesMut::new();
        crate::codec::put_row(&mut buf, r.values());
        assert_eq!(encoded_row_len(r.values()), buf.len());
    }
}
