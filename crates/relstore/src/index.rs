//! In-memory ordered indexes mapping composite keys to row ids.
//!
//! Indexes are B-tree-backed (`std::collections::BTreeMap`), giving ordered
//! iteration and range scans. A unique index stores one [`RowId`] per key; a
//! multi index stores a sorted vector of row ids (sorted so results are
//! deterministic and range unions are mergeable).

use crate::error::{StoreError, StoreResult};
use crate::row::RowId;
use crate::value::Value;
use std::collections::BTreeMap;
use std::ops::Bound;

/// Composite index key: the indexed column values in key order.
pub type IndexKey = Vec<Value>;

/// A single index structure, unique or non-unique.
#[derive(Debug, Clone)]
pub enum IndexStore {
    Unique(BTreeMap<IndexKey, RowId>),
    Multi(BTreeMap<IndexKey, Vec<RowId>>),
}

impl IndexStore {
    /// Fresh empty index.
    pub fn new(unique: bool) -> Self {
        if unique {
            IndexStore::Unique(BTreeMap::new())
        } else {
            IndexStore::Multi(BTreeMap::new())
        }
    }

    /// Whether this index enforces key uniqueness.
    pub fn is_unique(&self) -> bool {
        matches!(self, IndexStore::Unique(_))
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        match self {
            IndexStore::Unique(m) => m.len(),
            IndexStore::Multi(m) => m.len(),
        }
    }

    /// Number of (key, row) entries.
    pub fn entry_count(&self) -> usize {
        match self {
            IndexStore::Unique(m) => m.len(),
            IndexStore::Multi(m) => m.values().map(Vec::len).sum(),
        }
    }

    /// True if inserting `key` would violate uniqueness.
    pub fn would_conflict(&self, key: &IndexKey) -> bool {
        match self {
            IndexStore::Unique(m) => m.contains_key(key),
            IndexStore::Multi(_) => false,
        }
    }

    /// Insert an entry. For unique indexes the caller must have checked
    /// [`would_conflict`](Self::would_conflict) first; a conflict here is
    /// reported as an error carrying the offending key's display form.
    pub fn insert(&mut self, key: IndexKey, row_id: RowId) -> StoreResult<()> {
        match self {
            IndexStore::Unique(m) => {
                if m.contains_key(&key) {
                    return Err(StoreError::UniqueViolation {
                        table: String::new(),
                        index: String::new(),
                        key: format_key(&key),
                    });
                }
                m.insert(key, row_id);
            }
            IndexStore::Multi(m) => {
                let slot = m.entry(key).or_default();
                match slot.binary_search(&row_id) {
                    Ok(_) => {} // already present (idempotent)
                    Err(pos) => slot.insert(pos, row_id),
                }
            }
        }
        Ok(())
    }

    /// Remove the entry for (`key`, `row_id`). Missing entries are ignored.
    pub fn remove(&mut self, key: &IndexKey, row_id: RowId) {
        match self {
            IndexStore::Unique(m) => {
                if m.get(key) == Some(&row_id) {
                    m.remove(key);
                }
            }
            IndexStore::Multi(m) => {
                if let Some(slot) = m.get_mut(key) {
                    if let Ok(pos) = slot.binary_search(&row_id) {
                        slot.remove(pos);
                    }
                    if slot.is_empty() {
                        m.remove(key);
                    }
                }
            }
        }
    }

    /// Row ids for an exact key.
    pub fn lookup(&self, key: &IndexKey) -> Vec<RowId> {
        match self {
            IndexStore::Unique(m) => m.get(key).map(|r| vec![*r]).unwrap_or_default(),
            IndexStore::Multi(m) => m.get(key).cloned().unwrap_or_default(),
        }
    }

    /// Row ids for keys within the given bounds.
    pub fn range(&self, lo: Bound<&IndexKey>, hi: Bound<&IndexKey>) -> Vec<RowId> {
        let bounds: (Bound<&IndexKey>, Bound<&IndexKey>) = (lo, hi);
        match self {
            IndexStore::Unique(m) => m
                .range::<IndexKey, _>(bounds)
                .map(|(_, r)| *r)
                .collect(),
            IndexStore::Multi(m) => m
                .range::<IndexKey, _>(bounds)
                .flat_map(|(_, rs)| rs.iter().copied())
                .collect(),
        }
    }

    /// Row ids for every key whose first component is `prefix` — used when a
    /// query pins a prefix of a composite index.
    pub fn prefix_lookup(&self, prefix: &[Value]) -> Vec<RowId> {
        // Keys are compared lexicographically; every key with this prefix
        // sorts at or after the prefix itself, so scan from the prefix and
        // stop at the first key that no longer starts with it.
        let lo: IndexKey = prefix.to_vec();
        let bounds = (Bound::Included(lo), Bound::<IndexKey>::Unbounded);
        match self {
            IndexStore::Unique(m) => m
                .range(bounds)
                .take_while(|(k, _)| k.starts_with(prefix))
                .map(|(_, r)| *r)
                .collect(),
            IndexStore::Multi(m) => m
                .range(bounds)
                .take_while(|(k, _)| k.starts_with(prefix))
                .flat_map(|(_, rs)| rs.iter().copied())
                .collect(),
        }
    }

    /// Stream row ids for an exact key without materializing a vector.
    pub fn for_each(&self, key: &IndexKey, mut f: impl FnMut(RowId)) {
        match self {
            IndexStore::Unique(m) => {
                if let Some(r) = m.get(key) {
                    f(*r);
                }
            }
            IndexStore::Multi(m) => {
                if let Some(rs) = m.get(key) {
                    rs.iter().copied().for_each(f);
                }
            }
        }
    }

    /// Number of rows under an exact key (no row-id materialization).
    pub fn lookup_count(&self, key: &IndexKey) -> usize {
        match self {
            IndexStore::Unique(m) => usize::from(m.contains_key(key)),
            IndexStore::Multi(m) => m.get(key).map(Vec::len).unwrap_or(0),
        }
    }

    /// Stream row ids for every key starting with `prefix`, in key order,
    /// without materializing a vector — the backbone of the batched
    /// columnar scan ([`crate::table::Table::scan_prefix_columnar`]).
    pub fn prefix_for_each(&self, prefix: &[Value], mut f: impl FnMut(RowId)) {
        let lo: IndexKey = prefix.to_vec();
        let bounds = (Bound::Included(lo), Bound::<IndexKey>::Unbounded);
        match self {
            IndexStore::Unique(m) => m
                .range(bounds)
                .take_while(|(k, _)| k.starts_with(prefix))
                .for_each(|(_, r)| f(*r)),
            IndexStore::Multi(m) => m
                .range(bounds)
                .take_while(|(k, _)| k.starts_with(prefix))
                .for_each(|(_, rs)| rs.iter().copied().for_each(&mut f)),
        }
    }

    /// Number of rows under all keys starting with `prefix`.
    pub fn prefix_count(&self, prefix: &[Value]) -> usize {
        let lo: IndexKey = prefix.to_vec();
        let bounds = (Bound::Included(lo), Bound::<IndexKey>::Unbounded);
        match self {
            IndexStore::Unique(m) => m
                .range(bounds)
                .take_while(|(k, _)| k.starts_with(prefix))
                .count(),
            IndexStore::Multi(m) => m
                .range(bounds)
                .take_while(|(k, _)| k.starts_with(prefix))
                .map(|(_, rs)| rs.len())
                .sum(),
        }
    }

    /// Stream (key, row id) entries whose key lies in `[lo, hi]`
    /// (inclusive), in key order. The backbone of batched key resolution:
    /// a sorted probe list is merged against one ordered pass over this
    /// range instead of issuing one point lookup per probe.
    pub fn range_entries_for_each(
        &self,
        lo: &IndexKey,
        hi: &IndexKey,
        mut f: impl FnMut(&IndexKey, RowId),
    ) {
        let bounds = (Bound::Included(lo), Bound::Included(hi));
        match self {
            IndexStore::Unique(m) => m
                .range::<IndexKey, _>(bounds)
                .for_each(|(k, r)| f(k, *r)),
            IndexStore::Multi(m) => m
                .range::<IndexKey, _>(bounds)
                .for_each(|(k, rs)| rs.iter().copied().for_each(|r| f(k, r))),
        }
    }

    /// Iterate all (key, row id) pairs in key order.
    pub fn iter_entries(&self) -> Box<dyn Iterator<Item = (&IndexKey, RowId)> + '_> {
        match self {
            IndexStore::Unique(m) => Box::new(m.iter().map(|(k, r)| (k, *r))),
            IndexStore::Multi(m) => Box::new(
                m.iter()
                    .flat_map(|(k, rs)| rs.iter().map(move |r| (k, *r))),
            ),
        }
    }

    /// Drop all entries.
    pub fn clear(&mut self) {
        match self {
            IndexStore::Unique(m) => m.clear(),
            IndexStore::Multi(m) => m.clear(),
        }
    }
}

/// Human-readable form of an index key, used in error messages.
pub fn format_key(key: &[Value]) -> String {
    let mut s = String::from("(");
    for (i, v) in key.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&v.to_string());
    }
    s.push(')');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(vals: &[i64]) -> IndexKey {
        vals.iter().map(|v| Value::Int(*v)).collect()
    }

    #[test]
    fn unique_insert_lookup_remove() {
        let mut ix = IndexStore::new(true);
        ix.insert(k(&[1]), RowId(10)).unwrap();
        ix.insert(k(&[2]), RowId(20)).unwrap();
        assert_eq!(ix.lookup(&k(&[1])), vec![RowId(10)]);
        assert!(ix.would_conflict(&k(&[1])));
        assert!(ix.insert(k(&[1]), RowId(99)).is_err());
        // removing with wrong row id is a no-op
        ix.remove(&k(&[1]), RowId(99));
        assert_eq!(ix.lookup(&k(&[1])), vec![RowId(10)]);
        ix.remove(&k(&[1]), RowId(10));
        assert!(ix.lookup(&k(&[1])).is_empty());
        assert_eq!(ix.key_count(), 1);
    }

    #[test]
    fn multi_insert_is_sorted_and_idempotent() {
        let mut ix = IndexStore::new(false);
        ix.insert(k(&[5]), RowId(3)).unwrap();
        ix.insert(k(&[5]), RowId(1)).unwrap();
        ix.insert(k(&[5]), RowId(2)).unwrap();
        ix.insert(k(&[5]), RowId(2)).unwrap(); // duplicate
        assert_eq!(ix.lookup(&k(&[5])), vec![RowId(1), RowId(2), RowId(3)]);
        assert_eq!(ix.entry_count(), 3);
        assert_eq!(ix.key_count(), 1);
        ix.remove(&k(&[5]), RowId(2));
        assert_eq!(ix.lookup(&k(&[5])), vec![RowId(1), RowId(3)]);
        ix.remove(&k(&[5]), RowId(1));
        ix.remove(&k(&[5]), RowId(3));
        assert_eq!(ix.key_count(), 0);
    }

    #[test]
    fn range_scan() {
        let mut ix = IndexStore::new(true);
        for i in 0..10 {
            ix.insert(k(&[i]), RowId(i as u64)).unwrap();
        }
        let lo = k(&[3]);
        let hi = k(&[6]);
        let hits = ix.range(Bound::Included(&lo), Bound::Excluded(&hi));
        assert_eq!(hits, vec![RowId(3), RowId(4), RowId(5)]);
    }

    #[test]
    fn prefix_lookup_on_composite_key() {
        let mut ix = IndexStore::new(false);
        ix.insert(vec![Value::Int(1), Value::text("a")], RowId(1)).unwrap();
        ix.insert(vec![Value::Int(1), Value::text("b")], RowId(2)).unwrap();
        ix.insert(vec![Value::Int(2), Value::text("a")], RowId(3)).unwrap();
        let hits = ix.prefix_lookup(&[Value::Int(1)]);
        assert_eq!(hits, vec![RowId(1), RowId(2)]);
        let hits = ix.prefix_lookup(&[Value::Int(2)]);
        assert_eq!(hits, vec![RowId(3)]);
        assert!(ix.prefix_lookup(&[Value::Int(3)]).is_empty());
    }

    #[test]
    fn iter_entries_in_key_order() {
        let mut ix = IndexStore::new(false);
        ix.insert(k(&[2]), RowId(20)).unwrap();
        ix.insert(k(&[1]), RowId(11)).unwrap();
        ix.insert(k(&[1]), RowId(10)).unwrap();
        let entries: Vec<_> = ix.iter_entries().map(|(k, r)| (k.clone(), r)).collect();
        assert_eq!(
            entries,
            vec![
                (k(&[1]), RowId(10)),
                (k(&[1]), RowId(11)),
                (k(&[2]), RowId(20)),
            ]
        );
    }

    #[test]
    fn key_formatting() {
        assert_eq!(
            format_key(&[Value::Int(1), Value::text("GO")]),
            "(1, GO)"
        );
    }
}
