//! `relstore` — an embedded relational storage engine.
//!
//! This crate is the storage substrate of the GenMapper reproduction. The
//! original system (Do & Rahm, EDBT 2004) hosted its generic annotation
//! model (GAM) on MySQL; `relstore` provides the same capabilities as an
//! embedded library:
//!
//! * typed rows over a declared [`Schema`],
//! * heap [`Table`]s with slotted storage and a free list,
//! * unique and non-unique secondary [indexes](index "index module") (B-tree ordered),
//! * [`predicate`] scans with index selection,
//! * [hash and merge joins](join "join module"),
//! * durability via a [`snapshot`] file plus a [write-ahead log](wal
//!   "wal module"), with crash recovery that replays the WAL over the
//!   snapshot,
//! * a [`Database`] catalog with single-writer transactions.
//!
//! The engine is deliberately general: nothing in this crate knows about
//! annotations, sources, or mappings. The `gam` crate layers the four GAM
//! tables on top of it.
//!
//! # Example
//!
//! ```
//! use relstore::db::Database;
//! use relstore::schema::{Column, Schema};
//! use relstore::value::{Value, ValueType};
//! use relstore::predicate::Predicate;
//!
//! let mut db = Database::in_memory();
//! let schema = Schema::builder("gene")
//!     .column(Column::new("id", ValueType::Int))
//!     .column(Column::new("symbol", ValueType::Text))
//!     .primary_key(&["id"])
//!     .unique_index("by_symbol", &["symbol"])
//!     .build()
//!     .unwrap();
//! db.create_table(schema).unwrap();
//!
//! let mut txn = db.begin();
//! txn.insert("gene", vec![Value::Int(353), Value::text("APRT")]).unwrap();
//! txn.commit().unwrap();
//!
//! let hits = db.table("gene").unwrap()
//!     .select(&Predicate::eq("symbol", Value::text("APRT")))
//!     .unwrap();
//! assert_eq!(hits.len(), 1);
//! assert_eq!(hits[0].get(0), &Value::Int(353));
//! ```

// Non-test code must handle errors, not unwrap them: a storage engine that
// panics on I/O trouble cannot honor its recovery contract. Tests are
// exempt (the attribute is compiled out under cfg(test)). genlint's
// no-panic rule enforces the same invariant where clippy is not run.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod codec;
pub mod db;
pub mod error;
pub mod index;
pub mod join;
pub mod page;
pub mod pager;
pub mod predicate;
pub mod row;
pub mod schema;
pub mod shared;
pub mod snapshot;
pub mod stats;
pub mod table;
pub mod value;
pub mod vfs;
pub mod wal;

pub use db::{Database, RecoveryReport, SnapshotSource};
pub use error::{StoreError, StoreResult};
pub use page::PageId;
pub use pager::{Pager, PoolConfig};
pub use predicate::Predicate;
pub use row::{Row, RowId};
pub use schema::{Column, Schema};
pub use shared::SharedDatabase;
pub use stats::PoolStats;
pub use table::{ColumnarBlock, Table};
pub use value::{Value, ValueType};
