//! Join operators over materialized row sets.
//!
//! GenMapper's high-level operators (`Compose`, `GenerateView`) are joins
//! over the `OBJECT_REL` table. This module provides the physical
//! operators: equi hash join (inner and left outer) and sort-merge join.
//! Inputs are row slices plus key ordinals; outputs are concatenated rows.
//!
//! NULL join keys never match (SQL semantics): rows with a NULL in any key
//! column are skipped on the build side and treated as non-matching on the
//! probe side (surviving only in outer joins).

use crate::row::Row;
use crate::value::Value;
use std::collections::HashMap;

/// Key extracted from a row for joining.
fn key_of(row: &Row, ordinals: &[usize]) -> Option<Vec<Value>> {
    let mut key = Vec::with_capacity(ordinals.len());
    for &o in ordinals {
        let v = row.get(o);
        if v.is_null() {
            return None;
        }
        key.push(v.clone());
    }
    Some(key)
}

fn concat(left: &Row, right: &Row) -> Row {
    let mut vals = Vec::with_capacity(left.arity() + right.arity());
    vals.extend_from_slice(left.values());
    vals.extend_from_slice(right.values());
    Row::new(vals)
}

fn concat_null_right(left: &Row, right_arity: usize) -> Row {
    let mut vals = Vec::with_capacity(left.arity() + right_arity);
    vals.extend_from_slice(left.values());
    vals.extend(std::iter::repeat_n(Value::Null, right_arity));
    Row::new(vals)
}

/// Inner equi hash join. Output rows are `left ++ right`. The smaller
/// relation should be passed as `right` (the build side) for best memory
/// use, but correctness does not depend on it.
pub fn hash_join(
    left: &[Row],
    left_keys: &[usize],
    right: &[Row],
    right_keys: &[usize],
) -> Vec<Row> {
    assert_eq!(left_keys.len(), right_keys.len(), "join key arity mismatch");
    let mut build: HashMap<Vec<Value>, Vec<&Row>> = HashMap::with_capacity(right.len());
    for r in right {
        if let Some(k) = key_of(r, right_keys) {
            build.entry(k).or_default().push(r);
        }
    }
    let mut out = Vec::new();
    for l in left {
        if let Some(k) = key_of(l, left_keys) {
            if let Some(matches) = build.get(&k) {
                for r in matches {
                    out.push(concat(l, r));
                }
            }
        }
    }
    out
}

/// Left outer equi hash join: every left row appears at least once; rows
/// without a match get NULLs in the right columns. `right_arity` is the
/// column count of the right relation (needed when `right` is empty).
pub fn left_outer_hash_join(
    left: &[Row],
    left_keys: &[usize],
    right: &[Row],
    right_keys: &[usize],
    right_arity: usize,
) -> Vec<Row> {
    assert_eq!(left_keys.len(), right_keys.len(), "join key arity mismatch");
    let mut build: HashMap<Vec<Value>, Vec<&Row>> = HashMap::with_capacity(right.len());
    for r in right {
        if let Some(k) = key_of(r, right_keys) {
            build.entry(k).or_default().push(r);
        }
    }
    let mut out = Vec::with_capacity(left.len());
    for l in left {
        let matches = key_of(l, left_keys).and_then(|k| build.get(&k));
        match matches {
            Some(ms) if !ms.is_empty() => {
                for r in ms {
                    out.push(concat(l, r));
                }
            }
            _ => out.push(concat_null_right(l, right_arity)),
        }
    }
    out
}

/// Sort-merge inner equi join. Sorts both inputs by key, then merges.
/// Equivalent to [`hash_join`] up to output order; preferable when inputs
/// are large and nearly sorted, and used by the equivalence tests as an
/// independent oracle.
pub fn merge_join(
    left: &[Row],
    left_keys: &[usize],
    right: &[Row],
    right_keys: &[usize],
) -> Vec<Row> {
    assert_eq!(left_keys.len(), right_keys.len(), "join key arity mismatch");
    let mut ls: Vec<&Row> = left
        .iter()
        .filter(|r| key_of(r, left_keys).is_some())
        .collect();
    let mut rs: Vec<&Row> = right
        .iter()
        .filter(|r| key_of(r, right_keys).is_some())
        .collect();
    ls.sort_by_key(|r| r.project(left_keys));
    rs.sort_by_key(|r| r.project(right_keys));

    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < ls.len() && j < rs.len() {
        let ki = ls[i].project(left_keys);
        let kj = rs[j].project(right_keys);
        match ki.cmp(&kj) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // find the extent of the equal group on both sides
                let mut i_end = i + 1;
                while i_end < ls.len() && ls[i_end].project(left_keys) == ki {
                    i_end += 1;
                }
                let mut j_end = j + 1;
                while j_end < rs.len() && rs[j_end].project(right_keys) == kj {
                    j_end += 1;
                }
                for l in &ls[i..i_end] {
                    for r in &rs[j..j_end] {
                        out.push(concat(l, r));
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    out
}

/// Semi join: left rows that have at least one match on the right.
pub fn semi_join(
    left: &[Row],
    left_keys: &[usize],
    right: &[Row],
    right_keys: &[usize],
) -> Vec<Row> {
    let mut keys: std::collections::HashSet<Vec<Value>> =
        std::collections::HashSet::with_capacity(right.len());
    for r in right {
        if let Some(k) = key_of(r, right_keys) {
            keys.insert(k);
        }
    }
    left.iter()
        .filter(|l| key_of(l, left_keys).is_some_and(|k| keys.contains(&k)))
        .cloned()
        .collect()
}

/// Anti join: left rows with no match on the right.
pub fn anti_join(
    left: &[Row],
    left_keys: &[usize],
    right: &[Row],
    right_keys: &[usize],
) -> Vec<Row> {
    let mut keys: std::collections::HashSet<Vec<Value>> =
        std::collections::HashSet::with_capacity(right.len());
    for r in right {
        if let Some(k) = key_of(r, right_keys) {
            keys.insert(k);
        }
    }
    left.iter()
        .filter(|l| match key_of(l, left_keys) {
            Some(k) => !keys.contains(&k),
            None => true, // NULL keys never match, so they survive anti join
        })
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(vals: &[i64]) -> Row {
        Row::new(vals.iter().map(|v| Value::Int(*v)).collect())
    }

    fn rn(vals: &[Option<i64>]) -> Row {
        Row::new(
            vals.iter()
                .map(|v| v.map(Value::Int).unwrap_or(Value::Null))
                .collect(),
        )
    }

    #[test]
    fn inner_join_basics() {
        let left = vec![r(&[1, 10]), r(&[2, 20]), r(&[3, 30])];
        let right = vec![r(&[10, 100]), r(&[10, 101]), r(&[30, 300])];
        let out = hash_join(&left, &[1], &right, &[0]);
        assert_eq!(out.len(), 3);
        assert!(out.contains(&r(&[1, 10, 10, 100])));
        assert!(out.contains(&r(&[1, 10, 10, 101])));
        assert!(out.contains(&r(&[3, 30, 30, 300])));
    }

    #[test]
    fn left_outer_preserves_unmatched() {
        let left = vec![r(&[1, 10]), r(&[2, 20])];
        let right = vec![r(&[10, 100])];
        let out = left_outer_hash_join(&left, &[1], &right, &[0], 2);
        assert_eq!(out.len(), 2);
        assert!(out.contains(&r(&[1, 10, 10, 100])));
        assert!(out.contains(&rn(&[Some(2), Some(20), None, None])));
        // empty right side: all rows padded
        let out = left_outer_hash_join(&left, &[1], &[], &[0], 2);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|row| row.get(2).is_null()));
    }

    #[test]
    fn null_keys_never_match() {
        let left = vec![rn(&[Some(1), None])];
        let right = vec![rn(&[None, Some(9)])];
        assert!(hash_join(&left, &[1], &right, &[0]).is_empty());
        let out = left_outer_hash_join(&left, &[1], &right, &[0], 2);
        assert_eq!(out.len(), 1);
        assert!(out[0].get(2).is_null());
    }

    #[test]
    fn merge_join_matches_hash_join() {
        let left: Vec<Row> = (0..50).map(|i| r(&[i, i % 7])).collect();
        let right: Vec<Row> = (0..30).map(|i| r(&[i % 5, i])).collect();
        let mut h = hash_join(&left, &[1], &right, &[0]);
        let mut m = merge_join(&left, &[1], &right, &[0]);
        h.sort_by_key(|row| row.values().to_vec());
        m.sort_by_key(|row| row.values().to_vec());
        assert_eq!(h, m);
    }

    #[test]
    fn composite_keys() {
        let left = vec![r(&[1, 2, 77])];
        let right = vec![r(&[1, 2, 88]), r(&[1, 3, 99])];
        let out = hash_join(&left, &[0, 1], &right, &[0, 1]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0], r(&[1, 2, 77, 1, 2, 88]));
    }

    #[test]
    fn semi_and_anti_partition_left() {
        let left = vec![r(&[1]), r(&[2]), r(&[3]), rn(&[None])];
        let right = vec![r(&[2]), r(&[2]), r(&[4])];
        let semi = semi_join(&left, &[0], &right, &[0]);
        let anti = anti_join(&left, &[0], &right, &[0]);
        assert_eq!(semi, vec![r(&[2])]);
        assert_eq!(anti.len(), 3); // 1, 3, NULL
        assert_eq!(semi.len() + anti.len(), left.len());
    }

    #[test]
    fn empty_inputs() {
        let rows = vec![r(&[1])];
        assert!(hash_join(&[], &[0], &rows, &[0]).is_empty());
        assert!(hash_join(&rows, &[0], &[], &[0]).is_empty());
        assert!(merge_join(&[], &[0], &[], &[0]).is_empty());
    }

    #[test]
    #[should_panic(expected = "join key arity mismatch")]
    fn key_arity_mismatch_panics() {
        hash_join(&[r(&[1])], &[0], &[r(&[1])], &[]);
    }
}
