//! Table schemas: columns, primary keys, and index declarations.

use crate::error::{StoreError, StoreResult};
use crate::value::{Value, ValueType};

/// A column declaration.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Column {
    /// Column name, unique within the table.
    pub name: String,
    /// Declared type.
    pub ty: ValueType,
    /// Whether NULL is accepted. Defaults to `false`.
    pub nullable: bool,
}

impl Column {
    /// A non-nullable column.
    pub fn new(name: impl Into<String>, ty: ValueType) -> Self {
        Column {
            name: name.into(),
            ty,
            nullable: false,
        }
    }

    /// A nullable column.
    pub fn nullable(name: impl Into<String>, ty: ValueType) -> Self {
        Column {
            name: name.into(),
            ty,
            nullable: true,
        }
    }
}

/// Declaration of a secondary index over one or more columns.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct IndexDef {
    /// Index name, unique within the table.
    pub name: String,
    /// Ordinals of the indexed columns (in key order).
    pub columns: Vec<usize>,
    /// Whether the key must be unique across live rows.
    pub unique: bool,
}

/// A complete table schema.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Schema {
    name: String,
    columns: Vec<Column>,
    /// Ordinals of the primary-key columns, if a primary key was declared.
    /// The primary key is enforced as a unique index named `"pk"`.
    primary_key: Vec<usize>,
    indexes: Vec<IndexDef>,
}

impl Schema {
    /// Start building a schema for the table `name`.
    pub fn builder(name: impl Into<String>) -> SchemaBuilder {
        SchemaBuilder {
            name: name.into(),
            columns: Vec::new(),
            primary_key: Vec::new(),
            indexes: Vec::new(),
            error: None,
        }
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All columns, in ordinal order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Ordinal of a column by name.
    pub fn column_index(&self, name: &str) -> StoreResult<usize> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| StoreError::NoSuchColumn {
                table: self.name.clone(),
                column: name.to_owned(),
            })
    }

    /// Primary-key column ordinals (empty if no primary key declared).
    pub fn primary_key(&self) -> &[usize] {
        &self.primary_key
    }

    /// Declared secondary indexes (the primary key appears as index `"pk"`).
    pub fn indexes(&self) -> &[IndexDef] {
        &self.indexes
    }

    /// Find an index declaration by name.
    pub fn index(&self, name: &str) -> Option<&IndexDef> {
        self.indexes.iter().find(|i| i.name == name)
    }

    /// Validate a row against this schema: arity, types, nullability.
    pub fn check_row(&self, row: &[Value]) -> StoreResult<()> {
        if row.len() != self.columns.len() {
            return Err(StoreError::SchemaViolation(format!(
                "table {}: expected {} columns, got {}",
                self.name,
                self.columns.len(),
                row.len()
            )));
        }
        for (col, val) in self.columns.iter().zip(row) {
            if val.is_null() {
                if !col.nullable {
                    return Err(StoreError::SchemaViolation(format!(
                        "table {}: column {} is not nullable",
                        self.name, col.name
                    )));
                }
            } else if !val.conforms_to(col.ty) {
                return Err(StoreError::SchemaViolation(format!(
                    "table {}: column {} expects {}, got {}",
                    self.name, col.name, col.ty, val
                )));
            }
        }
        Ok(())
    }
}

/// Builder for [`Schema`]. Column/index name resolution errors are deferred
/// to [`SchemaBuilder::build`] so declarations chain fluently.
pub struct SchemaBuilder {
    name: String,
    columns: Vec<Column>,
    primary_key: Vec<String>,
    indexes: Vec<(String, Vec<String>, bool)>,
    error: Option<String>,
}

impl SchemaBuilder {
    /// Add a column.
    pub fn column(mut self, column: Column) -> Self {
        self.columns.push(column);
        self
    }

    /// Declare the primary key over the named columns. Enforced as a unique
    /// index named `"pk"`.
    pub fn primary_key(mut self, columns: &[&str]) -> Self {
        if !self.primary_key.is_empty() {
            self.error = Some("primary key declared twice".into());
        }
        self.primary_key = columns.iter().map(|c| (*c).to_owned()).collect();
        self
    }

    /// Declare a unique secondary index.
    pub fn unique_index(mut self, name: &str, columns: &[&str]) -> Self {
        self.indexes.push((
            name.to_owned(),
            columns.iter().map(|c| (*c).to_owned()).collect(),
            true,
        ));
        self
    }

    /// Declare a non-unique secondary index.
    pub fn index(mut self, name: &str, columns: &[&str]) -> Self {
        self.indexes.push((
            name.to_owned(),
            columns.iter().map(|c| (*c).to_owned()).collect(),
            false,
        ));
        self
    }

    /// Finish building, validating all names.
    pub fn build(self) -> StoreResult<Schema> {
        if let Some(msg) = self.error {
            return Err(StoreError::InvalidSchema(msg));
        }
        if self.columns.is_empty() {
            return Err(StoreError::InvalidSchema(format!(
                "table {} has no columns",
                self.name
            )));
        }
        for (i, c) in self.columns.iter().enumerate() {
            if self.columns[..i].iter().any(|p| p.name == c.name) {
                return Err(StoreError::InvalidSchema(format!(
                    "duplicate column {} in table {}",
                    c.name, self.name
                )));
            }
        }
        let resolve = |names: &[String]| -> StoreResult<Vec<usize>> {
            if names.is_empty() {
                return Err(StoreError::InvalidSchema(format!(
                    "empty column list in index on table {}",
                    self.name
                )));
            }
            names
                .iter()
                .map(|n| {
                    self.columns
                        .iter()
                        .position(|c| &c.name == n)
                        .ok_or_else(|| {
                            StoreError::InvalidSchema(format!(
                                "index on table {} names unknown column {}",
                                self.name, n
                            ))
                        })
                })
                .collect()
        };

        let mut indexes = Vec::with_capacity(self.indexes.len() + 1);
        let mut primary_key = Vec::new();
        if !self.primary_key.is_empty() {
            primary_key = resolve(&self.primary_key)?;
            indexes.push(IndexDef {
                name: "pk".to_owned(),
                columns: primary_key.clone(),
                unique: true,
            });
        }
        for (name, cols, unique) in &self.indexes {
            if name == "pk" {
                return Err(StoreError::InvalidSchema(
                    "index name pk is reserved for the primary key".into(),
                ));
            }
            if indexes.iter().any(|i: &IndexDef| &i.name == name) {
                return Err(StoreError::InvalidSchema(format!(
                    "duplicate index {} on table {}",
                    name, self.name
                )));
            }
            indexes.push(IndexDef {
                name: name.clone(),
                columns: resolve(cols)?,
                unique: *unique,
            });
        }
        Ok(Schema {
            name: self.name,
            columns: self.columns,
            primary_key,
            indexes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::builder("object")
            .column(Column::new("object_id", ValueType::Int))
            .column(Column::new("source_id", ValueType::Int))
            .column(Column::new("accession", ValueType::Text))
            .column(Column::nullable("text", ValueType::Text))
            .column(Column::nullable("number", ValueType::Float))
            .primary_key(&["object_id"])
            .unique_index("by_acc", &["source_id", "accession"])
            .index("by_source", &["source_id"])
            .build()
            .unwrap()
    }

    #[test]
    fn builds_and_resolves() {
        let s = sample();
        assert_eq!(s.name(), "object");
        assert_eq!(s.arity(), 5);
        assert_eq!(s.column_index("accession").unwrap(), 2);
        assert_eq!(s.primary_key(), &[0]);
        assert_eq!(s.indexes().len(), 3);
        assert_eq!(s.index("by_acc").unwrap().columns, vec![1, 2]);
        assert!(s.index("by_acc").unwrap().unique);
        assert!(!s.index("by_source").unwrap().unique);
    }

    #[test]
    fn row_validation() {
        let s = sample();
        let ok = vec![
            Value::Int(1),
            Value::Int(2),
            Value::text("GO:0001"),
            Value::Null,
            Value::Float(0.5),
        ];
        s.check_row(&ok).unwrap();

        // wrong arity
        assert!(s.check_row(&ok[..4]).is_err());
        // type mismatch
        let mut bad = ok.clone();
        bad[0] = Value::text("x");
        assert!(s.check_row(&bad).is_err());
        // null in non-nullable
        let mut bad = ok;
        bad[2] = Value::Null;
        assert!(s.check_row(&bad).is_err());
    }

    #[test]
    fn rejects_bad_declarations() {
        // duplicate column
        assert!(Schema::builder("t")
            .column(Column::new("a", ValueType::Int))
            .column(Column::new("a", ValueType::Int))
            .build()
            .is_err());
        // unknown index column
        assert!(Schema::builder("t")
            .column(Column::new("a", ValueType::Int))
            .index("i", &["b"])
            .build()
            .is_err());
        // empty
        assert!(Schema::builder("t").build().is_err());
        // reserved pk name
        assert!(Schema::builder("t")
            .column(Column::new("a", ValueType::Int))
            .unique_index("pk", &["a"])
            .build()
            .is_err());
        // duplicate index name
        assert!(Schema::builder("t")
            .column(Column::new("a", ValueType::Int))
            .index("i", &["a"])
            .index("i", &["a"])
            .build()
            .is_err());
        // double primary key
        assert!(Schema::builder("t")
            .column(Column::new("a", ValueType::Int))
            .primary_key(&["a"])
            .primary_key(&["a"])
            .build()
            .is_err());
        // unknown column message
        let err = Schema::builder("t")
            .column(Column::new("a", ValueType::Int))
            .build()
            .unwrap()
            .column_index("zz")
            .unwrap_err();
        assert!(err.to_string().contains("zz"));
    }
}
