//! The buffer pool: pinning, evicting, write-back, and the page directory.
//!
//! A [`Pager`] owns one *heap file* of appended page images (see
//! [`crate::page`]) and a bounded pool of decoded page frames. Tables
//! request pages with [`Pager::pin`]; a pinned page cannot be evicted
//! until its [`PinnedPage`] guard drops. When the pool exceeds its
//! configured capacity a clock sweep picks an unpinned, unreferenced
//! victim; dirty victims are written back as a *copy-on-write append* to
//! the heap file (never in place), so the durable bytes of the last
//! checkpoint are immutable and a power cut can only tear the unsynced
//! tail — exactly the fault model [`crate::vfs::FaultVfs`] simulates.
//!
//! Durability is cooperative with the database's checkpoint bracket:
//! evicted-page appends are *not* synced; [`Pager::flush_and_sync`] makes
//! every dirty page durable, and the caller then writes the *page
//! directory* (`encode_page_directory`) naming, per table, which heap
//! offset holds each page. Recovery trusts only the directory: torn or
//! superseded images beyond it are never referenced.
//!
//! The pool capacity is a soft cap: pins always succeed. If every frame
//! is pinned the pool temporarily overcommits rather than deadlocking.

use crate::codec::{crc32, get_row, get_varint, put_row, put_varint};
use crate::error::{StoreError, StoreResult};
use crate::page::{decode_page, encode_page, PageId};
use crate::row::Row;
use crate::schema::Schema;
use crate::snapshot::{get_schema, put_schema};
use crate::stats::PoolStats;
use crate::vfs::{Vfs, VfsFile};
use bytes::{BufMut, Bytes, BytesMut};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Buffer-pool sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// Target page size in bytes: a table seals its open tail page once
    /// the encoded rows reach this size. A single row larger than a page
    /// still fits (images are length-framed), so this is a target, not a
    /// hard bound.
    pub page_bytes: usize,
    /// Pool capacity in pages (soft cap; pinned pages can overcommit it).
    pub pool_pages: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            page_bytes: 32 * 1024,
            pool_pages: 64,
        }
    }
}

/// Where a page image lives in the heap file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskLoc {
    pub offset: u64,
    pub len: u32,
}

/// One resident page.
struct Frame {
    /// Slot contents. Shared with outstanding pins via `Arc`; mutation
    /// goes through `Arc::make_mut` (pins hold the pre-mutation image,
    /// which is fine: a pin is a read lease taken before the write).
    rows: Arc<Vec<Option<Row>>>,
    base: u64,
    dirty: bool,
    pins: u32,
    /// Clock reference bit (second-chance).
    referenced: bool,
}

/// Monotonic pool metrics, readable without the pool lock so concurrent
/// snapshot readers can poll `stats()` while a writer holds the pool.
/// Relaxed ordering is enough: each counter is an independent tally, not
/// a synchronization point.
#[derive(Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    writeback_pages: AtomicU64,
    writeback_bytes: AtomicU64,
    checkpoint_pages: AtomicU64,
    checkpoint_bytes: AtomicU64,
}

struct PoolInner {
    frames: HashMap<PageId, Frame>,
    /// Resident page ids, swept by the clock hand.
    clock: Vec<PageId>,
    hand: usize,
    /// Page → current heap location (the *live* directory; durable only
    /// once written into a checkpointed page directory).
    directory: HashMap<PageId, DiskLoc>,
    heap_path: PathBuf,
    heap: Option<Box<dyn VfsFile>>,
    /// Physical append offset. Refreshed from the file when the handle is
    /// (re)opened, so short writes from injected faults cannot desync it.
    heap_len: u64,
    heap_len_known: bool,
}

/// A pinning/evicting buffer pool over one heap file.
pub struct Pager {
    vfs: Arc<dyn Vfs>,
    config: PoolConfig,
    pool: Mutex<PoolInner>,
    /// Outside the pool lock: bumped with the lock held, but readable by
    /// any thread at any time (see [`Pager::stats`]).
    counters: Counters,
}

impl std::fmt::Debug for Pager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.pool.lock();
        f.debug_struct("Pager")
            .field("heap_path", &inner.heap_path)
            .field("resident", &inner.frames.len())
            .field("config", &self.config)
            .finish()
    }
}

/// A pinned page: keeps its frame resident until dropped.
pub struct PinnedPage {
    pager: Arc<Pager>,
    pid: PageId,
    rows: Arc<Vec<Option<Row>>>,
}

impl PinnedPage {
    /// The page's slot contents (`None` = tombstone).
    pub fn rows(&self) -> &[Option<Row>] {
        &self.rows
    }
}

impl Drop for PinnedPage {
    fn drop(&mut self) {
        let mut inner = self.pager.pool.lock();
        unpin_inner(&mut inner, self.pid);
    }
}

fn unpin_inner(inner: &mut PoolInner, pid: PageId) {
    if let Some(frame) = inner.frames.get_mut(&pid) {
        frame.pins = frame.pins.saturating_sub(1);
    }
}

impl Pager {
    /// A pool over `heap_path` (created lazily on first write-back).
    pub fn new(vfs: Arc<dyn Vfs>, heap_path: PathBuf, config: PoolConfig) -> Self {
        Pager {
            vfs,
            config: PoolConfig {
                page_bytes: config.page_bytes.max(64),
                pool_pages: config.pool_pages.max(1),
            },
            pool: Mutex::new(PoolInner {
                frames: HashMap::new(),
                clock: Vec::new(),
                hand: 0,
                directory: HashMap::new(),
                heap_path,
                heap: None,
                heap_len: 0,
                heap_len_known: false,
            }),
            counters: Counters::default(),
        }
    }

    /// Pool sizing this pager was built with.
    pub fn config(&self) -> &PoolConfig {
        &self.config
    }

    /// Recovery: declare that `pid` lives at `loc` in the heap file.
    pub(crate) fn register(&self, pid: PageId, loc: DiskLoc) {
        let mut inner = self.pool.lock();
        inner.directory.insert(pid, loc);
    }

    /// Current heap location of a page, if it has ever been written.
    pub(crate) fn directory_loc(&self, pid: PageId) -> Option<DiskLoc> {
        self.pool.lock().directory.get(&pid).copied()
    }

    /// Install a freshly sealed page as a dirty frame (it has no disk
    /// image yet). Evicts as needed to respect the pool cap; an eviction
    /// error still leaves the new frame installed and consistent.
    pub(crate) fn install(&self, pid: PageId, base: u64, rows: Vec<Option<Row>>) -> StoreResult<()> {
        let mut inner = self.pool.lock();
        if inner.frames.contains_key(&pid) {
            return Err(StoreError::Corrupt(format!(
                "page {pid:?} sealed twice"
            )));
        }
        inner.frames.insert(
            pid,
            Frame {
                rows: Arc::new(rows),
                base,
                dirty: true,
                pins: 1, // protect from the shrink below
                referenced: true,
            },
        );
        inner.clock.push(pid);
        let shrunk = self.shrink_to_cap(&mut inner);
        unpin_inner(&mut inner, pid);
        shrunk
    }

    /// Pin a page, faulting it in from the heap file if necessary.
    pub fn pin(self: &Arc<Self>, pid: PageId) -> StoreResult<PinnedPage> {
        let mut inner = self.pool.lock();
        let rows = self.acquire(&mut inner, pid)?;
        if let Err(e) = self.shrink_to_cap(&mut inner) {
            unpin_inner(&mut inner, pid);
            return Err(e);
        }
        Ok(PinnedPage {
            pager: self.clone(),
            pid,
            rows,
        })
    }

    /// Run `f` over a mutable view of the page's slots, marking the page
    /// dirty. The closure runs under the pool lock and must not reenter
    /// the pager. Any eviction I/O happens *before* `f` runs, so an error
    /// means the mutation was not applied.
    pub(crate) fn mutate<T>(
        &self,
        pid: PageId,
        f: impl FnOnce(&mut Vec<Option<Row>>) -> T,
    ) -> StoreResult<T> {
        let mut inner = self.pool.lock();
        self.acquire(&mut inner, pid)?;
        if let Err(e) = self.shrink_to_cap(&mut inner) {
            unpin_inner(&mut inner, pid);
            return Err(e);
        }
        let out = match inner.frames.get_mut(&pid) {
            Some(frame) => {
                frame.dirty = true;
                Ok(f(Arc::make_mut(&mut frame.rows)))
            }
            None => Err(StoreError::Corrupt(format!(
                "page {pid:?} vanished during mutate"
            ))),
        };
        unpin_inner(&mut inner, pid);
        out
    }

    /// Fetch (or fault in) a frame's rows, taking a pin that shields it
    /// from eviction until the caller releases it. Returns the shared row
    /// vector. Does NOT enforce the pool cap — callers shrink afterwards
    /// so the new frame cannot be the eviction victim.
    fn acquire(&self, inner: &mut PoolInner, pid: PageId) -> StoreResult<Arc<Vec<Option<Row>>>> {
        if let Some(frame) = inner.frames.get_mut(&pid) {
            frame.referenced = true;
            frame.pins += 1;
            self.counters.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(frame.rows.clone());
        }
        self.counters.misses.fetch_add(1, Ordering::Relaxed);
        let loc = *inner.directory.get(&pid).ok_or_else(|| {
            StoreError::Corrupt(format!("page {pid:?} missing from heap directory"))
        })?;
        let image = self
            .vfs
            .read_at(&inner.heap_path, loc.offset, loc.len as usize)?
            .ok_or_else(|| {
                StoreError::Corrupt(format!(
                    "heap file {} missing",
                    inner.heap_path.display()
                ))
            })?;
        if image.len() != loc.len as usize {
            return Err(StoreError::Corrupt(format!(
                "page {pid:?} truncated: {} of {} bytes",
                image.len(),
                loc.len
            )));
        }
        let page = decode_page(&image)?;
        if page.table_id != pid.table_id || page.page_no != pid.page_no {
            return Err(StoreError::Corrupt(format!(
                "page identity mismatch: wanted {pid:?}, found table {} page {}",
                page.table_id, page.page_no
            )));
        }
        let rows = Arc::new(page.rows);
        inner.frames.insert(
            pid,
            Frame {
                rows: rows.clone(),
                base: page.base,
                dirty: false,
                pins: 1,
                referenced: true,
            },
        );
        inner.clock.push(pid);
        Ok(rows)
    }

    /// Evict until the pool is within capacity (skipping pinned frames;
    /// gives up into overcommit if everything is pinned).
    fn shrink_to_cap(&self, inner: &mut PoolInner) -> StoreResult<()> {
        while inner.frames.len() > self.config.pool_pages {
            if !self.evict_one(inner)? {
                break;
            }
        }
        Ok(())
    }

    /// One clock sweep: clear reference bits, then evict the first
    /// unpinned, unreferenced frame. `Ok(false)` if every frame is pinned.
    fn evict_one(&self, inner: &mut PoolInner) -> StoreResult<bool> {
        let mut steps = 0;
        let max_steps = inner.clock.len() * 2;
        while steps < max_steps && !inner.clock.is_empty() {
            if inner.hand >= inner.clock.len() {
                inner.hand = 0;
            }
            let pid = inner.clock[inner.hand];
            let Some(frame) = inner.frames.get_mut(&pid) else {
                // stale clock entry (should not happen; self-heal)
                inner.clock.swap_remove(inner.hand);
                continue;
            };
            if frame.pins > 0 {
                inner.hand += 1;
                steps += 1;
                continue;
            }
            if frame.referenced {
                frame.referenced = false;
                inner.hand += 1;
                steps += 1;
                continue;
            }
            if frame.dirty {
                let bytes = self.write_back(inner, pid)?;
                self.counters.writeback_pages.fetch_add(1, Ordering::Relaxed);
                self.counters.writeback_bytes.fetch_add(bytes, Ordering::Relaxed);
            }
            inner.frames.remove(&pid);
            inner.clock.swap_remove(inner.hand);
            self.counters.evictions.fetch_add(1, Ordering::Relaxed);
            return Ok(true);
        }
        Ok(false)
    }

    /// Append a frame's current image to the heap file (copy-on-write)
    /// and point the live directory at it. Not synced — durability comes
    /// from the checkpoint bracket.
    fn write_back(&self, inner: &mut PoolInner, pid: PageId) -> StoreResult<u64> {
        let (rows, base) = match inner.frames.get(&pid) {
            Some(f) => (f.rows.clone(), f.base),
            None => {
                return Err(StoreError::Corrupt(format!(
                    "write-back of non-resident page {pid:?}"
                )))
            }
        };
        let image = encode_page(pid.table_id, pid.page_no, base, &rows);
        self.append_image(inner, pid, &image)?;
        if let Some(f) = inner.frames.get_mut(&pid) {
            f.dirty = false;
        }
        Ok(image.len() as u64)
    }

    /// Append one page image, recording its location. On failure the heap
    /// handle is dropped so the next append re-derives the true file
    /// extent (a short write must not desync recorded offsets).
    fn append_image(&self, inner: &mut PoolInner, pid: PageId, image: &[u8]) -> StoreResult<()> {
        if inner.heap.is_none() {
            let handle = self.vfs.open_append(&inner.heap_path)?;
            if !inner.heap_len_known {
                inner.heap_len = self.vfs.file_len(&inner.heap_path)?.unwrap_or(0);
                inner.heap_len_known = true;
            }
            inner.heap = Some(handle);
        }
        let offset = inner.heap_len;
        let result = match inner.heap.as_mut() {
            Some(h) => h.write_all(image),
            None => Err(StoreError::Corrupt("heap handle missing".into())),
        };
        if let Err(e) = result {
            inner.heap = None;
            inner.heap_len_known = false;
            return Err(e);
        }
        inner.heap_len = offset + image.len() as u64;
        inner.directory.insert(
            pid,
            DiskLoc {
                offset,
                len: image.len() as u32,
            },
        );
        Ok(())
    }

    /// Checkpoint support: write back every dirty frame (sorted for
    /// deterministic I/O order) and fsync the heap file. Returns
    /// `(pages, bytes)` flushed.
    pub(crate) fn flush_and_sync(&self) -> StoreResult<(u64, u64)> {
        let mut inner = self.pool.lock();
        let mut dirty: Vec<PageId> = inner
            .frames
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(pid, _)| *pid)
            .collect();
        dirty.sort_unstable();
        let mut pages = 0u64;
        let mut bytes = 0u64;
        for pid in dirty {
            bytes += self.write_back(&mut inner, pid)?;
            pages += 1;
        }
        if let Some(h) = inner.heap.as_mut() {
            if let Err(e) = h.sync() {
                inner.heap = None;
                inner.heap_len_known = false;
                return Err(e);
            }
        }
        self.counters.checkpoint_pages.fetch_add(pages, Ordering::Relaxed);
        self.counters.checkpoint_bytes.fetch_add(bytes, Ordering::Relaxed);
        Ok((pages, bytes))
    }

    /// Compaction: rewrite exactly `pids` (every live page, in the
    /// caller's order) into a fresh heap file at `new_path`, fsync it,
    /// and atomically swap the pool's directory and heap handle to it.
    /// The old heap file is left for the caller to unlink once the new
    /// page directory is durable.
    pub(crate) fn compact_into(&self, new_path: &Path, pids: &[PageId]) -> StoreResult<()> {
        let mut inner = self.pool.lock();
        let mut file = self.vfs.create(new_path)?;
        let mut new_dir: HashMap<PageId, DiskLoc> = HashMap::with_capacity(pids.len());
        let mut offset = 0u64;
        for &pid in pids {
            let image = match inner.frames.get(&pid) {
                Some(f) => encode_page(pid.table_id, pid.page_no, f.base, &f.rows),
                None => {
                    let loc = *inner.directory.get(&pid).ok_or_else(|| {
                        StoreError::Corrupt(format!("compaction: page {pid:?} unknown"))
                    })?;
                    let image = self
                        .vfs
                        .read_at(&inner.heap_path, loc.offset, loc.len as usize)?
                        .ok_or_else(|| StoreError::Corrupt("heap file missing".into()))?;
                    // validate before re-writing: compaction must not
                    // launder a corrupt image into a fresh heap
                    decode_page(&image)?;
                    image
                }
            };
            file.write_all(&image)?;
            new_dir.insert(
                pid,
                DiskLoc {
                    offset,
                    len: image.len() as u32,
                },
            );
            offset += image.len() as u64;
        }
        file.sync()?;
        inner.directory = new_dir;
        inner.heap_path = new_path.to_owned();
        inner.heap = Some(file);
        inner.heap_len = offset;
        inner.heap_len_known = true;
        for f in inner.frames.values_mut() {
            f.dirty = false;
        }
        Ok(())
    }

    /// Snapshot of the pool metrics. The monotonic counters are read from
    /// atomics without the pool lock, so concurrent readers can poll this
    /// while a writer is mid-eviction; only the residency census briefly
    /// takes the lock.
    pub fn stats(&self) -> PoolStats {
        let (resident, pinned, dirty, heap_bytes) = {
            let inner = self.pool.lock();
            (
                inner.frames.len(),
                inner.frames.values().filter(|f| f.pins > 0).count(),
                inner.frames.values().filter(|f| f.dirty).count(),
                inner.heap_len,
            )
        };
        PoolStats {
            page_bytes: self.config.page_bytes,
            pool_pages: self.config.pool_pages,
            resident,
            pinned,
            dirty,
            evictions: self.counters.evictions.load(Ordering::Relaxed),
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            writeback_pages: self.counters.writeback_pages.load(Ordering::Relaxed),
            writeback_bytes: self.counters.writeback_bytes.load(Ordering::Relaxed),
            checkpoint_pages: self.counters.checkpoint_pages.load(Ordering::Relaxed),
            checkpoint_bytes: self.counters.checkpoint_bytes.load(Ordering::Relaxed),
            heap_bytes,
        }
    }
}

// ---------------------------------------------------------------------------
// Page directory: the paged analogue of the snapshot file
// ---------------------------------------------------------------------------

const DIR_MAGIC: &[u8; 4] = b"RSPD";
const DIR_VERSION: u32 = 1;

/// Directory entry for one sealed page of a table (`page_no` is the
/// position in the table's page list).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageDirEntry {
    pub base: u64,
    pub slots: u32,
    pub loc: DiskLoc,
}

/// Per-table recovery metadata carried by the page directory.
#[derive(Debug, Clone)]
pub struct PagedTableMeta {
    pub schema: Schema,
    pub table_id: u32,
    pub live: u64,
    pub pages: Vec<PageDirEntry>,
    /// Row id of the first open-tail slot.
    pub tail_base: u64,
    /// The open tail page's rows, stored inline (bounded by the page
    /// size, so the directory stays small).
    pub tail: Vec<Option<Row>>,
}

/// Everything recovery needs besides the WAL: which heap generation is
/// live and where every page of every table lives inside it.
#[derive(Debug, Clone)]
pub struct PagedCatalog {
    pub epoch: u64,
    pub heap_gen: u64,
    pub next_table_id: u32,
    pub tables: Vec<PagedTableMeta>,
}

/// Encode a page directory: `[magic][version][crc32][body]`.
pub fn encode_page_directory(catalog: &PagedCatalog) -> Vec<u8> {
    let mut body = BytesMut::new();
    put_varint(&mut body, catalog.epoch);
    put_varint(&mut body, catalog.heap_gen);
    put_varint(&mut body, catalog.next_table_id as u64);
    put_varint(&mut body, catalog.tables.len() as u64);
    for t in &catalog.tables {
        put_schema(&mut body, &t.schema);
        put_varint(&mut body, t.table_id as u64);
        put_varint(&mut body, t.live);
        put_varint(&mut body, t.pages.len() as u64);
        for p in &t.pages {
            put_varint(&mut body, p.base);
            put_varint(&mut body, p.slots as u64);
            put_varint(&mut body, p.loc.offset);
            put_varint(&mut body, p.loc.len as u64);
        }
        put_varint(&mut body, t.tail_base);
        put_varint(&mut body, t.tail.len() as u64);
        for slot in &t.tail {
            match slot {
                None => body.put_u8(0),
                Some(row) => {
                    body.put_u8(1);
                    put_row(&mut body, row.values());
                }
            }
        }
    }
    let mut out = Vec::with_capacity(body.len() + 12);
    out.extend_from_slice(DIR_MAGIC);
    out.extend_from_slice(&DIR_VERSION.to_le_bytes());
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Decode and CRC-verify a page directory.
pub fn decode_page_directory(data: &[u8]) -> StoreResult<PagedCatalog> {
    if data.len() < 12 {
        return Err(StoreError::Corrupt("page directory too short".into()));
    }
    if &data[0..4] != DIR_MAGIC {
        return Err(StoreError::Corrupt("bad page directory magic".into()));
    }
    let version = u32::from_le_bytes([data[4], data[5], data[6], data[7]]);
    if version == 0 || version > DIR_VERSION {
        return Err(StoreError::Corrupt(format!(
            "unsupported page directory version {version}"
        )));
    }
    let crc = u32::from_le_bytes([data[8], data[9], data[10], data[11]]);
    let body = &data[12..];
    if crc32(body) != crc {
        return Err(StoreError::Corrupt("page directory checksum mismatch".into()));
    }
    let mut buf = Bytes::copy_from_slice(body);
    let epoch = get_varint(&mut buf)?;
    let heap_gen = get_varint(&mut buf)?;
    let next_table_id = get_varint(&mut buf)? as u32;
    let ntables = get_varint(&mut buf)? as usize;
    if ntables > 1 << 16 {
        return Err(StoreError::Corrupt(format!("implausible table count {ntables}")));
    }
    let mut tables = Vec::with_capacity(ntables);
    for _ in 0..ntables {
        let schema = get_schema(&mut buf)?;
        let table_id = get_varint(&mut buf)? as u32;
        let live = get_varint(&mut buf)?;
        let npages = get_varint(&mut buf)? as usize;
        if npages > 1 << 32 {
            return Err(StoreError::Corrupt(format!("implausible page count {npages}")));
        }
        let mut pages = Vec::with_capacity(npages);
        for _ in 0..npages {
            let base = get_varint(&mut buf)?;
            let slots = get_varint(&mut buf)? as u32;
            let offset = get_varint(&mut buf)?;
            let len = get_varint(&mut buf)? as u32;
            pages.push(PageDirEntry {
                base,
                slots,
                loc: DiskLoc { offset, len },
            });
        }
        let tail_base = get_varint(&mut buf)?;
        let ntail = get_varint(&mut buf)? as usize;
        if ntail > crate::page::MAX_PAGE_SLOTS {
            return Err(StoreError::Corrupt(format!("implausible tail length {ntail}")));
        }
        let mut tail = Vec::with_capacity(ntail);
        for _ in 0..ntail {
            use bytes::Buf;
            if !buf.has_remaining() {
                return Err(StoreError::Corrupt("page directory truncated".into()));
            }
            match buf.get_u8() {
                0 => tail.push(None),
                1 => tail.push(Some(Row::new(get_row(&mut buf)?))),
                other => {
                    return Err(StoreError::Corrupt(format!(
                        "bad tail slot marker {other}"
                    )))
                }
            }
        }
        tables.push(PagedTableMeta {
            schema,
            table_id,
            live,
            pages,
            tail_base,
            tail,
        });
    }
    Ok(PagedCatalog {
        epoch,
        heap_gen,
        next_table_id,
        tables,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::{Value, ValueType};
    use crate::vfs::FaultVfs;
    use std::path::PathBuf;

    fn heap() -> PathBuf {
        PathBuf::from("/db/heap.1.bin")
    }

    fn row(i: i64) -> Row {
        Row::new(vec![Value::Int(i), Value::text(format!("payload-{i}"))])
    }

    fn pid(no: u32) -> PageId {
        PageId {
            table_id: 1,
            page_no: no,
        }
    }

    fn pager(pool_pages: usize) -> (Arc<Pager>, FaultVfs) {
        let vfs = FaultVfs::new();
        let pager = Arc::new(Pager::new(
            Arc::new(vfs.clone()),
            heap(),
            PoolConfig {
                page_bytes: 256,
                pool_pages,
            },
        ));
        (pager, vfs)
    }

    #[test]
    fn install_pin_evict_and_refault() {
        let (pager, _vfs) = pager(2);
        for no in 0..4u32 {
            let rows = (0..3).map(|i| Some(row((no * 3 + i) as i64))).collect();
            pager.install(pid(no), no as u64 * 3, rows).unwrap();
        }
        let stats = pager.stats();
        assert_eq!(stats.resident, 2, "pool capped at 2 pages");
        assert!(stats.evictions >= 2);
        assert!(stats.writeback_pages >= 2, "dirty victims written back");
        // evicted pages fault back in with identical contents
        for no in 0..4u32 {
            let page = pager.pin(pid(no)).unwrap();
            let rows = page.rows();
            assert_eq!(rows.len(), 3);
            assert_eq!(rows[1].as_ref().unwrap(), &row((no * 3 + 1) as i64));
        }
    }

    #[test]
    fn pins_block_eviction_and_overcommit_is_allowed() {
        let (pager, _vfs) = pager(1);
        pager.install(pid(0), 0, vec![Some(row(0))]).unwrap();
        let guard = pager.pin(pid(0)).unwrap();
        assert_eq!(pager.stats().pinned, 1);
        // pool of 1 with page 0 pinned: installing page 1 overcommits
        pager.install(pid(1), 1, vec![Some(row(1))]).unwrap();
        assert!(pager.stats().resident >= 1);
        let rows = guard.rows();
        assert_eq!(rows[0].as_ref().unwrap(), &row(0));
        drop(guard);
        assert_eq!(pager.stats().pinned, 0);
        // now page 0 is evictable; forcing more installs shrinks the pool
        pager.install(pid(2), 2, vec![Some(row(2))]).unwrap();
        assert!(pager.stats().resident <= 2);
    }

    #[test]
    fn mutate_marks_dirty_and_checkpoint_flush_clears() {
        let (pager, vfs) = pager(4);
        pager
            .install(pid(0), 0, vec![Some(row(0)), Some(row(1))])
            .unwrap();
        let (p1, _) = pager.flush_and_sync().unwrap();
        assert_eq!(p1, 1);
        assert_eq!(pager.stats().dirty, 0);
        // mutation re-dirties; flush appends a new image (copy-on-write)
        let before = pager.stats().heap_bytes;
        pager
            .mutate(pid(0), |rows| {
                rows[1] = None;
            })
            .unwrap();
        assert_eq!(pager.stats().dirty, 1);
        let (p2, b2) = pager.flush_and_sync().unwrap();
        assert_eq!(p2, 1);
        assert!(b2 > 0);
        let after = pager.stats().heap_bytes;
        assert!(after > before, "copy-on-write appends, never overwrites");
        // a clean pool flushes nothing
        assert_eq!(pager.flush_and_sync().unwrap(), (0, 0));
        // the durable bytes on the fault vfs really grew append-only
        assert_eq!(vfs.peek(&heap()).unwrap().len() as u64, after);
    }

    #[test]
    fn torn_heap_tail_is_detected_by_page_crc() {
        let (pager, vfs) = pager(4);
        let rows: Vec<Option<Row>> = (0..4).map(|i| Some(row(i))).collect();
        pager.install(pid(0), 0, rows).unwrap();
        pager.flush_and_sync().unwrap();
        let loc = pager.directory_loc(pid(0)).unwrap();
        // a torn image (cut short) must fail CRC, not decode garbage
        let full = vfs.read_at(&heap(), loc.offset, loc.len as usize).unwrap().unwrap();
        for cut in [1usize, 8, full.len() - 1] {
            assert!(decode_page(&full[..cut]).is_err());
        }
    }

    #[test]
    fn compaction_rewrites_live_pages_into_new_generation() {
        let (pager, vfs) = pager(2);
        for no in 0..4u32 {
            let rows = (0..4).map(|i| Some(row((no * 4 + i) as i64))).collect();
            pager.install(pid(no), no as u64 * 4, rows).unwrap();
        }
        pager.flush_and_sync().unwrap();
        // churn: every page rewritten once → heap holds superseded images
        for no in 0..4u32 {
            pager
                .mutate(pid(no), |rows| {
                    rows[0] = None;
                })
                .unwrap();
        }
        pager.flush_and_sync().unwrap();
        let old_bytes = pager.stats().heap_bytes;
        let new_path = PathBuf::from("/db/heap.2.bin");
        let pids: Vec<PageId> = (0..4).map(pid).collect();
        pager.compact_into(&new_path, &pids).unwrap();
        let new_bytes = pager.stats().heap_bytes;
        assert!(new_bytes < old_bytes, "compaction reclaims superseded images");
        assert!(vfs.exists(&new_path));
        // contents survive, served from the new heap
        for no in 0..4u32 {
            let page = pager.pin(pid(no)).unwrap();
            assert!(page.rows()[0].is_none());
            assert_eq!(page.rows()[1].as_ref().unwrap(), &row((no * 4 + 1) as i64));
        }
    }

    #[test]
    fn page_directory_roundtrip_and_corruption() {
        let schema = Schema::builder("t")
            .column(Column::new("id", ValueType::Int))
            .column(Column::new("name", ValueType::Text))
            .primary_key(&["id"])
            .build()
            .unwrap();
        let catalog = PagedCatalog {
            epoch: 9,
            heap_gen: 3,
            next_table_id: 2,
            tables: vec![PagedTableMeta {
                schema,
                table_id: 1,
                live: 5,
                pages: vec![
                    PageDirEntry {
                        base: 0,
                        slots: 4,
                        loc: DiskLoc { offset: 0, len: 100 },
                    },
                    PageDirEntry {
                        base: 4,
                        slots: 2,
                        loc: DiskLoc { offset: 100, len: 60 },
                    },
                ],
                tail_base: 6,
                tail: vec![Some(row(6)), None, Some(row(8))],
            }],
        };
        let data = encode_page_directory(&catalog);
        let back = decode_page_directory(&data).unwrap();
        assert_eq!(back.epoch, 9);
        assert_eq!(back.heap_gen, 3);
        assert_eq!(back.next_table_id, 2);
        assert_eq!(back.tables.len(), 1);
        let t = &back.tables[0];
        assert_eq!(t.table_id, 1);
        assert_eq!(t.live, 5);
        assert_eq!(t.pages, catalog.tables[0].pages);
        assert_eq!(t.tail_base, 6);
        assert_eq!(t.tail, catalog.tables[0].tail);

        let mut bad = data.clone();
        bad[0] = b'X';
        assert!(decode_page_directory(&bad).is_err());
        let mut bad = data.clone();
        let n = bad.len();
        bad[n - 1] ^= 0x01;
        assert!(decode_page_directory(&bad).is_err());
        assert!(decode_page_directory(&data[..6]).is_err());
    }
}
