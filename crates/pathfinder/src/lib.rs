//! `pathfinder` — the source graph and mapping-path discovery.
//!
//! Paper §5.1: "GenMapper internally manages a graph of all available
//! sources and mappings. Using a shortest path algorithm, GenMapper is able
//! to automatically determine a mapping path to traverse from the source to
//! any specified target. The user can also search in the graph for specific
//! paths, for example, with a particular intermediate source. With a high
//! degree of inter-connectivity between the sources, many paths may be
//! possible. Hence, GenMapper also allows the user to manually build and
//! save a path customized for specific analysis requirements."
//!
//! [`SourceGraph`] snapshots the `SOURCE_REL` table; [`graph`] provides
//! BFS shortest paths, quality-weighted Dijkstra, Yen's k-shortest paths,
//! and via-constrained search; [`saved`] keeps named user paths.

pub mod graph;
pub mod saved;

pub use graph::{SourceGraph, WeightScheme};
pub use saved::SavedPaths;
