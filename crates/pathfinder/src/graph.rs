//! The source graph and path-finding algorithms.

use gam::model::RelType;
use gam::{GamRead, GamResult, SourceId};
#[cfg(test)]
use gam::GamStore;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, BTreeMap, BTreeSet, HashMap, VecDeque};

/// Edge weighting for Dijkstra path search. Mapping paths through curated
/// fact mappings are preferred over computed similarity links and derived
/// mappings; the weights express that preference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightScheme {
    /// Every edge costs 1 (hop count — plain shortest path).
    Hops,
    /// Fact = 1.0, Similarity = 1.5, Composed/Subsumed = 2.5 — prefers
    /// curated links.
    Quality,
}

impl WeightScheme {
    fn weight(self, rel_type: RelType) -> f64 {
        match self {
            WeightScheme::Hops => 1.0,
            WeightScheme::Quality => match rel_type {
                RelType::Fact => 1.0,
                RelType::Similarity => 1.5,
                _ => 2.5,
            },
        }
    }
}

/// An edge of the source graph (one traversable mapping).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    pub to: SourceId,
    pub rel_type: RelType,
}

/// Immutable snapshot of the source/mapping graph.
#[derive(Debug, Clone, Default)]
pub struct SourceGraph {
    /// Adjacency lists; mappings are traversable in both directions.
    adjacency: BTreeMap<SourceId, Vec<Edge>>,
}

impl SourceGraph {
    /// Build the graph from the store's `SOURCE_REL` table. Structural
    /// relationships (IS_A, Contains) and self-loops are not traversal
    /// edges; annotation and derived mappings are, in both directions.
    pub fn from_store(store: &dyn GamRead) -> GamResult<SourceGraph> {
        let mut graph = SourceGraph::default();
        for source in store.sources()? {
            graph.adjacency.entry(source.id).or_default();
        }
        for rel in store.source_rels()? {
            if rel.rel_type.is_structural() || rel.source1 == rel.source2 {
                continue;
            }
            graph.add_edge(rel.source1, rel.source2, rel.rel_type);
        }
        Ok(graph)
    }

    /// Add a bidirectional edge (used directly by tests and by incremental
    /// updates after materialization).
    pub fn add_edge(&mut self, a: SourceId, b: SourceId, rel_type: RelType) {
        // keep one edge per (pair, type)
        let fwd = self.adjacency.entry(a).or_default();
        if !fwd.iter().any(|e| e.to == b && e.rel_type == rel_type) {
            fwd.push(Edge { to: b, rel_type });
        }
        let back = self.adjacency.entry(b).or_default();
        if !back.iter().any(|e| e.to == a && e.rel_type == rel_type) {
            back.push(Edge { to: a, rel_type });
        }
    }

    /// Number of sources.
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of undirected edges (counting one per (pair, type)).
    pub fn edge_count(&self) -> usize {
        self.adjacency.values().map(Vec::len).sum::<usize>() / 2
    }

    /// Direct neighbours of a source.
    pub fn neighbours(&self, source: SourceId) -> &[Edge] {
        self.adjacency
            .get(&source)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Unweighted shortest path (BFS), as GenMapper's automatic path
    /// discovery. Returns the node sequence from `from` to `to` inclusive,
    /// or `None` if unreachable.
    pub fn shortest_path(&self, from: SourceId, to: SourceId) -> Option<Vec<SourceId>> {
        if from == to {
            return Some(vec![from]);
        }
        if !self.adjacency.contains_key(&from) || !self.adjacency.contains_key(&to) {
            return None;
        }
        let mut prev: HashMap<SourceId, SourceId> = HashMap::new();
        let mut queue = VecDeque::from([from]);
        let mut seen: BTreeSet<SourceId> = [from].into();
        while let Some(node) = queue.pop_front() {
            for edge in self.neighbours(node) {
                if seen.insert(edge.to) {
                    prev.insert(edge.to, node);
                    if edge.to == to {
                        return Some(rebuild(&prev, from, to));
                    }
                    queue.push_back(edge.to);
                }
            }
        }
        None
    }

    /// Weighted shortest path (Dijkstra) under a weight scheme. Returns
    /// (path, total cost).
    pub fn best_path(
        &self,
        from: SourceId,
        to: SourceId,
        scheme: WeightScheme,
    ) -> Option<(Vec<SourceId>, f64)> {
        if from == to {
            return Some((vec![from], 0.0));
        }
        #[derive(PartialEq)]
        struct Item {
            cost: f64,
            node: SourceId,
        }
        impl Eq for Item {}
        impl Ord for Item {
            fn cmp(&self, other: &Self) -> Ordering {
                // min-heap on cost, tie-break on node for determinism
                other
                    .cost
                    .total_cmp(&self.cost)
                    .then_with(|| other.node.cmp(&self.node))
            }
        }
        impl PartialOrd for Item {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }

        let mut dist: HashMap<SourceId, f64> = HashMap::from([(from, 0.0)]);
        let mut prev: HashMap<SourceId, SourceId> = HashMap::new();
        let mut heap = BinaryHeap::from([Item { cost: 0.0, node: from }]);
        while let Some(Item { cost, node }) = heap.pop() {
            if node == to {
                return Some((rebuild(&prev, from, to), cost));
            }
            if cost > dist.get(&node).copied().unwrap_or(f64::INFINITY) {
                continue;
            }
            for edge in self.neighbours(node) {
                // when parallel mappings exist, take the cheapest edge type
                let next_cost = cost + scheme.weight(edge.rel_type);
                if next_cost < dist.get(&edge.to).copied().unwrap_or(f64::INFINITY) {
                    dist.insert(edge.to, next_cost);
                    prev.insert(edge.to, node);
                    heap.push(Item {
                        cost: next_cost,
                        node: edge.to,
                    });
                }
            }
        }
        None
    }

    /// A path constrained to pass through `via` ("the user can also search
    /// in the graph for specific paths, for example, with a particular
    /// intermediate source"). Concatenates the two shortest legs; `None`
    /// if either leg is unreachable.
    pub fn path_via(
        &self,
        from: SourceId,
        via: SourceId,
        to: SourceId,
    ) -> Option<Vec<SourceId>> {
        let first = self.shortest_path(from, via)?;
        let second = self.shortest_path(via, to)?;
        let mut path = first;
        path.extend_from_slice(&second[1..]);
        Some(path)
    }

    /// Yen's algorithm: up to `k` loop-free shortest paths in increasing
    /// hop-count order ("with a high degree of inter-connectivity between
    /// the sources, many paths may be possible").
    pub fn k_shortest_paths(&self, from: SourceId, to: SourceId, k: usize) -> Vec<Vec<SourceId>> {
        let Some(first) = self.shortest_path(from, to) else {
            return Vec::new();
        };
        let mut found = vec![first];
        let mut candidates: Vec<Vec<SourceId>> = Vec::new();
        while found.len() < k {
            let last = found.last().expect("non-empty").clone();
            for spur_idx in 0..last.len() - 1 {
                let spur_node = last[spur_idx];
                let root: Vec<SourceId> = last[..=spur_idx].to_vec();
                // remove edges used by known paths sharing this root, and
                // the root's interior nodes, then search the reduced graph
                let mut banned_edges: BTreeSet<(SourceId, SourceId)> = BTreeSet::new();
                for p in &found {
                    if p.len() > spur_idx + 1 && p[..=spur_idx] == root[..] {
                        banned_edges.insert((p[spur_idx], p[spur_idx + 1]));
                        banned_edges.insert((p[spur_idx + 1], p[spur_idx]));
                    }
                }
                let banned_nodes: BTreeSet<SourceId> = root[..spur_idx].iter().copied().collect();
                if let Some(spur) = self.shortest_path_filtered(spur_node, to, &banned_nodes, &banned_edges) {
                    let mut total = root.clone();
                    total.extend_from_slice(&spur[1..]);
                    if !found.contains(&total) && !candidates.contains(&total) {
                        candidates.push(total);
                    }
                }
            }
            if candidates.is_empty() {
                break;
            }
            candidates.sort_by_key(|p| (p.len(), p.clone()));
            found.push(candidates.remove(0));
        }
        found
    }

    /// Shortest path that avoids the given sources entirely — the user-
    /// driven variant of path search ("the user can also search in the
    /// graph for specific paths"), e.g. routing around a source whose
    /// current release is distrusted.
    pub fn shortest_path_avoiding(
        &self,
        from: SourceId,
        to: SourceId,
        avoid: &BTreeSet<SourceId>,
    ) -> Option<Vec<SourceId>> {
        if avoid.contains(&from) || avoid.contains(&to) {
            return None;
        }
        self.shortest_path_filtered(from, to, avoid, &BTreeSet::new())
    }

    fn shortest_path_filtered(
        &self,
        from: SourceId,
        to: SourceId,
        banned_nodes: &BTreeSet<SourceId>,
        banned_edges: &BTreeSet<(SourceId, SourceId)>,
    ) -> Option<Vec<SourceId>> {
        if banned_nodes.contains(&from) {
            return None;
        }
        if from == to {
            return Some(vec![from]);
        }
        let mut prev: HashMap<SourceId, SourceId> = HashMap::new();
        let mut queue = VecDeque::from([from]);
        let mut seen: BTreeSet<SourceId> = [from].into();
        while let Some(node) = queue.pop_front() {
            for edge in self.neighbours(node) {
                if banned_nodes.contains(&edge.to) || banned_edges.contains(&(node, edge.to)) {
                    continue;
                }
                if seen.insert(edge.to) {
                    prev.insert(edge.to, node);
                    if edge.to == to {
                        return Some(rebuild(&prev, from, to));
                    }
                    queue.push_back(edge.to);
                }
            }
        }
        None
    }
}

fn rebuild(prev: &HashMap<SourceId, SourceId>, from: SourceId, to: SourceId) -> Vec<SourceId> {
    let mut path = vec![to];
    let mut cursor = to;
    while cursor != from {
        cursor = prev[&cursor];
        path.push(cursor);
    }
    path.reverse();
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> SourceId {
        SourceId(i)
    }

    /// Diamond: 1 - 2 - 4, 1 - 3 - 4, plus a long tail 4 - 5.
    fn diamond() -> SourceGraph {
        let mut g = SourceGraph::default();
        g.add_edge(s(1), s(2), RelType::Fact);
        g.add_edge(s(2), s(4), RelType::Fact);
        g.add_edge(s(1), s(3), RelType::Fact);
        g.add_edge(s(3), s(4), RelType::Similarity);
        g.add_edge(s(4), s(5), RelType::Fact);
        g
    }

    #[test]
    fn bfs_shortest_path() {
        let g = diamond();
        let p = g.shortest_path(s(1), s(5)).unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(p[0], s(1));
        assert_eq!(p[3], s(5));
        assert_eq!(g.shortest_path(s(1), s(1)).unwrap(), vec![s(1)]);
        assert!(g.shortest_path(s(1), s(99)).is_none());
    }

    #[test]
    fn graph_counts_and_duplicate_edges() {
        let mut g = diamond();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 5);
        // adding the same edge twice is idempotent
        g.add_edge(s(1), s(2), RelType::Fact);
        assert_eq!(g.edge_count(), 5);
        // a parallel mapping of a different type is a distinct edge
        g.add_edge(s(1), s(2), RelType::Similarity);
        assert_eq!(g.edge_count(), 6);
    }

    #[test]
    fn quality_weighting_prefers_fact_edges() {
        let g = diamond();
        // hops: both 1-2-4 and 1-3-4 are length 2
        let (path, cost) = g.best_path(s(1), s(4), WeightScheme::Quality).unwrap();
        assert_eq!(path, vec![s(1), s(2), s(4)], "avoids the similarity edge");
        assert_eq!(cost, 2.0);
        let (_, hop_cost) = g.best_path(s(1), s(4), WeightScheme::Hops).unwrap();
        assert_eq!(hop_cost, 2.0);
        // longer fact chain beats shorter similarity chain when cheaper
        let mut g = SourceGraph::default();
        g.add_edge(s(1), s(2), RelType::Composed); // direct but weight 2.5
        g.add_edge(s(1), s(3), RelType::Fact);
        g.add_edge(s(3), s(2), RelType::Fact);
        let (path, _) = g.best_path(s(1), s(2), WeightScheme::Hops).unwrap();
        assert_eq!(path, vec![s(1), s(2)]);
        let (path, cost) = g.best_path(s(1), s(2), WeightScheme::Quality).unwrap();
        assert_eq!(cost, 2.0);
        assert_eq!(path, vec![s(1), s(3), s(2)]);
    }

    #[test]
    fn avoiding_constrained_path() {
        let g = diamond();
        // without constraints, two paths 1->4 exist; banning node 2 forces
        // the 1-3-4 route
        let p = g.shortest_path_avoiding(s(1), s(4), &[s(2)].into()).unwrap();
        assert_eq!(p, vec![s(1), s(3), s(4)]);
        // banning both middle nodes disconnects the pair
        assert!(g
            .shortest_path_avoiding(s(1), s(4), &[s(2), s(3)].into())
            .is_none());
        // banning an endpoint yields no path
        assert!(g.shortest_path_avoiding(s(1), s(4), &[s(4)].into()).is_none());
        // empty ban set equals plain BFS
        assert_eq!(
            g.shortest_path_avoiding(s(1), s(5), &BTreeSet::new()),
            g.shortest_path(s(1), s(5))
        );
    }

    #[test]
    fn via_constrained_path() {
        let g = diamond();
        let p = g.path_via(s(1), s(3), s(5)).unwrap();
        assert_eq!(p, vec![s(1), s(3), s(4), s(5)]);
        assert!(g.path_via(s(1), s(99), s(5)).is_none());
    }

    #[test]
    fn k_shortest_paths_enumerates_alternatives() {
        let g = diamond();
        let paths = g.k_shortest_paths(s(1), s(4), 3);
        assert_eq!(paths.len(), 2, "diamond has exactly two loop-free paths");
        assert_eq!(paths[0].len(), 3);
        assert_eq!(paths[1].len(), 3);
        assert_ne!(paths[0], paths[1]);
        for p in &paths {
            // loop-free
            let set: BTreeSet<_> = p.iter().collect();
            assert_eq!(set.len(), p.len());
        }
        // unreachable target
        assert!(g.k_shortest_paths(s(1), s(99), 3).is_empty());
        // k=1 returns just the shortest
        assert_eq!(g.k_shortest_paths(s(1), s(5), 1).len(), 1);
    }

    #[test]
    fn from_store_skips_structural_relationships() {
        use gam::model::{SourceContent, SourceStructure};
        let mut store = GamStore::in_memory().unwrap();
        let a = store
            .create_source("A", SourceContent::Gene, SourceStructure::Network, None)
            .unwrap()
            .id;
        let b = store
            .create_source("B", SourceContent::Gene, SourceStructure::Flat, None)
            .unwrap()
            .id;
        let c = store
            .create_source("C", SourceContent::Other, SourceStructure::Flat, None)
            .unwrap()
            .id;
        store.create_source_rel(a, b, RelType::Fact, None).unwrap();
        store.create_source_rel(a, a, RelType::IsA, None).unwrap();
        store
            .create_source_rel(a, c, RelType::Contains, None)
            .unwrap();
        let g = SourceGraph::from_store(&store).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 1, "IS_A and Contains are not traversal edges");
        assert!(g.shortest_path(a, b).is_some());
        assert!(g.shortest_path(a, c).is_none());
    }
}
