//! Saved mapping paths.
//!
//! Paper §5.1: "GenMapper also allows the user to manually build and save
//! a path customized for specific analysis requirements." Saved paths are
//! validated against the current source graph when stored, so a stale path
//! (a mapping was dropped) is rejected rather than silently failing later.

use crate::graph::SourceGraph;
use gam::{GamError, GamResult, SourceId};
use std::collections::BTreeMap;

/// A registry of named mapping paths.
#[derive(Debug, Clone, Default)]
pub struct SavedPaths {
    paths: BTreeMap<String, Vec<SourceId>>,
}

impl SavedPaths {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Save a path under a name, validating every hop against the graph.
    /// Replaces any previous path of the same name.
    pub fn save(
        &mut self,
        name: &str,
        path: Vec<SourceId>,
        graph: &SourceGraph,
    ) -> GamResult<()> {
        if name.is_empty() {
            return Err(GamError::Invalid("path name is empty".into()));
        }
        validate(&path, graph)?;
        self.paths.insert(name.to_owned(), path);
        Ok(())
    }

    /// Fetch a saved path.
    pub fn get(&self, name: &str) -> Option<&[SourceId]> {
        self.paths.get(name).map(Vec::as_slice)
    }

    /// Remove a saved path; true if it existed.
    pub fn remove(&mut self, name: &str) -> bool {
        self.paths.remove(name).is_some()
    }

    /// All saved names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.paths.keys().map(String::as_str).collect()
    }

    /// Re-validate all saved paths against a (possibly changed) graph,
    /// dropping the ones that no longer resolve. Returns the dropped
    /// names.
    pub fn revalidate(&mut self, graph: &SourceGraph) -> Vec<String> {
        let stale: Vec<String> = self
            .paths
            .iter()
            .filter(|(_, p)| validate(p, graph).is_err())
            .map(|(n, _)| n.clone())
            .collect();
        for name in &stale {
            self.paths.remove(name);
        }
        stale
    }
}

/// A path is valid if it has ≥ 2 sources, no repeated node, and every
/// consecutive pair is connected by a traversable mapping.
fn validate(path: &[SourceId], graph: &SourceGraph) -> GamResult<()> {
    if path.len() < 2 {
        return Err(GamError::Invalid("a mapping path needs at least two sources".into()));
    }
    for (i, node) in path.iter().enumerate() {
        if path[..i].contains(node) {
            return Err(GamError::Invalid(format!("path repeats source {node}")));
        }
    }
    for window in path.windows(2) {
        if !graph.neighbours(window[0]).iter().any(|e| e.to == window[1]) {
            return Err(GamError::Invalid(format!(
                "no mapping between {} and {}",
                window[0], window[1]
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam::model::RelType;

    fn s(i: u32) -> SourceId {
        SourceId(i)
    }

    fn graph() -> SourceGraph {
        let mut g = SourceGraph::default();
        g.add_edge(s(1), s(2), RelType::Fact);
        g.add_edge(s(2), s(3), RelType::Fact);
        g
    }

    #[test]
    fn save_get_remove() {
        let g = graph();
        let mut saved = SavedPaths::new();
        saved.save("affy-to-go", vec![s(1), s(2), s(3)], &g).unwrap();
        assert_eq!(saved.get("affy-to-go").unwrap(), &[s(1), s(2), s(3)]);
        assert_eq!(saved.names(), vec!["affy-to-go"]);
        assert!(saved.remove("affy-to-go"));
        assert!(!saved.remove("affy-to-go"));
        assert!(saved.get("affy-to-go").is_none());
    }

    #[test]
    fn validation_rules() {
        let g = graph();
        let mut saved = SavedPaths::new();
        // too short
        assert!(saved.save("x", vec![s(1)], &g).is_err());
        // disconnected hop
        assert!(saved.save("x", vec![s(1), s(3)], &g).is_err());
        // repeated node
        assert!(saved.save("x", vec![s(1), s(2), s(1)], &g).is_err());
        // empty name
        assert!(saved.save("", vec![s(1), s(2)], &g).is_err());
        assert!(saved.names().is_empty());
    }

    #[test]
    fn revalidation_drops_stale_paths() {
        let g = graph();
        let mut saved = SavedPaths::new();
        saved.save("ok", vec![s(1), s(2)], &g).unwrap();
        saved.save("long", vec![s(1), s(2), s(3)], &g).unwrap();
        // new graph lost the 2-3 mapping
        let mut g2 = SourceGraph::default();
        g2.add_edge(s(1), s(2), RelType::Fact);
        let dropped = saved.revalidate(&g2);
        assert_eq!(dropped, vec!["long".to_owned()]);
        assert_eq!(saved.names(), vec!["ok"]);
    }
}
