//! `eav` — the uniform staging format between `Parse` and `Import`.
//!
//! GenMapper integrates a new source in two steps (paper §4.1): a
//! source-specific **Parse** step whose output is "uniformly stored in a
//! simple EAV format" (paper Table 1 shows the rows for LocusLink locus
//! 353), and a generic **Import** step that transforms EAV into GAM.
//!
//! This crate defines that intermediate representation:
//!
//! * [`EavRecord`] — one staged fact: an object definition, an annotation
//!   (entity → target source → accession, the Table 1 quadruple), or an
//!   intra-source `IS_A` edge for taxonomy sources,
//! * [`EavBatch`] — everything parsed from one source dump, with the
//!   source's metadata (name, release for audit, content/structure
//!   classification, partitions),
//! * a line-oriented [staging file format](staging) so parse output can be
//!   persisted and inspected, mirroring GenMapper's staging tables.

pub mod batch;
pub mod record;
pub mod staging;

pub use batch::{EavBatch, SourceMeta};
pub use record::EavRecord;
