//! Batches of parse output with source metadata.

use crate::record::EavRecord;
use gam::model::{SourceContent, SourceStructure};

/// Metadata of the source a batch was parsed from. The `release` tag is
/// the audit information used for duplicate elimination at the source level
/// (paper §4.1).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SourceMeta {
    /// Source name, e.g. `LocusLink`.
    pub name: String,
    /// Release/version tag of the parsed dump, e.g. `2003-10`.
    pub release: String,
    /// Content classification.
    pub content: SourceContent,
    /// Structure classification (`Network` for taxonomy sources).
    pub structure: SourceStructure,
    /// Names of sub-divisions this source `Contains` (e.g. GO's
    /// `BiologicalProcess`, `MolecularFunction`, `CellularComponent`).
    pub partitions: Vec<String>,
}

impl SourceMeta {
    /// A flat gene source with no partitions.
    pub fn flat_gene(name: impl Into<String>, release: impl Into<String>) -> Self {
        SourceMeta {
            name: name.into(),
            release: release.into(),
            content: SourceContent::Gene,
            structure: SourceStructure::Flat,
            partitions: Vec::new(),
        }
    }

    /// A network (taxonomy) source.
    pub fn network(
        name: impl Into<String>,
        release: impl Into<String>,
        content: SourceContent,
    ) -> Self {
        SourceMeta {
            name: name.into(),
            release: release.into(),
            content,
            structure: SourceStructure::Network,
            partitions: Vec::new(),
        }
    }
}

/// Everything parsed from one source dump.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EavBatch {
    pub meta: SourceMeta,
    pub records: Vec<EavRecord>,
}

impl EavBatch {
    /// An empty batch for a source.
    pub fn new(meta: SourceMeta) -> Self {
        EavBatch {
            meta,
            records: Vec::new(),
        }
    }

    /// Append a record.
    pub fn push(&mut self, record: EavRecord) {
        self.records.push(record);
    }

    /// Normalize all records and drop invalid ones; returns how many were
    /// dropped (malformed lines from dirty flat files).
    pub fn sanitize(&mut self) -> usize {
        for r in &mut self.records {
            r.normalize();
        }
        let before = self.records.len();
        self.records.retain(EavRecord::is_valid);
        before - self.records.len()
    }

    /// True if [`sanitize`](Self::sanitize) would be a no-op: every record
    /// is already normalized and valid. The importer uses this to avoid
    /// cloning clean batches.
    pub fn is_clean(&self) -> bool {
        self.records.iter().all(|r| r.is_normalized() && r.is_valid())
    }

    /// Count records by kind: (objects, annotations, is_a edges).
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut objects = 0;
        let mut annotations = 0;
        let mut isa = 0;
        for r in &self.records {
            match r {
                EavRecord::Object { .. } => objects += 1,
                EavRecord::Annotation { .. } => annotations += 1,
                EavRecord::IsA { .. } => isa += 1,
            }
        }
        (objects, annotations, isa)
    }

    /// Distinct target source names referenced by annotation records,
    /// sorted. These are the sources `Import` must relate against.
    pub fn referenced_targets(&self) -> Vec<&str> {
        let mut targets: Vec<&str> = self
            .records
            .iter()
            .filter_map(|r| match r {
                EavRecord::Annotation { target, .. } => Some(target.as_str()),
                _ => None,
            })
            .collect();
        targets.sort_unstable();
        targets.dedup();
        targets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch() -> EavBatch {
        let mut b = EavBatch::new(SourceMeta::flat_gene("LocusLink", "r1"));
        b.push(EavRecord::named_object("353", "APRT"));
        b.push(EavRecord::annotation("353", "Hugo", "APRT"));
        b.push(EavRecord::annotation("353", "GO", "GO:0009116"));
        b.push(EavRecord::annotation("353", "GO", "GO:0006139"));
        b
    }

    #[test]
    fn counts_and_targets() {
        let b = batch();
        assert_eq!(b.counts(), (1, 3, 0));
        assert_eq!(b.referenced_targets(), vec!["GO", "Hugo"]);
    }

    #[test]
    fn sanitize_drops_invalid() {
        let mut b = batch();
        b.push(EavRecord::object("  ")); // trims to empty -> invalid
        b.push(EavRecord::annotation("", "GO", "x"));
        b.push(EavRecord::is_a(" t1 ", "t1")); // self loop after trim
        let dropped = b.sanitize();
        assert_eq!(dropped, 3);
        assert_eq!(b.records.len(), 4);
    }

    #[test]
    fn clean_batches_are_detected() {
        let mut b = batch();
        assert!(b.is_clean());
        b.push(EavRecord::object(" padded "));
        assert!(!b.is_clean());
        b.sanitize();
        assert!(b.is_clean());
        b.push(EavRecord::is_a("x", "x")); // normalized but invalid
        assert!(!b.is_clean());
    }

    #[test]
    fn meta_constructors() {
        let m = SourceMeta::flat_gene("Unigene", "b171");
        assert_eq!(m.structure, SourceStructure::Flat);
        assert_eq!(m.content, SourceContent::Gene);
        let m = SourceMeta::network("GO", "2003-12", SourceContent::Other);
        assert_eq!(m.structure, SourceStructure::Network);
    }
}
