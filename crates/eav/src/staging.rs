//! Line-oriented staging files for parse output.
//!
//! GenMapper persists parse output in staging tables before the generic
//! Import runs; here the equivalent artifact is a tab-separated text file:
//!
//! ```text
//! #source LocusLink
//! #release 2003-10
//! #content Gene
//! #structure Flat
//! #partition <name>          (zero or more)
//! O <accession> <text> <number>
//! A <entity> <target> <accession> <text> <evidence>
//! I <child> <parent>
//! ```
//!
//! Empty optional fields are written as `-`. Tabs inside values are not
//! supported (they do not occur in accessions or curated names).

use crate::batch::{EavBatch, SourceMeta};
use crate::record::EavRecord;
use gam::model::{SourceContent, SourceStructure};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read};

/// Errors from reading a staging file.
#[derive(Debug)]
pub enum StagingError {
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number and reason.
    Malformed { line: usize, reason: String },
    /// The header block was incomplete.
    MissingHeader(&'static str),
}

impl std::fmt::Display for StagingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StagingError::Io(e) => write!(f, "i/o error: {e}"),
            StagingError::Malformed { line, reason } => {
                write!(f, "malformed staging line {line}: {reason}")
            }
            StagingError::MissingHeader(what) => write!(f, "missing staging header: {what}"),
        }
    }
}

impl std::error::Error for StagingError {}

impl From<std::io::Error> for StagingError {
    fn from(e: std::io::Error) -> Self {
        StagingError::Io(e)
    }
}

fn opt(s: &Option<String>) -> &str {
    s.as_deref().unwrap_or("-")
}

fn parse_opt(s: &str) -> Option<String> {
    if s == "-" || s.is_empty() {
        None
    } else {
        Some(s.to_owned())
    }
}

/// Serialize a batch to the staging text format.
pub fn write_staging(batch: &EavBatch) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "#source\t{}", batch.meta.name);
    let _ = writeln!(out, "#release\t{}", batch.meta.release);
    let _ = writeln!(out, "#content\t{}", batch.meta.content);
    let _ = writeln!(out, "#structure\t{}", batch.meta.structure);
    for p in &batch.meta.partitions {
        let _ = writeln!(out, "#partition\t{p}");
    }
    for r in &batch.records {
        match r {
            EavRecord::Object {
                accession,
                text,
                number,
            } => {
                let num = number.map(|n| n.to_string());
                let _ = writeln!(out, "O\t{accession}\t{}\t{}", opt(text), opt(&num));
            }
            EavRecord::Annotation {
                entity,
                target,
                accession,
                text,
                evidence,
            } => {
                let ev = evidence.map(|e| e.to_string());
                let _ = writeln!(
                    out,
                    "A\t{entity}\t{target}\t{accession}\t{}\t{}",
                    opt(text),
                    opt(&ev)
                );
            }
            EavRecord::IsA { child, parent } => {
                let _ = writeln!(out, "I\t{child}\t{parent}");
            }
        }
    }
    out
}

/// Parse a staging file back into a batch.
pub fn read_staging<R: Read>(reader: R) -> Result<EavBatch, StagingError> {
    let mut name = None;
    let mut release = None;
    let mut content = None;
    let mut structure = None;
    let mut partitions = Vec::new();
    let mut records = Vec::new();

    for (lineno, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let lineno = lineno + 1;
        if line.is_empty() {
            continue;
        }
        let malformed = |reason: &str| StagingError::Malformed {
            line: lineno,
            reason: reason.to_owned(),
        };
        if let Some(header) = line.strip_prefix('#') {
            let (key, value) = header
                .split_once('\t')
                .ok_or_else(|| malformed("header without value"))?;
            match key {
                "source" => name = Some(value.to_owned()),
                "release" => release = Some(value.to_owned()),
                "content" => {
                    content = Some(match value {
                        "Gene" => SourceContent::Gene,
                        "Protein" => SourceContent::Protein,
                        "Other" => SourceContent::Other,
                        _ => return Err(malformed("unknown content class")),
                    })
                }
                "structure" => {
                    structure = Some(match value {
                        "Flat" => SourceStructure::Flat,
                        "Network" => SourceStructure::Network,
                        _ => return Err(malformed("unknown structure class")),
                    })
                }
                "partition" => partitions.push(value.to_owned()),
                _ => return Err(malformed("unknown header key")),
            }
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        match fields[0] {
            "O" => {
                if fields.len() != 4 {
                    return Err(malformed("O record needs 4 fields"));
                }
                let number = match parse_opt(fields[3]) {
                    None => None,
                    Some(s) => Some(
                        s.parse::<f64>()
                            .map_err(|_| malformed("bad number field"))?,
                    ),
                };
                records.push(EavRecord::Object {
                    accession: fields[1].to_owned(),
                    text: parse_opt(fields[2]),
                    number,
                });
            }
            "A" => {
                if fields.len() != 6 {
                    return Err(malformed("A record needs 6 fields"));
                }
                let evidence = match parse_opt(fields[5]) {
                    None => None,
                    Some(s) => Some(
                        s.parse::<f64>()
                            .map_err(|_| malformed("bad evidence field"))?,
                    ),
                };
                records.push(EavRecord::Annotation {
                    entity: fields[1].to_owned(),
                    target: fields[2].to_owned(),
                    accession: fields[3].to_owned(),
                    text: parse_opt(fields[4]),
                    evidence,
                });
            }
            "I" => {
                if fields.len() != 3 {
                    return Err(malformed("I record needs 3 fields"));
                }
                records.push(EavRecord::IsA {
                    child: fields[1].to_owned(),
                    parent: fields[2].to_owned(),
                });
            }
            _ => return Err(malformed("unknown record tag")),
        }
    }

    Ok(EavBatch {
        meta: SourceMeta {
            name: name.ok_or(StagingError::MissingHeader("source"))?,
            release: release.ok_or(StagingError::MissingHeader("release"))?,
            content: content.ok_or(StagingError::MissingHeader("content"))?,
            structure: structure.ok_or(StagingError::MissingHeader("structure"))?,
            partitions,
        },
        records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch() -> EavBatch {
        let mut meta = SourceMeta::network("GO", "2003-12", SourceContent::Other);
        meta.partitions = vec!["BiologicalProcess".into(), "MolecularFunction".into()];
        let mut b = EavBatch::new(meta);
        b.push(EavRecord::named_object("GO:0009116", "nucleoside metabolism"));
        b.push(EavRecord::Object {
            accession: "GO:0008150".into(),
            text: None,
            number: Some(1.5),
        });
        b.push(EavRecord::is_a("GO:0009116", "GO:0008150"));
        b.push(EavRecord::similarity("GO:0009116", "Enzyme", "2.4.2.7", 0.75));
        b
    }

    #[test]
    fn roundtrip() {
        let b = batch();
        let text = write_staging(&b);
        let back = read_staging(text.as_bytes()).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn table1_staging_shape() {
        let mut b = EavBatch::new(SourceMeta::flat_gene("LocusLink", "2003-10"));
        b.push(EavRecord::annotation_with_text(
            "353",
            "Hugo",
            "APRT",
            "adenine phosphoribosyltransferase",
        ));
        let text = write_staging(&b);
        assert!(text.contains("A\t353\tHugo\tAPRT\tadenine phosphoribosyltransferase\t-"));
    }

    #[test]
    fn malformed_lines_are_located() {
        let text = "#source\tX\n#release\tr\n#content\tGene\n#structure\tFlat\nO\tonly-two\n";
        let err = read_staging(text.as_bytes()).unwrap_err();
        match err {
            StagingError::Malformed { line, .. } => assert_eq!(line, 5),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn missing_headers_detected() {
        let text = "#source\tX\nO\ta\t-\t-\n";
        let err = read_staging(text.as_bytes()).unwrap_err();
        assert!(matches!(err, StagingError::MissingHeader("release")));
    }

    #[test]
    fn bad_numbers_and_tags_rejected() {
        let header = "#source\tX\n#release\tr\n#content\tGene\n#structure\tFlat\n";
        let err = read_staging(format!("{header}O\ta\t-\tNaNoNum\n").as_bytes());
        assert!(err.is_err());
        let err = read_staging(format!("{header}Z\tx\n").as_bytes());
        assert!(err.is_err());
        let err = read_staging(format!("{header}A\te\tt\ta\t-\tbadev\n").as_bytes());
        assert!(err.is_err());
        let err = read_staging("#content\tMineral\n".as_bytes());
        assert!(err.is_err());
    }

    #[test]
    fn empty_lines_and_optional_fields() {
        let text = "#source\tX\n#release\tr\n#content\tOther\n#structure\tNetwork\n\nO\tacc\t-\t-\n";
        let b = read_staging(text.as_bytes()).unwrap();
        assert_eq!(b.records, vec![EavRecord::object("acc")]);
    }
}
