//! Staged EAV records.

use std::fmt;

/// One record of parse output.
///
/// The `Annotation` variant is the paper's Table 1 row: for LocusLink locus
/// 353 the parser emits `(353, Hugo, APRT, "adenine
/// phosphoribosyltransferase")`, `(353, Location, 16q24, -)`,
/// `(353, Enzyme, 2.4.2.7, -)`, `(353, GO, GO:0009116, "nucleoside
/// metabolism")`, and so on.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum EavRecord {
    /// Declares an object of the parsed source itself.
    Object {
        /// Source-specific identifier.
        accession: String,
        /// Optional textual component (name).
        text: Option<String>,
        /// Optional numeric representation.
        number: Option<f64>,
    },
    /// An annotation: the parsed entity cross-references an object of a
    /// target source.
    Annotation {
        /// Accession of the annotated object in the parsed source.
        entity: String,
        /// Name of the target source providing the annotation (may be a
        /// pseudo-source such as `Location`).
        target: String,
        /// Accession of the annotating object in the target source.
        accession: String,
        /// Optional textual component of the annotating object.
        text: Option<String>,
        /// Optional evidence in `[0, 1]`; present for computed
        /// (Similarity) relationships, absent for facts.
        evidence: Option<f64>,
    },
    /// An intra-source `IS_A` edge (taxonomy sources only): `child IS_A
    /// parent`.
    IsA { child: String, parent: String },
}

impl EavRecord {
    /// Convenience constructor for an object record.
    pub fn object(accession: impl Into<String>) -> Self {
        EavRecord::Object {
            accession: accession.into(),
            text: None,
            number: None,
        }
    }

    /// Convenience constructor for a named object record.
    pub fn named_object(accession: impl Into<String>, text: impl Into<String>) -> Self {
        EavRecord::Object {
            accession: accession.into(),
            text: Some(text.into()),
            number: None,
        }
    }

    /// Convenience constructor for a fact annotation.
    pub fn annotation(
        entity: impl Into<String>,
        target: impl Into<String>,
        accession: impl Into<String>,
    ) -> Self {
        EavRecord::Annotation {
            entity: entity.into(),
            target: target.into(),
            accession: accession.into(),
            text: None,
            evidence: None,
        }
    }

    /// Convenience constructor for an annotation with a text component.
    pub fn annotation_with_text(
        entity: impl Into<String>,
        target: impl Into<String>,
        accession: impl Into<String>,
        text: impl Into<String>,
    ) -> Self {
        EavRecord::Annotation {
            entity: entity.into(),
            target: target.into(),
            accession: accession.into(),
            text: Some(text.into()),
            evidence: None,
        }
    }

    /// Convenience constructor for a similarity annotation.
    pub fn similarity(
        entity: impl Into<String>,
        target: impl Into<String>,
        accession: impl Into<String>,
        evidence: f64,
    ) -> Self {
        EavRecord::Annotation {
            entity: entity.into(),
            target: target.into(),
            accession: accession.into(),
            text: None,
            evidence: Some(evidence),
        }
    }

    /// Convenience constructor for an `IS_A` edge.
    pub fn is_a(child: impl Into<String>, parent: impl Into<String>) -> Self {
        EavRecord::IsA {
            child: child.into(),
            parent: parent.into(),
        }
    }

    /// Normalize whitespace in all string fields (parse output from flat
    /// files commonly carries stray padding).
    pub fn normalize(&mut self) {
        fn trim(s: &mut String) {
            let t = s.trim();
            if t.len() != s.len() {
                *s = t.to_owned();
            }
        }
        fn trim_opt(s: &mut Option<String>) {
            if let Some(inner) = s {
                let t = inner.trim();
                if t.is_empty() {
                    *s = None;
                } else if t.len() != inner.len() {
                    *inner = t.to_owned();
                }
            }
        }
        match self {
            EavRecord::Object { accession, text, .. } => {
                trim(accession);
                trim_opt(text);
            }
            EavRecord::Annotation {
                entity,
                target,
                accession,
                text,
                ..
            } => {
                trim(entity);
                trim(target);
                trim(accession);
                trim_opt(text);
            }
            EavRecord::IsA { child, parent } => {
                trim(child);
                trim(parent);
            }
        }
    }

    /// True if [`normalize`](Self::normalize) would leave the record
    /// unchanged: no stray padding, no blank-but-present text. Lets the
    /// importer skip cloning batches that are already clean.
    pub fn is_normalized(&self) -> bool {
        fn clean(s: &str) -> bool {
            s.trim().len() == s.len()
        }
        fn clean_opt(s: &Option<String>) -> bool {
            s.as_deref().is_none_or(|t| !t.trim().is_empty() && clean(t))
        }
        match self {
            EavRecord::Object { accession, text, .. } => clean(accession) && clean_opt(text),
            EavRecord::Annotation {
                entity,
                target,
                accession,
                text,
                ..
            } => clean(entity) && clean(target) && clean(accession) && clean_opt(text),
            EavRecord::IsA { child, parent } => clean(child) && clean(parent),
        }
    }

    /// True if the record is structurally valid: non-empty keys, evidence
    /// (when present) within `[0, 1]`.
    pub fn is_valid(&self) -> bool {
        match self {
            EavRecord::Object { accession, .. } => !accession.is_empty(),
            EavRecord::Annotation {
                entity,
                target,
                accession,
                evidence,
                ..
            } => {
                !entity.is_empty()
                    && !target.is_empty()
                    && !accession.is_empty()
                    && evidence.is_none_or(|e| (0.0..=1.0).contains(&e) && !e.is_nan())
            }
            EavRecord::IsA { child, parent } => {
                !child.is_empty() && !parent.is_empty() && child != parent
            }
        }
    }
}

impl fmt::Display for EavRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EavRecord::Object { accession, text, .. } => {
                write!(f, "O {accession}")?;
                if let Some(t) = text {
                    write!(f, " ({t})")?;
                }
                Ok(())
            }
            EavRecord::Annotation {
                entity,
                target,
                accession,
                ..
            } => write!(f, "A {entity} -[{target}]-> {accession}"),
            EavRecord::IsA { child, parent } => write!(f, "I {child} IS_A {parent}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rows_for_locus_353() {
        // The paper's Table 1 quadruples, as a parser would emit them.
        let rows = [EavRecord::annotation_with_text("353", "Hugo", "APRT", "adenine phosphoribosyltransferase"),
            EavRecord::annotation("353", "Location", "16q24"),
            EavRecord::annotation("353", "Enzyme", "2.4.2.7"),
            EavRecord::annotation_with_text("353", "GO", "GO:0009116", "nucleoside metabolism")];
        assert!(rows.iter().all(EavRecord::is_valid));
        assert_eq!(rows[0].to_string(), "A 353 -[Hugo]-> APRT");
    }

    #[test]
    fn normalization() {
        let mut r = EavRecord::Annotation {
            entity: " 353 ".into(),
            target: "GO ".into(),
            accession: " GO:1".into(),
            text: Some("   ".into()),
            evidence: None,
        };
        r.normalize();
        match r {
            EavRecord::Annotation {
                entity,
                target,
                accession,
                text,
                ..
            } => {
                assert_eq!(entity, "353");
                assert_eq!(target, "GO");
                assert_eq!(accession, "GO:1");
                assert_eq!(text, None, "blank text collapses to None");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn validity_rules() {
        assert!(!EavRecord::object("").is_valid());
        assert!(EavRecord::object("353").is_valid());
        assert!(!EavRecord::annotation("", "GO", "x").is_valid());
        assert!(!EavRecord::annotation("353", "", "x").is_valid());
        assert!(!EavRecord::annotation("353", "GO", "").is_valid());
        assert!(!EavRecord::similarity("a", "b", "c", 1.2).is_valid());
        assert!(!EavRecord::similarity("a", "b", "c", f64::NAN).is_valid());
        assert!(EavRecord::similarity("a", "b", "c", 0.7).is_valid());
        assert!(!EavRecord::is_a("x", "x").is_valid(), "self IS_A rejected");
        assert!(EavRecord::is_a("x", "y").is_valid());
    }

    #[test]
    fn is_normalized_agrees_with_normalize() {
        let dirty = [
            EavRecord::object(" 353"),
            EavRecord::named_object("353", "  "),
            EavRecord::annotation("353", "GO ", "x"),
            EavRecord::is_a("a ", "b"),
        ];
        for r in dirty {
            assert!(!r.is_normalized(), "{r} should read as dirty");
            let mut n = r.clone();
            n.normalize();
            assert!(n.is_normalized(), "{n} should be clean after normalize");
        }
        assert!(EavRecord::named_object("353", "APRT").is_normalized());
    }

    #[test]
    fn display_forms() {
        assert_eq!(EavRecord::named_object("353", "APRT").to_string(), "O 353 (APRT)");
        assert_eq!(EavRecord::is_a("a", "b").to_string(), "I a IS_A b");
    }
}
