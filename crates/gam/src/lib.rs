//! `gam` — the Generic Annotation Model (GAM) of GenMapper.
//!
//! The GAM (Do & Rahm, EDBT 2004, §3 and Figure 4) is a generic,
//! EAV-descended relational model of four tables:
//!
//! | Table        | Contents |
//! |--------------|----------|
//! | `SOURCE`     | a predefined set of objects: a public collection of genes, an ontology, a database schema. Carries `content ∈ {Gene, Protein, Other}` and `structure ∈ {Flat, Network}` plus audit info (release). |
//! | `OBJECT`     | one row per object: source-specific `accession`, optional `text` (e.g. a name), optional `number`. |
//! | `SOURCE_REL` | relationships at source level ("mappings") with `type ∈ {Fact, Similarity, Contains, IsA, Composed, Subsumed}`. |
//! | `OBJECT_REL` | relationships at object level ("associations"), each belonging to a source-level mapping, with an optional `evidence` value. |
//!
//! This crate defines the typed model ([`model`]), the relational schemas
//! ([`schema`]), the [`Mapping`] currency exchanged by
//! the high-level operators, and [`GamStore`] — a typed
//! facade over a [`relstore::Database`] holding the four tables.

// Non-test code on the import/query path must propagate errors, never
// panic: one malformed dump line must not take down a whole import.
// genlint's no-panic rule enforces the same invariant where clippy is
// not run.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
pub mod error;
pub mod ids;
pub mod index;
pub mod mapping;
pub mod model;
pub mod schema;
pub mod snapshot;
pub mod store;

pub use error::{GamError, GamResult};
pub use ids::{ObjectId, ObjectRelId, SourceId, SourceRelId};
pub use index::{IndexStats, MappingIndex, MappingIndexBuilder};
pub use mapping::{Association, Mapping};
pub use model::{GamObject, RelType, Source, SourceContent, SourceRel, SourceStructure};
pub use snapshot::{GamRead, GamSnapshot};
pub use store::{GamCardinalities, GamStore};
