//! Relational schemas of the four GAM tables (paper Figure 4).

use crate::error::GamResult;
use relstore::schema::{Column, Schema};
use relstore::value::ValueType;

/// Table name constants.
pub mod tables {
    pub const SOURCE: &str = "source";
    pub const OBJECT: &str = "object";
    pub const SOURCE_REL: &str = "source_rel";
    pub const OBJECT_REL: &str = "object_rel";
}

/// `SOURCE(source_id, name, content, structure, release, imported_seq)`.
pub fn source_schema() -> GamResult<Schema> {
    let schema = Schema::builder(tables::SOURCE)
        .column(Column::new("source_id", ValueType::Int))
        .column(Column::new("name", ValueType::Text))
        .column(Column::new("content", ValueType::Int))
        .column(Column::new("structure", ValueType::Int))
        .column(Column::nullable("release", ValueType::Text))
        .column(Column::new("imported_seq", ValueType::Int))
        .primary_key(&["source_id"])
        .unique_index("by_name", &["name"])
        .build()?;
    Ok(schema)
}

/// `OBJECT(object_id, source_id, accession, text, number)`.
pub fn object_schema() -> GamResult<Schema> {
    let schema = Schema::builder(tables::OBJECT)
        .column(Column::new("object_id", ValueType::Int))
        .column(Column::new("source_id", ValueType::Int))
        .column(Column::new("accession", ValueType::Text))
        .column(Column::nullable("text", ValueType::Text))
        .column(Column::nullable("number", ValueType::Float))
        .primary_key(&["object_id"])
        .unique_index("by_accession", &["source_id", "accession"])
        .build()?;
    Ok(schema)
}

/// `SOURCE_REL(source_rel_id, source1_id, source2_id, type, derivation)`.
pub fn source_rel_schema() -> GamResult<Schema> {
    let schema = Schema::builder(tables::SOURCE_REL)
        .column(Column::new("source_rel_id", ValueType::Int))
        .column(Column::new("source1_id", ValueType::Int))
        .column(Column::new("source2_id", ValueType::Int))
        .column(Column::new("type", ValueType::Int))
        .column(Column::nullable("derivation", ValueType::Text))
        .primary_key(&["source_rel_id"])
        .index("by_pair", &["source1_id", "source2_id"])
        .index("by_source2", &["source2_id"])
        .build()?;
    Ok(schema)
}

/// `OBJECT_REL(object_rel_id, source_rel_id, object1_id, object2_id,
/// evidence)`.
pub fn object_rel_schema() -> GamResult<Schema> {
    let schema = Schema::builder(tables::OBJECT_REL)
        .column(Column::new("object_rel_id", ValueType::Int))
        .column(Column::new("source_rel_id", ValueType::Int))
        .column(Column::new("object1_id", ValueType::Int))
        .column(Column::new("object2_id", ValueType::Int))
        .column(Column::nullable("evidence", ValueType::Float))
        .primary_key(&["object_rel_id"])
        .unique_index("by_pair", &["source_rel_id", "object1_id", "object2_id"])
        .index("by_source_rel", &["source_rel_id"])
        .index("by_object1", &["object1_id"])
        .index("by_object2", &["object2_id"])
        .build()?;
    Ok(schema)
}

/// All four schemas, in creation order.
pub fn all_schemas() -> GamResult<Vec<Schema>> {
    Ok(vec![
        source_schema()?,
        object_schema()?,
        source_rel_schema()?,
        object_rel_schema()?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schemas_build_and_have_expected_shape() {
        let s = source_schema().unwrap();
        assert_eq!(s.arity(), 6);
        assert!(s.index("by_name").unwrap().unique);

        let o = object_schema().unwrap();
        assert_eq!(o.arity(), 5);
        // the dedup index pins (source, accession)
        let by_acc = o.index("by_accession").unwrap();
        assert!(by_acc.unique);
        assert_eq!(by_acc.columns.len(), 2);

        let sr = source_rel_schema().unwrap();
        assert_eq!(sr.column_index("type").unwrap(), 3);

        let or = object_rel_schema().unwrap();
        assert!(or.index("by_pair").unwrap().unique);
        // the per-mapping access path used by load/count/delete
        let by_rel = or.index("by_source_rel").unwrap();
        assert!(!by_rel.unique);
        assert_eq!(by_rel.columns, vec![1]);
        assert_eq!(all_schemas().unwrap().len(), 4);
    }

    #[test]
    fn schemas_install_into_a_database() {
        let mut db = relstore::Database::in_memory();
        for schema in all_schemas().unwrap() {
            db.create_table(schema).unwrap();
        }
        assert_eq!(
            db.table_names(),
            vec!["object", "object_rel", "source", "source_rel"]
        );
    }
}
