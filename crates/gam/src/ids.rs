//! Strongly-typed identifiers for the four GAM tables.
//!
//! All ids are plain integers in the database; the newtypes prevent a
//! source id being passed where an object id is expected (the classic
//! failure mode of a generic schema where everything is an integer).

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $inner:ty) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
            serde::Serialize, serde::Deserialize,
        )]
        pub struct $name(pub $inner);

        impl $name {
            /// The raw integer value.
            pub fn raw(self) -> $inner {
                self.0
            }

            /// The value as stored in a relstore `Value::Int` cell.
            pub fn as_i64(self) -> i64 {
                self.0 as i64
            }

            /// Reconstruct from a stored integer.
            pub fn from_i64(v: i64) -> Self {
                $name(v as $inner)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of a row in `SOURCE`.
    SourceId,
    u32
);
id_type!(
    /// Identifier of a row in `OBJECT`.
    ObjectId,
    u64
);
id_type!(
    /// Identifier of a row in `SOURCE_REL` (a mapping).
    SourceRelId,
    u32
);
id_type!(
    /// Identifier of a row in `OBJECT_REL` (an association).
    ObjectRelId,
    u64
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_display() {
        let s = SourceId(7);
        assert_eq!(s.raw(), 7);
        assert_eq!(SourceId::from_i64(s.as_i64()), s);
        assert_eq!(s.to_string(), "SourceId(7)");
        let o = ObjectId(u64::from(u32::MAX) + 10);
        assert_eq!(ObjectId::from_i64(o.as_i64()), o);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::BTreeSet;
        let set: BTreeSet<ObjectId> = [ObjectId(3), ObjectId(1), ObjectId(2)].into();
        let v: Vec<_> = set.into_iter().collect();
        assert_eq!(v, vec![ObjectId(1), ObjectId(2), ObjectId(3)]);
    }
}
