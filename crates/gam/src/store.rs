//! [`GamStore`] — a typed facade over a [`relstore::Database`] holding the
//! four GAM tables.
//!
//! The store hands out application-level ids (`SourceId`, `ObjectId`, ...)
//! allocated from in-memory counters that are re-seeded from the table
//! contents on open, so ids remain stable across restarts.
//!
//! Write batching: single-row helpers (`create_object`, `add_association`)
//! run one transaction each, which is fine in memory; bulk loaders
//! (`add_objects_bulk`, `add_associations_bulk`) commit one transaction per
//! batch so durable imports do one WAL sync per source rather than per row.

use crate::error::{GamError, GamResult};
use crate::ids::{ObjectId, ObjectRelId, SourceId, SourceRelId};
use crate::index::{MappingIndex, MappingIndexBuilder};
use crate::mapping::{Association, Mapping};
use crate::model::{GamObject, RelType, Source, SourceContent, SourceRel, SourceStructure};
use crate::schema::{all_schemas, tables};
use relstore::row::Row;
use relstore::value::Value;
use relstore::{Database, Predicate};
use std::path::Path;

/// Typed store over the GAM tables.
pub struct GamStore {
    db: Database,
    next_source: u32,
    next_object: u64,
    next_source_rel: u32,
    next_object_rel: u64,
    import_seq: u64,
    /// Bumped by every mutating entry point; mapping caches key on it
    /// (enforced by genlint's cache-coherence rule).
    mutations: u64,
}

impl std::fmt::Debug for GamStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GamStore")
            .field("next_source", &self.next_source)
            .field("next_object", &self.next_object)
            .finish()
    }
}

impl GamStore {
    /// A fresh, volatile store.
    pub fn in_memory() -> GamResult<Self> {
        let mut db = Database::in_memory();
        for schema in all_schemas()? {
            db.create_table(schema)?;
        }
        Ok(Self::wrap(db))
    }

    /// Open (or create) a durable store in `dir`.
    pub fn open(dir: &Path) -> GamResult<Self> {
        Self::open_with_vfs(std::sync::Arc::new(relstore::vfs::RealVfs), dir)
    }

    /// [`open`](Self::open) against an explicit I/O backend. Crash tests
    /// pass a [`FaultVfs`](relstore::vfs::FaultVfs) to exercise recovery.
    pub fn open_with_vfs(vfs: std::sync::Arc<dyn relstore::vfs::Vfs>, dir: &Path) -> GamResult<Self> {
        let mut db = Database::open_with_vfs(vfs, dir)?;
        for schema in all_schemas()? {
            db.ensure_table(schema)?;
        }
        Ok(Self::wrap(db))
    }

    /// Open (or create) a durable store whose tables live in slotted heap
    /// pages behind a buffer pool — annotation sets larger than RAM stay
    /// queryable with resident memory bounded by `config.pool_pages`.
    pub fn open_paged(dir: &Path, config: relstore::PoolConfig) -> GamResult<Self> {
        Self::open_paged_with_vfs(std::sync::Arc::new(relstore::vfs::RealVfs), dir, config)
    }

    /// [`open_paged`](Self::open_paged) against an explicit I/O backend.
    pub fn open_paged_with_vfs(
        vfs: std::sync::Arc<dyn relstore::vfs::Vfs>,
        dir: &Path,
        config: relstore::PoolConfig,
    ) -> GamResult<Self> {
        let mut db = Database::open_paged_with_vfs(vfs, dir, config)?;
        for schema in all_schemas()? {
            db.ensure_table(schema)?;
        }
        Ok(Self::wrap(db))
    }

    /// What recovery found when this store was opened (`None` for
    /// in-memory stores).
    pub fn recovery_report(&self) -> Option<&relstore::RecoveryReport> {
        self.db.recovery_report()
    }

    /// Check referential integrity across the four GAM tables: every
    /// OBJECT belongs to an existing SOURCE, every SOURCE_REL connects two
    /// existing SOURCEs, and every OBJECT_REL references an existing
    /// SOURCE_REL and two existing OBJECTs. Returns the list of violations
    /// (empty when the store is consistent).
    ///
    /// Crash recovery must never break these invariants: transactions are
    /// atomic, and the importer orders its writes so every committed
    /// prefix is closed under the references above.
    pub fn verify_integrity(&self) -> GamResult<Vec<String>> {
        use std::collections::HashSet;
        let ids_of = |table: &str| -> GamResult<HashSet<i64>> {
            Ok(self
                .db
                .table(table)?
                .scan()
                .filter_map(|(_, r)| r.get(0).as_int())
                .collect())
        };
        let source_ids = ids_of(tables::SOURCE)?;
        let object_ids = ids_of(tables::OBJECT)?;
        let source_rel_ids = ids_of(tables::SOURCE_REL)?;
        let mut violations = Vec::new();
        for (_, row) in self.db.table(tables::OBJECT)?.scan() {
            let sid = row.get(1).as_int().unwrap_or(-1);
            if !source_ids.contains(&sid) {
                violations.push(format!(
                    "OBJECT {} references missing SOURCE {sid}",
                    row.get(0).as_int().unwrap_or(-1)
                ));
            }
        }
        for (_, row) in self.db.table(tables::SOURCE_REL)?.scan() {
            let id = row.get(0).as_int().unwrap_or(-1);
            for col in [1, 2] {
                let sid = row.get(col).as_int().unwrap_or(-1);
                if !source_ids.contains(&sid) {
                    violations.push(format!(
                        "SOURCE_REL {id} references missing SOURCE {sid}"
                    ));
                }
            }
        }
        for (_, row) in self.db.table(tables::OBJECT_REL)?.scan() {
            let id = row.get(0).as_int().unwrap_or(-1);
            let srel = row.get(1).as_int().unwrap_or(-1);
            if !source_rel_ids.contains(&srel) {
                violations.push(format!(
                    "OBJECT_REL {id} references missing SOURCE_REL {srel}"
                ));
            }
            for col in [2, 3] {
                let oid = row.get(col).as_int().unwrap_or(-1);
                if !object_ids.contains(&oid) {
                    violations.push(format!(
                        "OBJECT_REL {id} references missing OBJECT {oid}"
                    ));
                }
            }
        }
        Ok(violations)
    }

    fn wrap(db: Database) -> Self {
        let max_int = |table: &str, col: usize| -> i64 {
            db.table(table)
                .map(|t| {
                    t.scan()
                        .map(|(_, r)| r.get(col).as_int().unwrap_or(0))
                        .max()
                        .unwrap_or(0)
                })
                .unwrap_or(0)
        };
        let next_source = (max_int(tables::SOURCE, 0) + 1) as u32;
        let next_object = (max_int(tables::OBJECT, 0) + 1) as u64;
        let next_source_rel = (max_int(tables::SOURCE_REL, 0) + 1) as u32;
        let next_object_rel = (max_int(tables::OBJECT_REL, 0) + 1) as u64;
        let import_seq = db
            .table(tables::SOURCE)
            .map(|t| {
                t.scan()
                    .map(|(_, r)| r.get(5).as_int().unwrap_or(0) as u64)
                    .max()
                    .unwrap_or(0)
            })
            .unwrap_or(0);
        GamStore {
            db,
            next_source,
            next_object,
            next_source_rel,
            next_object_rel,
            import_seq,
            mutations: 0,
        }
    }

    /// How many mutating calls this store has served. Any cache derived
    /// from GAM content must key on this (together with its own inputs)
    /// and treat a changed count as an invalidation.
    pub fn mutation_count(&self) -> u64 {
        self.mutations
    }

    /// Record one mutating call. Every `pub fn (&mut self, ..)` entry
    /// point that can change GAM content calls this first; genlint's
    /// cache-coherence rule fails the build if a new mutator forgets.
    fn bump_mutations(&mut self) {
        self.mutations += 1;
    }

    /// Write a snapshot and truncate the WAL (no-op for in-memory stores).
    pub fn checkpoint(&mut self) -> GamResult<()> {
        Ok(self.db.checkpoint()?)
    }

    /// Access the underlying database (read paths and statistics).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The VFS this store's durable state goes through. Auxiliary files
    /// written next to the store (e.g. import staging) must use it so
    /// crash sweeps can fault-inject them too.
    pub fn vfs(&self) -> std::sync::Arc<dyn relstore::vfs::Vfs> {
        self.db.vfs()
    }

    /// Start a WAL group-commit window: transactions committed until
    /// [`end_group_commit`](Self::end_group_commit) append their redo
    /// records to the log but defer the fsync. Atomicity is unaffected
    /// (a crash can only lose a suffix of whole commits, never a partial
    /// transaction); the importer uses this to pay one fsync per dump
    /// batch instead of one per logical step.
    pub fn begin_group_commit(&mut self) {
        self.db.set_sync_on_commit(false);
    }

    /// Close a group-commit window: restore sync-on-commit and fsync the
    /// WAL once, making everything committed inside the window durable.
    pub fn end_group_commit(&mut self) -> GamResult<()> {
        self.db.set_sync_on_commit(true);
        self.db.sync_wal()?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Row conversions
    // ------------------------------------------------------------------

    fn source_from_row(row: &Row) -> GamResult<Source> {
        Ok(Source {
            id: SourceId::from_i64(row.get(0).as_int().unwrap_or_default()),
            name: row.get(1).as_text().unwrap_or_default().to_owned(),
            content: SourceContent::from_code(row.get(2).as_int().unwrap_or(-1))?,
            structure: SourceStructure::from_code(row.get(3).as_int().unwrap_or(-1))?,
            release: row.get(4).as_text().map(str::to_owned),
            imported_seq: row.get(5).as_int().unwrap_or(0) as u64,
        })
    }

    fn object_from_row(row: &Row) -> GamObject {
        GamObject {
            id: ObjectId::from_i64(row.get(0).as_int().unwrap_or_default()),
            source: SourceId::from_i64(row.get(1).as_int().unwrap_or_default()),
            accession: row.get(2).as_text().unwrap_or_default().to_owned(),
            text: row.get(3).as_text().map(str::to_owned),
            number: row.get(4).as_float(),
        }
    }

    fn source_rel_from_row(row: &Row) -> GamResult<SourceRel> {
        Ok(SourceRel {
            id: SourceRelId::from_i64(row.get(0).as_int().unwrap_or_default()),
            source1: SourceId::from_i64(row.get(1).as_int().unwrap_or_default()),
            source2: SourceId::from_i64(row.get(2).as_int().unwrap_or_default()),
            rel_type: RelType::from_code(row.get(3).as_int().unwrap_or(-1))?,
            derivation: row.get(4).as_text().map(str::to_owned),
        })
    }

    // ------------------------------------------------------------------
    // SOURCE
    // ------------------------------------------------------------------

    /// Register a new source. Fails if the name is taken.
    pub fn create_source(
        &mut self,
        name: &str,
        content: SourceContent,
        structure: SourceStructure,
        release: Option<&str>,
    ) -> GamResult<Source> {
        self.bump_mutations();
        if name.is_empty() {
            return Err(GamError::Invalid("source name is empty".into()));
        }
        let id = SourceId(self.next_source);
        self.import_seq += 1;
        let seq = self.import_seq;
        let row = vec![
            Value::Int(id.as_i64()),
            Value::text(name),
            Value::Int(content.code()),
            Value::Int(structure.code()),
            release.map(Value::text).unwrap_or(Value::Null),
            Value::Int(seq as i64),
        ];
        self.db.with_txn(|txn| txn.insert(tables::SOURCE, row))?;
        self.next_source += 1;
        Ok(Source {
            id,
            name: name.to_owned(),
            content,
            structure,
            release: release.map(str::to_owned),
            imported_seq: seq,
        })
    }

    /// Look up a source by name.
    pub fn find_source(&self, name: &str) -> GamResult<Option<Source>> {
        let hit = self
            .db
            .table(tables::SOURCE)?
            .lookup_unique("by_name", &[Value::text(name)])?;
        hit.as_ref().map(Self::source_from_row).transpose()
    }

    /// Look up many sources by name in one pass: the probe names are
    /// sort-deduped once and merged against a single ordered scan of the
    /// `by_name` index, instead of one point lookup per name. Results align
    /// with the input. The importer uses this to resolve every annotation
    /// target and partition of a batch up front.
    pub fn find_sources(&self, names: &[&str]) -> GamResult<Vec<Option<Source>>> {
        if names.is_empty() {
            return Ok(Vec::new());
        }
        let mut sorted: Vec<&str> = names.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut hits: Vec<Option<Source>> = vec![None; sorted.len()];
        let lo = [Value::text(sorted[0])];
        let hi = [Value::text(sorted[sorted.len() - 1])];
        let mut decode_err = None;
        let mut p = 0usize;
        self.db
            .table(tables::SOURCE)?
            .for_each_index_range("by_name", &lo, &hi, |key, row| {
                let Some(name) = key[0].as_text() else { return };
                while p < sorted.len() && sorted[p] < name {
                    p += 1;
                }
                if p < sorted.len() && sorted[p] == name {
                    match Self::source_from_row(row) {
                        Ok(s) => hits[p] = Some(s),
                        Err(e) => decode_err = Some(e),
                    }
                }
            })?;
        if let Some(e) = decode_err {
            return Err(e);
        }
        names
            .iter()
            .map(|n| {
                let slot = sorted
                    .binary_search(n)
                    .map_err(|_| GamError::Invalid(format!("probe key `{n}` lost from batch")))?;
                Ok(hits[slot].clone())
            })
            .collect()
    }

    /// Fetch a source by id.
    pub fn get_source(&self, id: SourceId) -> GamResult<Source> {
        let hit = self
            .db
            .table(tables::SOURCE)?
            .lookup_unique("pk", &[Value::Int(id.as_i64())])?;
        hit.as_ref().map(Self::source_from_row)
            .transpose()?
            .ok_or(GamError::UnknownSource(id))
    }

    /// Update a source's content/structure classification. Used when a
    /// stub source (created to hold annotation targets) is later filled by
    /// its own authoritative dump.
    pub fn update_source_meta(
        &mut self,
        id: SourceId,
        content: SourceContent,
        structure: SourceStructure,
    ) -> GamResult<()> {
        self.bump_mutations();
        let (row_id, mut values) = {
            let table = self.db.table(tables::SOURCE)?;
            let hits = table.select_with_ids(&Predicate::eq("source_id", Value::Int(id.as_i64())))?;
            let (row_id, row) = hits.into_iter().next().ok_or(GamError::UnknownSource(id))?;
            (row_id, row.into_values())
        };
        values[2] = Value::Int(content.code());
        values[3] = Value::Int(structure.code());
        self.db
            .with_txn(|txn| txn.update(tables::SOURCE, row_id, values))?;
        Ok(())
    }

    /// Update a source's release tag (re-import bookkeeping).
    pub fn set_source_release(&mut self, id: SourceId, release: &str) -> GamResult<()> {
        self.bump_mutations();
        let (row_id, mut values) = {
            let table = self.db.table(tables::SOURCE)?;
            let hits = table.select_with_ids(&Predicate::eq("source_id", Value::Int(id.as_i64())))?;
            let (row_id, row) = hits.into_iter().next().ok_or(GamError::UnknownSource(id))?;
            (row_id, row.into_values())
        };
        values[4] = Value::text(release);
        self.import_seq += 1;
        values[5] = Value::Int(self.import_seq as i64);
        self.db
            .with_txn(|txn| txn.update(tables::SOURCE, row_id, values))?;
        Ok(())
    }

    /// All sources, ordered by id.
    pub fn sources(&self) -> GamResult<Vec<Source>> {
        let table = self.db.table(tables::SOURCE)?;
        let mut out = Vec::with_capacity(table.len());
        for (_, row) in table.scan() {
            out.push(Self::source_from_row(&row)?);
        }
        out.sort_by_key(|s| s.id);
        Ok(out)
    }

    // ------------------------------------------------------------------
    // OBJECT
    // ------------------------------------------------------------------

    /// Insert a new object. Fails on duplicate (source, accession).
    pub fn create_object(
        &mut self,
        source: SourceId,
        accession: &str,
        text: Option<&str>,
        number: Option<f64>,
    ) -> GamResult<ObjectId> {
        self.bump_mutations();
        let id = ObjectId(self.next_object);
        let obj = GamObject {
            id,
            source,
            accession: accession.to_owned(),
            text: text.map(str::to_owned),
            number,
        };
        obj.validate()?;
        let row = object_row(&obj);
        self.db.with_txn(|txn| txn.insert(tables::OBJECT, row))?;
        self.next_object += 1;
        Ok(id)
    }

    /// Object-level duplicate elimination (paper §4.1: "at the object level
    /// we compare object accessions"): return the existing object's id, or
    /// insert and return the new id. The boolean reports whether an insert
    /// happened.
    pub fn ensure_object(
        &mut self,
        source: SourceId,
        accession: &str,
        text: Option<&str>,
        number: Option<f64>,
    ) -> GamResult<(ObjectId, bool)> {
        self.bump_mutations();
        if let Some(existing) = self.find_object(source, accession)? {
            return Ok((existing.id, false));
        }
        Ok((self.create_object(source, accession, text, number)?, true))
    }

    /// Insert many objects in one transaction. Duplicates (by accession)
    /// resolve to the existing id. Returns ids aligned with the input and
    /// the number of fresh inserts.
    pub fn add_objects_bulk(
        &mut self,
        source: SourceId,
        objects: &[(String, Option<String>, Option<f64>)],
    ) -> GamResult<(Vec<ObjectId>, usize)> {
        self.bump_mutations();
        let refs: Vec<(&str, Option<&str>, Option<f64>)> = objects
            .iter()
            .map(|(a, t, n)| (a.as_str(), t.as_deref(), *n))
            .collect();
        self.add_objects_bulk_ref(source, &refs)
    }

    /// Borrowed-key variant of [`add_objects_bulk`](Self::add_objects_bulk):
    /// the importer passes accessions interned from the batch arena, so no
    /// owned `String`s are built on the hot path. Dedup decisions, id
    /// assignment order and store contents are identical to a per-row
    /// `ensure_object` loop: the whole batch is resolved against the
    /// `by_accession` index first ([`resolve_accessions`]
    /// (Self::resolve_accessions)), then the fresh rows — first occurrence
    /// wins within the batch — are inserted in input order via one batch
    /// insert with bulk index maintenance.
    pub fn add_objects_bulk_ref(
        &mut self,
        source: SourceId,
        objects: &[(&str, Option<&str>, Option<f64>)],
    ) -> GamResult<(Vec<ObjectId>, usize)> {
        self.bump_mutations();
        for (accession, _, _) in objects {
            if accession.is_empty() {
                return Err(GamError::Invalid("object accession is empty".into()));
            }
        }
        let keys: Vec<&str> = objects.iter().map(|(a, _, _)| *a).collect();
        let existing = self.resolve_accessions(source, &keys)?;
        let src_i64 = source.as_i64();
        let mut ids = Vec::with_capacity(objects.len());
        let mut rows: Vec<Vec<Value>> = Vec::new();
        let mut seen: std::collections::BTreeMap<&str, ObjectId> = std::collections::BTreeMap::new();
        let mut next = self.next_object;
        for (i, (accession, text, number)) in objects.iter().enumerate() {
            if let Some(id) = existing[i] {
                ids.push(id);
                continue;
            }
            if let Some(id) = seen.get(accession) {
                ids.push(*id);
                continue;
            }
            let id = ObjectId(next);
            next += 1;
            rows.push(vec![
                Value::Int(id.as_i64()),
                Value::Int(src_i64),
                Value::text(*accession),
                text.map(Value::text).unwrap_or(Value::Null),
                number.map(Value::Float).unwrap_or(Value::Null),
            ]);
            seen.insert(accession, id);
            ids.push(id);
        }
        let created = rows.len();
        if created > 0 {
            self.db.with_txn(|txn| {
                txn.insert_batch(tables::OBJECT, rows)?;
                Ok(())
            })?;
        }
        self.next_object = next;
        Ok((ids, created))
    }

    /// Batched accession resolution (the importer's replacement for per-row
    /// [`find_object`](Self::find_object) calls): sort-dedup the probe
    /// accessions once, then resolve them in a single ordered merge pass
    /// against the `by_accession` index. Results align with the input;
    /// unknown accessions yield `None`.
    ///
    /// When the probe set is sparse relative to the source's key span
    /// (fewer than 1/16 of its keys), point lookups are cheaper than
    /// walking the span and the resolver switches to them — the answer is
    /// identical either way.
    pub fn resolve_accessions(
        &self,
        source: SourceId,
        accessions: &[&str],
    ) -> GamResult<Vec<Option<ObjectId>>> {
        if accessions.is_empty() {
            return Ok(Vec::new());
        }
        let mut sorted: Vec<&str> = accessions.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let table = self.db.table(tables::OBJECT)?;
        let src = Value::Int(source.as_i64());
        let mut hits: Vec<Option<ObjectId>> = vec![None; sorted.len()];
        let span = table.index_prefix_count("by_accession", std::slice::from_ref(&src))?;
        if sorted.len() * 16 < span {
            for (i, acc) in sorted.iter().enumerate() {
                hits[i] = table
                    .lookup_unique("by_accession", &[src.clone(), Value::text(*acc)])?
                    .map(|r| ObjectId::from_i64(r.get(0).as_int().unwrap_or_default()));
            }
        } else {
            let lo = [src.clone(), Value::text(sorted[0])];
            let hi = [src.clone(), Value::text(sorted[sorted.len() - 1])];
            let mut p = 0usize;
            table.for_each_index_range("by_accession", &lo, &hi, |key, row| {
                let Some(acc) = key[1].as_text() else { return };
                while p < sorted.len() && sorted[p] < acc {
                    p += 1;
                }
                if p < sorted.len() && sorted[p] == acc {
                    hits[p] = Some(ObjectId::from_i64(row.get(0).as_int().unwrap_or_default()));
                }
            })?;
        }
        accessions
            .iter()
            .map(|acc| {
                let slot = sorted
                    .binary_search(acc)
                    .map_err(|_| GamError::Invalid(format!("probe key `{acc}` lost from batch")))?;
                Ok(hits[slot])
            })
            .collect()
    }

    /// Find an object by (source, accession).
    pub fn find_object(&self, source: SourceId, accession: &str) -> GamResult<Option<GamObject>> {
        let hit = self.db.table(tables::OBJECT)?.lookup_unique(
            "by_accession",
            &[Value::Int(source.as_i64()), Value::text(accession)],
        )?;
        Ok(hit.as_ref().map(Self::object_from_row))
    }

    /// Fetch an object by id.
    pub fn get_object(&self, id: ObjectId) -> GamResult<GamObject> {
        let hit = self
            .db
            .table(tables::OBJECT)?
            .lookup_unique("pk", &[Value::Int(id.as_i64())])?;
        hit.as_ref().map(Self::object_from_row)
            .ok_or(GamError::UnknownObject(id))
    }

    /// All objects of a source (accession order).
    pub fn objects_of(&self, source: SourceId) -> GamResult<Vec<GamObject>> {
        let rows = self
            .db
            .table(tables::OBJECT)?
            .lookup_prefix("by_accession", &[Value::Int(source.as_i64())])?;
        Ok(rows.iter().map(Self::object_from_row).collect())
    }

    /// Ids of all objects of a source.
    pub fn object_ids_of(&self, source: SourceId) -> GamResult<Vec<ObjectId>> {
        let rows = self
            .db
            .table(tables::OBJECT)?
            .lookup_prefix("by_accession", &[Value::Int(source.as_i64())])?;
        Ok(rows
            .into_iter()
            .map(|r| ObjectId::from_i64(r.get(0).as_int().unwrap_or_default()))
            .collect())
    }

    /// Number of objects of a source.
    pub fn object_count(&self, source: SourceId) -> GamResult<usize> {
        Ok(self
            .db
            .table(tables::OBJECT)?
            .lookup_prefix("by_accession", &[Value::Int(source.as_i64())])?
            .len())
    }

    /// Case-insensitive substring search over object names within a
    /// source (the interactive interface's keyword search). Results are
    /// capped at `limit` and ordered by accession.
    pub fn search_objects(
        &self,
        source: SourceId,
        needle: &str,
        limit: usize,
    ) -> GamResult<Vec<GamObject>> {
        let predicate = Predicate::eq("source_id", Value::Int(source.as_i64()))
            .and(Predicate::text_contains("text", needle));
        let rows = self.db.table(tables::OBJECT)?.select(&predicate)?;
        let mut out: Vec<GamObject> = rows.iter().map(Self::object_from_row).collect();
        out.sort_by(|a, b| a.accession.cmp(&b.accession));
        out.truncate(limit);
        Ok(out)
    }

    /// Objects of a source whose accession starts with `prefix` (e.g. all
    /// `GO:00091…` terms), ordered by accession, capped at `limit`.
    pub fn objects_with_accession_prefix(
        &self,
        source: SourceId,
        prefix: &str,
        limit: usize,
    ) -> GamResult<Vec<GamObject>> {
        let rows = self
            .db
            .table(tables::OBJECT)?
            .lookup_prefix("by_accession", &[Value::Int(source.as_i64())])?;
        Ok(rows
            .iter()
            .map(Self::object_from_row)
            .filter(|o| o.accession.starts_with(prefix))
            .take(limit)
            .collect())
    }

    // ------------------------------------------------------------------
    // SOURCE_REL
    // ------------------------------------------------------------------

    /// Register a mapping between two sources.
    pub fn create_source_rel(
        &mut self,
        source1: SourceId,
        source2: SourceId,
        rel_type: RelType,
        derivation: Option<&str>,
    ) -> GamResult<SourceRelId> {
        self.bump_mutations();
        let id = SourceRelId(self.next_source_rel);
        let rel = SourceRel {
            id,
            source1,
            source2,
            rel_type,
            derivation: derivation.map(str::to_owned),
        };
        rel.validate()?;
        // both endpoints must exist
        self.get_source(source1)?;
        self.get_source(source2)?;
        let row = vec![
            Value::Int(id.as_i64()),
            Value::Int(source1.as_i64()),
            Value::Int(source2.as_i64()),
            Value::Int(rel_type.code()),
            rel.derivation
                .as_deref()
                .map(Value::text)
                .unwrap_or(Value::Null),
        ];
        self.db.with_txn(|txn| txn.insert(tables::SOURCE_REL, row))?;
        self.next_source_rel += 1;
        Ok(id)
    }

    /// Fetch a mapping's `SOURCE_REL` row.
    pub fn get_source_rel(&self, id: SourceRelId) -> GamResult<SourceRel> {
        let hit = self
            .db
            .table(tables::SOURCE_REL)?
            .lookup_unique("pk", &[Value::Int(id.as_i64())])?;
        hit.as_ref().map(Self::source_rel_from_row)
            .transpose()?
            .ok_or(GamError::UnknownSourceRel(id))
    }

    /// All mappings declared from `source1` to `source2` (directed).
    pub fn source_rels_between(
        &self,
        source1: SourceId,
        source2: SourceId,
    ) -> GamResult<Vec<SourceRel>> {
        let rows = self.db.table(tables::SOURCE_REL)?.lookup(
            "by_pair",
            &[Value::Int(source1.as_i64()), Value::Int(source2.as_i64())],
        )?;
        rows.iter().map(Self::source_rel_from_row).collect()
    }

    /// Find one mapping of the given type between two sources, trying both
    /// orientations. Returns the rel plus `true` if it runs
    /// `source1 -> source2` in storage order (i.e. no inversion needed).
    pub fn find_source_rel(
        &self,
        source1: SourceId,
        source2: SourceId,
        rel_type: Option<RelType>,
    ) -> GamResult<Option<(SourceRel, bool)>> {
        for rel in self.source_rels_between(source1, source2)? {
            if rel_type.is_none_or(|t| rel.rel_type == t) {
                return Ok(Some((rel, true)));
            }
        }
        for rel in self.source_rels_between(source2, source1)? {
            if rel_type.is_none_or(|t| rel.rel_type == t) {
                return Ok(Some((rel, false)));
            }
        }
        Ok(None)
    }

    /// All `SOURCE_REL` rows, ordered by id.
    pub fn source_rels(&self) -> GamResult<Vec<SourceRel>> {
        let table = self.db.table(tables::SOURCE_REL)?;
        let mut out = Vec::with_capacity(table.len());
        for (_, row) in table.scan() {
            out.push(Self::source_rel_from_row(&row)?);
        }
        out.sort_by_key(|r| r.id);
        Ok(out)
    }

    /// Delete a mapping and all its associations (used when re-deriving a
    /// materialized mapping).
    pub fn delete_source_rel(&mut self, id: SourceRelId) -> GamResult<usize> {
        self.bump_mutations();
        // ensure it exists first
        self.get_source_rel(id)?;
        // both sides come straight from indexes: the association row ids
        // from OBJECT_REL(by_source_rel), the rel row from its primary key
        let assoc_ids: Vec<relstore::RowId> = self
            .db
            .table(tables::OBJECT_REL)?
            .lookup_row_ids("by_source_rel", &[Value::Int(id.as_i64())])?;
        let rel_row: Vec<relstore::RowId> = self
            .db
            .table(tables::SOURCE_REL)?
            .lookup_row_ids("pk", &[Value::Int(id.as_i64())])?;
        let removed = assoc_ids.len();
        self.db.with_txn(|txn| {
            for rid in assoc_ids {
                txn.delete(tables::OBJECT_REL, rid)?;
            }
            for rid in rel_row {
                txn.delete(tables::SOURCE_REL, rid)?;
            }
            Ok(())
        })?;
        Ok(removed)
    }

    // ------------------------------------------------------------------
    // OBJECT_REL
    // ------------------------------------------------------------------

    /// Add one association to a mapping. Returns `false` (without error) if
    /// the identical (mapping, object1, object2) pair already exists.
    pub fn add_association(
        &mut self,
        source_rel: SourceRelId,
        object1: ObjectId,
        object2: ObjectId,
        evidence: Option<f64>,
    ) -> GamResult<bool> {
        self.bump_mutations();
        let mut added = 0;
        self.add_associations_bulk(
            source_rel,
            std::iter::once(Association {
                from: object1,
                to: object2,
                evidence,
            }),
            &mut added,
        )?;
        Ok(added == 1)
    }

    /// Add many associations to a mapping in one transaction, skipping
    /// duplicates. `added` is incremented per fresh insert.
    ///
    /// Duplicate elimination is sort-based: the distinct `(object1, object2)`
    /// pairs of the batch are resolved against the `by_pair` index in one
    /// ordered merge pass, then fresh pairs (first occurrence wins within the
    /// batch) are inserted in input order with contiguous ids — the same
    /// decisions and id sequence a per-row probe loop produces.
    pub fn add_associations_bulk(
        &mut self,
        source_rel: SourceRelId,
        associations: impl IntoIterator<Item = Association>,
        added: &mut usize,
    ) -> GamResult<()> {
        self.bump_mutations();
        let rel_i64 = source_rel.as_i64();
        let assocs: Vec<Association> = associations.into_iter().collect();
        if assocs.is_empty() {
            return Ok(());
        }
        for assoc in &assocs {
            let rec = crate::model::ObjectRel {
                id: ObjectRelId(self.next_object_rel),
                source_rel,
                object1: assoc.from,
                object2: assoc.to,
                evidence: assoc.evidence,
            };
            rec.validate()?;
        }
        let mut pairs: Vec<(i64, i64)> = assocs
            .iter()
            .map(|a| (a.from.as_i64(), a.to.as_i64()))
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        let mut exists = vec![false; pairs.len()];
        {
            let table = self.db.table(tables::OBJECT_REL)?;
            let (lo_from, lo_to) = pairs[0];
            let (hi_from, hi_to) = pairs[pairs.len() - 1];
            let lo = [Value::Int(rel_i64), Value::Int(lo_from), Value::Int(lo_to)];
            let hi = [Value::Int(rel_i64), Value::Int(hi_from), Value::Int(hi_to)];
            let mut p = 0usize;
            table.for_each_index_range("by_pair", &lo, &hi, |key, _row| {
                let (Some(from), Some(to)) = (key[1].as_int(), key[2].as_int()) else {
                    return;
                };
                while p < pairs.len() && pairs[p] < (from, to) {
                    p += 1;
                }
                if p < pairs.len() && pairs[p] == (from, to) {
                    exists[p] = true;
                }
            })?;
        }
        let mut next = self.next_object_rel;
        let mut rows: Vec<Vec<Value>> = Vec::new();
        let mut seen = vec![false; pairs.len()];
        for assoc in &assocs {
            let pair = (assoc.from.as_i64(), assoc.to.as_i64());
            let slot = pairs
                .binary_search(&pair)
                .map_err(|_| GamError::Invalid(format!("probe pair {pair:?} lost from batch")))?;
            if exists[slot] || seen[slot] {
                continue;
            }
            seen[slot] = true;
            rows.push(vec![
                Value::Int(next as i64),
                Value::Int(rel_i64),
                Value::Int(pair.0),
                Value::Int(pair.1),
                assoc.evidence.map(Value::Float).unwrap_or(Value::Null),
            ]);
            next += 1;
            *added += 1;
        }
        if !rows.is_empty() {
            self.db.with_txn(|txn| {
                txn.insert_batch(tables::OBJECT_REL, rows)?;
                Ok(())
            })?;
        }
        self.next_object_rel = next;
        Ok(())
    }

    /// Load a mapping's associations, oriented `source1 -> source2`.
    pub fn load_mapping(&self, id: SourceRelId) -> GamResult<Mapping> {
        let rel = self.get_source_rel(id)?;
        let rows = self
            .db
            .table(tables::OBJECT_REL)?
            .lookup_prefix("by_pair", &[Value::Int(id.as_i64())])?;
        let mut pairs = Vec::with_capacity(rows.len());
        for row in rows {
            pairs.push(Association {
                from: ObjectId::from_i64(row.get(2).as_int().unwrap_or_default()),
                to: ObjectId::from_i64(row.get(3).as_int().unwrap_or_default()),
                evidence: row.get(4).as_float(),
            });
        }
        Ok(Mapping {
            from: rel.source1,
            to: rel.source2,
            rel_type: rel.rel_type,
            pairs,
        })
    }

    /// Load a mapping directly into CSR form, oriented
    /// `source1 -> source2`. The `by_pair` index delivers rows in
    /// `(object1, object2)` order with one row per pair, so the forward
    /// arrays build in a single pass with no sort or dedup, and the batched
    /// columnar scan decodes only the three needed columns block-by-block
    /// instead of materializing per-row references.
    pub fn load_mapping_index(&self, id: SourceRelId) -> GamResult<MappingIndex> {
        let rel = self.get_source_rel(id)?;
        let mut b = MappingIndexBuilder::new(rel.source1, rel.source2, rel.rel_type);
        self.db.table(tables::OBJECT_REL)?.scan_prefix_columnar(
            "by_pair",
            &[Value::Int(id.as_i64())],
            &["object1_id", "object2_id"],
            &["evidence"],
            4096,
            |block| {
                for i in 0..block.len() {
                    b.push(
                        ObjectId::from_i64(block.ints[0][i]),
                        ObjectId::from_i64(block.ints[1][i]),
                        block.floats[0][i],
                    );
                }
            },
        )?;
        Ok(b.finish())
    }

    /// Number of associations in a mapping, answered from the
    /// `by_source_rel` index without materializing any rows.
    pub fn association_count(&self, id: SourceRelId) -> GamResult<usize> {
        Ok(self
            .db
            .table(tables::OBJECT_REL)?
            .index_lookup_count("by_source_rel", &[Value::Int(id.as_i64())])?)
    }

    /// All associations touching an object, in either role. Each entry is
    /// (mapping id, association oriented so that `from` is the queried
    /// object).
    pub fn associations_of_object(
        &self,
        object: ObjectId,
    ) -> GamResult<Vec<(SourceRelId, Association)>> {
        let table = self.db.table(tables::OBJECT_REL)?;
        let key = [Value::Int(object.as_i64())];
        let mut out = Vec::with_capacity(
            table.index_lookup_count("by_object1", &key)?
                + table.index_lookup_count("by_object2", &key)?,
        );
        // stream rows straight off the indexes: no intermediate `Vec<&Row>`
        // is materialized before the oriented pairs are built
        table.for_each_lookup("by_object1", &key, |row| {
            out.push((
                SourceRelId::from_i64(row.get(1).as_int().unwrap_or_default()),
                Association {
                    from: object,
                    to: ObjectId::from_i64(row.get(3).as_int().unwrap_or_default()),
                    evidence: row.get(4).as_float(),
                },
            ));
        })?;
        table.for_each_lookup("by_object2", &key, |row| {
            out.push((
                SourceRelId::from_i64(row.get(1).as_int().unwrap_or_default()),
                Association {
                    from: object,
                    to: ObjectId::from_i64(row.get(2).as_int().unwrap_or_default()),
                    evidence: row.get(4).as_float(),
                },
            ));
        })?;
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Statistics (the paper's §5 deployment numbers)
    // ------------------------------------------------------------------

    /// Object counts per source, ordered by source id — the per-source
    /// inventory the interactive source list shows.
    pub fn object_counts_per_source(&self) -> GamResult<Vec<(SourceId, usize)>> {
        Ok(self
            .db
            .table(tables::OBJECT)?
            .group_count("source_id")?
            .into_iter()
            .map(|(v, n)| (SourceId::from_i64(v.as_int().unwrap_or_default()), n))
            .collect())
    }

    /// Mapping and association counts broken down by relationship type —
    /// the six-way classification of paper §3 (Fact/Similarity imported,
    /// Contains/IS_A structural, Composed/Subsumed derived).
    pub fn mapping_type_counts(&self) -> GamResult<Vec<(RelType, usize, usize)>> {
        let mut per_type: std::collections::BTreeMap<i64, (usize, usize)> =
            std::collections::BTreeMap::new();
        for rel in self.source_rels()? {
            let entry = per_type.entry(rel.rel_type.code()).or_default();
            entry.0 += 1;
            entry.1 += self.association_count(rel.id)?;
        }
        per_type
            .into_iter()
            .map(|(code, (mappings, associations))| {
                Ok((RelType::from_code(code)?, mappings, associations))
            })
            .collect()
    }

    /// (sources, objects, mappings, associations) cardinalities.
    pub fn cardinalities(&self) -> GamResult<GamCardinalities> {
        Ok(GamCardinalities {
            sources: self.db.table(tables::SOURCE)?.len(),
            objects: self.db.table(tables::OBJECT)?.len(),
            mappings: self.db.table(tables::SOURCE_REL)?.len(),
            associations: self.db.table(tables::OBJECT_REL)?.len(),
        })
    }
}

/// The four headline cardinalities GenMapper reports in §5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct GamCardinalities {
    pub sources: usize,
    pub objects: usize,
    pub mappings: usize,
    pub associations: usize,
}

impl std::fmt::Display for GamCardinalities {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} sources, {} objects, {} mappings, {} associations",
            self.sources, self.objects, self.mappings, self.associations
        )
    }
}

fn object_row(obj: &GamObject) -> Vec<Value> {
    vec![
        Value::Int(obj.id.as_i64()),
        Value::Int(obj.source.as_i64()),
        Value::text(obj.accession.as_str()),
        obj.text.as_deref().map(Value::text).unwrap_or(Value::Null),
        obj.number.map(Value::Float).unwrap_or(Value::Null),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> GamStore {
        GamStore::in_memory().unwrap()
    }

    fn gene_source(s: &mut GamStore, name: &str) -> Source {
        s.create_source(name, SourceContent::Gene, SourceStructure::Flat, Some("r1"))
            .unwrap()
    }

    #[test]
    fn source_lifecycle() {
        let mut s = store();
        let ll = gene_source(&mut s, "LocusLink");
        assert_eq!(ll.id, SourceId(1));
        assert_eq!(s.find_source("LocusLink").unwrap().unwrap().id, ll.id);
        assert!(s.find_source("GO").unwrap().is_none());
        assert!(s.create_source("LocusLink", SourceContent::Gene, SourceStructure::Flat, None).is_err());
        assert!(s.create_source("", SourceContent::Gene, SourceStructure::Flat, None).is_err());
        let got = s.get_source(ll.id).unwrap();
        assert_eq!(got.release.as_deref(), Some("r1"));
        s.set_source_release(ll.id, "r2").unwrap();
        let got = s.get_source(ll.id).unwrap();
        assert_eq!(got.release.as_deref(), Some("r2"));
        assert!(got.imported_seq > ll.imported_seq);
        assert_eq!(s.sources().unwrap().len(), 1);
        assert!(matches!(
            s.get_source(SourceId(99)),
            Err(GamError::UnknownSource(_))
        ));
    }

    #[test]
    fn object_dedup_by_accession() {
        let mut s = store();
        let ll = gene_source(&mut s, "LocusLink");
        let (id1, created) = s.ensure_object(ll.id, "353", Some("APRT"), None).unwrap();
        assert!(created);
        let (id2, created) = s.ensure_object(ll.id, "353", None, None).unwrap();
        assert!(!created);
        assert_eq!(id1, id2);
        // same accession in a different source is a different object
        let ug = gene_source(&mut s, "Unigene");
        let (id3, created) = s.ensure_object(ug.id, "353", None, None).unwrap();
        assert!(created);
        assert_ne!(id1, id3);
        assert_eq!(s.object_count(ll.id).unwrap(), 1);
        assert_eq!(s.cardinalities().unwrap().objects, 2);
    }

    #[test]
    fn bulk_objects_dedup_within_and_across_batches() {
        let mut s = store();
        let ll = gene_source(&mut s, "LocusLink");
        let batch: Vec<(String, Option<String>, Option<f64>)> = vec![
            ("1".into(), Some("a".into()), None),
            ("2".into(), None, Some(2.0)),
            ("1".into(), None, None), // dup within batch
        ];
        let (ids, created) = s.add_objects_bulk(ll.id, &batch).unwrap();
        assert_eq!(created, 2);
        assert_eq!(ids[0], ids[2]);
        // across batches
        let (ids2, created) = s
            .add_objects_bulk(ll.id, &[("2".into(), None, None), ("3".into(), None, None)])
            .unwrap();
        assert_eq!(created, 1);
        assert_eq!(ids2[0], ids[1]);
        assert_eq!(s.object_count(ll.id).unwrap(), 3);
        // empty accession rejected, transaction rolled back
        let err = s.add_objects_bulk(ll.id, &[("4".into(), None, None), ("".into(), None, None)]);
        assert!(err.is_err());
        assert_eq!(s.object_count(ll.id).unwrap(), 3, "failed batch fully rolled back");
    }

    #[test]
    fn keyword_and_prefix_search() {
        let mut s = store();
        let ll = gene_source(&mut s, "LocusLink");
        s.create_object(ll.id, "353", Some("adenine phosphoribosyltransferase"), None)
            .unwrap();
        s.create_object(ll.id, "354", Some("alcohol dehydrogenase"), None)
            .unwrap();
        s.create_object(ll.id, "999", None, None).unwrap();
        let other = gene_source(&mut s, "Other");
        s.create_object(other.id, "353", Some("adenine thing elsewhere"), None)
            .unwrap();

        // keyword search is per source and case-insensitive
        let hits = s.search_objects(ll.id, "ADENINE", 10).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].accession, "353");
        let hits = s.search_objects(ll.id, "ase", 10).unwrap();
        assert_eq!(hits.len(), 2, "matches both enzymes");
        let hits = s.search_objects(ll.id, "ase", 1).unwrap();
        assert_eq!(hits.len(), 1, "limit respected");
        assert!(s.search_objects(ll.id, "zzz", 10).unwrap().is_empty());

        // accession prefix search
        let hits = s.objects_with_accession_prefix(ll.id, "35", 10).unwrap();
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].accession, "353");
        let hits = s.objects_with_accession_prefix(ll.id, "9", 10).unwrap();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn mapping_roundtrip_and_orientation() {
        let mut s = store();
        let ll = gene_source(&mut s, "LocusLink");
        let go = s
            .create_source("GO", SourceContent::Other, SourceStructure::Network, None)
            .unwrap();
        let (l1, _) = s.ensure_object(ll.id, "353", None, None).unwrap();
        let (g1, _) = s.ensure_object(go.id, "GO:0009116", None, None).unwrap();
        let rel = s
            .create_source_rel(ll.id, go.id, RelType::Fact, None)
            .unwrap();
        assert!(s.add_association(rel, l1, g1, None).unwrap());
        assert!(!s.add_association(rel, l1, g1, None).unwrap(), "duplicate skipped");
        let map = s.load_mapping(rel).unwrap();
        assert_eq!(map.from, ll.id);
        assert_eq!(map.to, go.id);
        assert_eq!(map.len(), 1);
        assert_eq!(map.pairs[0], Association::fact(l1, g1));
        assert_eq!(s.association_count(rel).unwrap(), 1);

        // find in both orientations
        let (found, fwd) = s.find_source_rel(ll.id, go.id, None).unwrap().unwrap();
        assert_eq!(found.id, rel);
        assert!(fwd);
        let (found, fwd) = s.find_source_rel(go.id, ll.id, None).unwrap().unwrap();
        assert_eq!(found.id, rel);
        assert!(!fwd);
        assert!(s
            .find_source_rel(ll.id, go.id, Some(RelType::Similarity))
            .unwrap()
            .is_none());
    }

    #[test]
    fn source_rel_validation_and_missing_sources() {
        let mut s = store();
        let ll = gene_source(&mut s, "LocusLink");
        // annotation self-mapping rejected
        assert!(s
            .create_source_rel(ll.id, ll.id, RelType::Fact, None)
            .is_err());
        // IS_A self-relation allowed
        let isa = s.create_source_rel(ll.id, ll.id, RelType::IsA, None);
        assert!(isa.is_ok());
        // unknown endpoint rejected
        assert!(s
            .create_source_rel(ll.id, SourceId(42), RelType::Fact, None)
            .is_err());
    }

    #[test]
    fn associations_of_object_both_roles() {
        let mut s = store();
        let a = gene_source(&mut s, "A");
        let b = gene_source(&mut s, "B");
        let (ao, _) = s.ensure_object(a.id, "a1", None, None).unwrap();
        let (bo, _) = s.ensure_object(b.id, "b1", None, None).unwrap();
        let rel = s.create_source_rel(a.id, b.id, RelType::Fact, None).unwrap();
        s.add_association(rel, ao, bo, Some(0.8)).unwrap();
        let from_a = s.associations_of_object(ao).unwrap();
        assert_eq!(from_a.len(), 1);
        assert_eq!(from_a[0].1.to, bo);
        let from_b = s.associations_of_object(bo).unwrap();
        assert_eq!(from_b.len(), 1);
        assert_eq!(from_b[0].1.to, ao, "reverse role is re-oriented");
        assert_eq!(from_b[0].1.evidence, Some(0.8));
    }

    #[test]
    fn load_mapping_index_equals_load_mapping() {
        let mut s = store();
        let a = gene_source(&mut s, "A");
        let b = gene_source(&mut s, "B");
        let rel = s.create_source_rel(a.id, b.id, RelType::Similarity, None).unwrap();
        let mut objs_a = Vec::new();
        let mut objs_b = Vec::new();
        for i in 0..40 {
            objs_a.push(s.ensure_object(a.id, &format!("a{i}"), None, None).unwrap().0);
            objs_b.push(s.ensure_object(b.id, &format!("b{i}"), None, None).unwrap().0);
        }
        // skewed fan-out with a mix of facts and scores, inserted unsorted
        let mut added = 0;
        let mut assocs = Vec::new();
        for i in (0..40).rev() {
            let ev = if i % 3 == 0 { None } else { Some(i as f64 / 40.0) };
            assocs.push(Association { from: objs_a[i % 7], to: objs_b[i], evidence: ev });
        }
        s.add_associations_bulk(rel, assocs, &mut added).unwrap();
        let via_rows = s.load_mapping(rel).unwrap();
        let idx = s.load_mapping_index(rel).unwrap();
        assert_eq!(idx.from, via_rows.from);
        assert_eq!(idx.to, via_rows.to);
        assert_eq!(idx.rel_type, via_rows.rel_type);
        // by_pair order is already canonical, so no dedup is needed to match
        let roundtrip = idx.to_mapping();
        assert_eq!(roundtrip.pairs.len(), via_rows.pairs.len());
        for (x, y) in roundtrip.pairs.iter().zip(&via_rows.pairs) {
            assert_eq!((x.from, x.to), (y.from, y.to));
            assert_eq!(x.evidence.map(f64::to_bits), y.evidence.map(f64::to_bits));
        }
        assert!(s.load_mapping_index(SourceRelId(99)).is_err());
    }

    #[test]
    fn delete_source_rel_cascades() {
        let mut s = store();
        let a = gene_source(&mut s, "A");
        let b = gene_source(&mut s, "B");
        let (ao, _) = s.ensure_object(a.id, "a1", None, None).unwrap();
        let (bo, _) = s.ensure_object(b.id, "b1", None, None).unwrap();
        let rel = s.create_source_rel(a.id, b.id, RelType::Composed, None).unwrap();
        s.add_association(rel, ao, bo, Some(0.5)).unwrap();
        let removed = s.delete_source_rel(rel).unwrap();
        assert_eq!(removed, 1);
        assert!(s.get_source_rel(rel).is_err());
        assert_eq!(s.cardinalities().unwrap().associations, 0);
    }

    #[test]
    fn per_source_object_counts() {
        let mut s = store();
        let a = gene_source(&mut s, "A");
        let b = gene_source(&mut s, "B");
        for i in 0..5 {
            s.create_object(a.id, &format!("a{i}"), None, None).unwrap();
        }
        s.create_object(b.id, "b0", None, None).unwrap();
        let counts = s.object_counts_per_source().unwrap();
        assert_eq!(counts, vec![(a.id, 5), (b.id, 1)]);
    }

    #[test]
    fn mapping_type_breakdown() {
        let mut s = store();
        let a = gene_source(&mut s, "A");
        let b = gene_source(&mut s, "B");
        let (ao, _) = s.ensure_object(a.id, "a1", None, None).unwrap();
        let (bo, _) = s.ensure_object(b.id, "b1", None, None).unwrap();
        let fact = s.create_source_rel(a.id, b.id, RelType::Fact, None).unwrap();
        let sim = s.create_source_rel(a.id, b.id, RelType::Similarity, None).unwrap();
        let isa = s.create_source_rel(a.id, a.id, RelType::IsA, None).unwrap();
        s.add_association(fact, ao, bo, None).unwrap();
        s.add_association(sim, ao, bo, Some(0.5)).unwrap();
        let (a2, _) = s.ensure_object(a.id, "a2", None, None).unwrap();
        s.add_association(isa, a2, ao, None).unwrap();
        s.add_association(isa, ao, a2, None).unwrap();
        let counts = s.mapping_type_counts().unwrap();
        assert_eq!(
            counts,
            vec![
                (RelType::Fact, 1, 1),
                (RelType::Similarity, 1, 1),
                (RelType::IsA, 1, 2),
            ]
        );
    }

    #[test]
    fn evidence_validation() {
        let mut s = store();
        let a = gene_source(&mut s, "A");
        let b = gene_source(&mut s, "B");
        let (ao, _) = s.ensure_object(a.id, "a1", None, None).unwrap();
        let (bo, _) = s.ensure_object(b.id, "b1", None, None).unwrap();
        let rel = s.create_source_rel(a.id, b.id, RelType::Similarity, None).unwrap();
        assert!(s.add_association(rel, ao, bo, Some(1.5)).is_err());
        assert_eq!(s.cardinalities().unwrap().associations, 0);
    }

    #[test]
    fn find_sources_aligns_hits_with_probe_order() {
        let mut s = store();
        let a = gene_source(&mut s, "A");
        let c = gene_source(&mut s, "C");
        let hits = s.find_sources(&["C", "missing", "A", "C"]).unwrap();
        assert_eq!(hits.len(), 4);
        assert_eq!(hits[0].as_ref().unwrap().id, c.id);
        assert!(hits[1].is_none());
        assert_eq!(hits[2].as_ref().unwrap().id, a.id);
        assert_eq!(hits[3].as_ref().unwrap().id, c.id);
        assert!(s.find_sources(&[]).unwrap().is_empty());
    }

    #[test]
    fn resolve_accessions_merge_and_point_paths_agree() {
        let mut s = store();
        let ll = gene_source(&mut s, "LocusLink");
        for i in 0..200 {
            s.create_object(ll.id, &format!("acc{i:03}"), None, None).unwrap();
        }
        // dense probe set -> merge pass
        let dense: Vec<String> = (0..150).map(|i| format!("acc{i:03}")).collect();
        let mut dense_refs: Vec<&str> = dense.iter().map(String::as_str).collect();
        dense_refs.push("nope");
        let hits = s.resolve_accessions(ll.id, &dense_refs).unwrap();
        assert!(hits[..150].iter().all(Option::is_some));
        assert!(hits[150].is_none());
        // sparse probe set -> point lookups; answers must match find_object
        let sparse = ["acc000", "acc199", "zzz", "acc007"];
        let hits = s.resolve_accessions(ll.id, &sparse).unwrap();
        for (acc, hit) in sparse.iter().zip(&hits) {
            let expect = s.find_object(ll.id, acc).unwrap().map(|o| o.id);
            assert_eq!(*hit, expect, "mismatch for {acc}");
        }
        // duplicate probes align to the same id
        let hits = s.resolve_accessions(ll.id, &["acc005", "acc005"]).unwrap();
        assert_eq!(hits[0], hits[1]);
        assert!(hits[0].is_some());
    }

    #[test]
    fn bulk_ref_matches_per_row_ensure_object() {
        let mut a = store();
        let mut b = store();
        let sa = gene_source(&mut a, "S");
        let sb = gene_source(&mut b, "S");
        // pre-populate both stores identically so the batch hits existing rows
        a.create_object(sa.id, "pre", Some("t"), None).unwrap();
        b.create_object(sb.id, "pre", Some("t"), None).unwrap();
        let batch: Vec<(&str, Option<&str>, Option<f64>)> = vec![
            ("x", Some("first"), None),
            ("pre", None, None),
            ("y", None, Some(1.0)),
            ("x", Some("second wins? no: first"), None),
        ];
        let (ids, created) = a.add_objects_bulk_ref(sa.id, &batch).unwrap();
        let mut expect_ids = Vec::new();
        let mut expect_created = 0;
        for (acc, text, num) in &batch {
            let (id, fresh) = b.ensure_object(sb.id, acc, *text, *num).unwrap();
            expect_ids.push(id);
            if fresh {
                expect_created += 1;
            }
        }
        assert_eq!(ids, expect_ids);
        assert_eq!(created, expect_created);
        let mut objs_a = a.objects_of(sa.id).unwrap();
        let mut objs_b = b.objects_of(sb.id).unwrap();
        objs_a.sort_by_key(|o| o.id);
        objs_b.sort_by_key(|o| o.id);
        assert_eq!(objs_a, objs_b);
    }

    #[test]
    fn group_commit_window_survives_reopen() {
        let dir = std::env::temp_dir().join("gam-store-tests").join("group-commit");
        let _ = std::fs::remove_dir_all(&dir);
        let (src_id, rel_id);
        {
            let mut s = GamStore::open(&dir).unwrap();
            // snapshot the empty schema so reopen can replay the WAL
            // (relstore recovery needs tables from a snapshot); the whole
            // batch below then lives only in group-committed WAL frames
            s.checkpoint().unwrap();
            s.begin_group_commit();
            let src = gene_source(&mut s, "A");
            let go = s
                .create_source("GO", SourceContent::Other, SourceStructure::Network, None)
                .unwrap();
            src_id = src.id;
            let (ids, created) = s
                .add_objects_bulk_ref(src.id, &[("a1", None, None), ("a2", None, None)])
                .unwrap();
            assert_eq!(created, 2);
            let (g, _) = s.ensure_object(go.id, "GO:1", None, None).unwrap();
            rel_id = s.create_source_rel(src.id, go.id, RelType::Fact, None).unwrap();
            let mut added = 0;
            s.add_associations_bulk(
                rel_id,
                vec![
                    Association::fact(ids[0], g),
                    Association::fact(ids[1], g),
                    Association::fact(ids[0], g), // dup within batch
                ],
                &mut added,
            )
            .unwrap();
            assert_eq!(added, 2);
            s.end_group_commit().unwrap();
        }
        {
            let s = GamStore::open(&dir).unwrap();
            assert_eq!(s.find_source("A").unwrap().unwrap().id, src_id);
            assert_eq!(s.object_count(src_id).unwrap(), 2);
            assert_eq!(s.association_count(rel_id).unwrap(), 2);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_store_preserves_ids_across_reopen() {
        let dir = std::env::temp_dir().join("gam-store-tests").join("reopen");
        let _ = std::fs::remove_dir_all(&dir);
        let (src_id, obj_id, rel_id);
        {
            let mut s = GamStore::open(&dir).unwrap();
            let src = gene_source(&mut s, "LocusLink");
            src_id = src.id;
            obj_id = s.create_object(src.id, "353", Some("APRT"), None).unwrap();
            let go = s
                .create_source("GO", SourceContent::Other, SourceStructure::Network, None)
                .unwrap();
            let g = s.create_object(go.id, "GO:1", None, None).unwrap();
            rel_id = s.create_source_rel(src.id, go.id, RelType::Fact, None).unwrap();
            s.add_association(rel_id, obj_id, g, None).unwrap();
            s.checkpoint().unwrap();
        }
        {
            let mut s = GamStore::open(&dir).unwrap();
            // existing data visible
            assert_eq!(s.find_source("LocusLink").unwrap().unwrap().id, src_id);
            assert_eq!(s.load_mapping(rel_id).unwrap().len(), 1);
            // id counters resume beyond existing data
            let next = s
                .create_source("New", SourceContent::Other, SourceStructure::Flat, None)
                .unwrap();
            assert!(next.id.raw() > 2);
            let new_obj = s.create_object(next.id, "x", None, None).unwrap();
            assert!(new_obj.raw() > obj_id.raw());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
